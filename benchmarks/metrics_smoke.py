#!/usr/bin/env python
"""Observability smoke workload: XMark through the query service with the
full tracing + metrics stack on, scraped over HTTP.

The CI observability lane runs this script to prove three things on every
push:

1. the ``/metrics`` endpoint serves valid Prometheus text covering the
   required metric families while a real workload is running;
2. the scraped snapshot reconciles with the per-query counters (the
   registry is not drifting from the ground truth);
3. tracing stays cheap: the traced configuration's median workload time
   must be within ``--threshold`` (default 5%) of the tracing-disabled
   configuration;
4. workload capture stays cheap: the file-backed query-log configuration
   must be within ``--qlog-threshold`` (default 5%) of the capture-
   disabled configuration;
5. profiling is pay-for-what-you-use: with the profiler *attached but
   disabled* the workload must stay within ``--profile-off-threshold``
   (default 2%) of the baseline, and with attributed profiling on plus
   the stack sampler at ``--sample-hz`` (default 97 Hz) it must stay
   within ``--profile-threshold`` (default 15%).

The profiled lane also emits the observability artifacts CI uploads: a
collapsed-stack flamegraph (``--flamegraph-out``) and the cost-model
calibration report fitted from the profiled run (``--calibration-out``).

Usage::

    PYTHONPATH=src python benchmarks/metrics_smoke.py \
        --snapshot metrics_snapshot.txt --threshold 0.05 \
        --flamegraph-out flamegraph.txt --calibration-out calibration.json

Exit code 0 on success, 1 on any failed check.  Standard library only.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
import urllib.request

from repro import Database, QueryService
from repro.core.httpapi import start_observability_server
from repro.engine.calibrate import calibrate_records
from repro.engine.metrics import MetricsRegistry
from repro.engine.profiler import Profiler
from repro.engine.qlog import QueryLog, build_record
from repro.workloads import XMARK_QUERIES, generate_xmark

REQUIRED_FAMILIES = (
    "repro_plan_cache_hit_total",
    "repro_plan_cache_miss_total",
    "repro_plan_cache_size",
    "repro_breaker_opened_total",
    "repro_breaker_open_modules",
    "repro_retry_attempts_total",
    "repro_faults_injected_transient_total",
    "repro_latency_samples_dropped_total",
    "repro_query_latency_seconds",
    "repro_qlog_records_total",
    "repro_planner_plan_flip_total",
    "repro_planner_misestimate_total",
)


def build_database(tracer: bool, profile: bool = False) -> Database:
    db = Database(metrics=MetricsRegistry(), tracer=tracer, profile=profile)
    db.add_document(generate_xmark(scale=2, seed=0))
    db.add_view("v_person", "//people/person[id:s]{/name[id:s, val]}")
    db.add_view("v_item", "//regions//item[id:s]{/name[id:s, val]}")
    return db


def run_workload(
    service: QueryService, rounds: int, stats: bool = False
) -> list:
    results = []
    for _ in range(rounds):
        for query in XMARK_QUERIES.values():
            if stats:
                results.append(
                    service.query(query, physical=True, stats=True)
                )
            else:
                results.append(service.query(query))
    return results


def timed_workload(
    tracer: bool, rounds: int, repeats: int, qlog_dir: str | None = None,
    qlog_off: bool = False,
) -> float:
    """Median wall time of the workload under one configuration (fresh
    database and service per repeat, so plan-cache state is identical
    across configurations).  ``qlog_dir`` runs with a file-backed query
    log (a fresh capture per repeat); ``qlog_off`` disables capture."""
    timings = []
    for number in range(repeats):
        timings.append(_one_pass(
            tracer, rounds, number, qlog_dir=qlog_dir, qlog_off=qlog_off
        ))
    timings.sort()
    return timings[len(timings) // 2]


def _one_pass(
    tracer, rounds, number, qlog_dir=None, qlog_off=False, profile=False,
    profiler_attached=False, sample_hz=None, stats=False,
) -> float:
    """One timed pass of the workload under one configuration (fresh
    database and service per pass, so plan-cache state is identical
    across configurations).  ``qlog_dir`` runs with a file-backed query
    log (a fresh capture per pass); ``qlog_off`` disables capture.
    ``profile`` turns attributed profiling on; ``profiler_attached``
    attaches a (dormant) profiler with profiling off; ``sample_hz``
    additionally runs the background stack sampler."""
    db = build_database(tracer=tracer, profile=profile)
    qlog: QueryLog | None | bool = None
    if qlog_dir is not None:
        qlog = QueryLog(os.path.join(qlog_dir, f"capture-{number}.jsonl"))
    elif qlog_off:
        qlog = False
    profiler: Profiler | None | bool = None
    if profiler_attached and not profile:
        profiler = Profiler(registry=db.metrics)
    elif not profile and sample_hz is None:
        profiler = False
    with QueryService(
        db, cache_capacity=64, max_workers=4, qlog=qlog,
        profiler=profiler, sample_hz=sample_hz,
    ) as service:
        started = time.perf_counter()
        run_workload(service, rounds, stats=stats)
        elapsed = time.perf_counter() - started
    if isinstance(qlog, QueryLog):
        qlog.close()
    return elapsed


def _gate_service(
    profile: bool = False, attached: bool = False,
    sample_hz: float | None = None,
) -> QueryService:
    db = build_database(tracer=True, profile=profile)
    profiler: Profiler | None | bool = None
    if attached and not profile:
        profiler = Profiler(registry=db.metrics)
    elif not profile and sample_hz is None:
        profiler = False
    return QueryService(
        db, cache_capacity=64, max_workers=4, profiler=profiler,
        sample_hz=sample_hz,
    )


def disabled_profiler_overhead() -> float:
    """Fractional per-query cost of an attached-but-disabled profiler.

    With profiling off, the *only* thing an attached profiler adds to
    the query path is one ``Profiler.record()`` call per query (which
    early-returns on a result without operator metrics).  A/B wall-clock
    lanes cannot resolve that cost against percent-level machine noise,
    so measure it directly: time the workload once for the mean
    per-query time, microbenchmark ``record()`` against a real
    unprofiled result, and return the ratio."""
    with _gate_service(attached=True) as service:
        results = run_workload(service, 1)  # warm
        started = time.process_time()
        results = run_workload(service, 2)
        workload_cpu = time.process_time() - started
        per_query = workload_cpu / len(results)
        calls = 2000
        sample = results[0]
        started = time.process_time()
        for _ in range(calls):
            service.profiler.record("q", sample, 0.001)
        per_call = (time.process_time() - started) / calls
    return per_call / per_query


def paired_overhead(
    config_a: dict, config_b: dict, repeats: int, stats: bool = False
) -> float:
    """B's overhead relative to A, measured tightly enough to gate at
    the tens-of-percent level on a noisy box: both services are built
    once and warmed (so plan caches and allocator state stop moving),
    each repeat times one single-round A pass and one B pass
    back-to-back on the *process* CPU clock (scheduler preemption and VM
    steal never count), alternating the order, and the median of the
    per-repeat B/A ratios is returned (adjacent passes cancel drift; the
    median kills spike-contaminated pairs)."""
    import gc

    def timed(service) -> float:
        gc.collect()
        started = time.process_time()
        run_workload(service, 1, stats=stats)
        return time.process_time() - started

    with _gate_service(**config_a) as svc_a, \
            _gate_service(**config_b) as svc_b:
        run_workload(svc_a, 1, stats=stats)
        run_workload(svc_b, 1, stats=stats)
        ratios = []
        for number in range(repeats):
            if number % 2 == 0:
                time_a = timed(svc_a)
                time_b = timed(svc_b)
            else:
                time_b = timed(svc_b)
                time_a = timed(svc_a)
            ratios.append(time_b / time_a)
        ratios.sort()
        return ratios[len(ratios) // 2] - 1.0


def profiled_artifacts(
    rounds: int, sample_hz: float, flamegraph_out: str | None,
    calibration_out: str | None,
) -> tuple[int, str]:
    """One fully-profiled pass over the workload to produce the CI
    artifacts: the sampler's collapsed stacks and the calibration report
    fitted from the attributed per-operator CPU.  Returns (number of
    profiled records, calibration verdict line)."""
    db = build_database(tracer=True, profile=True)
    records = []
    with QueryService(db, cache_capacity=64, max_workers=4,
                      sample_hz=sample_hz) as service:
        results = run_workload(service, rounds)
        for query, result in zip(
            list(XMARK_QUERIES.values()) * rounds, results
        ):
            records.append(build_record(query, result, 0.0, "ok"))
        if flamegraph_out:
            collapsed = service.profiler.sampler.collapsed()
            with open(flamegraph_out, "w", encoding="utf-8") as handle:
                handle.write(collapsed)
            print(f"--  flamegraph written to {flamegraph_out}")
    report = calibrate_records(records)
    if calibration_out:
        with open(calibration_out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"--  calibration report written to {calibration_out}")
    flagged = report.flagged()
    verdict = (
        f"calibrated {len([f for f in report.fits.values() if f.points])} "
        f"operator classes over {report.profiled_records} records"
        + (f", flagged: {', '.join(flagged)}" if flagged else "")
    )
    return report.profiled_records, verdict


def check(condition: bool, message: str, failures: list) -> None:
    print(("ok  " if condition else "FAIL") + f"  {message}")
    if not condition:
        failures.append(message)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rounds", type=int, default=3, help="workload rounds per repeat"
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timed repeats per configuration (median is compared)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.05,
        help="max tracing overhead as a fraction (default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--qlog-threshold", type=float, default=0.05,
        help="max query-log capture overhead as a fraction "
        "(default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--snapshot", default=None,
        help="write the scraped /metrics text here (CI uploads it)",
    )
    parser.add_argument(
        "--profile-off-threshold", type=float, default=0.02,
        help="max overhead with the profiler attached but disabled "
        "(default 0.02 = 2%%)",
    )
    parser.add_argument(
        "--profile-threshold", type=float, default=0.15,
        help="max overhead with attributed profiling + sampling on "
        "(default 0.15 = 15%%)",
    )
    parser.add_argument(
        "--sample-hz", type=float, default=97.0,
        help="stack sampler rate for the profiled lane (default 97 Hz)",
    )
    parser.add_argument(
        "--flamegraph-out", default=None,
        help="write the profiled lane's collapsed stacks here "
        "(CI uploads it)",
    )
    parser.add_argument(
        "--calibration-out", default=None,
        help="write the calibration report JSON here (CI uploads it)",
    )
    args = parser.parse_args(argv)
    failures: list = []

    # -- the observed workload: tracing on, endpoint scraped live ----------
    db = build_database(tracer=True)
    with QueryService(db, cache_capacity=64, max_workers=4) as service:
        server = start_observability_server(service, port=0)
        try:
            results = run_workload(service, args.rounds)
            with urllib.request.urlopen(server.url + "/metrics", timeout=10) as r:
                content_type = r.headers.get("Content-Type", "")
                text = r.read().decode("utf-8")
            with urllib.request.urlopen(
                server.url + "/metrics.json", timeout=10
            ) as r:
                snapshot = json.loads(r.read().decode("utf-8"))
        finally:
            server.stop()

        check("version=0.0.4" in content_type, "prometheus content type", failures)
        for family in REQUIRED_FAMILIES:
            check(family in text, f"family exposed: {family}", failures)

        expected_queries = len(XMARK_QUERIES) * args.rounds
        check(
            all(result.trace_id for result in results),
            "every result carries a trace id",
            failures,
        )
        hits = service.metrics.counter_value("plan_cache.hit")
        misses = service.metrics.counter_value("plan_cache.miss")
        check(
            hits + misses == expected_queries,
            f"cache outcomes reconcile ({hits:g}+{misses:g}"
            f"=={expected_queries})",
            failures,
        )
        per_query_hits = sum(
            result.counters.get("plan_cache.hit", 0.0) for result in results
        )
        check(
            hits == per_query_hits,
            "registry hits equal per-query counter sum",
            failures,
        )
        histogram = snapshot["query.latency.seconds"]["series"]
        check(
            sum(series["count"] for series in histogram) == expected_queries,
            "latency histogram saw every query",
            failures,
        )
        if args.snapshot:
            with open(args.snapshot, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"--  snapshot written to {args.snapshot}")

    # -- overhead gate: traced vs tracing-disabled -------------------------
    traced = timed_workload(True, args.rounds, args.repeats)
    untraced = timed_workload(False, args.rounds, args.repeats)
    overhead = traced / untraced - 1.0
    check(
        overhead <= args.threshold,
        f"tracing overhead {overhead:+.2%} within {args.threshold:.0%} "
        f"(traced {traced * 1000:.1f}ms, untraced {untraced * 1000:.1f}ms)",
        failures,
    )

    # -- overhead gate: file-backed query log vs capture disabled ----------
    with tempfile.TemporaryDirectory(prefix="repro-qlog-") as qlog_dir:
        logged = timed_workload(
            True, args.rounds, args.repeats, qlog_dir=qlog_dir
        )
    unlogged = timed_workload(True, args.rounds, args.repeats, qlog_off=True)
    qlog_overhead = logged / unlogged - 1.0
    check(
        qlog_overhead <= args.qlog_threshold,
        f"query-log overhead {qlog_overhead:+.2%} within "
        f"{args.qlog_threshold:.0%} (logged {logged * 1000:.1f}ms, "
        f"unlogged {unlogged * 1000:.1f}ms)",
        failures,
    )

    # -- overhead gates: profiling disabled, then fully on -----------------
    # gate 1: a merely-attached (dormant) profiler must be free
    off_overhead = disabled_profiler_overhead()
    check(
        off_overhead <= args.profile_off_threshold,
        f"disabled-profiler overhead {off_overhead:+.2%} within "
        f"{args.profile_off_threshold:.0%}",
        failures,
    )
    # gate 2: attributed profiling + the sampler vs the instrumented
    # (physical+stats) workload profiling promotes queries to — the
    # delta is the profiler's own cost, not the instrumentation's
    profile_overhead = paired_overhead(
        {},
        {"profile": True, "sample_hz": args.sample_hz},
        max(args.repeats, 15), stats=True,
    )
    check(
        profile_overhead <= args.profile_threshold,
        f"attributed+{args.sample_hz:g}Hz profiling overhead "
        f"{profile_overhead:+.2%} within {args.profile_threshold:.0%}",
        failures,
    )

    # -- profiled-lane artifacts: flamegraph + calibration report ----------
    profiled_records, verdict = profiled_artifacts(
        args.rounds, args.sample_hz, args.flamegraph_out,
        args.calibration_out,
    )
    check(
        profiled_records > 0,
        f"profiled lane produced calibration evidence ({verdict})",
        failures,
    )

    if failures:
        print(f"\n{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("\nall observability checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
