#!/usr/bin/env python
"""Observability smoke workload: XMark through the query service with the
full tracing + metrics stack on, scraped over HTTP.

The CI observability lane runs this script to prove three things on every
push:

1. the ``/metrics`` endpoint serves valid Prometheus text covering the
   required metric families while a real workload is running;
2. the scraped snapshot reconciles with the per-query counters (the
   registry is not drifting from the ground truth);
3. tracing stays cheap: the traced configuration's median workload time
   must be within ``--threshold`` (default 5%) of the tracing-disabled
   configuration;
4. workload capture stays cheap: the file-backed query-log configuration
   must be within ``--qlog-threshold`` (default 5%) of the capture-
   disabled configuration.

Usage::

    PYTHONPATH=src python benchmarks/metrics_smoke.py \
        --snapshot metrics_snapshot.txt --threshold 0.05

Exit code 0 on success, 1 on any failed check.  Standard library only.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
import urllib.request

from repro import Database, QueryService
from repro.core.httpapi import start_observability_server
from repro.engine.metrics import MetricsRegistry
from repro.engine.qlog import QueryLog
from repro.workloads import XMARK_QUERIES, generate_xmark

REQUIRED_FAMILIES = (
    "repro_plan_cache_hit_total",
    "repro_plan_cache_miss_total",
    "repro_plan_cache_size",
    "repro_breaker_opened_total",
    "repro_breaker_open_modules",
    "repro_retry_attempts_total",
    "repro_faults_injected_transient_total",
    "repro_latency_samples_dropped_total",
    "repro_query_latency_seconds",
    "repro_qlog_records_total",
    "repro_planner_plan_flip_total",
    "repro_planner_misestimate_total",
)


def build_database(tracer: bool) -> Database:
    db = Database(metrics=MetricsRegistry(), tracer=tracer)
    db.add_document(generate_xmark(scale=2, seed=0))
    db.add_view("v_person", "//people/person[id:s]{/name[id:s, val]}")
    db.add_view("v_item", "//regions//item[id:s]{/name[id:s, val]}")
    return db


def run_workload(service: QueryService, rounds: int) -> list:
    results = []
    for _ in range(rounds):
        for query in XMARK_QUERIES.values():
            results.append(service.query(query))
    return results


def timed_workload(
    tracer: bool, rounds: int, repeats: int, qlog_dir: str | None = None,
    qlog_off: bool = False,
) -> float:
    """Median wall time of the workload under one configuration (fresh
    database and service per repeat, so plan-cache state is identical
    across configurations).  ``qlog_dir`` runs with a file-backed query
    log (a fresh capture per repeat); ``qlog_off`` disables capture."""
    timings = []
    for number in range(repeats):
        db = build_database(tracer=tracer)
        qlog: QueryLog | None | bool = None
        if qlog_dir is not None:
            qlog = QueryLog(os.path.join(qlog_dir, f"capture-{number}.jsonl"))
        elif qlog_off:
            qlog = False
        with QueryService(
            db, cache_capacity=64, max_workers=4, qlog=qlog
        ) as service:
            started = time.perf_counter()
            run_workload(service, rounds)
            timings.append(time.perf_counter() - started)
        if isinstance(qlog, QueryLog):
            qlog.close()
    timings.sort()
    return timings[len(timings) // 2]


def check(condition: bool, message: str, failures: list) -> None:
    print(("ok  " if condition else "FAIL") + f"  {message}")
    if not condition:
        failures.append(message)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rounds", type=int, default=3, help="workload rounds per repeat"
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timed repeats per configuration (median is compared)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.05,
        help="max tracing overhead as a fraction (default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--qlog-threshold", type=float, default=0.05,
        help="max query-log capture overhead as a fraction "
        "(default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--snapshot", default=None,
        help="write the scraped /metrics text here (CI uploads it)",
    )
    args = parser.parse_args(argv)
    failures: list = []

    # -- the observed workload: tracing on, endpoint scraped live ----------
    db = build_database(tracer=True)
    with QueryService(db, cache_capacity=64, max_workers=4) as service:
        server = start_observability_server(service, port=0)
        try:
            results = run_workload(service, args.rounds)
            with urllib.request.urlopen(server.url + "/metrics", timeout=10) as r:
                content_type = r.headers.get("Content-Type", "")
                text = r.read().decode("utf-8")
            with urllib.request.urlopen(
                server.url + "/metrics.json", timeout=10
            ) as r:
                snapshot = json.loads(r.read().decode("utf-8"))
        finally:
            server.stop()

        check("version=0.0.4" in content_type, "prometheus content type", failures)
        for family in REQUIRED_FAMILIES:
            check(family in text, f"family exposed: {family}", failures)

        expected_queries = len(XMARK_QUERIES) * args.rounds
        check(
            all(result.trace_id for result in results),
            "every result carries a trace id",
            failures,
        )
        hits = service.metrics.counter_value("plan_cache.hit")
        misses = service.metrics.counter_value("plan_cache.miss")
        check(
            hits + misses == expected_queries,
            f"cache outcomes reconcile ({hits:g}+{misses:g}"
            f"=={expected_queries})",
            failures,
        )
        per_query_hits = sum(
            result.counters.get("plan_cache.hit", 0.0) for result in results
        )
        check(
            hits == per_query_hits,
            "registry hits equal per-query counter sum",
            failures,
        )
        histogram = snapshot["query.latency.seconds"]["series"]
        check(
            sum(series["count"] for series in histogram) == expected_queries,
            "latency histogram saw every query",
            failures,
        )
        if args.snapshot:
            with open(args.snapshot, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"--  snapshot written to {args.snapshot}")

    # -- overhead gate: traced vs tracing-disabled -------------------------
    traced = timed_workload(True, args.rounds, args.repeats)
    untraced = timed_workload(False, args.rounds, args.repeats)
    overhead = traced / untraced - 1.0
    check(
        overhead <= args.threshold,
        f"tracing overhead {overhead:+.2%} within {args.threshold:.0%} "
        f"(traced {traced * 1000:.1f}ms, untraced {untraced * 1000:.1f}ms)",
        failures,
    )

    # -- overhead gate: file-backed query log vs capture disabled ----------
    with tempfile.TemporaryDirectory(prefix="repro-qlog-") as qlog_dir:
        logged = timed_workload(
            True, args.rounds, args.repeats, qlog_dir=qlog_dir
        )
    unlogged = timed_workload(True, args.rounds, args.repeats, qlog_off=True)
    qlog_overhead = logged / unlogged - 1.0
    check(
        qlog_overhead <= args.qlog_threshold,
        f"query-log overhead {qlog_overhead:+.2%} within "
        f"{args.qlog_threshold:.0%} (logged {logged * 1000:.1f}ms, "
        f"unlogged {unlogged * 1000:.1f}ms)",
        failures,
    )

    if failures:
        print(f"\n{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("\nall observability checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
