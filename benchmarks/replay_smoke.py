#!/usr/bin/env python
"""Replay-regression smoke: record an XMark workload, replay it, diff.

The CI replay lane runs this script on every push to prove the capture →
replay loop is deterministic end to end:

1. **record** — the XMark query battery runs through a
   :class:`~repro.core.service.QueryService` with a file-backed query
   log, twice over, so the capture holds both cache-miss and cache-hit
   executions of every plan;
2. **replay** — a *fresh* database (same document generator, same seed,
   same views) re-runs the capture; any plan-fingerprint or
   result-checksum diff fails the job.  Against unchanged state the diff
   count must be exactly zero — a non-zero diff means preparation or
   execution stopped being deterministic, which is precisely the
   regression this lane exists to catch.  The lane is deliberately
   *cross-engine*: it records under the ``iter`` executor and replays
   under ``batch``, so zero diffs also proves the two engines agree on
   every fingerprint and checksum in the workload;
3. **sentinel cross-check** — the run must have produced no plan flips
   (stable state ⇒ silent sentinel), and a deliberately poisoned
   statistics entry must produce both a sentinel flip and a replay diff
   (the detector must not pass vacuously).

The capture is left at ``--qlog`` (default ``replay_workload.jsonl``)
for CI to upload as a debuggable artifact.

Usage::

    PYTHONPATH=src python benchmarks/replay_smoke.py --qlog workload.jsonl

Exit code 0 on success, 1 on any failed check.  Standard library only.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import Database, QueryService
from repro.core.replay import replay_records
from repro.engine.metrics import MetricsRegistry
from repro.engine.qlog import QueryLog
from repro.workloads import XMARK_QUERIES, generate_xmark


def build_database(executor: "str | None" = None) -> Database:
    db = Database(metrics=MetricsRegistry(), executor=executor)
    db.add_document(generate_xmark(scale=2, seed=0))
    # v_person and v_person_twin are S-equivalent: ranking races them on
    # statistics alone, so one poisoned entry is enough to flip the plan.
    db.add_view("v_person", "//people/person[id:s]{/name[id:s, val]}")
    db.add_view("v_person_twin", "//people/person[id:s]{/name[id:s, val]}")
    db.add_view("v_item", "//regions//item[id:s]{/name[id:s, val]}")
    return db


def chosen_person_view(records) -> "tuple[str, str]":
    """The person view the recorded plans actually picked, plus a query
    that picked it (deterministic tie-break — but read both from the
    capture rather than assuming)."""
    for record in records:
        for pattern in record.get("patterns", ()):
            for view in pattern.get("views", ()):
                if view.startswith("v_person"):
                    return view, record["query"]
    raise SystemExit("capture never used a person view; workload drifted")


def check(condition: bool, message: str, failures: list) -> None:
    print(("ok  " if condition else "FAIL") + f"  {message}")
    if not condition:
        failures.append(message)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--qlog", default="replay_workload.jsonl",
        help="capture path (kept afterwards; CI uploads it)",
    )
    parser.add_argument(
        "--rounds", type=int, default=2,
        help="workload rounds to record (>=2 exercises the plan cache)",
    )
    args = parser.parse_args(argv)
    failures: list = []

    # -- record ------------------------------------------------------------
    for stale in (args.qlog, *(f"{args.qlog}.{n}" for n in range(1, 4))):
        if os.path.exists(stale):
            os.remove(stale)
    qlog = QueryLog(args.qlog)
    record_db = build_database(executor="iter")
    with QueryService(record_db, cache_capacity=64, qlog=qlog) as service:
        for _ in range(args.rounds):
            for query in XMARK_QUERIES.values():
                service.query(query)
        check(
            service.sentinel.plan_flips == 0,
            "no plan flips while recording against stable state",
            failures,
        )
    qlog.close()
    expected = len(XMARK_QUERIES) * args.rounds
    check(
        qlog.written == expected,
        f"capture holds the whole workload ({qlog.written}/{expected})",
        failures,
    )

    # -- replay against a fresh, identical database — other engine ---------
    records = QueryLog.read_all(args.qlog)
    check(
        all(record.get("executor") == "iter" for record in records),
        "capture records carry the recording executor",
        failures,
    )
    report = replay_records(build_database(executor="batch"), records)
    print(f"--  {report.render()}")
    check(
        report.replayed == expected and report.skipped == 0,
        "every recorded execution was replayed",
        failures,
    )
    check(
        report.ok and report.matches == expected,
        "zero diffs on unchanged state, iter-recorded -> batch-replayed "
        f"({len(report.diffs)} diff(s))",
        failures,
    )

    # -- the detector must not pass vacuously ------------------------------
    winner, person = chosen_person_view(records)
    poisoned = build_database()
    poisoned.override_statistic(winner, 1e9)
    drifted = replay_records(poisoned, records)
    flagged = {diff.kind for diff in drifted.diffs}
    check(
        "fingerprint" in flagged,
        f"poisoned {winner} statistics surface as replay diffs "
        f"({sorted(flagged)})",
        failures,
    )
    fresh = build_database()
    with QueryService(fresh, cache_capacity=64, qlog=False) as sentinel_svc:
        sentinel_svc.query(person)
        fresh.override_statistic(winner, 1e9)
        sentinel_svc.query(person)
        check(
            sentinel_svc.sentinel.plan_flips >= 1,
            f"sentinel flags the flip when {winner}'s entry is poisoned",
            failures,
        )

    if failures:
        print(f"\n{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("\nall replay checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
