"""E4 — Figure 4.15: DBLP pattern containment.

Same protocol as E3 on the DBLP summary.  The paper's headline: DBLP
containment runs ~4× faster than XMark, because the XMark summary's many
formatting tags (bold/emph/keyword) inflate the random patterns' canonical
models while DBLP's flat records keep them small.  We check the direction
of the gap (DBLP faster) rather than the exact factor.
"""

import time

import pytest

from repro.core import is_contained
from repro.workloads import GeneratorConfig, generate_patterns

_PER_CELL = 6
_DBLP_CONFIG = GeneratorConfig(return_labels=("article", "title", "author"))
_XMARK_CONFIG = GeneratorConfig(return_labels=("item", "name", "initial"))


@pytest.mark.parametrize("returns", (1, 2, 3))
@pytest.mark.parametrize("size", (3, 7, 9))
def test_dblp_positive_containment(benchmark, dblp_summary, size, returns):
    patterns = generate_patterns(
        dblp_summary, size, returns, _PER_CELL, seed=size * 7 + returns,
        config=_DBLP_CONFIG,
    )

    def run():
        return [is_contained(p, p.copy(), dblp_summary, use_strong_edges=False) for p in patterns]

    assert all(benchmark.pedantic(run, rounds=2, iterations=1))


def test_dblp_faster_than_xmark(benchmark, dblp_summary, xmark_summary):
    def measure():
        dblp_patterns = generate_patterns(
            dblp_summary, 9, 2, _PER_CELL, seed=42, config=_DBLP_CONFIG
        )
        xmark_patterns = generate_patterns(
            xmark_summary, 9, 2, _PER_CELL, seed=42, config=_XMARK_CONFIG
        )
        t0 = time.perf_counter()
        for p in dblp_patterns:
            is_contained(p, p.copy(), dblp_summary, use_strong_edges=False)
        dblp_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        for p in xmark_patterns:
            is_contained(p, p.copy(), xmark_summary, use_strong_edges=False)
        xmark_time = time.perf_counter() - t0
        return dblp_time, xmark_time

    dblp_time, xmark_time = benchmark.pedantic(measure, rounds=3, iterations=1)
    print(
        f"\n[Figure 4.15] DBLP={dblp_time*1e3:.1f}ms XMark={xmark_time*1e3:.1f}ms "
        f"(ratio {xmark_time/dblp_time:.1f}x, paper reports ~4x)"
    )
    assert dblp_time < xmark_time
