"""E2 — Figure 4.14 (top): XMark query pattern containment.

The paper extracts the patterns of the 20 XMark queries and tests the
containment of each pattern in itself under the XMark summary, reporting
the canonical model size and containment time.  Shape claims:

* |mod_S(p)| is small — far below the theoretical |S|^|p| bound;
* the q7-style query (variables with no structural relationship between
  them) is the canonical-model outlier;
* self-containment succeeds for every satisfiable pattern.
"""

import pytest

from repro.core import canonical_model, is_contained, is_satisfiable
from repro.workloads import XMARK_QUERIES, xmark_query_patterns

_PATTERNS = xmark_query_patterns()
_MODEL_SIZES: dict[str, int] = {}


@pytest.mark.parametrize("query_id", sorted(XMARK_QUERIES))
def test_xmark_query_self_containment(benchmark, xmark_summary, query_id):
    patterns = [
        p for p in _PATTERNS[query_id] if is_satisfiable(p, xmark_summary)
    ]
    if not patterns:
        pytest.skip(f"{query_id} unsatisfiable on this synthetic summary")

    def run():
        return all(is_contained(p, p, xmark_summary, use_strong_edges=False) for p in patterns)

    assert benchmark(run)
    _MODEL_SIZES[query_id] = sum(
        len(canonical_model(p, xmark_summary, use_strong_edges=False)) for p in patterns
    )


def test_print_model_sizes(benchmark, xmark_summary):
    def assemble():
        sizes = {}
        for query_id, patterns in _PATTERNS.items():
            live = [p for p in patterns if is_satisfiable(p, xmark_summary)]
            sizes[query_id] = sum(len(canonical_model(p, xmark_summary, use_strong_edges=False)) for p in live)
        return sizes

    sizes = benchmark.pedantic(assemble, rounds=1, iterations=1)
    print("\n[Figure 4.14 top] canonical model sizes, XMark queries")
    for query_id in sorted(sizes):
        print(f"  {query_id}: |mod_S(p)| = {sizes[query_id]}")

    # shape: models are small, and the unrelated-variables query (q07)
    # is the largest (the thesis' 204-trees outlier)
    live = {k: v for k, v in sizes.items() if v}
    assert max(live.values()) == live["q07"]
    others = [v for k, v in live.items() if k != "q07"]
    assert max(others) <= 40
