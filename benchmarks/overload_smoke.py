#!/usr/bin/env python
"""Overload chaos lane: flood the service, demand typed sheds only.

The overload CI job runs this script to prove the admission-control spine
(PR 8) degrades *predictably* — wrong answers are never an acceptable
overload response.  Three phases:

* ``--phase flood`` — 8 client threads hammer a 2-worker service with a
  queue capacity of 4 while every execution is slowed artificially.  The
  checks: every completed query's checksum equals the unloaded ground
  truth (zero divergences), a bounded nonzero fraction of queries is shed
  with typed :class:`~repro.errors.QueryRejected`, readiness flips to
  *not ready* under the storm, and flips back once traffic calms;

* ``--phase adaptive`` — the same workload through a fixed 8-worker pool
  and through the AIMD limiter, against a database whose per-query cost
  grows with concurrent in-flight executions (the contention curve the
  limiter exists to walk down).  The checks: the fixed pool genuinely
  degrades (p99 well above unloaded), the limiter shrinks below the
  worker count, and the adaptive steady-state p99 is no worse than the
  fixed pool's;

* ``--phase hedge`` — a 4-shard scatter with one shard stalling its
  first attempt per query.  The checks: hedged scatter cuts the
  straggler p99 by >= 2x, the hedge genuinely fired and won, every
  hedged answer's checksum equals the un-hedged answer, and a workload
  captured under hedging replays diff-free against a clean, un-hedged
  layout (winner-vs-loser identity).

Usage::

    PYTHONPATH=src python benchmarks/overload_smoke.py            # all
    PYTHONPATH=src python benchmarks/overload_smoke.py --phase flood

Exit code 0 on success, 1 on any failed check.  Standard library only.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time

from repro import Database, QueryService
from repro.core.coordinator import ShardedDatabase
from repro.core.replay import replay_records
from repro.engine.metrics import MetricsRegistry
from repro.engine.qlog import QueryLog, result_checksum
from repro.errors import QueryRejected
from repro.workloads import generate_xmark

FLOOD_QUERIES = [
    "for $p in //people/person return $p/name/text()",
    "//open_auctions/open_auction/initial/text()",
    "//regions//item/name/text()",
]

#: view-answered with non-empty output — the hedged-scatter query
VIEW_QUERY = "for $p in //people/person return <r>{ $p/name/text() }</r>"

VIEWS = [
    ("v_person", "//people/person[id:s]{/name[id:s, val]}"),
    ("v_item", "//regions//item[id:s]{/name[id:s, val]}"),
]


def build_database(shards: int = 0, **kwargs) -> Database:
    if shards > 1:
        db: Database = ShardedDatabase(
            shards, metrics=MetricsRegistry(), **kwargs
        )
        corpus = [
            generate_xmark(scale=1, seed=seed, name=f"xmark{seed}.xml")
            for seed in range(3)
        ]
    else:
        db = Database(metrics=MetricsRegistry())
        corpus = [generate_xmark(scale=1, seed=0)]
    db.add_documents(corpus)
    for name, pattern in VIEWS:
        db.add_view(name, pattern)
    return db


def check(condition: bool, message: str, failures: list) -> None:
    print(("ok  " if condition else "FAIL") + f"  {message}")
    if not condition:
        failures.append(message)


def counter_total(db, family: str) -> float:
    series = db.metrics.snapshot().get(family, {}).get("series", [])
    return sum(entry.get("value", 0.0) for entry in series)


def percentile(samples: list, fraction: float) -> float:
    ordered = sorted(samples)
    index = max(0, min(len(ordered) - 1, int(fraction * len(ordered))))
    return ordered[index]


# -- phase 1: flood correctness ----------------------------------------------


def run_flood(failures: list) -> None:
    print("== phase: flood (8 clients, 2 workers, queue capacity 4)")
    db = build_database()
    truth = {q: result_checksum(db.query(q)) for q in FLOOD_QUERIES}

    original = db.execute_prepared

    def slowed(prepared, **kwargs):
        time.sleep(0.02)  # makes a 2-worker pool saturable by 8 clients
        return original(prepared, **kwargs)

    db.execute_prepared = slowed
    service = QueryService(db, max_workers=2, queue_capacity=4)
    executed = shed = divergences = unexpected = 0
    tally = threading.Lock()
    not_ready_seen = threading.Event()
    stop_sampling = threading.Event()

    def sampler() -> None:
        while not stop_sampling.is_set():
            if not service.ready():
                not_ready_seen.set()
            time.sleep(0.005)

    def client(seed: int) -> None:
        nonlocal executed, shed, divergences, unexpected
        for round_number in range(10):
            query = FLOOD_QUERIES[(seed + round_number) % len(FLOOD_QUERIES)]
            try:
                result = service.query(query, timeout=30)
            except QueryRejected:
                with tally:
                    shed += 1
                continue
            except Exception:  # anything untyped is an overload bug
                with tally:
                    unexpected += 1
                continue
            with tally:
                executed += 1
                if result_checksum(result) != truth[query]:
                    divergences += 1

    threads = [threading.Thread(target=client, args=(s,)) for s in range(8)]
    threads.append(threading.Thread(target=sampler, daemon=True))
    for thread in threads:
        thread.start()
    for thread in threads[:-1]:
        thread.join(timeout=120)
    stop_sampling.set()
    threads[-1].join(timeout=5)

    total = 8 * 10
    check(
        executed + shed == total and unexpected == 0,
        f"every query ended typed: {executed} ok + {shed} shed = {total}, "
        f"{unexpected} untyped failure(s)",
        failures,
    )
    check(divergences == 0, "zero checksum divergences under flood", failures)
    check(
        0 < shed < total,
        f"bounded nonzero shed ({shed}/{total}, "
        f"admission: {service.admission.render()})",
        failures,
    )
    check(
        not_ready_seen.is_set(),
        "readiness flipped to not-ready during the storm",
        failures,
    )
    db.execute_prepared = original  # calm: full-speed queries, no shed
    for _ in range(40):
        service.query(FLOOD_QUERIES[0], timeout=30)
    check(service.ready(), "readiness recovered once traffic calmed", failures)
    service.shutdown()


# -- phase 2: adaptive limiter vs fixed pool ----------------------------------


class ContentionShim:
    """Per-query cost that grows with concurrent executions: every query
    pays ``base`` seconds (so a loaded pool genuinely overlaps), and every
    in-flight query beyond ``free`` adds ``penalty`` seconds more — the
    convex contention curve (lock queues, cache thrash) an AIMD limiter
    exists to walk down."""

    def __init__(
        self, db, base: float = 0.005, free: int = 1, penalty: float = 0.02
    ):
        self._original = db.execute_prepared
        self.base = base
        self.free = free
        self.penalty = penalty
        self.inflight = 0
        self._lock = threading.Lock()

    def __call__(self, prepared, **kwargs):
        with self._lock:
            self.inflight += 1
            extra = max(0, self.inflight - self.free) * self.penalty
        try:
            time.sleep(self.base + extra)
            return self._original(prepared, **kwargs)
        finally:
            with self._lock:
                self.inflight -= 1


def _drive(service, clients: int, rounds: int, warmup: int) -> list:
    """Client-observed latencies, excluding each client's first
    ``warmup`` queries (the window the limiter needs to converge)."""
    samples: list = []
    lock = threading.Lock()

    def client(seed: int) -> None:
        for round_number in range(rounds):
            query = FLOOD_QUERIES[(seed + round_number) % len(FLOOD_QUERIES)]
            started = time.perf_counter()
            service.query(query, timeout=60)
            elapsed = time.perf_counter() - started
            if round_number >= warmup:
                with lock:
                    samples.append(elapsed)

    threads = [
        threading.Thread(target=client, args=(s,)) for s in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    return samples


def run_adaptive(failures: list) -> None:
    print("== phase: adaptive limiter vs fixed pool (contention curve)")
    db = build_database()
    shim = ContentionShim(db)
    db.execute_prepared = shim

    # unloaded reference: one client at a time pays no contention
    # penalty; the warmup also absorbs the three plan-cache misses
    with QueryService(db, max_workers=8, adaptive_limit=False) as svc:
        unloaded = _drive(svc, clients=1, rounds=20, warmup=5)
    unloaded_p99 = percentile(unloaded, 0.99)

    with QueryService(db, max_workers=8, adaptive_limit=False) as svc:
        fixed = _drive(svc, clients=8, rounds=40, warmup=10)
    fixed_p99 = percentile(fixed, 0.99)

    target = max(0.002, unloaded_p99)
    with QueryService(
        db, max_workers=8, adaptive_limit=True, target_latency=target
    ) as svc:
        adaptive = _drive(svc, clients=8, rounds=40, warmup=10)
        limit = svc.limiter.limit
        degraded = svc.limiter.degraded
    adaptive_p99 = percentile(adaptive, 0.99)

    print(
        f"--  p99 unloaded={unloaded_p99 * 1000:.1f}ms "
        f"fixed={fixed_p99 * 1000:.1f}ms "
        f"adaptive={adaptive_p99 * 1000:.1f}ms (limit {limit}/8)"
    )
    check(
        fixed_p99 >= 2.5 * unloaded_p99,
        f"the fixed pool genuinely degrades under contention "
        f"({fixed_p99 / unloaded_p99:.1f}x unloaded)",
        failures,
    )
    check(
        degraded and limit < 8,
        f"the limiter shrank below the worker count (limit={limit})",
        failures,
    )
    check(
        adaptive_p99 <= fixed_p99,
        f"adaptive steady-state p99 <= fixed pool p99 "
        f"({adaptive_p99 * 1000:.1f}ms vs {fixed_p99 * 1000:.1f}ms)",
        failures,
    )


# -- phase 3: hedge differential ----------------------------------------------


class Straggler:
    """The first attempt on shard 1 of every scatter stalls; a hedge
    re-issue (same context, same shard) runs at full speed — the
    tail-latency shape hedging exists to cut."""

    def __init__(self, db, stall: float = 0.08):
        self._original = db._shard_task
        self.stall = stall
        self._seen: set = set()
        self._lock = threading.Lock()

    def __call__(self, shard_index, resolution, decision, ctx):
        if shard_index == 1:
            key = (id(ctx), shard_index)
            with self._lock:
                first = key not in self._seen
                self._seen.add(key)
            if first:
                time.sleep(self.stall)
        return self._original(shard_index, resolution, decision, ctx)


def run_hedge(qlog_path: str, failures: list) -> None:
    print("== phase: hedge differential (4 shards, shard 1 straggles)")
    rounds = 12

    plain = build_database(4, fanout_workers=6)
    plain.query(VIEW_QUERY)  # warm the plan path outside the measurement
    plain._shard_task = Straggler(plain)
    plain_latencies: list = []
    plain_checksums: list = []
    for _ in range(rounds):
        started = time.perf_counter()
        result = plain.query(VIEW_QUERY)
        plain_latencies.append(time.perf_counter() - started)
        plain_checksums.append(result_checksum(result))
    plain.close()

    for stale in (qlog_path, *(f"{qlog_path}.{n}" for n in range(1, 4))):
        if os.path.exists(stale):
            os.remove(stale)
    qlog = QueryLog(qlog_path)
    hedged = build_database(4, fanout_workers=6, hedge=True, hedge_delay=0.01)
    hedged.query(VIEW_QUERY)
    hedged._shard_task = Straggler(hedged)
    hedged_latencies: list = []
    hedged_checksums: list = []
    with QueryService(hedged, cache_capacity=8, qlog=qlog) as svc:
        for _ in range(rounds):
            started = time.perf_counter()
            result = svc.query(VIEW_QUERY, timeout=30)
            hedged_latencies.append(time.perf_counter() - started)
            hedged_checksums.append(result_checksum(result))
        launched = counter_total(hedged, "hedge.launched")
        wins = counter_total(hedged, "hedge.wins")
    qlog.close()
    hedged.close()

    p99_plain = percentile(plain_latencies, 0.99)
    p99_hedged = percentile(hedged_latencies, 0.99)
    print(
        f"--  straggler p99: {p99_plain * 1000:.1f}ms un-hedged vs "
        f"{p99_hedged * 1000:.1f}ms hedged "
        f"(launched={launched:g}, wins={wins:g})"
    )
    check(
        launched >= 1 and wins >= 1,
        "the hedge genuinely fired and won at least once",
        failures,
    )
    check(
        p99_plain >= 2.0 * p99_hedged,
        f"hedging cut the straggler p99 >= 2x "
        f"({p99_plain / p99_hedged:.1f}x)",
        failures,
    )
    check(
        set(hedged_checksums) == set(plain_checksums)
        and len(set(hedged_checksums)) == 1,
        "hedged and un-hedged answers share one identical checksum",
        failures,
    )

    records = QueryLog.read_all(qlog_path)
    clean = build_database(4)  # no hedge, no straggler
    report = replay_records(clean, records)
    print(f"--  {report.render()}")
    check(
        report.ok and report.matches == len(records) == rounds,
        "the hedged capture replays diff-free against a clean layout "
        f"({len(report.diffs)} diff(s))",
        failures,
    )
    clean.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--phase", choices=("flood", "adaptive", "hedge", "all"),
        default="all", help="which overload scenario to run (default all)",
    )
    parser.add_argument(
        "--qlog", default="overload_hedge_workload.jsonl",
        help="capture path for the hedge differential (CI uploads it)",
    )
    args = parser.parse_args(argv)
    failures: list = []

    if args.phase in ("flood", "all"):
        run_flood(failures)
    if args.phase in ("adaptive", "all"):
        run_adaptive(failures)
    if args.phase in ("hedge", "all"):
        run_hedge(args.qlog, failures)

    if failures:
        print(f"\n{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print(f"\nall overload checks passed (phase: {args.phase})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
