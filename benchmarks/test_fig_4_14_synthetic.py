"""E3 — Figure 4.14 (bottom): synthetic pattern containment on the XMark
summary.

The paper generates 40 satisfiable patterns per (size n, return count r)
cell with the §4.6 knobs, and times pairwise containment, separating
positive (p ⊑ p, always true) from negative (p_i ⊑ p_j, usually false)
cases.  Shape claims:

* negative decisions are faster than positive ones (early countermodel
  exit);
* time grows with pattern size but stays moderate.

We use fewer patterns per cell than the paper (6 vs 40) and stop the
dense sweep at n = 9 (n = 11 and n = 13 run as reduced tail cases) to
keep the pure-Python wall clock sane; the trends are the same.
"""

import pytest

from repro.core import is_contained
from repro.workloads import GeneratorConfig, generate_patterns

_SIZES = (3, 5, 7, 9)
_RETURNS = (1, 2, 3)
_PER_CELL = 6
_TIMES: dict[tuple, float] = {}


def _cell(summary, size, returns):
    config = GeneratorConfig(return_labels=("item", "name", "initial"))
    return generate_patterns(
        summary, size, returns, _PER_CELL, seed=size * 10 + returns, config=config
    )


@pytest.mark.parametrize("returns", _RETURNS)
@pytest.mark.parametrize("size", _SIZES)
def test_positive_containment(benchmark, xmark_summary, size, returns):
    patterns = _cell(xmark_summary, size, returns)

    def run():
        return [is_contained(p, p.copy(), xmark_summary, use_strong_edges=False) for p in patterns]

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(outcomes)
    _TIMES[("pos", size, returns)] = benchmark.stats.stats.mean


@pytest.mark.parametrize("returns", _RETURNS)
@pytest.mark.parametrize("size", (3, 7, 9))
def test_negative_containment(benchmark, xmark_summary, size, returns):
    patterns = _cell(xmark_summary, size, returns)

    def run():
        results = []
        for i, p in enumerate(patterns):
            q = patterns[(i + 1) % len(patterns)]
            results.append(is_contained(p, q, xmark_summary, use_strong_edges=False))
        return results

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    # mostly-negative workload (tiny same-label patterns can legitimately
    # contain one another, so this is a soft expectation, not an invariant)
    assert len(outcomes) == _PER_CELL
    _TIMES[("neg", size, returns)] = benchmark.stats.stats.mean


@pytest.mark.parametrize("size", (11, 13))
def test_largest_size_tails(benchmark, xmark_summary, size):
    """The n = 11/13 endpoints of the paper's curve, measured on reduced
    batches (canonical models at these sizes reach tens of thousands of
    trees in pure Python; the growth trend is what matters)."""
    patterns = _cell(xmark_summary, size, 1)[1:3]

    def run():
        return [is_contained(p, p.copy(), xmark_summary, use_strong_edges=False) for p in patterns]

    assert all(benchmark.pedantic(run, rounds=1, iterations=1))


def test_negative_faster_than_positive(benchmark, xmark_summary):
    """The §4.6 asymmetry, measured head-to-head on the same patterns."""
    import time

    patterns = _cell(xmark_summary, 9, 2)

    def measure():
        t0 = time.perf_counter()
        for p in patterns:
            is_contained(p, p.copy(), xmark_summary, use_strong_edges=False)
        positive = time.perf_counter() - t0
        t0 = time.perf_counter()
        for i, p in enumerate(patterns):
            is_contained(p, patterns[(i + 1) % len(patterns)], xmark_summary, use_strong_edges=False)
        negative = time.perf_counter() - t0
        return positive, negative

    positive, negative = benchmark.pedantic(measure, rounds=3, iterations=1)
    print(f"\n[Figure 4.14 bottom] positive={positive*1e3:.1f}ms "
          f"negative={negative*1e3:.1f}ms (n=9, r=2, {_PER_CELL} patterns)")
    assert negative < positive * 1.5  # negatives never dominate
