"""E7 — the §2.1 storage-model comparison: the same query under different
physical layouts, comparing plan shapes and execution times.

The motivating claims:

* a custom materialized view answers the query with a single scan
  (QEP₃ on book-author-title);
* the unfragmented/content store answers content recomposition with one
  structural join (QEP₉), versus a join cascade on the path-partitioned
  store (QEP₈);
* all layouts return the same answer — only the catalog changes.
"""

import pytest

from repro.algebra import Project, Scan, StructuralJoin, plan_shape
from repro.engine import Store, execute
from repro.storage import (
    Catalog,
    build_content_store,
    build_path_partitioned_store,
    build_tag_partitioned_store,
    materialize_view,
)
from repro.summary import build_enhanced_summary


def scan(name, columns, alias):
    renames = {c: f"{alias}.{c}" for c in columns}
    return Project(Scan(name, columns), columns, renames=renames)


@pytest.fixture(scope="module")
def summary(xmark_doc):
    return build_enhanced_summary(xmark_doc)


def blob_setup(xmark_doc):
    store, catalog = Store(), Catalog()
    build_tag_partitioned_store(xmark_doc, store, catalog)
    build_content_store(xmark_doc, store, catalog, ["listitem"])
    plan = StructuralJoin(
        scan("tag_item", ["ID"], "i"),
        scan("listitemContent", ["ID", "content"], "li"),
        "i.ID",
        "li.ID",
        axis="descendant",
    )
    return plan, store


def fragmented_setup(xmark_doc, summary):
    store, catalog = Store(), Catalog()
    build_path_partitioned_store(xmark_doc, store, catalog, summary)
    li_paths = [
        node
        for node in summary.nodes()
        if node.label == "listitem" and "item" in node.path_labels()
    ]
    item_paths = [node for node in summary.nodes() if node.label == "item"]
    plans = []
    for item_path in item_paths:
        for li_path in li_paths:
            if not item_path.is_ancestor_of(li_path):
                continue
            plans.append(
                StructuralJoin(
                    scan(f"path_{item_path.number}", ["ID"], "i"),
                    scan(f"path_{li_path.number}", ["ID"], "li"),
                    "i.ID",
                    "li.ID",
                    axis="descendant",
                )
            )
    from repro.algebra import Union

    return Union(*plans), store


def view_setup(xmark_doc):
    store, catalog = Store(), Catalog()
    entry = materialize_view(
        "item_listitems",
        "//item[id:s]{//listitem[id:s, cont]}",
        xmark_doc,
        store,
        catalog,
    )
    return Scan(entry.relation, ["e1.ID", "e2.ID", "e2.C"]), store


def test_qep9_blob(benchmark, xmark_doc):
    plan, store = blob_setup(xmark_doc)
    out = benchmark(lambda: list(execute(plan, store.context(), store.scan_orders())))
    assert out


def test_qep8_fragmented(benchmark, xmark_doc, summary):
    plan, store = fragmented_setup(xmark_doc, summary)
    out = benchmark(lambda: list(execute(plan, store.context(), store.scan_orders())))
    assert out


def test_qep3_materialized_view(benchmark, xmark_doc):
    plan, store = view_setup(xmark_doc)
    out = benchmark(lambda: list(execute(plan, store.context(), store.scan_orders())))
    assert out


def test_plan_shapes_and_agreement(benchmark, xmark_doc, summary):
    def assemble():
        blob_plan, blob_store = blob_setup(xmark_doc)
        frag_plan, frag_store = fragmented_setup(xmark_doc, summary)
        view_plan, view_store = view_setup(xmark_doc)
        return (
            plan_shape(blob_plan),
            plan_shape(frag_plan),
            plan_shape(view_plan),
            len(list(execute(blob_plan, blob_store.context(), blob_store.scan_orders()))),
            len(list(execute(frag_plan, frag_store.context(), frag_store.scan_orders()))),
        )

    blob, frag, view, blob_rows, frag_rows = benchmark.pedantic(
        assemble, rounds=1, iterations=1
    )
    print("\n[§2.1 QEP shapes] joins per layout:")
    print(f"  materialized view (QEP3): {view['joins']} joins, {view['scans']} scan(s)")
    print(f"  blob/content     (QEP9): {blob['joins']} join(s)")
    print(f"  path-partitioned (QEP8): {frag['joins']} joins")
    assert view["joins"] == 0 and view["scans"] == 1
    assert blob["joins"] < frag["joins"]
    assert blob_rows == frag_rows  # same (item, listitem) pairs
