"""E6 — §5.6: experimental evaluation of XAM rewriting.

Our source text for the thesis truncates inside Chapter 5, so this
experiment is **reconstructed** from the §5.1–5.3 setup (flagged in
DESIGN.md/EXPERIMENTS.md): we measure rewriting time and the number of
rewritings found for representative query patterns as the view catalog
grows.  Expected shapes:

* rewriting time grows with the number of catalog views (more candidates
  to generate and validate);
* larger catalogs expose *more* rewritings, never fewer;
* queries with no usable views are rejected quickly.
"""

import pytest

from repro.core import parse_pattern, rewrite_pattern
from repro.engine import Store
from repro.storage import Catalog, materialize_view

#: progressively richer view catalogs over the XMark vocabulary
VIEW_POOL = [
    ("v_items", "//item[id:s]"),
    ("v_names", "//name[id:s, val]"),
    ("v_item_names", "//item[id:s]{/o:name[id:s, val]}"),
    ("v_listitems", "//listitem[id:s, cont]"),
    ("v_item_lis", "//item[id:s]{//no:listitem[id:s, cont]}"),
    ("v_keywords", "//keyword[id:s, val]"),
    ("v_people", "//person[id:s]"),
    ("v_emails", "//person[id:s]{/o:emailaddress[id:s, val]}"),
    ("v_auctions", "//open_auction[id:s]"),
    ("v_initial", "//initial[id:s, val]"),
    ("v_descr", "//description[id:s, cont]"),
    ("v_quantity", "//quantity[id:s, val]"),
]

QUERIES = {
    "item-name": "//item[id:s]{/name[val]}",
    "person-email": "//person[id:s]{/emailaddress[val]}",
    "li-keyword": "//listitem[id:s]{//keyword[val]}",
    "auction-initial": "//open_auction[id:s]{/initial[val]}",
}

_FOUND: dict[tuple, int] = {}


def make_catalog(xmark_doc, count):
    store, catalog = Store(), Catalog()
    for name, text in VIEW_POOL[:count]:
        materialize_view(name, text, xmark_doc, store, catalog)
    return store, catalog


@pytest.mark.parametrize("view_count", (2, 4, 8, 12))
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_rewriting_scaling(benchmark, xmark_doc, xmark_summary, query_name, view_count):
    _store, catalog = make_catalog(xmark_doc, view_count)
    query = parse_pattern(QUERIES[query_name])

    rewritings = benchmark(lambda: rewrite_pattern(query, catalog, xmark_summary))
    _FOUND[(query_name, view_count)] = len(rewritings)


def test_monotone_rewriting_counts(benchmark, xmark_doc, xmark_summary):
    def assemble():
        counts = {}
        for query_name, text in QUERIES.items():
            query = parse_pattern(text)
            row = []
            for view_count in (2, 4, 8, 12):
                _store, catalog = make_catalog(xmark_doc, view_count)
                row.append(len(rewrite_pattern(query, catalog, xmark_summary)))
            counts[query_name] = row
        return counts

    counts = benchmark.pedantic(assemble, rounds=1, iterations=1)
    print("\n[§5.6] rewritings found vs catalog size (2/4/8/12 views)")
    for query_name, row in counts.items():
        print(f"  {query_name:15s} {row}")
        # more views never lose rewritings
        assert all(row[i] <= row[i + 1] for i in range(len(row) - 1))
    # with the full pool every query has at least one rewriting
    assert all(row[-1] >= 1 for row in counts.values())


def test_unanswerable_query_fails_fast(benchmark, xmark_doc, xmark_summary):
    _store, catalog = make_catalog(xmark_doc, 12)
    query = parse_pattern("//category[id:s]{/name[val]}")  # no category views

    rewritings = benchmark(lambda: rewrite_pattern(query, catalog, xmark_summary))
    assert rewritings == []
