"""Plan-cache amortization on repeated XMark queries (ISSUE 2 tentpole).

The cold path re-runs parse → translate → extract → rewriting search →
rank → assemble on every call; the warm path reuses the cached prepared
plan and only re-executes.  The acceptance criterion is a ≥3× speedup for
a repeated XMark query served from the cache; in practice the rewrite
search dominates and the observed ratio is far higher.
"""

import time

import pytest

from repro import Database, QueryService
from repro.workloads import generate_xmark

REPEATED_QUERY = "for $p in //people/person return $p/name/text()"


@pytest.fixture(scope="module")
def xmark_db():
    db = Database()
    db.add_document(generate_xmark(scale=1, seed=0))
    db.add_view("v_person", "//people/person[id:s]{/name[id:s, val]}")
    db.add_view("v_item", "//regions//item[id:s]{/name[id:s, val]}")
    return db


def test_cache_hit_speedup_at_least_3x(xmark_db):
    """Total wall time of N repeated queries: cold (fresh prepare each
    time) vs warm (plan-cache hits after the first)."""
    rounds = 15

    started = time.perf_counter()
    for _ in range(rounds):
        xmark_db.query(REPEATED_QUERY)
    cold = time.perf_counter() - started

    with QueryService(xmark_db, max_workers=1) as service:
        reference = service.query(REPEATED_QUERY)  # prime the cache
        started = time.perf_counter()
        for _ in range(rounds):
            result = service.query(REPEATED_QUERY)
        warm = time.perf_counter() - started
        assert result.values == reference.values
        stats = service.cache_stats()
        assert stats.hits == rounds

    speedup = cold / warm if warm > 0 else float("inf")
    print(
        f"\nplan-cache speedup: cold={cold / rounds * 1000:.2f}ms/q "
        f"warm={warm / rounds * 1000:.2f}ms/q → {speedup:.1f}x"
    )
    assert speedup >= 3.0, f"cache hit must be ≥3× faster, got {speedup:.1f}×"


def test_bench_query_cold(benchmark, xmark_db):
    """Baseline lane: the full uncached pipeline per query."""
    out = benchmark(lambda: xmark_db.query(REPEATED_QUERY))
    assert out.values


def test_bench_query_cached(benchmark, xmark_db):
    """The served lane: plan-cache hit + execution only."""
    with QueryService(xmark_db, max_workers=1) as service:
        service.query(REPEATED_QUERY)  # prime
        out = benchmark(lambda: service.query(REPEATED_QUERY))
        assert out.values


def test_bench_concurrent_mixed_batch(benchmark, xmark_db):
    """Eight workers over a mixed repeated workload, shared plan cache."""
    queries = [
        REPEATED_QUERY,
        "//open_auctions/open_auction/initial/text()",
        "//regions//item/name/text()",
        "//closed_auctions/closed_auction/price/text()",
    ] * 4

    def run_batch():
        with QueryService(xmark_db, cache_capacity=32, max_workers=8) as service:
            return service.run_batch(queries)

    results = benchmark(run_batch)
    assert len(results) == len(queries)
