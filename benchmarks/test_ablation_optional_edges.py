"""E5 — §4.6 ablation: the cost of optional edges.

"We also tested patterns with 50%, and with 0% optional edges, and found
optional edges slow containment by a factor of 2 compared to the
conjunctive case.  The impact is much smaller than the predicted
exponential worst case, demonstrating the algorithm's robustness."
"""

import time

import pytest

from repro.core import is_contained
from repro.workloads import GeneratorConfig, generate_patterns

_PER_CELL = 6
_SIZE = 9


def _config(optional_probability):
    return GeneratorConfig(
        return_labels=("item", "name", "initial"),
        optional_probability=optional_probability,
    )


@pytest.mark.parametrize("optional", (0.0, 0.5))
def test_containment_with_optional_probability(benchmark, xmark_summary, optional):
    patterns = generate_patterns(
        xmark_summary, _SIZE, 2, _PER_CELL, seed=17, config=_config(optional)
    )

    def run():
        return [is_contained(p, p.copy(), xmark_summary, use_strong_edges=False) for p in patterns]

    assert all(benchmark.pedantic(run, rounds=1, iterations=1))


def test_optional_slowdown_is_moderate(benchmark, xmark_summary):
    """The factor should be small (paper: ~2×), nowhere near the 2^|opt|
    worst case."""

    def measure():
        conjunctive = generate_patterns(
            xmark_summary, _SIZE, 2, _PER_CELL, seed=23, config=_config(0.0)
        )
        optional = generate_patterns(
            xmark_summary, _SIZE, 2, _PER_CELL, seed=23, config=_config(0.5)
        )
        t0 = time.perf_counter()
        for p in conjunctive:
            is_contained(p, p.copy(), xmark_summary, use_strong_edges=False)
        base = time.perf_counter() - t0
        t0 = time.perf_counter()
        for p in optional:
            is_contained(p, p.copy(), xmark_summary, use_strong_edges=False)
        with_optional = time.perf_counter() - t0
        return base, with_optional

    base, with_optional = benchmark.pedantic(measure, rounds=3, iterations=1)
    factor = with_optional / base
    print(
        f"\n[ablation §4.6] conjunctive={base*1e3:.1f}ms "
        f"optional(50%)={with_optional*1e3:.1f}ms factor={factor:.2f}x "
        "(paper: ~2x, worst case exponential)"
    )
    # far below the exponential worst case (patterns have up to ~6
    # optional edges → worst case would be ~64×)
    assert factor < 16
