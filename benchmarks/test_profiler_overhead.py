"""Profiler-on benchmark lane (ISSUE 10).

Side-by-side timings of the same instrumented XMark query with attributed
profiling off and on, plus the memory-sampled variant — the committed
baseline gates all three so a profiling-path regression (a hot clock
read, an unbounded tracemalloc window) shows up as a benchmark
regression, not just as a smoke-gate failure.
"""

import pytest

from repro import Database
from repro.engine.metrics import MetricsRegistry
from repro.workloads import generate_xmark

QUERY = "for $p in //people/person return $p/name/text()"


def _database(profile: bool) -> Database:
    db = Database(metrics=MetricsRegistry(), profile=profile)
    db.add_document(generate_xmark(scale=1, seed=0))
    db.add_view("v_person", "//people/person[id:s]{/name[id:s, val]}")
    db.add_view("v_item", "//regions//item[id:s]{/name[id:s, val]}")
    return db


@pytest.fixture(scope="module")
def plain_db():
    return _database(profile=False)


@pytest.fixture(scope="module")
def profiled_db():
    db = _database(profile=True)
    # benchmark the common service configuration: CPU attributed on every
    # query, the tracemalloc window on the sampled stride
    return db


def test_bench_instrumented_unprofiled(benchmark, plain_db):
    """Baseline lane: instrumented (physical+stats) execution with the
    profiler off — what the other two lanes are measured against."""
    prepared = plain_db.prepare(QUERY)
    out = benchmark(
        lambda: plain_db.execute_prepared(prepared, physical=True, stats=True)
    )
    assert out.tuples


def test_bench_profiled_attributed(benchmark, profiled_db):
    """Attributed profiling at the default memory-sampling stride: every
    execution pays the CPU clock reads, every Nth the tracemalloc
    window."""
    prepared = profiled_db.prepare(QUERY)
    out = benchmark(
        lambda: profiled_db.execute_prepared(
            prepared, physical=True, stats=True
        )
    )
    assert sum(metrics.total_cpu_ns() for metrics in out.metrics) > 0


def test_bench_profiled_memory_every_query(benchmark, profiled_db):
    """Worst-case attributed profiling: the tracemalloc window on every
    execution (``repro profile``'s configuration)."""
    prepared = profiled_db.prepare(QUERY)
    stride = profiled_db.profile_memory_stride
    profiled_db.profile_memory_stride = 1
    try:
        out = benchmark(
            lambda: profiled_db.execute_prepared(
                prepared, physical=True, stats=True
            )
        )
    finally:
        profiled_db.profile_memory_stride = stride
    assert any(
        node.peak_mem_bytes > 0
        for metrics in out.metrics
        for node in metrics.walk()
    )
