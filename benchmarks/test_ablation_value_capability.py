"""E10 — ablation (implementation design choice, DESIGN.md): value-capable
placement of decorated nodes.

A value predicate can only hold at paths that can carry a value
(attributes, or elements whose summary path has a ``#text`` child).
Pruning embeddings that put a decorated node on a valueless path shrinks
``mod_S(p)`` for predicate-heavy patterns without changing any answer on
realizable trees.  This bench quantifies the pruning over the XMark-like
summary, where roughly half the element paths carry no text.
"""

import time

import pytest

from repro.core import canonical_model, is_contained
from repro.core import canonical as canonical_mod
from repro.workloads import GeneratorConfig, generate_patterns

_PER_CELL = 8
_SIZE = 7

_CONFIG = GeneratorConfig(
    return_labels=("item", "name", "initial"),
    predicate_probability=0.6,
    value_pool=5,
)


def _patterns(summary):
    return generate_patterns(
        summary, _SIZE, 2, _PER_CELL, seed=31, config=_CONFIG
    )


def _model_sizes(summary, patterns):
    return [
        len(canonical_model(p, summary, use_strong_edges=False))
        for p in patterns
    ]


def test_value_capability_pruning(benchmark, xmark_summary, monkeypatch):
    patterns = _patterns(xmark_summary)

    def measure():
        t0 = time.perf_counter()
        filtered = _model_sizes(xmark_summary, patterns)
        with_filter = time.perf_counter() - t0
        original = canonical_mod._formula_placements_ok
        monkeypatch.setattr(
            canonical_mod, "_formula_placements_ok", lambda *a, **k: True
        )
        try:
            t0 = time.perf_counter()
            unfiltered = _model_sizes(xmark_summary, patterns)
            without_filter = time.perf_counter() - t0
        finally:
            monkeypatch.setattr(
                canonical_mod, "_formula_placements_ok", original
            )
        return filtered, unfiltered, with_filter, without_filter

    filtered, unfiltered, with_f, without_f = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    # the filter is a pure pruning step: disabling it can only add trees
    assert all(f <= u for f, u in zip(filtered, unfiltered))
    assert sum(filtered) < sum(unfiltered), "filter never fired on XMark"
    print(
        f"\n[ablation value-capability] Σ|mod_S(p)| filtered={sum(filtered)} "
        f"unfiltered={sum(unfiltered)} "
        f"({sum(filtered)/max(sum(unfiltered),1):.0%} kept); "
        f"time {with_f*1e3:.1f}ms vs {without_f*1e3:.1f}ms"
    )


def test_containment_answers_stable_for_self_containment(benchmark, xmark_summary):
    """The filter must not break reflexivity on decorated patterns."""
    patterns = _patterns(xmark_summary)

    def run():
        return [
            is_contained(p, p.copy(), xmark_summary, use_strong_edges=False)
            for p in patterns
        ]

    assert all(benchmark.pedantic(run, rounds=1, iterations=1))
