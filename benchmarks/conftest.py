"""Shared benchmark fixtures: corpora, summaries, query patterns.

Everything is session-scoped and deterministic so the printed tables are
reproducible run to run.
"""

import pytest

from repro.summary import build_enhanced_summary
from repro.workloads import (
    generate_bib,
    generate_dblp,
    generate_nasa,
    generate_shakespeare,
    generate_swissprot,
    generate_xmark,
)


@pytest.fixture(scope="session")
def corpora():
    """name → (document, scale label) for the Figure 4.13 table."""
    return {
        "shakespeare": generate_shakespeare(2),
        "nasa": generate_nasa(3),
        "swissprot": generate_swissprot(4),
        "xmark1": generate_xmark(1),
        "xmark5": generate_xmark(5),
        "xmark10": generate_xmark(10),
        "dblp1": generate_dblp(2),
        "dblp4": generate_dblp(8),
        "bib": generate_bib(),
    }


@pytest.fixture(scope="session")
def xmark_doc():
    return generate_xmark(1, seed=0)


@pytest.fixture(scope="session")
def xmark_summary(xmark_doc):
    return build_enhanced_summary(xmark_doc)


@pytest.fixture(scope="session")
def dblp_doc():
    return generate_dblp(1, seed=1)


@pytest.fixture(scope="session")
def dblp_summary(dblp_doc):
    return build_enhanced_summary(dblp_doc)
