"""E9 — §4.5 pattern minimization: S-contraction versus full
summary-driven minimization.

The Figure 4.12 observation: contraction can get stuck at local minima
(t'₁, t'₂) while a label the pattern never mentions yields a smaller
equivalent pattern (t'').
"""

import pytest

from repro.core import (
    is_equivalent,
    minimize_by_contraction,
    minimize_under_summary,
    parse_pattern,
)
from repro.summary import PathSummary


@pytest.fixture(scope="module")
def summary():
    return PathSummary.from_paths(["/r/a/x/f/e", "/r/a/y/f/e", "/r/f/z"])


@pytest.fixture(scope="module")
def pattern():
    return parse_pattern("//a{//x{//f{//e[id:s]}}, //y}")


def test_minimize_by_contraction(benchmark, summary, pattern):
    minima = benchmark(lambda: minimize_by_contraction(pattern, summary))
    assert minima
    for candidate in minima:
        assert is_equivalent(pattern, candidate, summary)


def test_minimize_under_summary(benchmark, summary, pattern):
    minima = benchmark(lambda: minimize_under_summary(pattern, summary))
    assert minima
    for candidate in minima:
        assert is_equivalent(pattern, candidate, summary)


def test_full_minimization_beats_contraction(benchmark, summary):
    """The t'' effect: //a//f//e-style chains shrink below every
    contraction by using the summary's f funnel."""
    target = parse_pattern("//a{//f{//e[id:s]}}")

    def assemble():
        contraction_best = min(
            p.size() for p in minimize_by_contraction(target, summary)
        )
        full_best = min(p.size() for p in minimize_under_summary(target, summary))
        return contraction_best, full_best

    contraction_best, full_best = benchmark.pedantic(assemble, rounds=1, iterations=1)
    print(
        f"\n[§4.5] contraction minimum={contraction_best} nodes, "
        f"full minimization={full_best} nodes"
    )
    assert full_best <= contraction_best


def test_minimization_on_xmark_queries(benchmark, xmark_summary):
    """Query patterns from the XMark workload often carry redundant
    intermediate nodes the summary makes implicit."""
    from repro.workloads import xmark_query_patterns
    from repro.core import is_satisfiable

    patterns = [
        p
        for patterns in xmark_query_patterns().values()
        for p in patterns
        if is_satisfiable(p, xmark_summary) and p.size() <= 4 and p.is_conjunctive
    ][:5]

    def run():
        return [
            min(m.size() for m in minimize_by_contraction(p, xmark_summary))
            for p in patterns
        ]

    sizes = benchmark(run)
    assert all(s >= 1 for s in sizes)
