#!/usr/bin/env python
"""Sharded differential smoke: one workload, N store layouts, zero diffs.

The sharded CI lane runs this script to prove physical data independence
across document partitionings (the scatter-gather coordinator of
``repro.core.coordinator``):

* ``--mode replay`` (default) — record the XMark battery against a
  single-store database, then replay the capture against an
  ``--shards``-way :class:`~repro.core.coordinator.ShardedDatabase` over
  the same corpus.  Any plan-fingerprint or result-checksum diff fails
  the job: a recorded workload must not be able to tell the layouts
  apart.  The lane also asserts the run genuinely scattered
  (``shard.fanout`` > 0) — a coordinator that silently fell back to its
  full store for every pattern would pass the diff check vacuously;

* ``--mode chaos`` — force one shard's access-module breakers open and
  assert the degradation protocol: the coordinator must keep answering
  with the surviving shards' rows, mark the result
  ``QueryResult.degraded``, and log a per-shard degradation event.  The
  scenario is checked for non-vacuity first (same query, no forcing →
  full undegraded rows), and closes by opening *every* shard's breakers
  and demanding the query then fails outright.

Usage::

    PYTHONPATH=src python benchmarks/sharded_replay_smoke.py --shards 4
    PYTHONPATH=src python benchmarks/sharded_replay_smoke.py --shards 4 --mode chaos

Exit code 0 on success, 1 on any failed check.  Standard library only.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import Database, QueryService
from repro.core.coordinator import ShardedDatabase
from repro.core.replay import replay_records
from repro.engine.metrics import MetricsRegistry
from repro.engine.qlog import QueryLog
from repro.errors import AccessModuleUnavailable
from repro.workloads import XMARK_QUERIES, generate_xmark

VIEWS = [
    ("v_person", "//people/person[id:s]{/name[id:s, val]}"),
    ("v_person_twin", "//people/person[id:s]{/name[id:s, val]}"),
    ("v_item", "//regions//item[id:s]{/name[id:s, val]}"),
]

#: view-answered with non-empty output on this corpus — the query the
#: chaos scenario degrades and the replay capture uses to prove genuine
#: view-path scatter
VIEW_QUERY = "for $p in //people/person return <r>{ $p/name/text() }</r>"


def build_corpus() -> list:
    return [
        generate_xmark(scale=1, seed=seed, name=f"xmark{seed}.xml")
        for seed in range(3)
    ]


def build_database(shards: int = 0) -> Database:
    if shards > 1:
        db: Database = ShardedDatabase(shards, metrics=MetricsRegistry())
    else:
        db = Database(metrics=MetricsRegistry())
    db.add_documents(build_corpus())
    for name, pattern in VIEWS:
        db.add_view(name, pattern)
    return db


def check(condition: bool, message: str, failures: list) -> None:
    print(("ok  " if condition else "FAIL") + f"  {message}")
    if not condition:
        failures.append(message)


def counter_total(db: Database, family: str) -> float:
    series = db.metrics.snapshot().get(family, {}).get("series", [])
    return sum(entry.get("value", 0.0) for entry in series)


def run_replay(shards: int, qlog_path: str, failures: list) -> None:
    for stale in (qlog_path, *(f"{qlog_path}.{n}" for n in range(1, 4))):
        if os.path.exists(stale):
            os.remove(stale)
    qlog = QueryLog(qlog_path)
    with QueryService(build_database(), cache_capacity=64, qlog=qlog) as svc:
        for query in (*XMARK_QUERIES.values(), VIEW_QUERY):
            svc.query(query)
    qlog.close()
    records = QueryLog.read_all(qlog_path)
    expected = len(XMARK_QUERIES) + 1
    check(
        len(records) == expected,
        f"capture holds the whole workload ({len(records)}/{expected})",
        failures,
    )

    sharded = build_database(shards)
    report = replay_records(sharded, records)
    print(f"--  {report.render()}")
    check(
        report.replayed == expected and report.skipped == 0,
        "every recorded execution was replayed against the sharded layout",
        failures,
    )
    check(
        report.ok and report.matches == expected,
        f"zero diffs across layouts: single-store capture vs {shards} "
        f"shard(s) ({len(report.diffs)} diff(s))",
        failures,
    )
    fanout = counter_total(sharded, "shard.fanout")
    check(
        fanout > 0,
        f"the replay genuinely scattered (shard.fanout={fanout:g})",
        failures,
    )
    sharded.close()


def run_chaos(shards: int, failures: list) -> None:
    sharded = build_database(shards)
    views = [name for name, _pattern in VIEWS]

    baseline = sharded.query(VIEW_QUERY)
    check(
        not baseline.degraded and len(baseline.xml) > 0,
        f"non-vacuity: undegraded full answer first ({len(baseline.xml)} "
        "row(s))",
        failures,
    )
    check(
        baseline.counters.get("shard.fanout", 0) > 0,
        "non-vacuity: the chaos query takes the scatter path",
        failures,
    )

    # pick a shard that actually holds documents, then open its breakers
    victim = next(
        index
        for index, partition in enumerate(sharded._partitions)
        if partition
    )
    for name in views:
        sharded.shards[victim].breakers.force_open(name)
    degraded = sharded.query(VIEW_QUERY)
    check(degraded.degraded, "result is marked degraded", failures)
    check(
        0 < len(degraded.xml) < len(baseline.xml),
        f"partial results: {len(degraded.xml)} of {len(baseline.xml)} row(s)",
        failures,
    )
    check(
        degraded.counters.get("shard.degraded", 0) >= 1,
        "shard.degraded counter recorded the drop",
        failures,
    )
    check(
        any(f"shard {victim}" in event for event in degraded.degradation_events),
        f"degradation event names shard {victim}",
        failures,
    )

    for shard in sharded.shards:
        for name in views:
            shard.breakers.force_open(name)
    try:
        sharded.query(VIEW_QUERY)
        check(False, "all shards open -> the query must fail", failures)
    except AccessModuleUnavailable as error:
        check(True, f"all shards open -> query fails ({error})", failures)
    sharded.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--shards", type=int, default=4,
        help="shard count for the re-housed layout (default 4)",
    )
    parser.add_argument(
        "--mode", choices=("replay", "chaos"), default="replay",
        help="replay = cross-layout differential; chaos = degraded partials",
    )
    parser.add_argument(
        "--qlog", default="sharded_workload.jsonl",
        help="capture path for replay mode (kept afterwards; CI uploads it)",
    )
    args = parser.parse_args(argv)
    failures: list = []

    if args.mode == "replay":
        run_replay(args.shards, args.qlog, failures)
    else:
        run_chaos(args.shards, failures)

    if failures:
        print(f"\n{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print(f"\nall sharded {args.mode} checks passed ({args.shards} shard(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
