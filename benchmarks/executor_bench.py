#!/usr/bin/env python
"""Side-by-side executor benchmark: iterator engine vs batch closures.

The batch executor's claim is about the *execution layer*: per-tuple
Python generator frames plus two ``perf_counter`` calls per tuple per
operator (the instrumented path every ``stats=True`` query pays) versus
one specialized closure per operator moving whole blocks.  End-to-end
query latency on small documents is dominated by base-store pattern
matching — identical under either engine — so this harness isolates what
the refactor changed: it compiles the scan/join-heavy XMark plan shapes
(the q05/q06/q08/q15/q18/q19 skeletons) over relations extracted from a
generated XMark document and times instrumented plan execution under
both engines on identical inputs.

Every scenario's output is checked tuple-for-tuple equal across engines
before any timing is believed.  The JSON artifact (``--out``) records
per-query wall times, speedups, row counts and the geometric-mean
speedup; ``--min-speedup G`` turns the report into a gate (exit 1 when
the geomean falls below G).

Usage::

    PYTHONPATH=src python benchmarks/executor_bench.py \
        --scale 96 --repeat 5 --out EXEC_BENCH.json --min-speedup 3.0

Standard library only.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

from repro.algebra import (
    Attr,
    BaseTuples,
    Compare,
    Const,
    GroupBy,
    NestedTuple,
    Project,
    Scan,
    Select,
    StructuralJoin,
    Union,
    ValueJoin,
)
from repro.engine.batch import compile_batch
from repro.engine.context import ExecutionContext
from repro.workloads import generate_xmark
from repro.xmldata import id_of


def element_rows(doc, label: str, name: str) -> list[NestedTuple]:
    """``(name.ID,)`` rows of every element with ``label`` — what a
    structural index on that tag would store."""
    return [
        NestedTuple({f"{name}.ID": id_of(node, "s")})
        for node in doc.elements()
        if node.label == label
    ]


def value_rows(doc, label: str, name: str) -> list[NestedTuple]:
    """``(name.ID, name.V)`` rows — tag plus its text value."""
    return [
        NestedTuple({f"{name}.ID": id_of(node, "s"), f"{name}.V": node.value})
        for node in doc.elements()
        if node.label == label
    ]


def reference_rows(doc, label: str, attribute: str, name: str) -> list[NestedTuple]:
    """``(name.ID, name.V)`` rows where the value is the element's
    ``attribute`` — XMark's person references (``person/@id``,
    ``buyer/@person``)."""
    rows = []
    for node in doc.elements():
        if node.label != label:
            continue
        value = next(
            (
                child.value
                for child in node.children
                if child.kind == "attribute" and child.label == attribute
            ),
            None,
        )
        rows.append(
            NestedTuple(
                {f"{name}.ID": id_of(node, "s"), f"{name}.V": value}
            )
        )
    return rows


def build_scenarios(doc):
    """The scan/join-heavy XMark subset, as (query id, logical plan,
    evaluation context) triples.  Each plan is the navigational skeleton
    of the named XMark query over extracted relations."""
    context = {
        "closed_auction": element_rows(doc, "closed_auction", "c"),
        "price": value_rows(doc, "price", "p"),
        "open_auction": element_rows(doc, "open_auction", "o"),
        "reserve": value_rows(doc, "reserve", "r"),
        "regions": element_rows(doc, "regions", "g"),
        "item": element_rows(doc, "item", "i"),
        "name": value_rows(doc, "name", "n"),
        "keyword": element_rows(doc, "keyword", "k"),
        "listitem": element_rows(doc, "listitem", "l"),
        "person": reference_rows(doc, "person", "@id", "pn"),
        "buyer": reference_rows(doc, "buyer", "@person", "b"),
        "seller": reference_rows(doc, "seller", "@person", "b"),
    }
    scenarios = [
        # q05: closed auction prices — path step as child structural
        # join, then projection with a value filter
        (
            "q05_path_join",
            Project(
                Select(
                    StructuralJoin(
                        Scan("closed_auction", ["c.ID"]),
                        Scan("price", ["p.ID", "p.V"]),
                        "c.ID",
                        "p.ID",
                        axis="child",
                        kind="j",
                    ),
                    Compare(Attr("p.V"), "!=", Const("")),
                ),
                ["p.V"],
            ),
        ),
        # q06: items per region — descendant structural join
        (
            "q06_structural_desc",
            StructuralJoin(
                Scan("regions", ["g.ID"]),
                Scan("item", ["i.ID"]),
                "g.ID",
                "i.ID",
                axis="descendant",
                kind="j",
            ),
        ),
        # q08/q09: transaction partners per person — hash join of the
        # person ids against the union of buyer and seller references
        (
            "q08_hash_join",
            ValueJoin(
                Scan("person", ["pn.ID", "pn.V"]),
                Union(
                    Scan("buyer", ["b.ID", "b.V"]),
                    Scan("seller", ["b.ID", "b.V"]),
                ),
                Compare(Attr("pn.V", 0), "=", Attr("b.V", 1)),
                kind="j",
            ),
        ),
        # q15: the long path — a merge chain of structural joins
        (
            "q15_merge_chain",
            StructuralJoin(
                StructuralJoin(
                    Scan("item", ["i.ID"]),
                    Scan("listitem", ["l.ID"]),
                    "i.ID",
                    "l.ID",
                    axis="descendant",
                    kind="j",
                ),
                Scan("keyword", ["k.ID"]),
                "l.ID",
                "k.ID",
                axis="descendant",
                kind="j",
            ),
        ),
        # q18: open auction reserves — path step as child structural
        # join, then dedup projection
        (
            "q18_path_project",
            Project(
                StructuralJoin(
                    Scan("open_auction", ["o.ID"]),
                    Scan("reserve", ["r.ID", "r.V"]),
                    "o.ID",
                    "r.ID",
                    axis="child",
                    kind="j",
                ),
                ["r.V"],
                dedup=True,
            ),
        ),
        # q19: items with their names — nesting structural join + group
        (
            "q19_nest_group",
            GroupBy(
                StructuralJoin(
                    Scan("item", ["i.ID"]),
                    Scan("name", ["n.ID", "n.V"]),
                    "i.ID",
                    "n.ID",
                    axis="descendant",
                    kind="j",
                ),
                ["i.ID"],
                nest_as="names",
            ),
        ),
    ]
    return [(query_id, plan, context) for query_id, plan in scenarios]


def time_iter(physical, context, repeat: int, ctx) -> tuple[float, list]:
    best, rows = math.inf, []
    for _ in range(repeat):
        ctx.instrument(physical)
        started = time.perf_counter()
        rows = list(physical.execute(dict(context)))
        best = min(best, time.perf_counter() - started)
    return best, rows


def time_batch(physical, context, repeat: int, ctx) -> tuple[float, list]:
    # compilation happens once, outside the timed region — in the real
    # flow the closure is cached under the plan fingerprint and reused
    fn = compile_batch(physical)
    best, rows = math.inf, []
    for _ in range(repeat):
        ctx.instrument(physical)
        started = time.perf_counter()
        rows = fn(dict(context)).tuples
        best = min(best, time.perf_counter() - started)
    return best, rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=96, help="XMark scale")
    parser.add_argument(
        "--repeat", type=int, default=5,
        help="timed repetitions per engine (best-of is reported)",
    )
    parser.add_argument(
        "--out", default="executor_bench.json", help="JSON artifact path"
    )
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="fail (exit 1) when the geometric-mean speedup is below this",
    )
    args = parser.parse_args(argv)

    doc = generate_xmark(scale=args.scale, seed=0)
    report: dict = {
        "scale": args.scale,
        "repeat": args.repeat,
        "nodes": doc.count(),
        "queries": {},
    }
    logs = []
    for query_id, plan, context in build_scenarios(doc):
        ctx = ExecutionContext()
        physical = ctx.compile(plan)
        iter_seconds, iter_rows = time_iter(
            physical, context, args.repeat, ctx
        )
        batch_seconds, batch_rows = time_batch(
            physical, context, args.repeat, ctx
        )
        frozen_iter = [t.freeze() for t in iter_rows]
        frozen_batch = [t.freeze() for t in batch_rows]
        if frozen_iter != frozen_batch:
            print(f"FAIL  {query_id}: engines disagree", file=sys.stderr)
            return 1
        speedup = iter_seconds / batch_seconds
        logs.append(math.log(speedup))
        report["queries"][query_id] = {
            "rows": len(iter_rows),
            "iter_ms": round(iter_seconds * 1000, 3),
            "batch_ms": round(batch_seconds * 1000, 3),
            "speedup": round(speedup, 2),
        }
        print(
            f"{query_id:20s} rows={len(iter_rows):6d} "
            f"iter={iter_seconds * 1000:8.2f}ms "
            f"batch={batch_seconds * 1000:8.2f}ms  x{speedup:.2f}"
        )
    geomean = math.exp(sum(logs) / len(logs))
    report["geomean_speedup"] = round(geomean, 2)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"geomean speedup: x{geomean:.2f}  -> {args.out}")
    if args.min_speedup and geomean < args.min_speedup:
        print(
            f"FAIL  geomean x{geomean:.2f} below the x{args.min_speedup} "
            "gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
