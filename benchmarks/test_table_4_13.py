"""E1 — Figure 4.13: sample documents and their summaries.

Paper row format: document, size, N (node count), |S| (summary size),
n_s (n_1) (strong / one-to-one edges).  The paper's observations to
reproduce in *shape*:

* summaries are orders of magnitude smaller than documents;
* strong and one-to-one edges are frequent (many constraints to exploit);
* summaries barely grow as documents grow (XMark 11→233 MB: +10%).

The timed portion is enhanced-summary construction (the preprocessing the
thesis pays once per document).
"""

import pytest

from repro.summary import build_enhanced_summary, summary_statistics

_ROWS: dict[str, dict] = {}


@pytest.mark.parametrize(
    "name",
    ["shakespeare", "nasa", "swissprot", "xmark1", "xmark5", "xmark10", "dblp1", "dblp4"],
)
def test_summary_construction(benchmark, corpora, name):
    doc = corpora[name]

    summary = benchmark(lambda: build_enhanced_summary(doc))
    _ROWS[name] = summary_statistics(summary, doc)


def test_print_table(benchmark, corpora):
    """Assemble and print the reproduced Figure 4.13 table; assert the
    paper's shape claims."""

    def assemble():
        rows = {}
        for name, doc in corpora.items():
            summary = build_enhanced_summary(doc)
            rows[name] = summary_statistics(summary, doc)
        return rows

    rows = benchmark.pedantic(assemble, rounds=1, iterations=1)

    print("\n[Table 4.13] documents and their summaries")
    print(f"{'doc':12s} {'N':>8s} {'|S|':>6s} {'n_s':>6s} {'(n_1)':>6s}")
    for name, stats in rows.items():
        print(
            f"{name:12s} {stats['nodes']:8d} {stats['summary_size']:6d} "
            f"{stats['strong_edges']:6d} ({stats['one_to_one_edges']:d})"
        )

    # shape assertions
    for stats in rows.values():
        assert stats["summary_size"] <= stats["nodes"]
        assert stats["strong_edges"] >= stats["one_to_one_edges"]
    # summaries are much smaller than documents on the data-heavy corpora
    assert rows["xmark10"]["summary_size"] * 10 < rows["xmark10"]["nodes"]
    assert rows["dblp4"]["summary_size"] * 10 < rows["dblp4"]["nodes"]
    # summary growth is marginal while documents grow ~10×
    assert rows["xmark10"]["nodes"] > 5 * rows["xmark1"]["nodes"]
    assert rows["xmark10"]["summary_size"] <= 1.15 * rows["xmark1"]["summary_size"]
    assert rows["dblp4"]["summary_size"] <= 1.3 * rows["dblp1"]["summary_size"]
    # XMark summaries dwarf DBLP's (markup breadth)
    assert rows["xmark1"]["summary_size"] > 4 * rows["dblp1"]["summary_size"]
