#!/usr/bin/env python
"""Gate benchmark regressions against a committed baseline.

CI runs the benchmark suite with ``--benchmark-json=BENCH_<sha>.json`` and
then::

    python benchmarks/compare_baseline.py BENCH_<sha>.json benchmarks/baseline.json

The script compares each benchmark's **median** (less noisy than the mean
under CI-runner jitter) against the baseline and exits non-zero when any
benchmark is slower by more than ``--threshold`` (default 0.30 = 30%).
Benchmarks new in the current run pass with a note; benchmarks that
disappeared are reported as warnings (renames should re-seed).

Re-seed after intentional performance changes::

    python benchmarks/compare_baseline.py --seed BENCH_<sha>.json benchmarks/baseline.json

Add ``--merge`` to keep entries for benchmarks the current run did not
produce (seeding a single lane's new keys without dropping the rest).

Only the per-benchmark medians (plus means, for context) are committed,
not the raw run, so the baseline file stays small and diffs stay
readable.  Stdlib-only on purpose: the gate must not add dependencies.
"""

from __future__ import annotations

import argparse
import json
import sys


def warn(message: str, warnings: list[str] | None = None) -> None:
    """Structural warnings go to stderr (results stay parseable on
    stdout) and are collected so ``--strict`` can fail on them."""
    print(message, file=sys.stderr)
    if warnings is not None:
        warnings.append(message)


def load_medians(
    path: str, warnings: list[str] | None = None
) -> dict[str, dict[str, float]]:
    """fullname → {median, mean} from either a raw pytest-benchmark JSON
    or an already distilled baseline file."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if "benchmarks" in data and isinstance(data["benchmarks"], list):
        return {
            bench["fullname"]: {
                "median": bench["stats"]["median"],
                "mean": bench["stats"]["mean"],
            }
            for bench in data["benchmarks"]
        }
    if "baseline" not in data:
        warn(
            f"WARNING   {path} has no 'baseline' key — treating as empty "
            "(every current benchmark will count as NEW; re-seed to fix)",
            warnings,
        )
        return {}
    return data["baseline"]


def seed(current_path: str, baseline_path: str, merge: bool = False) -> int:
    medians = load_medians(current_path)
    if merge:
        # a lane-local re-seed: keep every key the current run did not
        # produce (other lanes' benchmarks) and only overwrite/add ours —
        # a plain --seed from one lane would silently drop the rest
        try:
            existing = load_medians(baseline_path)
        except FileNotFoundError:
            existing = {}
        merged = dict(existing)
        merged.update(medians)
        medians = merged
    with open(baseline_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "comment": (
                    "Committed perf baseline (seconds, per-benchmark median/"
                    "mean). Re-seed with: python benchmarks/compare_baseline.py "
                    "--seed BENCH_<sha>.json benchmarks/baseline.json"
                ),
                "baseline": medians,
            },
            handle,
            indent=1,
            sort_keys=True,
        )
        handle.write("\n")
    print(f"seeded {baseline_path} with {len(medians)} benchmarks")
    return 0


def compare(
    current_path: str,
    baseline_path: str,
    threshold: float,
    strict: bool = False,
) -> int:
    warnings: list[str] = []
    current = load_medians(current_path, warnings)
    baseline = load_medians(baseline_path, warnings)

    regressions: list[str] = []
    improvements = 0
    for name, stats in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            # new benchmarks (e.g. a fresh lane's keys) are informational:
            # stderr keeps the parseable comparison on stdout, and they are
            # deliberately not collected as warnings, so --strict does not
            # fail a PR for adding coverage — re-seed to start gating them
            print(
                f"NEW       {name} (median {stats['median'] * 1000:.3f}ms; "
                "informational — re-seed the baseline to gate it)",
                file=sys.stderr,
            )
            continue
        if "median" not in base:
            warn(
                f"WARNING   {name}: baseline entry has no 'median' — "
                "skipping (re-seed to fix)",
                warnings,
            )
            continue
        ratio = stats["median"] / base["median"] if base["median"] > 0 else 1.0
        if ratio > 1.0 + threshold:
            regressions.append(
                f"REGRESSED {name}: median {base['median'] * 1000:.3f}ms → "
                f"{stats['median'] * 1000:.3f}ms ({ratio:.2f}x, "
                f"threshold {1.0 + threshold:.2f}x)"
            )
        elif ratio < 1.0 - threshold:
            improvements += 1

    for name in sorted(set(baseline) - set(current)):
        warn(
            f"MISSING   {name} (in baseline, not in this run — re-seed?)",
            warnings,
        )

    shared = len(set(current) & set(baseline))
    print(
        f"compared {shared} benchmarks: {len(regressions)} regressed "
        f">{threshold:.0%}, {improvements} improved >{threshold:.0%}"
    )
    if regressions:
        print()
        for line in regressions:
            print(line)
        return 1
    if strict and warnings:
        print(
            f"--strict: {len(warnings)} structural warning(s) treated as "
            "failure",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="pytest-benchmark JSON of this run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed slowdown fraction before failing (default 0.30)",
    )
    parser.add_argument(
        "--seed",
        action="store_true",
        help="write the baseline from the current run instead of comparing",
    )
    parser.add_argument(
        "--merge",
        action="store_true",
        help="with --seed: update/add this run's keys but keep baseline "
        "entries for benchmarks the run did not produce (use when "
        "seeding one lane's keys without dropping the others)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on structural warnings (missing benchmarks, malformed "
        "entries), not just regressions",
    )
    args = parser.parse_args(argv)
    if args.seed:
        return seed(args.current, args.baseline, merge=args.merge)
    if args.merge:
        parser.error("--merge only makes sense together with --seed")
    return compare(args.current, args.baseline, args.threshold, args.strict)


if __name__ == "__main__":
    sys.exit(main())
