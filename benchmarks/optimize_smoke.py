#!/usr/bin/env python
"""Optimize-lane smoke: record a workload, run the plan tournament, pin.

The CI optimize lane runs this script on every push to prove the
``repro optimize`` loop — enumerate → validate → benchmark → promote —
works end to end and never trades correctness for speed:

1. **record** — an XMark workload (the person query plus an unrelated
   item query) runs through a :class:`~repro.core.service.QueryService`
   against *honest* statistics; the capture's checksums and plan
   fingerprints are the tournament's ground truth;
2. **misrank** — a fresh, identical database gets one poisoned
   statistics entry (``v_person`` → 1e9) so the cost model's default
   pick for the person pattern flips to the genuinely slower
   ``v_person_ids`` ⨝ ``v_person_names`` join.  This makes the lane
   non-vacuous: there is a real misranking for the tournament to find;
3. **tournament** — every candidate of every query must reproduce the
   recorded checksum under the recorded flags *and* under both
   executors (zero divergences), and the tournament must promote at
   least one pinned plan with a measured margin — the single-view
   person plan rediscovered despite the poisoned ranking;
4. **pinned replay** — with the promoted pins installed, replaying the
   capture against the poisoned database is diff-free (the pin restores
   the recorded plan), while a pin-less poisoned replay shows the
   fingerprint drift the pin repairs.  Stale-pin safety rides along: a
   catalog mutation drops the pin and the answer stays correct.

The audit trail is left at ``--audit-dir`` (default ``optimize_audit``)
and the capture at ``--qlog`` for CI to upload as debuggable artifacts.

Usage::

    PYTHONPATH=src python benchmarks/optimize_smoke.py --qlog w.jsonl

Exit code 0 on success, 1 on any failed check.  Standard library only.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys

from repro import Database, QueryService
from repro.core.replay import replay_records
from repro.core.tournament import run_tournament
from repro.engine.metrics import MetricsRegistry
from repro.engine.qlog import QueryLog

PERSON_QUERY = "for $p in //people/person return $p/name/text()"
ITEM_QUERY = "for $i in //regions//item return $i/name/text()"


def build_database(poisoned: bool = False) -> Database:
    """XMark database whose catalog supports both a single-view and a
    join access path for the person pattern.  ``poisoned=True`` plants
    the misranking the tournament exists to catch: with ``v_person``
    priced at a billion tuples the default pick becomes the two-view
    join, which is S-equivalent but measurably slower."""
    from repro.workloads import generate_xmark

    db = Database(metrics=MetricsRegistry(), executor="batch")
    db.add_document(generate_xmark(scale=2, seed=0))
    db.add_view("v_person", "//people/person[id:s]{/name[id:s, val]}")
    db.add_view("v_person_ids", "//people/person[id:s]")
    db.add_view("v_person_names", "//people/person/name[id:s, val]")
    if poisoned:
        db.override_statistic("v_person", 1e9)
    return db


def check(condition: bool, message: str, failures: list) -> None:
    print(("ok  " if condition else "FAIL") + f"  {message}")
    if not condition:
        failures.append(message)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--qlog", default="optimize_workload.jsonl",
        help="capture path (kept afterwards; CI uploads it)",
    )
    parser.add_argument(
        "--audit-dir", default="optimize_audit",
        help="tournament audit directory (kept afterwards; CI uploads it)",
    )
    parser.add_argument(
        "--runs", type=int, default=5,
        help="benchmark laps per candidate (trimmed-mean scored)",
    )
    args = parser.parse_args(argv)
    failures: list = []

    # -- record against honest statistics ----------------------------------
    if os.path.exists(args.qlog):
        os.remove(args.qlog)
    if os.path.isdir(args.audit_dir):
        shutil.rmtree(args.audit_dir)
    qlog = QueryLog(args.qlog)
    with QueryService(build_database(), qlog=qlog) as service:
        for query in (PERSON_QUERY, ITEM_QUERY):
            service.query(query)
    qlog.close()
    records = QueryLog.read_all(args.qlog)
    check(
        len(records) == 2 and all(r.get("outcome") == "ok" for r in records),
        f"capture holds the whole workload ({len(records)}/2 ok)",
        failures,
    )

    # -- the misranking must be real before the tournament runs ------------
    recorded = {r["query"]: r["fingerprint"] for r in records}
    tournament_db = build_database(poisoned=True)
    misranked = tournament_db.prepare(PERSON_QUERY, consult_pins=False)
    check(
        misranked.fingerprint != recorded[PERSON_QUERY],
        "poisoned statistics flip the default person plan "
        "(non-vacuity: there is a misranking to find)",
        failures,
    )

    # -- tournament: validate everything, promote the repair ---------------
    report = run_tournament(
        tournament_db,
        records,
        runs=args.runs,
        min_margin=0.02,
        audit_dir=args.audit_dir,
    )
    print(f"--  {report.render()}")
    candidates = sum(len(q.candidates) for q in report.queries)
    check(
        report.ok,
        "zero validation failures: every candidate reproduced the "
        f"recorded checksum under both executors "
        f"({len(report.divergences)} divergence(s))",
        failures,
    )
    check(
        len(report.queries) == 2 and candidates >= 5,
        f"tournament covered the distinct workload "
        f"({len(report.queries)} queries, {candidates} candidates)",
        failures,
    )
    promotions = report.promotions
    check(
        len(promotions) >= 1,
        f"at least one pinned plan promoted ({len(promotions)})",
        failures,
    )
    person = next(
        (q for q in report.queries if q.query == PERSON_QUERY), None
    )
    check(
        person is not None and person.promoted and person.margin > 0.0,
        "the person query's misranked default lost to the recorded plan "
        + (f"({person.margin:.1%} margin)" if person else "(missing)"),
        failures,
    )
    for name in ("summary.json", "pins.json"):
        check(
            os.path.exists(os.path.join(args.audit_dir, name)),
            f"audit artifact {name} written",
            failures,
        )
    if person is not None:
        check(
            os.path.exists(
                os.path.join(args.audit_dir, person.slug, "winner.json")
            ),
            "promoted query's winner.json names the evidence",
            failures,
        )

    # -- pinned replay: the promotion repairs the poisoned plans -----------
    bare = replay_records(build_database(poisoned=True), records)
    check(
        not bare.ok and {d.kind for d in bare.diffs} == {"fingerprint"},
        "pin-less poisoned replay drifts on fingerprints only "
        f"({sorted({d.kind for d in bare.diffs})})",
        failures,
    )
    pinned = replay_records(tournament_db, records)
    print(f"--  pinned replay: {pinned.render()}")
    check(
        pinned.ok and pinned.matches == len(records),
        "replay with promoted pins installed is diff-free "
        f"({len(pinned.diffs)} diff(s))",
        failures,
    )

    # -- stale-pin safety: mutations drop the pin, answers stay right ------
    expected = next(r for r in records if r["query"] == PERSON_QUERY)
    tournament_db.add_view("v_late", "//closed_auction[id:s]")
    after = tournament_db.query(PERSON_QUERY)
    from repro.engine.qlog import result_checksum

    check(
        len(tournament_db.plan_pins) == 0,
        "catalog mutation invalidates every promoted pin",
        failures,
    )
    check(
        not after.pinned
        and result_checksum(after) == expected["checksum"],
        "post-mutation answer is unpinned yet checksum-identical",
        failures,
    )

    if failures:
        print(f"\n{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("\nall optimize checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
