"""E8 — ablation of the §5.2 rewriting enablers.

The thesis argues three features enlarge the rewriting space: structural
identifiers (structural joins between views with no common node),
navigational identifiers (parent derivation), and summary constraints.
This experiment toggles each and counts the rewritings found — the
enabler's absence must strictly shrink the space.
"""

import pytest

from repro.core import parse_pattern, rewrite_pattern
from repro.engine import Store
from repro.storage import Catalog, materialize_view
from repro.summary import PathSummary


def catalog_with(xmark_doc, views):
    store, catalog = Store(), Catalog()
    for name, text in views.items():
        materialize_view(name, text, xmark_doc, store, catalog)
    return store, catalog


QUERY = "//item[id:s]{/name[val]}"


def test_structural_ids_enable_joins(benchmark, xmark_doc, xmark_summary):
    _s, structural = catalog_with(
        xmark_doc, {"items": "//item[id:s]", "names": "//name[id:s, val]"}
    )

    rewritings = benchmark(
        lambda: rewrite_pattern(parse_pattern(QUERY), structural, xmark_summary)
    )
    assert rewritings  # structural join on the two views


def test_order_ids_disable_joins(benchmark, xmark_doc, xmark_summary):
    _s, ordered = catalog_with(
        xmark_doc, {"items": "//item[id:o]", "names": "//name[id:o, val]"}
    )
    query = parse_pattern("//item[id:o]{/name[val]}")

    rewritings = benchmark(lambda: rewrite_pattern(query, ordered, xmark_summary))
    assert rewritings == []  # no structural capability, no glue


def test_navigational_ids_enable_parent_derivation(benchmark, xmark_doc, xmark_summary):
    _s, catalog = catalog_with(xmark_doc, {"lis": "//listitem[id:p]"})
    query = parse_pattern("//parlist[id:p]")

    rewritings = benchmark(lambda: rewrite_pattern(query, catalog, xmark_summary))
    assert rewritings and "derive" in rewritings[0].plan.pretty()


def test_structural_ids_cannot_derive_parents(benchmark, xmark_doc, xmark_summary):
    _s, catalog = catalog_with(xmark_doc, {"lis": "//listitem[id:s]"})
    query = parse_pattern("//parlist[id:s]")

    rewritings = benchmark(lambda: rewrite_pattern(query, catalog, xmark_summary))
    assert rewritings == []


def test_summary_constraints_enable_path_generalization(benchmark, xmark_doc, xmark_summary):
    _s, catalog = catalog_with(
        xmark_doc, {"v": "//description/parlist/listitem[id:s]"}
    )
    query = parse_pattern("//item//listitem[id:s]")

    rewritings = benchmark(lambda: rewrite_pattern(query, catalog, xmark_summary))
    # under the real XMark summary listitems also occur under nested
    # parlists, so the single-path view covers the query only if the
    # summary proves it; either outcome must match the summary's truth
    from repro.core import is_equivalent

    view = catalog["v"].pattern
    expected = is_equivalent(
        parse_pattern("//item//listitem[id:s]"),
        parse_pattern("//description/parlist/listitem[id:s]"),
        xmark_summary,
    )
    assert bool(rewritings) == expected


def test_loose_summary_blocks_generalization(benchmark, xmark_doc):
    loose = PathSummary.from_paths(
        [
            "/site/regions/item/description/parlist/listitem",
            "/site/regions/item/listitem",
        ]
    )
    _s, catalog = catalog_with(
        xmark_doc, {"v": "//description/parlist/listitem[id:s]"}
    )
    query = parse_pattern("//item//listitem[id:s]")

    rewritings = benchmark(lambda: rewrite_pattern(query, catalog, loose))
    assert rewritings == []


def test_summary_report(benchmark, xmark_doc, xmark_summary):
    def assemble():
        rows = {}
        _s, structural = catalog_with(
            xmark_doc, {"items": "//item[id:s]", "names": "//name[id:s, val]"}
        )
        rows["structural IDs"] = len(
            rewrite_pattern(parse_pattern(QUERY), structural, xmark_summary)
        )
        _s, ordered = catalog_with(
            xmark_doc, {"items": "//item[id:o]", "names": "//name[id:o, val]"}
        )
        rows["order IDs"] = len(
            rewrite_pattern(parse_pattern("//item[id:o]{/name[val]}"), ordered, xmark_summary)
        )
        return rows

    rows = benchmark.pedantic(assemble, rounds=1, iterations=1)
    print("\n[§5.2 ablation] rewritings for item+name query:")
    for label, count in rows.items():
        print(f"  {label:15s} {count}")
    assert rows["structural IDs"] > rows["order IDs"]
