"""Tests for predicates over nested tuples."""

import pytest

from repro.algebra import (
    ANCESTOR,
    PARENT,
    And,
    Attr,
    Compare,
    Const,
    IsNull,
    NestedTuple,
    Not,
    NotNull,
    Or,
)
from repro.xmldata import id_of, load


@pytest.fixture()
def doc():
    return load("<a><b><c/></b></a>")


def sid(doc, label):
    node = next(n for n in doc.elements() if n.label == label)
    return id_of(node, "s")


def test_compare_constant():
    t = NestedTuple({"x": 5})
    assert Compare(Attr("x"), "=", Const(5)).holds(t)
    assert Compare(Attr("x"), ">", Const(3)).holds(t)
    assert not Compare(Attr("x"), "<", Const(3)).holds(t)
    assert Compare(Attr("x"), "!=", Const(4)).holds(t)
    assert Compare(Attr("x"), "<=", Const(5)).holds(t)
    assert Compare(Attr("x"), ">=", Const(5)).holds(t)


def test_compare_two_attributes():
    t = NestedTuple({"x": 5, "y": 5})
    assert Compare(Attr("x"), "=", Attr("y")).holds(t)


def test_compare_across_join_sides():
    pred = Compare(Attr("x", 0), "=", Attr("y", 1))
    assert pred.holds(NestedTuple({"x": 1}), NestedTuple({"y": 1}))
    assert not pred.holds(NestedTuple({"x": 1}), NestedTuple({"y": 2}))


def test_right_side_without_right_tuple_raises():
    pred = Compare(Attr("x", 0), "=", Attr("y", 1))
    with pytest.raises(ValueError):
        pred.holds(NestedTuple({"x": 1}))


def test_nested_existential_semantics():
    t = NestedTuple(
        {"c": [NestedTuple({"v": 1}), NestedTuple({"v": 5})]}
    )
    assert Compare(Attr("c/v"), "=", Const(5)).holds(t)
    assert not Compare(Attr("c/v"), "=", Const(9)).holds(t)


def test_null_never_compares():
    t = NestedTuple({"x": None})
    assert not Compare(Attr("x"), "=", Const(None)).holds(t)
    assert not Compare(Attr("x"), "<", Const(5)).holds(t)


def test_numeric_string_coercion():
    t = NestedTuple({"x": "1999"})
    assert Compare(Attr("x"), "=", Const(1999)).holds(t)
    assert Compare(Attr("x"), ">", Const(1000)).holds(t)
    assert not Compare(Attr("x"), ">", Const(2000)).holds(t)


def test_incomparable_types_are_false_not_error():
    t = NestedTuple({"x": "abc"})
    assert not Compare(Attr("x"), "<", Const(5)).holds(t)


def test_unknown_operator_rejected():
    with pytest.raises(ValueError):
        Compare(Attr("x"), "~~", Const(1))


def test_structural_parent_and_ancestor(doc):
    t = NestedTuple({"a": sid(doc, "a"), "b": sid(doc, "b"), "c": sid(doc, "c")})
    assert Compare(Attr("a"), PARENT, Attr("b")).holds(t)
    assert not Compare(Attr("a"), PARENT, Attr("c")).holds(t)
    assert Compare(Attr("a"), ANCESTOR, Attr("c")).holds(t)
    assert not Compare(Attr("c"), ANCESTOR, Attr("a")).holds(t)


def test_boolean_combinators():
    t = NestedTuple({"x": 5, "y": 1})
    gt3 = Compare(Attr("x"), ">", Const(3))
    eq9 = Compare(Attr("y"), "=", Const(9))
    assert And((gt3, Not(eq9))).holds(t)
    assert Or((eq9, gt3)).holds(t)
    assert not And((gt3, eq9)).holds(t)


def test_is_null_and_not_null():
    t = NestedTuple({"x": None, "y": 2, "c": []})
    assert IsNull(Attr("x")).holds(t)
    assert not IsNull(Attr("y")).holds(t)
    assert NotNull(Attr("y")).holds(t)
    assert not NotNull(Attr("x")).holds(t)
    # empty collection: nothing reachable ⇒ null
    assert IsNull(Attr("c/v")).holds(t)
    assert not NotNull(Attr("c/v")).holds(t)


def test_repr_is_informative():
    pred = Compare(Attr("a"), PARENT, Attr("b", 1))
    assert "≺" in repr(pred)
    assert "⊥" in repr(IsNull(Attr("x")))
