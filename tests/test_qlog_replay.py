"""Workload capture, deterministic replay, and the plan-regression
sentinel: plan fingerprints, result checksums, the rotating query log,
the record/replay harness, the /qlog and /regressions routes, and the
tracing/shutdown hardening satellites."""

import json
import signal
import threading
import urllib.error
import urllib.request

import pytest

from repro import Database, QueryService
from repro.cli import EXIT_INTERRUPT, _graceful_signals, main as cli_main
from repro.core.httpapi import start_observability_server
from repro.core.replay import load_records, replay_records
from repro.engine.metrics import MetricsRegistry
from repro.engine.qlog import (
    QueryLog,
    build_record,
    iter_ok_records,
    result_checksum,
)
from repro.engine.sentinel import PlanRegressionSentinel, SentinelConfig
from repro.engine.tracing import Tracer
from repro.workloads import generate_xmark

PERSON_QUERY = "for $p in //people/person return $p/name/text()"
ITEM_QUERY = "//regions//item/name/text()"

SHOP_DOC = (
    "<shop>"
    "<item><name>Fish</name><price>10</price></item>"
    "<item><name>Rock</name><price>5</price></item>"
    "<item><name>Tree</name><price>10</price></item>"
    "</shop>"
)


def make_xmark_db():
    db = Database(metrics=MetricsRegistry())
    db.add_document(generate_xmark(scale=1, seed=0))
    db.add_view("v_person", "//people/person[id:s]{/name[id:s, val]}")
    db.add_view("v_item", "//regions//item[id:s]{/name[id:s, val]}")
    return db


def make_shop_db():
    """Two S-equivalent views over the same pattern: the ranking race the
    statistics-override lever flips."""
    db = Database(metrics=MetricsRegistry())
    db.add_document_xml(SHOP_DOC, "shop.xml")
    db.add_view("names_a", "//item[id:s]{/o:name[id:s, val]}")
    db.add_view("names_b", "//item[id:s]{/o:name[id:s, val]}")
    return db


@pytest.fixture()
def db():
    return make_xmark_db()


@pytest.fixture()
def service(db):
    svc = QueryService(db, cache_capacity=16, max_workers=2)
    yield svc
    svc.shutdown()


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


# ---------------------------------------------------------------------------
# plan fingerprints
# ---------------------------------------------------------------------------


class TestPlanFingerprint:
    def test_preparing_twice_reproduces_the_fingerprint(self, db):
        first = db.prepare(PERSON_QUERY)
        second = db.prepare(PERSON_QUERY)
        assert first.fingerprint and first.fingerprint == second.fingerprint
        assert first.plan_shape == second.plan_shape

    def test_fingerprint_reflects_the_access_path(self, db):
        via_views = db.prepare(PERSON_QUERY, prefer_views=True)
        via_base = db.prepare(PERSON_QUERY, prefer_views=False)
        assert via_views.fingerprint != via_base.fingerprint
        assert "v_person" in via_views.plan_shape
        assert "base" in via_base.plan_shape

    def test_catalog_change_changes_the_fingerprint(self):
        db = make_xmark_db()
        before = db.prepare(PERSON_QUERY).fingerprint
        db.drop_view("v_person")
        after = db.prepare(PERSON_QUERY).fingerprint
        assert before != after

    def test_fingerprint_stable_across_execution_modes(self, db):
        plain = db.query(PERSON_QUERY)
        stats = db.query(PERSON_QUERY, stats=True)
        physical = db.query(PERSON_QUERY, physical=True)
        assert plain.plan_fingerprint == stats.plan_fingerprint
        assert plain.plan_fingerprint == physical.plan_fingerprint

    def test_result_and_explain_expose_the_fingerprint(self, db):
        result = db.query(PERSON_QUERY)
        report = db.explain(PERSON_QUERY)
        assert result.plan_fingerprint == report.plan_fingerprint
        assert f"plan fingerprint: {result.plan_fingerprint}" in report.render()


class TestResultChecksum:
    def test_same_answer_same_checksum(self, db):
        a = db.query(PERSON_QUERY)
        b = db.query(PERSON_QUERY)
        assert result_checksum(a) == result_checksum(b)

    def test_different_answers_differ(self, db):
        a = db.query(PERSON_QUERY)
        b = db.query(ITEM_QUERY)
        assert result_checksum(a) != result_checksum(b)


# ---------------------------------------------------------------------------
# the query log
# ---------------------------------------------------------------------------


class TestQueryLog:
    def test_memory_ring_is_bounded(self):
        log = QueryLog(capacity=3)
        for number in range(5):
            log.record({"query": f"q{number}", "outcome": "ok"})
        assert log.written == 5
        assert [r["query"] for r in log.tail()] == ["q2", "q3", "q4"]
        assert [r["query"] for r in log.tail(2)] == ["q3", "q4"]

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "workload.jsonl")
        with QueryLog(path) as log:
            log.record({"query": "one", "outcome": "ok", "checksum": "aa"})
            log.record({"query": "two", "outcome": "error"})
        records = QueryLog.read(path)
        assert [r["query"] for r in records] == ["one", "two"]
        assert [r["query"] for r in iter_ok_records(records)] == ["one"]

    def test_rotation_keeps_bounded_generations(self, tmp_path):
        path = str(tmp_path / "workload.jsonl")
        log = QueryLog(path, max_bytes=200, max_files=2)
        for number in range(40):
            log.record({"query": f"q{number:03}", "outcome": "ok"})
        log.close()
        assert log.rotations > 0
        files = sorted(p.name for p in tmp_path.iterdir())
        assert "workload.jsonl" in files
        assert len(files) <= 3  # live + at most max_files generations
        merged = QueryLog.read_all(path, max_files=2)
        queries = [r["query"] for r in merged]
        assert queries == sorted(queries)  # oldest-first across rotations
        assert queries[-1] == "q039"

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"query": "ok", "outcome": "ok"}\n{"query": "tor')
        records = QueryLog.read(path)
        assert [r["query"] for r in records] == ["ok"]

    def test_torn_middle_line_raises(self, tmp_path):
        path = str(tmp_path / "corrupt.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('not json\n{"query": "ok", "outcome": "ok"}\n')
        with pytest.raises(json.JSONDecodeError):
            QueryLog.read(path)

    def test_from_env(self, tmp_path):
        path = str(tmp_path / "env.jsonl")
        assert QueryLog.from_env({}) is None
        log = QueryLog.from_env({"REPRO_QLOG": path})
        assert log is not None and log.path == path
        log.close()

    def test_close_is_idempotent(self, tmp_path):
        log = QueryLog(str(tmp_path / "c.jsonl"))
        log.record({"query": "x", "outcome": "ok"})
        log.close()
        log.close()
        assert log.closed
        assert log.tail()  # the ring survives close

    def test_concurrent_writers_lose_nothing(self, tmp_path):
        path = str(tmp_path / "mt.jsonl")
        log = QueryLog(path, capacity=8, max_bytes=500, max_files=2)

        def write(worker):
            for number in range(50):
                log.record(
                    {"query": f"w{worker}-{number}", "outcome": "ok"}
                )

        threads = [
            threading.Thread(target=write, args=(n,)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.close()
        assert log.written == 200
        survived = QueryLog.read_all(path, max_files=2)
        # rotation drops whole old generations, never tears records
        assert all(r["query"].startswith("w") for r in survived)


class TestBuildRecord:
    def test_failed_query_record_has_no_ground_truth(self):
        record = build_record(
            "//x", None, 0.01, "error", error="XQueryParseError"
        )
        assert record["outcome"] == "error"
        assert record["error"] == "XQueryParseError"
        assert "checksum" not in record and "fingerprint" not in record

    def test_ok_record_carries_the_diffable_facts(self, db):
        result = db.query(PERSON_QUERY, stats=True)
        record = build_record(
            PERSON_QUERY, result, 0.02, "ok", flags={"stats": True}
        )
        assert record["fingerprint"] == result.plan_fingerprint
        assert record["checksum"] == result_checksum(result)
        assert record["flags"] == {"stats": True}
        assert record["patterns"][0]["views"] == ["v_person"]
        assert record["patterns"][0]["est"] is not None
        assert record["patterns"][0]["actual"] is not None
        assert record["operators"]  # stats=True -> per-operator rows
        assert record["trace_id"] == result.trace_id


# ---------------------------------------------------------------------------
# the plan-regression sentinel
# ---------------------------------------------------------------------------


class TestSentinel:
    def test_stable_plans_raise_no_findings(self, service):
        for _ in range(5):
            service.query(PERSON_QUERY)
        assert service.sentinel.plan_flips == 0
        assert service.sentinel.findings() == []

    def test_statistics_override_flips_the_plan(self):
        """The ISSUE's acceptance lever: poisoning one statistics entry
        re-ranks the S-equivalent rewritings, and the sentinel surfaces
        the flip as a finding, a counter and a trace event."""
        db = make_shop_db()
        with QueryService(db, max_workers=1) as svc:
            first = svc.query("//item/name/text()")
            assert first.used_views == ["names_a"]
            db.override_statistic("names_a", 1e9)
            second = svc.query("//item/name/text()")
            assert second.used_views == ["names_b"]
            assert first.plan_fingerprint != second.plan_fingerprint
            assert svc.sentinel.plan_flips == 1
            flip = svc.sentinel.findings("plan_flip")[0]
            assert flip.data["from"] == first.plan_fingerprint
            assert flip.data["to"] == second.plan_fingerprint
            assert svc.metrics.counter_value("planner.plan_flip") == 1
            trace = svc.trace(second.trace_id)
            assert trace is not None and trace.find("planner.plan_flip")

    def test_breaker_outage_flips_the_plan(self, db):
        """The other lever the ISSUE names: a XAM taken out by its
        circuit breaker changes the chosen access path."""
        with QueryService(db, max_workers=1) as svc:
            before = svc.query(PERSON_QUERY)
            assert "v_person" in before.used_views
            for _ in range(3):
                db.breakers.record_failure("v_person", "storage fault")
            svc.invalidate()
            after = svc.query(PERSON_QUERY)
            assert "v_person" not in after.used_views
            assert svc.sentinel.plan_flips == 1

    def test_misestimate_streak_triggers_statistics_refresh(self):
        db = make_shop_db()
        config = SentinelConfig(misestimate_factor=10.0, refresh_after=3)
        with QueryService(db, max_workers=1, sentinel_config=config) as svc:
            probe = svc.query("//item/name/text()")
            pattern_text = probe.resolutions[0].pattern.to_text()
            db.override_statistic(pattern_text, 1e6)
            for _ in range(3):
                svc.query("//item/name/text()")
            assert svc.sentinel.misestimates == 3
            assert svc.sentinel.stats_refreshes == 1
            assert svc.metrics.counter_value("planner.stats_refresh") == 1
            # the refresh cleared the poisoned override: estimates recover
            assert db.statistics_overrides == {}
            healthy = svc.query("//item/name/text()")
            assert healthy.resolutions[0].estimated_cardinality < 100

    def test_finding_ring_is_bounded(self):
        sentinel = PlanRegressionSentinel(config=SentinelConfig(capacity=4))

        class FakeResult:
            resolutions = ()
            trace_id = None

            def __init__(self, fingerprint):
                self.plan_fingerprint = fingerprint

        for number in range(10):
            sentinel.observe("q", FakeResult(f"fp{number}"))
        assert sentinel.plan_flips == 9
        assert len(sentinel.findings()) == 4
        assert sentinel.fingerprint_of("q") == "fp9"

    def test_as_dict_snapshot(self, service):
        service.query(PERSON_QUERY)
        snapshot = service.sentinel.as_dict()
        assert snapshot["plan_flips"] == 0
        assert snapshot["tracked_queries"] == 1
        assert snapshot["config"]["refresh_after"] == 3


# ---------------------------------------------------------------------------
# capture through the service + the HTTP routes
# ---------------------------------------------------------------------------


class TestServiceCapture:
    def test_every_outcome_is_logged(self, db):
        with QueryService(db, max_workers=1) as svc:
            svc.query(PERSON_QUERY)
            with pytest.raises(Exception):
                svc.query("for $x in ((( busted")
            records = svc.qlog.tail()
            assert len(records) == 2
            assert records[0]["outcome"] == "ok"
            assert records[0]["fingerprint"]
            assert records[0]["checksum"]
            assert records[1]["outcome"] == "error"
            assert "XQueryParseError" in records[1]["error"]

    def test_query_text_is_normalized_in_the_log(self, db):
        with QueryService(db, max_workers=1) as svc:
            svc.query("//regions//item/name/text()   ")
            assert svc.qlog.tail()[0]["query"] == "//regions//item/name/text()"

    def test_qlog_env_var_enables_file_capture(self, db, tmp_path, monkeypatch):
        path = str(tmp_path / "env-capture.jsonl")
        monkeypatch.setenv("REPRO_QLOG", path)
        with QueryService(db, max_workers=1) as svc:
            svc.query(PERSON_QUERY)
        # shutdown closes the owned log, flushing the tail
        assert [r["outcome"] for r in QueryLog.read(path)] == ["ok"]

    def test_qlog_false_disables_capture(self, db):
        with QueryService(db, max_workers=1, qlog=False) as svc:
            svc.query(PERSON_QUERY)
            assert svc.qlog is None

    def test_qlog_and_regressions_routes(self, db):
        with QueryService(db, max_workers=1) as svc:
            server = start_observability_server(svc, port=0)
            try:
                svc.query(PERSON_QUERY)
                status, _, body = fetch(server.url + "/qlog")
                assert status == 200
                payload = json.loads(body)
                assert payload["written"] == 1
                assert payload["records"][0]["query"] == PERSON_QUERY
                status, _, body = fetch(server.url + "/qlog?count=1")
                assert len(json.loads(body)["records"]) == 1
                _, content_type, text = fetch(server.url + "/qlog?format=text")
                assert content_type.startswith("text/plain")
                assert "plan=" in text
                status, _, body = fetch(server.url + "/regressions")
                payload = json.loads(body)
                assert payload["plan_flips"] == 0
                assert payload["tracked_queries"] == 1
            finally:
                server.stop()

    def test_regressions_route_surfaces_a_flip(self):
        db = make_shop_db()
        with QueryService(db, max_workers=1) as svc:
            server = start_observability_server(svc, port=0)
            try:
                svc.query("//item/name/text()")
                db.override_statistic("names_a", 1e9)
                svc.query("//item/name/text()")
                _, _, body = fetch(server.url + "/regressions")
                payload = json.loads(body)
                assert payload["plan_flips"] == 1
                assert payload["findings"][0]["kind"] == "plan_flip"
                _, _, text = fetch(server.url + "/regressions?format=text")
                assert "plan_flip" in text
            finally:
                server.stop()


class TestHTTPErrorPaths:
    @pytest.fixture()
    def server(self, service):
        server = start_observability_server(service, port=0)
        yield server
        server.stop()

    @pytest.mark.parametrize(
        "route", ["/nothing", "/qlog/extra", "/regressions/x", "/metricsx"]
    )
    def test_unknown_routes_are_404(self, server, route):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(server.url + route)
        assert excinfo.value.code == 404
        assert "error" in json.loads(excinfo.value.read().decode("utf-8"))

    def test_malformed_trace_ids_are_404_not_500(self, server):
        for trace_id in ["%00", "..%2f..", "t" * 500, "%F0%9F%92%A9"]:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url + f"/trace/{trace_id}")
            assert excinfo.value.code == 404

    def test_qlog_bad_count_falls_back_to_all(self, service, server):
        service.query(PERSON_QUERY)
        status, _, body = fetch(server.url + "/qlog?count=banana")
        assert status == 200
        assert len(json.loads(body)["records"]) == 1

    def test_qlog_disabled_is_404(self, db):
        with QueryService(db, max_workers=1, qlog=False) as svc:
            server = start_observability_server(svc, port=0)
            try:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    fetch(server.url + "/qlog")
                assert excinfo.value.code == 404
            finally:
                server.stop()

    def test_empty_registry_exposition(self):
        registry = MetricsRegistry()
        assert registry.render_prometheus().strip() == ""
        assert registry.snapshot() == {}

    def test_concurrent_scrapes_of_every_route(self, service, server):
        routes = ["/metrics", "/qlog", "/regressions", "/traces", "/slow"]
        errors = []

        def scrape(route):
            try:
                for _ in range(5):
                    fetch(server.url + route)
            except Exception as error:  # noqa: BLE001 - collected for assert
                errors.append((route, error))

        scrapers = [
            threading.Thread(target=scrape, args=(route,)) for route in routes
        ]
        for scraper in scrapers:
            scraper.start()
        for _ in range(10):
            service.query(PERSON_QUERY)
        for scraper in scrapers:
            scraper.join()
        assert not errors


# ---------------------------------------------------------------------------
# deterministic replay
# ---------------------------------------------------------------------------


class TestReplay:
    def record_workload(self, tmp_path, queries=None):
        path = str(tmp_path / "capture.jsonl")
        db = make_xmark_db()
        log = QueryLog(path)
        with QueryService(db, max_workers=1, qlog=log) as svc:
            for query in queries or [PERSON_QUERY, ITEM_QUERY, PERSON_QUERY]:
                svc.query(query)
        log.close()
        return path

    def test_replay_on_unchanged_state_reports_zero_diffs(self, tmp_path):
        path = self.record_workload(tmp_path)
        report = replay_records(make_xmark_db(), load_records(path))
        assert report.ok
        assert report.total == 3 and report.replayed == 3
        assert report.matches == 3 and report.skipped == 0
        assert "0 diff" in report.render()

    def test_dropped_view_shows_as_fingerprint_diff(self, tmp_path):
        path = self.record_workload(tmp_path)
        replay_db = make_xmark_db()
        replay_db.drop_view("v_person")
        report = replay_records(replay_db, load_records(path))
        assert not report.ok
        kinds = {diff.kind for diff in report.diffs}
        assert kinds == {"fingerprint"}  # answers still match
        assert report.matches == 1  # the item query is unaffected

    def test_statistics_override_shows_as_replay_diff(self, tmp_path):
        """ISSUE acceptance: the same lever that trips the live sentinel
        must also surface as a non-zero replay diff."""
        path = str(tmp_path / "shop.jsonl")
        db = make_shop_db()
        log = QueryLog(path)
        with QueryService(db, max_workers=1, qlog=log) as svc:
            svc.query("//item/name/text()")
        log.close()
        poisoned = make_shop_db()
        poisoned.override_statistic("names_a", 1e9)
        report = replay_records(poisoned, load_records(path))
        assert [diff.kind for diff in report.diffs] == ["fingerprint"]

    def test_changed_document_shows_as_checksum_diff(self, tmp_path):
        path = str(tmp_path / "shop.jsonl")
        db = make_shop_db()
        log = QueryLog(path)
        with QueryService(db, max_workers=1, qlog=log) as svc:
            svc.query("//item/price/text()")
        log.close()
        changed = Database(metrics=MetricsRegistry())
        changed.add_document_xml(
            SHOP_DOC.replace("<price>10</price>", "<price>99</price>", 1),
            "shop.xml",
        )
        changed.add_view("names_a", "//item[id:s]{/o:name[id:s, val]}")
        changed.add_view("names_b", "//item[id:s]{/o:name[id:s, val]}")
        report = replay_records(changed, load_records(path))
        assert any(diff.kind == "checksum" for diff in report.diffs)

    def test_failed_records_are_skipped_not_replayed(self, tmp_path):
        path = self.record_workload(tmp_path)
        records = load_records(path)
        records.append({"query": "//x", "outcome": "error", "seconds": 0.1})
        report = replay_records(make_xmark_db(), records)
        assert report.skipped == 1 and report.replayed == 3

    def test_replay_error_is_a_diff(self):
        record = {
            "query": "for $x in ((( busted",
            "outcome": "ok",
            "checksum": "deadbeef",
            "seconds": 0.1,
        }
        report = replay_records(make_xmark_db(), [record])
        assert report.diffs[0].kind == "error"
        assert report.diffs[0].replayed == "XQueryParseError"

    def test_report_round_trips_to_json(self, tmp_path):
        path = self.record_workload(tmp_path)
        report = replay_records(make_xmark_db(), load_records(path))
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["matches"] == 3 and payload["diffs"] == []
        assert payload["latency_ratio"] > 0


# ---------------------------------------------------------------------------
# the CLI: record / replay / serve --qlog / graceful signals
# ---------------------------------------------------------------------------


class TestCLI:
    @pytest.fixture()
    def workload(self, tmp_path):
        doc = tmp_path / "shop.xml"
        doc.write_text(SHOP_DOC, encoding="utf-8")
        queries = tmp_path / "queries.txt"
        queries.write_text(
            "# smoke workload\n//item/name/text()\n//item/price/text()\n",
            encoding="utf-8",
        )
        return doc, queries, tmp_path / "capture.jsonl"

    def views(self):
        return [
            "--view", "names_a=//item[id:s]{/o:name[id:s, val]}",
            "--view", "names_b=//item[id:s]{/o:name[id:s, val]}",
        ]

    def test_record_then_replay_round_trip(self, workload, capsys):
        doc, queries, capture = workload
        code = cli_main(
            ["record", str(doc), str(capture), "--queries", str(queries)]
            + self.views()
        )
        assert code == 0
        assert "recorded 2 record(s)" in capsys.readouterr().out
        code = cli_main(["replay", str(doc), str(capture)] + self.views())
        output = capsys.readouterr().out
        assert code == 0
        assert "2 match, 0 diff" in output

    def test_replay_flags_a_drifted_environment(self, workload, capsys):
        doc, queries, capture = workload
        cli_main(
            ["record", str(doc), str(capture), "--queries", str(queries)]
            + self.views()
        )
        capsys.readouterr()
        # replaying without the views is a deliberate environment drift:
        # every fingerprint flips to the base access path
        code = cli_main(["replay", str(doc), str(capture), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert all(d["kind"] == "fingerprint" for d in payload["diffs"])
        assert payload["diffs"]

    def test_serve_writes_the_qlog(self, workload, capsys):
        doc, queries, capture = workload
        code = cli_main(
            [
                "serve", str(doc), "--queries", str(queries),
                "--qlog", str(capture), "--workers", "2",
            ]
            + self.views()
        )
        assert code == 0
        assert "query log" in capsys.readouterr().out
        assert len(QueryLog.read(str(capture))) == 2

    def test_graceful_signals_convert_sigint(self):
        with pytest.raises(KeyboardInterrupt):
            with _graceful_signals():
                signal.raise_signal(signal.SIGINT)

    def test_graceful_signals_convert_sigterm(self):
        with pytest.raises(KeyboardInterrupt):
            with _graceful_signals():
                signal.raise_signal(signal.SIGTERM)

    def test_graceful_signals_restore_previous_handlers(self):
        before_int = signal.getsignal(signal.SIGINT)
        before_term = signal.getsignal(signal.SIGTERM)
        with _graceful_signals():
            assert signal.getsignal(signal.SIGINT) is not before_int
        assert signal.getsignal(signal.SIGINT) is before_int
        assert signal.getsignal(signal.SIGTERM) is before_term

    def test_graceful_signals_noop_off_main_thread(self):
        outcome = {}

        def run():
            try:
                with _graceful_signals():
                    outcome["entered"] = True
            except Exception as error:  # noqa: BLE001 - surfaced below
                outcome["error"] = error

        thread = threading.Thread(target=run)
        thread.start()
        thread.join()
        assert outcome == {"entered": True}

    def test_interrupted_record_flushes_and_exits_130(
        self, workload, capsys, monkeypatch
    ):
        doc, queries, capture = workload
        from repro.core import service as service_module

        original = service_module.QueryService.query
        calls = {"n": 0}

        def interrupting(self, query, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return original(self, query, **kwargs)

        monkeypatch.setattr(service_module.QueryService, "query", interrupting)
        code = cli_main(
            ["record", str(doc), str(capture), "--queries", str(queries)]
            + self.views()
        )
        assert code == EXIT_INTERRUPT
        # the record completed before the interrupt reached disk
        assert len(QueryLog.read(str(capture))) == 1


# ---------------------------------------------------------------------------
# satellite: tracing rings under concurrent writers and readers
# ---------------------------------------------------------------------------


class TestConcurrentTracing:
    def test_tracer_ring_eviction_under_concurrent_writers(self):
        tracer = Tracer(capacity=8)
        errors = []

        def churn(worker):
            try:
                for _ in range(60):
                    trace = tracer.start_trace()
                    span = trace.start_span("work", worker=worker)
                    trace.event("tick")
                    trace.finish_span(span)
                    trace.finish()
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=churn, args=(n,)) for n in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert tracer.started == 360
        assert len(tracer) == 8
        assert tracer.evicted == 360 - 8
        for trace in tracer.traces():
            assert trace.complete()

    def test_open_trace_can_be_read_while_written(self):
        """The /trace/<id> race: an HTTP reader walks the span tree while
        the owning worker is still mutating it."""
        tracer = Tracer(capacity=4)
        trace = tracer.start_trace()
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    trace.render()
                    trace.as_dict()
                    trace.spans()
                    trace.complete()
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for thread in readers:
            thread.start()
        try:
            for _ in range(300):
                span = trace.start_span("step")
                trace.event("mark")
                trace.finish_span(span)
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        trace.finish()
        assert not errors
        assert trace.complete()
        assert len(trace.spans()) == 601  # root + 300 spans + 300 events

    def test_slow_query_log_under_concurrent_writers(self, db):
        from repro.engine.tracing import SlowQueryLog

        log = SlowQueryLog(threshold=0.0, capacity=16)
        errors = []

        def record(worker):
            try:
                for number in range(40):
                    log.consider(f"q{worker}-{number}", 1.0, "ok", None)
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=record, args=(n,)) for n in range(5)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert log.captured == 200
        assert len(log) == 16  # ring stayed bounded under contention
