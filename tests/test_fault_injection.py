"""Chaos regression suite: fault injection, circuit breakers, and
rewriting-based graceful degradation.

The contract under test is the availability corollary of physical data
independence: under any injected storage fault the system either returns
the *same answer* as a fault-free run (possibly degraded, via another
S-equivalent access path) or raises a *typed* :class:`ReproError` — it
never silently returns a wrong answer.

The seeded sweep reads ``REPRO_CHAOS_SEED`` (default 0), which the CI
chaos lane varies across its matrix.
"""

import os
from collections import Counter

import pytest

from repro import Database, QueryService
from repro.core.service import RetryPolicy
from repro.engine.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
)
from repro.engine.faults import (
    FAULT_POINTS,
    FaultInjector,
    FaultSpec,
    parse_fault_specs,
    scope,
)
from repro.engine import faults
from repro.errors import (
    AccessModuleUnavailable,
    ReproError,
    StorageFault,
    TransientStorageFault,
)
from repro.workloads import generate_xmark

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

PERSON_QUERY = "for $p in //people/person return $p/name/text()"
ITEM_QUERY = "//regions//item/name/text()"
QUERIES = [PERSON_QUERY, ITEM_QUERY]


def make_xmark_db() -> Database:
    """A fresh database per test: breakers and injectors are stateful."""
    db = Database()
    db.add_document(generate_xmark(scale=1, seed=0))
    # two S-equivalent modules for person, so degradation has somewhere
    # to re-route; item has a single view (its fallback is the base store)
    db.add_view("v_person", "//people/person[id:s]{/name[id:s, val]}")
    db.add_view("v_person_b", "//people/person[id:s]{/name[id:s, val]}")
    db.add_view("v_item", "//regions//item[id:s]{/name[id:s, val]}")
    return db


def answers(result):
    """Order-insensitive answer multiset (S-equivalent plans may differ
    in production order)."""
    return Counter(result.values)


# ---------------------------------------------------------------------------
# FaultSpec / parsing / injector mechanics
# ---------------------------------------------------------------------------

class TestFaultSpecs:
    def test_parse_round_trip(self):
        text = "relation.scan@v_person:corrupt,*:transient:0.25,btree.lookup:latency:0.05"
        specs = parse_fault_specs(text)
        assert [s.render() for s in specs] == [
            "relation.scan@v_person:corrupt",
            "*:transient:0.25",
            "btree.lookup:latency:0.05",
        ]

    def test_times_budget_parses(self):
        (spec,) = parse_fault_specs("relation.scan:transient:1.0:2")
        assert spec.times == 2 and spec.probability == 1.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(point="relation.scan", kind="meltdown")

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultSpec(point="relation.scam", kind="transient")

    def test_probability_validated(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(point="*", kind="transient", probability=1.5)

    def test_target_narrows(self):
        spec = FaultSpec(point="relation.scan", kind="corrupt", target="v")
        assert spec.matches("relation.scan", "v")
        assert not spec.matches("relation.scan", "w")
        assert not spec.matches("btree.lookup", "v")


class TestFaultInjector:
    def test_deterministic_for_fixed_seed(self):
        def fire_sequence(seed):
            injector = FaultInjector("*:transient:0.5", seed=seed)
            fired = []
            for _ in range(64):
                try:
                    injector.check("relation.scan", "r")
                    fired.append(False)
                except TransientStorageFault:
                    fired.append(True)
            return fired

        assert fire_sequence(7) == fire_sequence(7)
        assert fire_sequence(7) != fire_sequence(8)

    def test_times_budget_exhausts(self):
        injector = FaultInjector("relation.scan:transient:1.0:2", seed=0)
        for _ in range(2):
            with pytest.raises(TransientStorageFault):
                injector.check("relation.scan")
        injector.check("relation.scan")  # budget spent: no fault
        assert injector.injected == {"relation.scan:transient": 2}

    def test_reset_rewinds_budgets(self):
        injector = FaultInjector("relation.scan:corrupt:1.0:1", seed=0)
        with pytest.raises(AccessModuleUnavailable):
            injector.check("relation.scan")
        injector.check("relation.scan")
        injector.reset()
        with pytest.raises(AccessModuleUnavailable):
            injector.check("relation.scan")

    def test_latency_sleeps_instead_of_raising(self):
        slept = []
        injector = FaultInjector(
            "relation.scan:latency:0.25", seed=0, sleep=slept.append
        )
        injector.check("relation.scan")
        assert slept == [0.25]

    def test_module_check_is_noop_without_scope(self):
        # no scope active on this thread: must not raise however harsh
        # any configured injector elsewhere is
        faults.check("relation.scan", "anything")

    def test_scope_activates_and_deactivates(self):
        injector = FaultInjector("relation.scan:transient", seed=0)
        with scope(injector):
            with pytest.raises(TransientStorageFault):
                faults.check("relation.scan")
        faults.check("relation.scan")

    def test_typed_fault_carries_point_and_xam(self):
        injector = FaultInjector("btree.lookup@idx:corrupt", seed=0)
        with pytest.raises(AccessModuleUnavailable) as info:
            injector.check("btree.lookup", "idx")
        assert info.value.point == "btree.lookup"
        assert info.value.xam == "idx"
        assert info.value.corrupt
        assert isinstance(info.value, StorageFault)
        assert isinstance(info.value, ReproError)


class TestEnvInjector:
    def test_env_configures_and_caches(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "relation.scan:transient:1.0:1")
        monkeypatch.setenv(faults.ENV_SEED, "3")
        first = faults.injector_from_env()
        assert first is not None and first.seed == 3
        # same env → same instance, so trigger budgets persist
        assert faults.injector_from_env() is first
        monkeypatch.setenv(faults.ENV_SEED, "4")
        assert faults.injector_from_env() is not first
        monkeypatch.delenv(faults.ENV_FAULTS)
        assert faults.injector_from_env() is None


# ---------------------------------------------------------------------------
# Every fault point fires at its real call site
# ---------------------------------------------------------------------------

class TestFaultPointsAtCallSites:
    """Each named fault point, reached through the structure it guards —
    proving the instrumentation sits on the actual read path."""

    def test_relation_scan_fires_from_store_context(self):
        from repro.engine import Store

        store = Store()
        store.add("r", [])
        injector = FaultInjector("relation.scan@r:transient", seed=0)
        with scope(injector):
            context = store.context()
            with pytest.raises(TransientStorageFault):
                context["r"]

    def test_btree_lookup_fires_from_stored_relation(self):
        from repro.algebra import NestedTuple
        from repro.engine import Store

        store = Store()
        store.add("r", [NestedTuple({"a": 1})])
        injector = FaultInjector("btree.lookup@r:corrupt", seed=0)
        with scope(injector):
            with pytest.raises(AccessModuleUnavailable):
                store["r"].lookup(["a"], [1])

    def test_index_structural_fires_from_prepost_plane(self, bib_doc):
        from repro.indexes import PrePostPlane
        from repro.xmldata import id_of

        plane = PrePostPlane(bib_doc)
        ref = id_of(bib_doc.top, "s")
        with scope(FaultInjector("index.structural:transient", seed=0)):
            with pytest.raises(TransientStorageFault):
                plane.descendants(ref)

    def test_index_value_fires_from_index_lookup(self, bib_doc):
        from repro.algebra import NestedTuple
        from repro.engine import Store
        from repro.indexes import build_value_index
        from repro.storage import Catalog, index_lookup

        store, catalog = Store(), Catalog()
        entry = build_value_index(
            "byTitle", bib_doc, store, catalog, "book", ["title"]
        )
        with scope(FaultInjector("index.value@byTitle:corrupt", seed=0)):
            with pytest.raises(AccessModuleUnavailable):
                index_lookup(
                    entry, store, [NestedTuple({"e2.V": "Data on the Web"})]
                )

    def test_index_fulltext_fires_from_fulltext_lookup(self, bib_doc):
        from repro.engine import Store
        from repro.indexes import build_fulltext_index, fulltext_lookup
        from repro.storage import Catalog

        store, catalog = Store(), Catalog()
        entry = build_fulltext_index("fti", bib_doc, store, catalog)
        assert fulltext_lookup(entry, store, "Web")  # healthy path first
        with scope(FaultInjector("index.fulltext@fti:transient", seed=0)):
            with pytest.raises(TransientStorageFault):
                fulltext_lookup(entry, store, "Web")

    def test_blob_fetch_fires_from_fetch_content(self, bib_doc):
        from repro.engine import Store
        from repro.storage import Catalog
        from repro.storage.blob import build_content_store, fetch_content
        from repro.xmldata import id_of

        store, catalog = Store(), Catalog()
        (relation,) = build_content_store(bib_doc, store, catalog, ["title"])
        contents = fetch_content(store, relation)
        assert any("Data on the Web" in (c or "") for c in contents)
        title = next(
            node for node in bib_doc.elements() if node.label == "title"
        )
        narrowed = fetch_content(store, relation, node_id=id_of(title, "s"))
        assert len(narrowed) == 1
        with scope(FaultInjector(f"blob.fetch@{relation}:corrupt", seed=0)):
            with pytest.raises(AccessModuleUnavailable):
                fetch_content(store, relation)


# ---------------------------------------------------------------------------
# Circuit breaker state machine
# ---------------------------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def make(self, threshold=3, timeout=30.0):
        clock = FakeClock()
        return CircuitBreaker(threshold, timeout, clock), clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        assert breaker.record_failure("e1") == CLOSED
        assert breaker.record_failure("e2") == CLOSED
        assert breaker.record_failure("e3") == OPEN
        assert not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() == CLOSED
        assert breaker.record_failure() == OPEN

    def test_half_open_after_recovery_window(self):
        breaker, clock = self.make(threshold=1, timeout=10.0)
        assert breaker.record_failure() == OPEN
        clock.advance(9.9)
        assert breaker.state == OPEN and not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN and breaker.allow()

    def test_half_open_probe_success_closes(self):
        breaker, clock = self.make(threshold=1, timeout=10.0)
        breaker.record_failure()
        clock.advance(11.0)
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.failures == 0

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self.make(threshold=1, timeout=10.0)
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.state == HALF_OPEN
        assert breaker.record_failure() == OPEN
        clock.advance(9.0)
        assert breaker.state == OPEN  # window restarted at the re-open

    def test_render_mentions_state_and_last_error(self):
        breaker, _ = self.make(threshold=1)
        breaker.record_failure("disk on fire")
        assert "open" in breaker.render()
        assert "disk on fire" in breaker.render()


class TestBreakerBoard:
    def test_empty_board_is_healthy(self):
        board = BreakerBoard()
        assert len(board) == 0
        assert board.allows("anything")
        assert board.state("anything") == CLOSED
        assert board.unavailable_names() == set()
        assert "healthy" in board.render()

    def test_success_does_not_create_entries(self):
        board = BreakerBoard()
        board.record_success("v")
        assert len(board) == 0

    def test_unavailable_lists_open_only(self):
        clock = FakeClock()
        board = BreakerBoard(failure_threshold=1, recovery_timeout=10.0, clock=clock)
        board.record_failure("a")
        board.record_failure("b")
        assert board.unavailable_names() == {"a", "b"}
        clock.advance(11.0)
        # both are half-open now: probes allowed, nothing excluded
        assert board.unavailable_names() == set()
        assert board.states() == {"a": HALF_OPEN, "b": HALF_OPEN}


# ---------------------------------------------------------------------------
# Degradation through the Database
# ---------------------------------------------------------------------------

class TestGracefulDegradation:
    def test_permanent_fault_reroutes_to_sibling_view(self):
        db = make_xmark_db()
        oracle = answers(db.query(PERSON_QUERY))
        db.fault_injector = FaultInjector(
            "relation.scan@v_person:corrupt", seed=CHAOS_SEED
        )
        result = db.query(PERSON_QUERY)
        assert answers(result) == oracle
        assert result.degraded
        assert any("v_person" in event for event in result.degradation_events)
        assert result.counters["degraded.reroutes"] >= 1.0

    def test_single_view_pattern_falls_back_to_base_store(self):
        db = make_xmark_db()
        oracle = answers(db.query(ITEM_QUERY))
        db.fault_injector = FaultInjector(
            "relation.scan@v_item:corrupt", seed=CHAOS_SEED
        )
        result = db.query(ITEM_QUERY)
        assert answers(result) == oracle
        assert result.degraded
        assert result.counters["degraded.base_fallbacks"] >= 1.0

    def test_breaker_opens_and_planner_avoids_module(self):
        db = make_xmark_db()
        oracle = answers(db.query(PERSON_QUERY))
        db.fault_injector = FaultInjector(
            "relation.scan@v_person:corrupt", seed=CHAOS_SEED
        )
        threshold = db.breakers.failure_threshold
        for _ in range(threshold):
            result = db.query(PERSON_QUERY)
            assert answers(result) == oracle
        assert db.breakers.state("v_person") == OPEN
        assert "v_person" in db.health()
        # with the circuit open, fresh plans route around the module
        # *at planning time* — no degradation events at all
        clean = db.query(PERSON_QUERY)
        assert answers(clean) == oracle
        assert not clean.degraded
        assert all(
            "v_person" != view
            for resolution in clean.resolutions
            if resolution.rewriting is not None
            for view in resolution.rewriting.views
        )

    def test_transient_fault_propagates_typed_from_database(self):
        # the Database layer does not retry (that is the service's job):
        # a transient fault must surface as its typed error, not as a
        # wrong or silently empty answer
        db = make_xmark_db()
        db.fault_injector = FaultInjector(
            "relation.scan@v_person:transient", seed=CHAOS_SEED
        )
        with pytest.raises(TransientStorageFault):
            db.query(PERSON_QUERY)

    def test_explain_reports_health(self):
        db = make_xmark_db()
        db.breakers.record_failure("v_person", "boom")
        report = db.explain(PERSON_QUERY)
        assert report.health.get("v_person") == CLOSED
        assert "access modules:" in report.render()


# ---------------------------------------------------------------------------
# Retries through the QueryService
# ---------------------------------------------------------------------------

class TestServiceRetries:
    def make_service(self, db):
        return QueryService(
            db, max_workers=2, retry_policy=RetryPolicy(base_delay=0.001)
        )

    def test_transient_fault_absorbed_with_zero_degradation(self):
        db = make_xmark_db()
        with self.make_service(db) as service:
            oracle = answers(service.query(PERSON_QUERY))
            db.fault_injector = FaultInjector(
                "relation.scan@v_person:transient:1.0:2", seed=CHAOS_SEED
            )
            result = service.query(PERSON_QUERY)
            assert answers(result) == oracle
            assert not result.degraded
            assert result.counters["retry.attempts"] == 2.0
            assert result.counters["retry.recovered"] == 1.0
            # nothing reached the breakers: transients are not failures
            assert len(db.breakers) == 0

    def test_retries_exhaust_into_typed_error(self):
        db = make_xmark_db()
        with self.make_service(db) as service:
            db.fault_injector = FaultInjector(
                "relation.scan@v_person:transient", seed=CHAOS_SEED
            )
            with pytest.raises(TransientStorageFault):
                service.query(PERSON_QUERY)

    def test_degraded_result_evicts_cached_plan(self):
        db = make_xmark_db()
        with self.make_service(db) as service:
            service.query(PERSON_QUERY)
            assert len(service.cache) == 1
            db.fault_injector = FaultInjector(
                "relation.scan@v_person:corrupt", seed=CHAOS_SEED
            )
            result = service.query(PERSON_QUERY)
            assert result.degraded
            assert len(service.cache) == 0

    def test_latency_recorder_tags_failures(self):
        db = make_xmark_db()
        with self.make_service(db) as service:
            session = service.session("chaos")
            service.query(PERSON_QUERY, session=session)
            db.fault_injector = FaultInjector(
                "relation.scan@v_person:transient", seed=CHAOS_SEED
            )
            with pytest.raises(TransientStorageFault):
                service.query(PERSON_QUERY, session=session)
            assert session.latency.outcomes() == {"ok": 1, "error": 1}
            assert len(session.latency) == 2
            assert "outcomes=" in session.latency.render()


# ---------------------------------------------------------------------------
# The seeded sweep: match the oracle or fail typed — never silently wrong
# ---------------------------------------------------------------------------

class TestChaosSweep:
    """Every fault point × kind over the XMark workload.

    Probability < 1 makes the seeded RNG choose *when* to fire, so the
    sweep explores a different interleaving per seed (CI varies
    ``REPRO_CHAOS_SEED`` across its matrix).
    """

    @pytest.mark.parametrize("kind", ["transient", "corrupt"])
    @pytest.mark.parametrize("point", FAULT_POINTS)
    def test_fault_sweep_never_silently_wrong(self, point, kind):
        db = make_xmark_db()
        oracles = {q: answers(db.query(q)) for q in QUERIES}
        db.fault_injector = FaultInjector(
            f"{point}:{kind}:0.7", seed=CHAOS_SEED
        )
        for query in QUERIES:
            try:
                result = db.query(query)
            except ReproError:
                continue  # typed failure is an acceptable outcome
            assert answers(result) == oracles[query], (
                f"silent wrong answer under {point}:{kind} for {query!r}"
            )

    def test_latency_faults_never_change_answers(self):
        db = make_xmark_db()
        oracles = {q: answers(db.query(q)) for q in QUERIES}
        db.fault_injector = FaultInjector("*:latency:0.0005", seed=CHAOS_SEED)
        for query in QUERIES:
            result = db.query(query)
            assert answers(result) == oracles[query]
            assert not result.degraded

    def test_service_sweep_with_retries_and_degradation(self):
        db = make_xmark_db()
        with QueryService(
            db, max_workers=2, retry_policy=RetryPolicy(base_delay=0.0005)
        ) as service:
            oracles = {q: answers(service.query(q)) for q in QUERIES}
            db.fault_injector = FaultInjector(
                "relation.scan:transient:0.4,relation.scan:corrupt:0.2",
                seed=CHAOS_SEED,
            )
            for _ in range(3):
                for query in QUERIES:
                    try:
                        result = service.query(query)
                    except ReproError:
                        continue
                    assert answers(result) == oracles[query]
