"""Tests for the ULoad facade: end-to-end physical data independence.

The key invariant: for any query in the battery, the answer is the same
whether it is computed from the base store or from whatever views the
catalog happens to hold — only the access paths change.
"""

import pytest

from repro import Database
from tests.conftest import AUCTION_XML, BIB_XML

QUERY_BATTERY = [
    "//item/name/text()",
    "//regions//item",
    "for $x in //item return <res>{ $x/name/text() }</res>",
    "for $x in //item[mail] return <res>{ $x/name/text() }</res>",
    "for $x in //item return <res>{ $x/name/text(), for $y in $x//listitem return <key>{ $y/keyword }</key> }</res>",
    "for $x in //listitem where $x/keyword = 'rare' return <hit>{ $x/keyword/text() }</hit>",
]

VIEW_SETS = {
    "exact-nested": {
        "items_full": "//item[id:s]{/s:mail, /no:name[val], //no:listitem[id:s]{/no:keyword[cont]}}",
        "items_plain": "//item[id:s, cont]",
        "names": "//item[id:s]{/o:name[id:s, val]}",
        "listitems": "//listitem[id:s, cont]{/o:keyword[id:s, val]}",
    },
    "fragmented": {
        "items": "//item[id:s, cont]",
        "names2": "//name[id:s, val]",
        "listitems2": "//listitem[id:s, cont]",
        "keywords": "//keyword[id:s, val, cont]",
    },
}


@pytest.fixture()
def db():
    return Database.from_xml(AUCTION_XML, "auction.xml")


class TestBaseline:
    def test_base_store_answers(self, db):
        result = db.query("//item/name/text()")
        assert result.values == ["Fish", "Rock"]
        assert result.used_views == []

    def test_flwr_with_construction(self, db):
        result = db.query(
            "for $x in //item return <res>{ $x/name/text() }</res>"
        )
        assert result.xml == ["<res>Fish</res>", "<res>Rock</res>"]

    def test_explain_reports_base(self, db):
        (resolution,) = db.explain("//item/name/text()")
        assert resolution.access_path == "base"


class TestIndependence:
    @pytest.mark.parametrize("view_set", sorted(VIEW_SETS))
    @pytest.mark.parametrize("query", QUERY_BATTERY)
    def test_same_answer_under_any_view_set(self, db, view_set, query):
        baseline = db.query(query, prefer_views=False)
        for name, text in VIEW_SETS[view_set].items():
            db.add_view(name, text)
        with_views = db.query(query)
        assert with_views.xml == baseline.xml
        assert with_views.values == baseline.values

    def test_views_actually_used_when_available(self, db):
        db.add_view("names", "//item[id:s]{/o:name[id:s, val]}")
        result = db.query("//item/name/text()")
        assert result.used_views == ["names"]

    def test_dropping_a_view_changes_access_path(self, db):
        db.add_view("names", "//item[id:s]{/o:name[id:s, val]}")
        assert db.query("//item/name/text()").used_views == ["names"]
        db.drop_view("names")
        assert db.query("//item/name/text()").used_views == []

    def test_prefer_views_false_forces_base(self, db):
        db.add_view("names", "//item[id:s]{/o:name[id:s, val]}")
        result = db.query("//item/name/text()", prefer_views=False)
        assert result.used_views == []


class TestPhysicalEngine:
    def test_physical_execution_matches_logical(self, db):
        db.add_view("names", "//item[id:s]{/o:name[id:s, val]}")
        logical = db.query("//item/name/text()", physical=False)
        physical = db.query("//item/name/text()", physical=True)
        assert logical.values == physical.values
        assert physical.used_views == ["names"]


class TestRewriteAPI:
    def test_rewrite_exposed(self, db):
        db.add_view("items", "//item[id:s]")
        rewritings = db.rewrite("//item[id:s]")
        assert rewritings and rewritings[0].views == ("items",)

    def test_rewrite_accepts_patterns(self, db):
        from repro.core import parse_pattern

        db.add_view("items", "//item[id:s]")
        assert db.rewrite(parse_pattern("//item[id:s]"))


class TestMultipleDocuments:
    def test_summary_and_views_cover_all_documents(self):
        db = Database()
        db.add_document_xml("<r><a>1</a></r>", "one.xml")
        db.add_document_xml("<r><a>2</a><b/></r>", "two.xml")
        db.add_view("as", "//a[id:s, val]")
        result = db.query("//a/text()")
        assert sorted(result.values) == ["1", "2"]
        assert result.used_views == ["as"]


class TestBibliography:
    def test_bib_queries(self):
        db = Database.from_xml(BIB_XML, "bib.xml")
        db.add_view("titles", "//book[id:s]{/title[id:s, val]}")
        result = db.query("//book/title/text()")
        assert result.values == ["Data on the Web", "The Syntactic Web"]
        assert result.used_views == ["titles"]

    def test_filtered_bib_query(self):
        db = Database.from_xml(BIB_XML, "bib.xml")
        base = db.query(
            'for $b in //book where $b/title = "Data on the Web" return <hit>{ $b/author/text() }</hit>'
        )
        assert base.xml == ["<hit>AbiteboulSuciu</hit>"]
