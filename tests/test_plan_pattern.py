"""Tests for the §5.5 plan→pattern machinery."""

import pytest

from repro.core import parse_pattern, pattern_from_path
from repro.core.plan_pattern import (
    GlueCondition,
    expand_view,
    joint_embeddings,
    merged_patterns,
)
from repro.core.canonical import summary_embeddings, _strict_copy
from repro.summary import PathSummary


@pytest.fixture()
def summary():
    return PathSummary.from_paths(
        ["/site/regions/item/description/parlist/listitem", "/site/regions/item/name"]
    )


def renamed(text, prefix):
    pattern = parse_pattern(text)
    for node in pattern.nodes():
        node.name = prefix + node.name
    return pattern


class TestExpandView:
    def test_descendant_edges_expand_to_chains(self, summary):
        view = parse_pattern("//listitem[id:s]")
        embedding = summary_embeddings(_strict_copy(view), summary)[0]
        expanded = expand_view(view, embedding, summary)
        tags = [n.tag for n in expanded.nodes()]
        assert tags == ["site", "regions", "item", "description", "parlist", "listitem"]
        assert expanded.nodes()[-1].store_id == "s"

    def test_edge_semantics_lands_on_first_chain_edge(self, summary):
        view = parse_pattern("//item[id:s]{//o:listitem[id:s]}")
        embedding = summary_embeddings(_strict_copy(view), summary)[0]
        expanded = expand_view(view, embedding, summary)
        item = next(n for n in expanded.nodes() if n.tag == "item")
        description_edge = item.edges[0]
        assert description_edge.child.tag == "description"
        assert description_edge.optional
        # deeper chain edges are plain joins
        deeper = description_edge.child.edges[0]
        assert not deeper.optional


class TestJointEmbeddings:
    def test_eq_glue_requires_same_summary_node(self, summary):
        left = renamed("//item[id:s]", "u0:")
        right = renamed("//item[id:s]{/name[val]}", "u1:")
        combos = joint_embeddings(
            [left, right],
            [GlueCondition("eq", 0, "u0:e1", 1, "u1:e1")],
            summary,
        )
        assert len(combos) == 1

    def test_structural_glue_checks_ancestry(self, summary):
        items = renamed("//item[id:s]", "u0:")
        names = renamed("//name[id:s]", "u1:")
        parent = joint_embeddings(
            [items, names], [GlueCondition("parent", 0, "u0:e1", 1, "u1:e1")], summary
        )
        assert len(parent) == 1
        flipped = joint_embeddings(
            [names, items], [GlueCondition("parent", 0, "u1:e1", 1, "u0:e1")], summary
        )
        assert flipped == []

    def test_unknown_glue_kind_rejected(self, summary):
        items = renamed("//item[id:s]", "u0:")
        with pytest.raises(ValueError):
            joint_embeddings(
                [items, items], [GlueCondition("sideways", 0, "u0:e1", 1, "u0:e1")],
                summary,
            )


class TestMergedPatterns:
    def test_glued_nodes_share_one_merged_node(self, summary):
        left = renamed("//item[id:s]", "u0:")
        right = renamed("//item[id:s]{/name[id:s, val]}", "u1:")
        union = merged_patterns(
            [left, right], [GlueCondition("eq", 0, "u0:e1", 1, "u1:e1")], summary
        )
        assert len(union) == 1
        pattern, aliases = union[0]
        assert aliases["u0:e1"] == aliases["u1:e1"]
        items = [n for n in pattern.nodes() if n.tag == "item"]
        assert len(items) == 1

    def test_off_spine_subtrees_keep_their_axes(self, summary):
        left = renamed("//item[id:s]{//o:listitem[id:s]}", "u0:")
        right = renamed("//item[id:s]", "u1:")
        union = merged_patterns(
            [left, right], [GlueCondition("eq", 0, "u0:e1", 1, "u1:e1")], summary
        )
        pattern, _aliases = union[0]
        item = next(n for n in pattern.nodes() if n.tag == "item")
        li_edge = next(e for e in item.edges if e.child.tag == "listitem")
        # NOT expanded into the description/parlist chain: // preserved
        assert li_edge.axis == "//"
        assert li_edge.optional

    def test_ambiguous_paths_make_a_union(self):
        summary = PathSummary.from_paths(["/a/b/x/c", "/a/c/y/b"])
        left = renamed("//b[id:s]", "u0:")
        right = renamed("//c[id:s]", "u1:")
        union = merged_patterns(
            [left, right],
            [GlueCondition("ancestor", 0, "u0:e1", 1, "u1:e1")],
            summary,
        )
        # only /a/b has a c below it
        assert len(union) == 1
        # without glue nothing is expanded: the plan is a plain product
        # and its pattern is the single two-branch pattern
        both_ways = merged_patterns([left, right], [], summary)
        assert len(both_ways) == 1
        assert both_ways[0][0].size() == 2

    def test_specs_merge_on_shared_nodes(self, summary):
        left = renamed("//item[id:s]", "u0:")
        right = renamed("//item[tag]{/name[val]}", "u1:")
        union = merged_patterns(
            [left, right], [GlueCondition("eq", 0, "u0:e1", 1, "u1:e1")], summary
        )
        pattern, _ = union[0]
        item = next(n for n in pattern.nodes() if n.tag == "item")
        assert item.store_id == "s" and item.store_tag
