"""Batch executor tests: Block execution, operator-level iter/batch
agreement, plan-to-closure compilation, the fingerprint-keyed artifact
cache and its invalidation protocol, the executor toggles, and the new
counters (``plan_compile.*``, ``executor.fallback``,
``fallback.materialized_rows``)."""

import pytest

from repro import Database
from repro.algebra import (
    Attr,
    BaseTuples,
    Compare,
    Const,
    Difference,
    GroupBy,
    NestedTuple,
    Product,
    Project,
    Scan,
    Select,
    StructuralJoin,
    Union,
    ValueJoin,
)
from repro.algebra.operators import TemplateAttr, TemplateElement, XMLize
from repro.cli import main as cli_main, run_command
from repro.core.uload import (
    EXECUTOR_ENV_VAR,
    EXECUTORS,
    resolve_executor,
)
from repro.engine.batch import (
    Block,
    PBlockInput,
    batch_covered,
    compile_batch,
)
from repro.engine.context import ExecutionContext
from repro.engine.metrics import MetricsRegistry
from repro.engine.physical import PhysicalOperator, compile_plan
from repro.engine.qlog import build_record, result_checksum
from repro.workloads import generate_xmark
from repro.xmldata import id_of, load

PERSON_QUERY = "for $p in //people/person return $p/name/text()"
ITEM_QUERY = "//regions//item/name/text()"
CONSTRUCTOR_QUERY = (
    "for $p in //people/person return <r>{ $p/name/text() }</r>"
)


def make_db(executor=None, scale=1, views=True):
    db = Database(metrics=MetricsRegistry(), executor=executor)
    db.add_document(generate_xmark(scale=scale, seed=0))
    if views:
        db.add_view("v_person", "//people/person[id:s]{/name[id:s, val]}")
        db.add_view("v_item", "//regions//item[id:s]{/name[id:s, val]}")
    return db


def sid_rows(doc, label, name):
    return BaseTuples(
        [
            NestedTuple({f"{name}.ID": id_of(n, "s")})
            for n in doc.elements()
            if n.label == label
        ]
    )


@pytest.fixture()
def doc():
    return load(
        "<a><b><c/><c/><b><c/></b></b><b/><c/><b><x><c/></x></b></a>"
    )


def batch_agreement(plan, context=None):
    """The compiled batch closure must reproduce the iterator engine's
    output *in order*, not just as a multiset."""
    expected = [
        t.freeze() for t in compile_plan(plan).execute(dict(context or {}))
    ]
    physical = compile_plan(plan)
    assert batch_covered(physical), physical.pretty()
    block = compile_batch(physical)(dict(context or {}))
    assert [t.freeze() for t in block.tuples] == expected
    return expected


# -- Block basics -----------------------------------------------------------


class TestBlock:
    def test_columns_are_lazy_and_cached(self, doc):
        tuples = sid_rows(doc, "b", "x").tuples
        block = Block(tuples, order="x.ID")
        column = block.id_column("x.ID")
        assert len(column) == len(tuples)
        assert block.id_column("x.ID") is column  # cached
        values = block.column("x.ID")
        assert values == [t.get("x.ID") for t in tuples]
        pres = block.pre_column("x.ID")
        assert pres == sorted(pres)  # document order in this fixture

    def test_block_input_adapts_closure_to_iterator(self, doc):
        tuples = sid_rows(doc, "c", "y").tuples
        template = compile_plan(BaseTuples(tuples))
        adapter = PBlockInput(lambda ctx: Block(list(tuples)), template)
        assert list(adapter._run({})) == tuples


# -- operator-level agreement ----------------------------------------------


class TestOperatorAgreement:
    @pytest.mark.parametrize("kind", ["j", "s", "o", "nj", "no"])
    @pytest.mark.parametrize("axis", ["child", "descendant"])
    def test_structural_join(self, doc, kind, axis):
        plan = StructuralJoin(
            sid_rows(doc, "b", "x"),
            sid_rows(doc, "c", "y"),
            "x.ID",
            "y.ID",
            axis=axis,
            kind=kind,
            nest_as="g",
        )
        batch_agreement(plan)

    @pytest.mark.parametrize("kind", ["j", "s", "o", "nj", "no"])
    def test_hash_value_join(self, kind):
        left = BaseTuples([NestedTuple({"x": i % 4}) for i in range(12)])
        right = BaseTuples([NestedTuple({"y": i % 3}) for i in range(9)])
        plan = ValueJoin(
            left, right, Compare(Attr("x"), "=", Attr("y")),
            kind=kind, nest_as="g",
        )
        batch_agreement(plan)

    @pytest.mark.parametrize("kind", ["j", "s", "o", "nj", "no"])
    def test_nested_loops_value_join(self, kind):
        left = BaseTuples([NestedTuple({"x": i}) for i in range(8)])
        right = BaseTuples([NestedTuple({"y": i}) for i in range(8)])
        plan = ValueJoin(
            left, right, Compare(Attr("x"), "<", Attr("y")),
            kind=kind, nest_as="g",
        )
        batch_agreement(plan)

    def test_relational_operators(self):
        base = BaseTuples(
            [NestedTuple({"x": i, "y": i % 3}) for i in range(10)]
        )
        for plan in (
            Select(base, Compare(Attr("x"), ">", Const(2))),
            Project(base, ["y"], dedup=True),
            Project(base, ["y", "x"], renames={"x": "z"}),
            Union(base, base),
            Difference(base, BaseTuples(base.tuples[:4])),
            Product(base, BaseTuples([NestedTuple({"z": 1})])),
            GroupBy(base, ["y"], nest_as="g"),
        ):
            batch_agreement(plan)

    def test_scan_from_context(self):
        plan = Scan("rel", ["x"])
        context = {"rel": [NestedTuple({"x": i}) for i in range(5)]}
        batch_agreement(plan, context)

    def test_scan_missing_relation_message_matches(self):
        physical = compile_plan(Scan("ghost", ["x"]))
        with pytest.raises(KeyError) as iter_err:
            list(compile_plan(Scan("ghost", ["x"])).execute({}))
        with pytest.raises(KeyError) as batch_err:
            compile_batch(physical)({})
        assert str(batch_err.value) == str(iter_err.value)

    def test_adapted_fallback_operator(self):
        template = TemplateElement("r", [TemplateAttr("x")])
        plan = XMLize(
            BaseTuples([NestedTuple({"x": i}) for i in range(3)]), template
        )
        physical = compile_plan(plan)
        assert "PLogicalFallback" in physical.pretty()
        rows = batch_agreement(plan)
        assert len(rows) == 3


# -- coverage and fallback --------------------------------------------------


class POpaque(PhysicalOperator):
    """A physical operator the batch compiler has never heard of."""

    def __init__(self, child):
        self.children = (child,)

    def _run(self, context=None):
        yield from self.children[0].execute(context)


class TestCoverage:
    def test_uncovered_operator_detected(self):
        physical = compile_plan(BaseTuples([NestedTuple({"x": 1})]))
        assert batch_covered(physical)
        assert not batch_covered(POpaque(physical))
        with pytest.raises(Exception):
            compile_batch(POpaque(physical))

    def test_uncovered_plan_falls_back_whole_query(self):
        db = make_db(executor="batch")
        ctx = db.execution_context()
        # a lowering override producing an operator outside the batch
        # engine's coverage: the affected plan must run, whole, on the
        # iterator path — counted, not crashed
        ctx.registry[Scan] = lambda op, lower, _ctx: POpaque(
            compile_plan(op, context=ExecutionContext())
        )
        result = db.query(
            PERSON_QUERY, stats=True, physical=True, context=ctx
        )
        assert result.counters.get("executor.fallback", 0) >= 1
        reference = make_db(executor="iter").query(
            PERSON_QUERY, stats=True, physical=True
        )
        assert result_checksum(result) == result_checksum(reference)


# -- end-to-end equivalence and metrics exactness ---------------------------


class TestExecutorEquivalence:
    @pytest.mark.parametrize("query", [PERSON_QUERY, ITEM_QUERY])
    def test_results_and_checksums_match(self, query):
        batch = make_db(executor="batch").query(
            query, stats=True, physical=True
        )
        iter_ = make_db(executor="iter").query(
            query, stats=True, physical=True
        )
        assert batch.executor == "batch" and iter_.executor == "iter"
        assert result_checksum(batch) == result_checksum(iter_)
        assert [t.freeze() for t in batch.tuples] == [
            t.freeze() for t in iter_.tuples
        ]

    def test_metrics_exact_under_batching(self):
        batch = make_db(executor="batch").query(PERSON_QUERY, stats=True)
        iter_ = make_db(executor="iter").query(PERSON_QUERY, stats=True)
        assert len(batch.metrics) == len(iter_.metrics)
        for batch_tree, iter_tree in zip(batch.metrics, iter_.metrics):
            batch_nodes = list(batch_tree.walk())
            iter_nodes = list(iter_tree.walk())
            assert [n.label for n in batch_nodes] == [
                n.label for n in iter_nodes
            ]
            assert [n.rows_out for n in batch_nodes] == [
                n.rows_out for n in iter_nodes
            ]
            assert [n.executions for n in batch_nodes] == [
                n.executions for n in iter_nodes
            ]
            assert batch_tree.root.elapsed > 0.0

    def test_fingerprint_identical_across_executors(self):
        batch_db = make_db(executor="batch")
        iter_db = make_db(executor="iter")
        batch_prepared = batch_db.prepare(PERSON_QUERY)
        iter_prepared = iter_db.prepare(PERSON_QUERY)
        assert batch_prepared.fingerprint == iter_prepared.fingerprint
        assert batch_prepared.plan_shape == iter_prepared.plan_shape
        batch_result = batch_db.execute_prepared(batch_prepared, stats=True)
        iter_result = iter_db.execute_prepared(iter_prepared, stats=True)
        assert (
            batch_result.plan_fingerprint == iter_result.plan_fingerprint
        )


# -- the fingerprint-keyed compiled-plan cache ------------------------------


class TestCompiledPlanCache:
    def test_miss_then_hit(self):
        db = make_db(executor="batch")
        prepared = db.prepare(PERSON_QUERY)
        first = db.execute_prepared(prepared, stats=True)
        assert first.counters.get("plan_compile.miss", 0) >= 1
        assert first.counters.get("plan_compile.hit", 0) == 0
        second = db.execute_prepared(prepared, stats=True)
        assert second.counters.get("plan_compile.hit", 0) >= 1
        assert second.counters.get("plan_compile.miss", 0) == 0
        assert prepared.fingerprint in db.compiled_plans

    def test_artifact_shared_across_preparations(self):
        db = make_db(executor="batch")
        db.execute_prepared(db.prepare(PERSON_QUERY), stats=True)
        result = db.execute_prepared(db.prepare(PERSON_QUERY), stats=True)
        # identical catalog state → identical fingerprint → compiled
        # closures are reused, not recompiled
        assert result.counters.get("plan_compile.hit", 0) >= 1
        assert result.counters.get("plan_compile.miss", 0) == 0

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda db: db.add_view(
                "v_extra", "//people/person[id:s]{/emailaddress[id:s, val]}"
            ),
            lambda db: db.add_document_xml("<extra/>", "extra.xml"),
            lambda db: db.override_statistic("scan.v_person", 5.0),
        ],
        ids=["view", "document", "statistics"],
    )
    def test_catalog_mutation_invalidates_artifact(self, mutate):
        db = make_db(executor="batch")
        db.execute_prepared(db.prepare(PERSON_QUERY), stats=True)
        assert len(db.compiled_plans) == 1
        version_before = db.catalog_version
        mutate(db)
        assert db.catalog_version != version_before
        result = db.execute_prepared(db.prepare(PERSON_QUERY), stats=True)
        assert result.counters.get("plan_compile.invalidate", 0) >= 1
        assert result.counters.get("plan_compile.miss", 0) >= 1

    def test_stale_execution_still_correct(self):
        db = make_db(executor="batch")
        prepared = db.prepare(PERSON_QUERY)
        before = db.execute_prepared(prepared, stats=True)
        db.override_statistic("scan.v_person", 123.0)
        after = db.execute_prepared(db.prepare(PERSON_QUERY), stats=True)
        assert result_checksum(before) == result_checksum(after)


# -- fallback materialization bound -----------------------------------------


class TestFallbackMaterialization:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_materialized_rows_counted(self, executor):
        db = make_db(executor=executor)
        result = db.query(CONSTRUCTOR_QUERY, stats=True)
        assert result.counters.get("fallback.materialized_rows", 0) > 0

    def test_same_context_does_not_rematerialize(self):
        template = TemplateElement("r", [TemplateAttr("x")])
        plan = XMLize(
            BaseTuples([NestedTuple({"x": i}) for i in range(4)]), template
        )
        ctx = ExecutionContext()
        physical = compile_plan(plan, context=ctx)
        data = {}
        ctx.run(physical, data)
        first = ctx.counters.get("fallback.materialized_rows", 0)
        assert first == 4
        list(physical.execute(data))  # same live context: inputs reused
        assert ctx.counters.get("fallback.materialized_rows", 0) == first


# -- executor selection everywhere ------------------------------------------


class TestExecutorSelection:
    def test_resolve_default_is_batch(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        assert resolve_executor(None) == "batch"

    def test_resolve_honours_environment(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "iter")
        assert resolve_executor(None) == "iter"
        assert Database(metrics=MetricsRegistry()).executor == "iter"
        # an explicit argument wins over the environment
        assert resolve_executor("batch") == "batch"

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_executor("warp")
        with pytest.raises(ValueError):
            Database(metrics=MetricsRegistry(), executor="warp")

    def test_result_records_requested_executor(self):
        db = make_db(executor="iter")
        assert db.query(PERSON_QUERY, stats=True).executor == "iter"
        db.executor = "batch"
        assert db.query(PERSON_QUERY, stats=True).executor == "batch"

    def test_qlog_record_carries_executor(self):
        db = make_db(executor="batch")
        result = db.query(PERSON_QUERY, stats=True)
        record = build_record(PERSON_QUERY, result, 0.01, "ok")
        assert record["executor"] == "batch"

    def test_repl_executor_command(self, capsys):
        db = make_db(views=False)
        run_command(db, ".executor")
        assert "batch" in capsys.readouterr().out
        run_command(db, ".executor iter")
        assert db.executor == "iter"
        run_command(db, ".executor warp")
        assert "unknown executor" in capsys.readouterr().out
        assert db.executor == "iter"

    def test_cli_executor_flag(self, tmp_path, capsys):
        document = tmp_path / "doc.xml"
        document.write_text("<a><b>1</b><b>2</b></a>")
        for executor in EXECUTORS:
            code = cli_main(
                [str(document), "--query", "//a/b", "--executor", executor]
            )
            assert code == 0
        out = capsys.readouterr().out
        assert out.count("<b>1</b>") == 2
