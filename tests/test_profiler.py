"""Per-operator resource profiling and cost-model calibration.

Covers the tentpole's two collection modes — attributed CPU/memory at the
executors' observation points, and the continuous span-tagged stack
sampler — plus the calibration consumer, the qlog/EXPLAIN/slow-query
surfaces, shard-profile aggregation, the no-profiling fast path, and the
acceptance criteria: attributed CPU covering the profiled wall time on
the XMark battery, and both executors agreeing on the top-CPU operator.
"""

import gc
import threading
import time

import pytest

from repro import Database, QueryService
from repro.cli import run_command
from repro.core.coordinator import ShardedDatabase
from repro.engine.calibrate import (
    CalibrationReport,
    calibrate_records,
    classify,
)
from repro.engine.context import ExecutionContext, OperatorMetrics
from repro.engine.metrics import MetricsRegistry, register_process_collector
from repro.engine.profiler import (
    PROFILE_ENV_VAR,
    Profiler,
    QueryProfile,
    StackSampler,
    resolve_profile,
    traced_memory,
    valid_trace_id,
)
from repro.engine.qlog import build_record
from repro.engine.tracing import SlowQueryLog, Trace, active_spans
from repro.workloads import XMARK_QUERIES, generate_xmark

PERSON_QUERY = "for $p in //people/person return $p/name/text()"
ITEM_QUERY = "//regions//item/name/text()"


def make_db(**kwargs):
    db = Database(metrics=MetricsRegistry(), **kwargs)
    db.add_document(generate_xmark(scale=1, seed=0))
    db.add_view("v_person", "//people/person[id:s]{/name[id:s, val]}")
    db.add_view("v_item", "//regions//item[id:s]{/name[id:s, val]}")
    return db


# ---------------------------------------------------------------------------
# flag resolution & trace-id validation
# ---------------------------------------------------------------------------


class TestResolveProfile:
    def test_explicit_bool_wins(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV_VAR, "1")
        assert resolve_profile(False) is False
        assert resolve_profile(True) is True

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV_VAR, "on")
        assert resolve_profile(None) is True
        monkeypatch.setenv(PROFILE_ENV_VAR, "off")
        assert resolve_profile(None) is False
        monkeypatch.delenv(PROFILE_ENV_VAR)
        assert resolve_profile(None) is False

    @pytest.mark.parametrize("text", ["1", "true", "ON", "Yes"])
    def test_truthy_strings(self, text):
        assert resolve_profile(text) is True

    @pytest.mark.parametrize("text", ["0", "false", "OFF", "no", ""])
    def test_falsy_strings(self, text):
        assert resolve_profile(text) is False

    def test_typo_raises_instead_of_silently_disabling(self):
        with pytest.raises(ValueError, match="invalid profile setting"):
            resolve_profile("ture")

    def test_database_constructor_resolves(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV_VAR, "1")
        assert Database().profile is True
        assert Database(profile=False).profile is False


class TestTraceIdValidation:
    @pytest.mark.parametrize("good", ["t1", "t0000002a", "tdeadbeef"])
    def test_valid(self, good):
        assert valid_trace_id(good)

    @pytest.mark.parametrize(
        "bad", ["", "t", "x1f", "tXYZ", "t" + "0" * 17, "t1; rm -rf"]
    )
    def test_invalid(self, bad):
        assert not valid_trace_id(bad)


# ---------------------------------------------------------------------------
# the refcounted tracemalloc window
# ---------------------------------------------------------------------------


class TestTracedMemoryWindow:
    def test_window_starts_and_stops_tracing(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        with traced_memory():
            assert tracemalloc.is_tracing()
        assert not tracemalloc.is_tracing()

    def test_nested_windows_share_one_session(self):
        import tracemalloc

        with traced_memory():
            with traced_memory():
                assert tracemalloc.is_tracing()
            # inner exit must not stop the outer window's session
            assert tracemalloc.is_tracing()
        assert not tracemalloc.is_tracing()

    def test_respects_externally_started_tracing(self):
        import tracemalloc

        tracemalloc.start()
        try:
            with traced_memory():
                pass
            # the application started it; the window must not stop it
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()


# ---------------------------------------------------------------------------
# OperatorMetrics resource columns
# ---------------------------------------------------------------------------


class TestOperatorMetricsResources:
    def test_self_cpu_subtracts_children_clamped(self):
        child = OperatorMetrics(label="PScan(r)", cpu_ns=400)
        parent = OperatorMetrics(label="PFilter", cpu_ns=1000)
        parent.children = [child]
        assert parent.self_cpu_ns == 600
        # clock granularity can make a child look costlier: clamp at 0
        child.cpu_ns = 1500
        assert parent.self_cpu_ns == 0

    def test_pretty_shows_cpu_and_mem_only_when_profiled(self):
        node = OperatorMetrics(label="PScan(r)", rows_out=3)
        assert "cpu=" not in node.pretty()
        node.cpu_ns = 2_000_000
        node.peak_mem_bytes = 2048
        line = node.pretty()
        assert "cpu=2.00ms" in line and "mem=2.0KB" in line

    def test_top_cpu_ranks_by_exclusive_cpu(self):
        db = make_db(profile=True)
        result = db.query(PERSON_QUERY, physical=True, stats=True)
        tops = [m for metrics in result.metrics for m in metrics.top_cpu()]
        assert tops, "profiled run produced no CPU-ranked operators"
        assert all(m.self_cpu_ns > 0 for m in tops)


# ---------------------------------------------------------------------------
# mode 1: attributed profiling through both executors
# ---------------------------------------------------------------------------


class TestAttributedProfiling:
    @pytest.mark.parametrize("executor", ["iter", "batch"])
    def test_profiled_run_fills_cpu_and_memory(self, executor):
        db = make_db(profile=True, executor=executor)
        result = db.query(ITEM_QUERY, physical=True, stats=True)
        assert result.metrics
        roots = [metrics.root for metrics in result.metrics]
        assert sum(root.cpu_ns for root in roots) > 0
        assert any(
            node.peak_mem_bytes > 0
            for metrics in result.metrics
            for node in metrics.walk()
        )

    @pytest.mark.parametrize("executor", ["iter", "batch"])
    def test_unprofiled_run_stays_at_zero(self, executor):
        db = make_db(executor=executor)
        result = db.query(ITEM_QUERY, physical=True, stats=True)
        assert result.metrics
        for metrics in result.metrics:
            for node in metrics.walk():
                assert node.cpu_ns == 0 and node.peak_mem_bytes == 0

    def test_cached_plan_respects_profile_toggle(self):
        # compiled plans are cached and re-stamped per execution: the
        # same plan must profile when asked and stay silent when not
        db = make_db(profile=True)
        prepared = db.prepare(ITEM_QUERY)
        profiled = db.execute_prepared(prepared, physical=True, stats=True)
        assert sum(m.total_cpu_ns() for m in profiled.metrics) > 0
        db.profile = False
        plain = db.execute_prepared(prepared, physical=True, stats=True)
        assert sum(m.total_cpu_ns() for m in plain.metrics) == 0

    def test_explain_surfaces_resource_columns(self):
        db = make_db(profile=True)
        report = db.explain(ITEM_QUERY)
        rendered = report.render()
        assert "cpu" in rendered and "peak mem" in rendered
        assert "cpu=" in rendered

    def test_explain_header_unchanged_without_profiling(self):
        rendered = make_db().explain(ITEM_QUERY).render()
        assert "peak mem" not in rendered

    def test_base_pattern_evaluation_is_attributed(self):
        # a query no view can answer runs through evaluate_pattern; its
        # cost must appear as a synthetic BaseEval tree, not vanish
        db = make_db(profile=True)
        result = db.query(
            "//open_auctions/open_auction/reserve/text()",
            physical=True,
            stats=True,
        )
        labels = [m.root.label for m in result.metrics]
        assert any(label.startswith("BaseEval(") for label in labels)
        base = next(
            m.root for m in result.metrics
            if m.root.label.startswith("BaseEval(")
        )
        assert base.cpu_ns > 0 and base.rows_out == len(result.tuples)


# ---------------------------------------------------------------------------
# acceptance: CPU coverage and cross-executor agreement on XMark
# ---------------------------------------------------------------------------


def _battery_db(executor):
    db = Database(metrics=MetricsRegistry(), profile=True, executor=executor)
    db.add_document(generate_xmark(scale=1, seed=0))
    db.add_view("v_person", "/people/person[id:s]{/name[id:s, val]}")
    db.add_view("v_item", "/regions/item[id:s]{/name[id:s, val]}")
    return db


class TestAcceptanceCriteria:
    @pytest.mark.parametrize("executor", ["iter", "batch"])
    def test_attributed_cpu_covers_the_battery(self, executor):
        """Aggregate attributed CPU across the XMark battery covers at
        least 90% of the CPU actually burned executing it (measured with
        the same per-thread clock around the warm executions)."""
        db = _battery_db(executor)

        def one_pass():
            gc.collect()  # GC inside a window is CPU no operator gets
            attributed = 0.0
            burned = 0
            for query in XMARK_QUERIES.values():
                prepared = db.prepare(query)
                db.execute_prepared(prepared, physical=True, stats=True)
                cpu_started = time.thread_time_ns()
                result = db.execute_prepared(
                    prepared, physical=True, stats=True
                )
                burned += time.thread_time_ns() - cpu_started
                attributed += sum(m.total_cpu_ns() for m in result.metrics)
            return attributed, burned

        # steady-state margin is ~96-97%; best-of-three absorbs the
        # allocator/GC churn a preceding full-suite run leaves behind
        for _ in range(3):
            attributed, burned = one_pass()
            if attributed >= 0.90 * burned:
                break
        assert attributed >= 0.90 * burned, (
            f"attributed {attributed / 1e6:.1f}ms of "
            f"{burned / 1e6:.1f}ms burned "
            f"({attributed / burned * 100:.1f}%)"
        )

    def test_executors_agree_on_top_cpu_operator(self):
        """Differential check: for at least 80% of the XMark battery the
        two executors blame the same operator class for the most CPU
        (labels differ in block/iterator decoration, classes do not)."""

        def top_class(db, query):
            result = db.query(query, physical=True, stats=True)
            best, best_cpu = None, -1
            for metrics in result.metrics:
                for node in metrics.walk():
                    if node.self_cpu_ns > best_cpu:
                        best, best_cpu = classify(node.label), node.self_cpu_ns
            return best

        iter_db = _battery_db("iter")
        batch_db = _battery_db("batch")
        agree = 0
        queries = list(XMARK_QUERIES.values())
        for query in queries:
            # one warm lap each so caching noise doesn't decide the top
            iter_db.query(query, physical=True, stats=True)
            batch_db.query(query, physical=True, stats=True)
            if top_class(iter_db, query) == top_class(batch_db, query):
                agree += 1
        assert agree >= 0.80 * len(queries), (
            f"executors agree on only {agree}/{len(queries)} queries"
        )


# ---------------------------------------------------------------------------
# mode 2: the continuous stack sampler
# ---------------------------------------------------------------------------


class TestStackSampler:
    def test_sample_once_captures_this_thread(self):
        sampler = StackSampler(hz=1.0)
        taken = sampler.sample_once()
        assert taken >= 1
        collapsed = sampler.collapsed()
        assert "test_sample_once_captures_this_thread" in collapsed
        # collapsed-stack grammar: "frame;frame;... count" per line
        for line in collapsed.splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and count.isdigit()

    def test_skip_ident_excludes_a_thread(self):
        # other suites may leave daemon threads behind, so only assert
        # that THIS thread's frames are absent, not that nothing sampled
        sampler = StackSampler(hz=1.0)
        sampler.sample_once(skip_ident=threading.get_ident())
        assert "test_skip_ident_excludes_a_thread" not in sampler.collapsed()

    def test_span_tag_prefixes_worker_stacks(self):
        trace = Trace("t0000ff01")
        try:
            assert active_spans()[threading.get_ident()] == (
                "t0000ff01", "query"
            )
            sampler = StackSampler(hz=1.0)
            sampler.sample_once()
            tagged = [
                line for line in sampler.collapsed().splitlines()
                if line.startswith("query:query;")
            ]
            assert tagged
        finally:
            trace.finish()
        assert threading.get_ident() not in active_spans()

    def test_distinct_stack_bound_counts_drops(self):
        registry = MetricsRegistry()
        sampler = StackSampler(hz=1.0, registry=registry, max_stacks=1)
        sampler.sample_once()

        def deeper():
            return sampler.sample_once()

        assert deeper() >= 0  # second distinct stack hits the bound
        assert sampler.dropped >= 1
        assert registry.counter("profiler.dropped").value() >= 1
        assert sampler.snapshot()["distinct_stacks"] == 1

    def test_max_depth_truncates_chains(self):
        sampler = StackSampler(hz=1.0, max_depth=2)
        sampler.sample_once()
        for line in sampler.collapsed().splitlines():
            stack, _, _ = line.rpartition(" ")
            assert len(stack.split(";")) <= 2

    def test_lifecycle_thread_starts_and_stops(self):
        sampler = StackSampler(hz=500.0)
        sampler.start()
        try:
            assert sampler.running
            deadline = time.monotonic() + 2.0
            while sampler.samples == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert sampler.samples > 0
        finally:
            sampler.stop()
        assert not sampler.running

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            StackSampler(hz=0)


# ---------------------------------------------------------------------------
# the Profiler facade & ring
# ---------------------------------------------------------------------------


class _FakeResult:
    def __init__(self, trace_id, metrics):
        self.trace_id = trace_id
        self.metrics = metrics
        self.executor = "iter"


def _metrics_tree(cpu_ns=1_000_000):
    from repro.engine.context import PlanMetrics

    root = OperatorMetrics(label="PScan(r)", cpu_ns=cpu_ns, rows_out=1)
    return PlanMetrics(root)


class TestProfilerRing:
    def test_record_and_lookup_by_trace(self):
        profiler = Profiler()
        profile = profiler.record(
            "q", _FakeResult("t01", [_metrics_tree()]), 0.5
        )
        assert profile is not None and profile.cpu_ms == 1.0
        assert profiler.for_trace("t01") is profile
        assert profiler.for_trace("t99") is None

    def test_empty_metrics_not_recorded(self):
        profiler = Profiler()
        assert profiler.record("q", _FakeResult("t01", []), 0.1) is None
        assert profiler.recorded == 0

    def test_ring_evicts_oldest(self):
        profiler = Profiler(ring_capacity=2)
        for index in range(3):
            profiler.record(
                "q", _FakeResult(f"t{index:02x}", [_metrics_tree()]), 0.1
            )
        assert profiler.for_trace("t00") is None
        assert profiler.for_trace("t02") is not None
        assert profiler.recorded == 3
        assert len(profiler.profiles()) == 2

    def test_payload_shape(self):
        registry = MetricsRegistry()
        registry.counter("profiler.queries", "profiles recorded")
        profiler = Profiler(registry=registry)
        profiler.record("q", _FakeResult("t01", [_metrics_tree()]), 0.1)
        payload = profiler.payload()
        assert payload["recorded"] == 1
        entry = payload["ring"][0]
        assert entry["trace_id"] == "t01" and entry["top_cpu"]
        assert payload["sampler"] is None
        assert profiler.flamegraph() is None
        assert registry.counter("profiler.queries").value() == 1

    def test_query_profile_flattens_depth(self):
        db = make_db(profile=True)
        result = db.query(ITEM_QUERY, physical=True, stats=True)
        profile = QueryProfile.from_result(ITEM_QUERY, result, 0.2)
        assert profile.operators
        assert {op["depth"] for op in profile.operators} >= {0}
        assert profile.cpu_ms == pytest.approx(
            sum(m.total_cpu_ns() for m in result.metrics) / 1e6, abs=0.001
        )


# ---------------------------------------------------------------------------
# surfaces: qlog records, slow-query stamping, shard aggregation
# ---------------------------------------------------------------------------


class TestQlogProfileFields:
    def test_profiled_record_carries_cpu_and_memory(self):
        db = make_db(profile=True)
        result = db.query(ITEM_QUERY, physical=True, stats=True)
        record = build_record(ITEM_QUERY, result, 0.1, "ok")
        rows = record["operators"]
        assert rows and all("depth" in row for row in rows)
        assert any(row.get("cpu_ms", 0) > 0 for row in rows)
        assert all("peak_mem_kb" in row for row in rows)

    def test_unprofiled_record_omits_resource_fields(self):
        db = make_db()
        result = db.query(ITEM_QUERY, physical=True, stats=True)
        record = build_record(ITEM_QUERY, result, 0.1, "ok")
        rows = record["operators"]
        assert rows and all("depth" in row for row in rows)
        assert all("cpu_ms" not in row for row in rows)


class TestSlowQueryStamping:
    def test_entry_carries_plan_executor_and_top_cpu(self):
        db = make_db(profile=True)
        with QueryService(db, slow_query_threshold=0.0) as service:
            service.query(ITEM_QUERY)
            entries = service.slow_queries.entries()
        assert entries
        entry = entries[-1]
        assert entry.plan_fingerprint and entry.executor
        assert entry.top_cpu
        rendered = service.slow_queries.render()
        assert "plan=" in rendered and "cpu#1" in rendered

    def test_stamps_default_empty_without_profiler(self):
        log = SlowQueryLog(threshold=0.0)
        log.consider("q", 0.01, "ok", None)
        entry = log.entries()[-1]
        assert entry.plan_fingerprint == "" and entry.top_cpu == ()


class TestShardProfileAggregation:
    def test_merge_span_aggregates_shard_cpu(self):
        single = Database(metrics=MetricsRegistry(), profile=True)
        for seed in range(3):
            single.add_document(
                generate_xmark(scale=1, seed=seed, name=f"x{seed}.xml")
            )
        single.add_view("v_person", "/people/person[id:s]{/name[id:s, val]}")
        with single.shard(2) as sharded:
            assert isinstance(sharded, ShardedDatabase)
            assert sharded.profile is True
            result = sharded.query(PERSON_QUERY, physical=True, stats=True)
            assert result.counters.get("shard.fanout", 0) > 0
            assert "profiler.shard_cpu_ms" in result.counters
            trace = sharded.tracer.get(result.trace_id)
            merge_spans = [
                span for span in trace.spans()
                if span.name == "shard.merge"
                and "shard.cpu_ms" in span.attributes
            ]
            assert merge_spans
            breakdown = merge_spans[0].attributes["shard.profile"]
            assert sum(s["tasks"] for s in breakdown.values()) >= 2

    def test_unprofiled_scatter_carries_no_side_channel(self):
        single = Database(metrics=MetricsRegistry())
        for seed in range(2):
            single.add_document(
                generate_xmark(scale=1, seed=seed, name=f"x{seed}.xml")
            )
        single.add_view("v_person", "/people/person[id:s]{/name[id:s, val]}")
        with single.shard(2) as sharded:
            result = sharded.query(PERSON_QUERY)
            assert "profiler.shard_cpu_ms" not in result.counters


# ---------------------------------------------------------------------------
# process-health gauges (satellite)
# ---------------------------------------------------------------------------


class TestProcessCollector:
    def test_gauges_refresh_at_scrape_time(self):
        registry = MetricsRegistry()
        register_process_collector(registry)
        text = registry.render_prometheus()
        assert "repro_process_max_rss_bytes" in text
        assert "repro_process_gc_objects" in text
        assert "repro_process_gc_collections" in text
        assert "repro_process_threads" in text
        snapshot = registry.snapshot()
        assert snapshot["process.threads"]["series"][0]["value"] >= 1
        assert snapshot["process.max_rss_bytes"]["series"][0]["value"] > 0

    def test_service_attaches_collector(self):
        db = make_db()
        with QueryService(db) as service:
            assert "process.threads" in service.metrics.render_prometheus()


# ---------------------------------------------------------------------------
# calibration
# ---------------------------------------------------------------------------


def _synthetic_record(coefs):
    """One profiled qlog record: a hash join over two scans, with CPU
    derived from the classes' true coefficients."""
    left_units, right_units = 100.0, 50.0
    join_units = 2.0 * right_units + left_units
    return {
        "outcome": "ok",
        "operators": [
            {
                "label": "PHashJoin(=)", "depth": 0,
                "est": 60.0, "actual": 60,
                "cpu_ms": coefs["hash-join"] * join_units
                + coefs["scan"] * (left_units + right_units),
            },
            {
                "label": "PScan(left)", "depth": 1,
                "est": left_units, "actual": 100,
                "cpu_ms": coefs["scan"] * left_units,
            },
            {
                "label": "PScan(right)", "depth": 1,
                "est": right_units, "actual": 50,
                "cpu_ms": coefs["scan"] * right_units,
            },
        ],
    }


class TestCalibration:
    def test_fits_recover_known_coefficients(self):
        coefs = {"hash-join": 0.004, "scan": 0.002}
        report = calibrate_records(
            [_synthetic_record(coefs) for _ in range(5)]
        )
        assert report.profiled_records == 5
        assert report.fits["scan"].coefficient == pytest.approx(0.002)
        assert report.fits["hash-join"].coefficient == pytest.approx(0.004)
        assert not report.empty

    def test_flags_mispriced_class(self):
        # the join burns 25x more CPU per unit than the scans; the join
        # dominates the workload-wide coefficient, so the scans surface
        # as the >3x-off outlier class
        coefs = {"hash-join": 0.05, "scan": 0.002}
        report = calibrate_records(
            [_synthetic_record(coefs) for _ in range(5)]
        )
        assert "scan" in report.flagged()
        rendered = report.render()
        assert "MISPRICED" in rendered
        as_dict = report.as_dict()
        flagged = [c for c in as_dict["classes"] if c["flagged"]]
        assert [c["class"] for c in flagged] == ["scan"]

    def test_unprofiled_and_failed_records_skipped(self):
        records = [
            {"outcome": "error", "operators": []},
            {"outcome": "ok", "operators": [
                {"label": "PScan(r)", "depth": 0, "est": 10.0, "actual": 10}
            ]},
        ]
        report = calibrate_records(records)
        assert report.records == 2 and report.profiled_records == 0
        assert report.empty
        assert "no profiled operators" in report.render()

    def test_missing_estimates_counted_as_skipped(self):
        record = {
            "outcome": "ok",
            "operators": [
                {"label": "PScan(r)", "depth": 0, "actual": 10,
                 "cpu_ms": 0.5, "est": None},
            ],
        }
        report = calibrate_records([record])
        assert report.fits["scan"].skipped == 1
        assert report.fits["scan"].points == 0

    def test_classify_longest_known_prefix(self):
        assert classify("PHashJoin(a=b)") == "hash-join"
        assert classify("PStackTreeDescJoin") == "stacktree-desc"
        assert classify("BaseEval(root{...})") == "base-eval"
        assert classify("SomethingNew") == "other"

    def test_end_to_end_over_profiled_battery(self):
        """`repro calibrate` substance: recording the XMark battery with
        profiling on yields a coefficient for every exercised class."""
        db = _battery_db("batch")
        records = []
        for query in XMARK_QUERIES.values():
            result = db.query(query, physical=True, stats=True)
            records.append(build_record(query, result, 0.0, "ok"))
        report = calibrate_records(records)
        assert report.profiled_records == len(records)
        exercised = [
            fit for fit in report.fits.values() if fit.points > 0
        ]
        assert exercised
        for fit in exercised:
            assert fit.coefficient is not None and fit.coefficient >= 0
        assert report.global_coefficient is not None
        assert isinstance(report, CalibrationReport)


# ---------------------------------------------------------------------------
# service auto-attach & the REPL dot-command
# ---------------------------------------------------------------------------


class TestServiceIntegration:
    def test_service_auto_attaches_profiler_when_db_profiles(self):
        db = make_db(profile=True)
        with QueryService(db) as service:
            assert service.profiler is not None
            service.query(ITEM_QUERY)
            assert service.profiler.recorded == 1
            profile = service.profiler.profiles()[-1]
            assert profile.cpu_ms > 0 and profile.trace_id

    def test_profiler_false_disables(self):
        db = make_db(profile=True)
        with QueryService(db, profiler=False) as service:
            assert service.profiler is None
            service.query(ITEM_QUERY)  # must not crash without a profiler

    def test_plain_service_has_no_profiler(self):
        with QueryService(make_db()) as service:
            assert service.profiler is None

    def test_profiled_service_promotes_to_physical_stats(self):
        db = make_db(profile=True)
        with QueryService(db) as service:
            result = service.query(ITEM_QUERY)  # no stats requested
            assert result.metrics, "profiling must force instrumented runs"
            assert sum(m.total_cpu_ns() for m in result.metrics) > 0

    def test_repl_profile_command_toggles(self, capsys):
        db = make_db()
        assert run_command(db, ".profile")
        assert "profile: off" in capsys.readouterr().out
        assert run_command(db, ".profile on")
        assert "profile: on" in capsys.readouterr().out
        assert db.profile is True
        assert run_command(db, ".profile nonsense")
        assert "invalid profile setting" in capsys.readouterr().out
        assert db.profile is True
        assert run_command(db, ".profile off")
        capsys.readouterr()
        assert db.profile is False
