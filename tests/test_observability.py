"""The unified observability layer: metrics registry + exposition,
span-based tracing, the latency-recorder fixes (nearest-rank percentile,
bounded ring), the /metrics HTTP endpoint, the slow-query log, and the
multi-threaded reconciliation stress test the ISSUE asks for."""

import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro import Database, QueryService
from repro.core.httpapi import start_observability_server
from repro.core.service import LatencyRecorder, RetryPolicy
from repro.engine.faults import FaultInjector
from repro.engine.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    sanitize_metric_name,
)
from repro.engine.tracing import SlowQueryLog, Trace, Tracer
from repro.workloads import generate_xmark

PERSON_QUERY = "for $p in //people/person return $p/name/text()"
AUCTION_QUERY = "//open_auctions/open_auction/initial/text()"
ITEM_QUERY = "//regions//item/name/text()"


def make_db(**kwargs):
    db = Database(metrics=MetricsRegistry(), **kwargs)
    db.add_document(generate_xmark(scale=1, seed=0))
    db.add_view("v_person", "//people/person[id:s]{/name[id:s, val]}")
    db.add_view("v_item", "//regions//item[id:s]{/name[id:s, val]}")
    return db


@pytest.fixture()
def db():
    return make_db()


@pytest.fixture()
def service(db):
    svc = QueryService(db, cache_capacity=16, max_workers=4)
    yield svc
    svc.shutdown()


# ---------------------------------------------------------------------------
# satellite: nearest-rank percentile fix
# ---------------------------------------------------------------------------


class TestNearestRankPercentile:
    """Regression tests against the canonical nearest-rank fixtures: the
    old ``round(pct/100*(n-1))`` formula gets several of these wrong."""

    def make(self, samples):
        recorder = LatencyRecorder(capacity=100)
        for sample in samples:
            recorder.record(sample)
        return recorder

    @pytest.mark.parametrize(
        "pct, expected",
        [(5, 15), (30, 20), (40, 20), (50, 35), (60, 35), (80, 40), (100, 50)],
    )
    def test_wikipedia_fixture(self, pct, expected):
        # the worked nearest-rank example: ordered samples 15 20 35 40 50
        recorder = self.make([15, 20, 35, 40, 50])
        assert recorder.percentile(pct) == expected

    def test_p40_of_five_was_the_bug(self):
        # round(0.4 * 4) == 2 under banker's rounding -> the OLD formula
        # returned ordered[2] == 35; true nearest-rank is ceil(0.4*5)=2 ->
        # ordered[1] == 20
        recorder = self.make([15, 20, 35, 40, 50])
        assert recorder.percentile(40) == 20

    def test_single_sample_every_percentile(self):
        recorder = self.make([7.0])
        for pct in (0, 1, 50, 99, 100):
            assert recorder.percentile(pct) == 7.0

    def test_p100_is_max_p0_is_min(self):
        recorder = self.make(list(range(1, 101)))
        assert recorder.percentile(100) == 100
        assert recorder.percentile(0) == 1

    def test_p50_even_count_is_lower_middle(self):
        # nearest-rank never interpolates: ceil(0.5*4) = 2 -> ordered[1]
        recorder = self.make([1, 2, 3, 4])
        assert recorder.percentile(50) == 2

    def test_empty_recorder_returns_none(self):
        recorder = LatencyRecorder(capacity=10)
        assert recorder.percentile(50) is None
        assert recorder.percentiles() == {}


# ---------------------------------------------------------------------------
# satellite: bounded latency ring
# ---------------------------------------------------------------------------


class TestBoundedLatencyRing:
    def test_ring_caps_retained_samples(self):
        recorder = LatencyRecorder(capacity=5)
        for value in range(1, 9):
            recorder.record(float(value))
        assert len(recorder) == 5
        assert recorder.dropped == 3

    def test_percentiles_describe_newest_samples(self):
        recorder = LatencyRecorder(capacity=3)
        for value in (100.0, 200.0, 1.0, 2.0, 3.0):
            recorder.record(value)
        assert recorder.percentile(100) == 3.0  # 100/200 were overwritten

    def test_outcome_tags_survive_wraparound(self):
        recorder = LatencyRecorder(capacity=2)
        recorder.record(0.1, outcome="ok")
        recorder.record(0.2, outcome="error")
        recorder.record(0.3, outcome="timeout")
        assert recorder.outcomes() == {"error": 1, "timeout": 1}

    def test_drops_surface_in_registry_and_render(self):
        registry = MetricsRegistry()
        recorder = LatencyRecorder(capacity=2, registry=registry)
        for value in range(4):
            recorder.record(float(value))
        assert registry.counter_value("latency.samples_dropped") == 2
        assert "dropped=2" in recorder.render()

    def test_registry_histogram_sees_every_sample(self):
        registry = MetricsRegistry()
        recorder = LatencyRecorder(capacity=2, registry=registry)
        for _ in range(10):
            recorder.record(0.01, outcome="ok")
        histogram = registry.histogram("query.latency.seconds")
        assert histogram.count(outcome="ok") == 10  # ring wrapped, aggregate didn't

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LatencyRecorder(capacity=0)


# ---------------------------------------------------------------------------
# the metrics registry
# ---------------------------------------------------------------------------


class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labeled_counter_requires_declared_labels(self):
        counter = Counter("c", labelnames=("module",))
        counter.inc(module="v_person")
        assert counter.value(module="v_person") == 1.0
        with pytest.raises(ValueError):
            counter.inc(other="x")

    def test_histogram_le_bucket_semantics(self):
        histogram = Histogram("h", buckets=(1.0, 5.0))
        for value in (0.5, 1.0, 3.0, 5.0, 99.0):
            histogram.observe(value)
        child = dict(histogram.items())[()]
        # le-semantics: a sample exactly at a bound lands in that bucket
        assert child.bucket_counts == [2, 2, 1]
        assert child.count == 5
        assert child.total == pytest.approx(108.5)

    def test_histogram_quantile_upper_bound(self):
        histogram = Histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 0.6, 7.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(1.0) == 10.0

    def test_registry_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_counter_total_sums_labels(self):
        registry = MetricsRegistry()
        registry.inc("c", module="a")
        registry.inc("c", 2.0, module="b")
        assert registry.counter_total("c") == 3.0

    def test_collector_refreshes_on_scrape(self):
        registry = MetricsRegistry()
        state = {"n": 1}
        registry.register_collector(
            lambda reg: reg.set_gauge("things", state["n"])
        )
        assert "things 1" in registry.render_prometheus(prefix="")
        state["n"] = 7
        assert "things 7" in registry.render_prometheus(prefix="")

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("plan_cache.hit") == "plan_cache_hit"
        assert sanitize_metric_name("9lives") == "_9lives"


PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"            # metric name
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'     # first label
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'  # more labels
    r" [-+]?[0-9.eE+naif]+$"                 # value (incl +Inf / nan)
)


class TestPrometheusExposition:
    def test_every_sample_line_matches_the_grammar(self):
        registry = MetricsRegistry()
        registry.inc("plan_cache.hit")
        registry.set_gauge("plan_cache.size", 3, shard="a")
        registry.observe("query.latency.seconds", 0.02, outcome="ok")
        for line in registry.render_prometheus().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*", line)
            else:
                assert PROM_LINE.match(line), line

    def test_counter_gets_total_suffix(self):
        registry = MetricsRegistry()
        registry.inc("retry.attempts")
        text = registry.render_prometheus()
        assert "repro_retry_attempts_total 1" in text
        assert "# TYPE repro_retry_attempts_total counter" in text

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = registry.render_prometheus()
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="1"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_count 3" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.inc("c", module='with"quote')
        assert 'module="with\\"quote"' in registry.render_prometheus()

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.inc("a.b")
        registry.observe("h", 0.3)
        parsed = json.loads(json.dumps(registry.snapshot()))
        assert parsed["a.b"]["kind"] == "counter"
        assert parsed["h"]["series"][0]["count"] == 1

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


# ---------------------------------------------------------------------------
# tracing primitives
# ---------------------------------------------------------------------------


class TestTracePrimitives:
    def test_span_tree_mirrors_nesting(self):
        trace = Trace("t1")
        outer = trace.start_span("extract")
        inner = trace.start_span("rewrite-search")
        trace.finish_span(inner)
        trace.finish_span(outer)
        trace.finish()
        assert trace.complete()
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == trace.root.span_id
        assert [s.name for s in trace.spans()] == [
            "query", "extract", "rewrite-search",
        ]

    def test_double_finish_raises(self):
        trace = Trace("t2")
        span = trace.start_span("compile")
        trace.finish_span(span)
        with pytest.raises(RuntimeError, match="finished twice"):
            span.finish()

    def test_finish_closes_open_spans_with_final_status(self):
        trace = Trace("t3")
        trace.start_span("execute")  # never explicitly finished
        trace.finish("error")
        assert trace.complete()
        assert trace.find("execute")[0].status == "error"
        assert trace.root.status == "error"

    def test_events_are_zero_duration(self):
        trace = Trace("t4")
        event = trace.event("cache.hit", key="q1")
        assert event.duration == 0.0
        assert event.attributes == {"key": "q1"}
        trace.finish()

    def test_render_shows_status_and_attributes(self):
        trace = Trace("t5")
        span = trace.start_span("unit", index=1)
        trace.finish_span(span, "error")
        trace.finish()
        rendered = trace.render()
        assert "unit" in rendered and "status=error" in rendered
        assert "index=1" in rendered

    def test_tracer_ring_evicts_oldest(self):
        tracer = Tracer(capacity=2)
        first = tracer.start_trace()
        second = tracer.start_trace()
        third = tracer.start_trace()
        assert tracer.get(first.trace_id) is None
        assert tracer.get(second.trace_id) is second
        assert tracer.get(third.trace_id) is third
        assert tracer.started == 3 and tracer.evicted == 1
        assert tracer.trace_ids() == [second.trace_id, third.trace_id]


# ---------------------------------------------------------------------------
# tentpole: the full query lifecycle is traced end-to-end
# ---------------------------------------------------------------------------


class TestLifecycleTracing:
    def test_result_carries_trace_id_and_tree_is_complete(self, db, service):
        result = service.query(PERSON_QUERY)
        assert result.trace_id
        trace = service.trace(result.trace_id)
        assert trace is not None and trace.done and trace.complete()
        names = {span.name for span in trace.spans()}
        for expected in (
            "query", "parse", "extract", "rewrite-search",
            "rank", "assemble", "execute", "unit", "pattern",
        ):
            assert expected in names, f"missing span {expected!r}"
        assert "cache.miss" in names

    def test_stats_run_adds_compile_span(self, service):
        result = service.query(PERSON_QUERY, stats=True)
        trace = service.trace(result.trace_id)
        compile_spans = trace.find("compile")
        assert compile_spans and all(span.ended for span in compile_spans)

    def test_cache_hit_recorded_as_event_span(self, service):
        service.query(PERSON_QUERY)
        hit = service.query(PERSON_QUERY)
        trace = service.trace(hit.trace_id)
        assert trace.find("cache.hit")
        assert not trace.find("parse")  # a hit skips the frontend entirely

    def test_explain_report_carries_trace_id(self, service):
        report = service.explain(PERSON_QUERY)
        assert report.trace_id
        assert service.trace(report.trace_id).complete()

    def test_parse_error_finishes_trace_with_error_status(self, db):
        with pytest.raises(Exception):
            db.query("for $x in")
        trace = db.tracer.traces()[-1]
        assert trace.done and trace.root.status == "error"
        assert trace.complete()

    def test_every_query_gets_a_distinct_trace(self, service):
        ids = {service.query(PERSON_QUERY).trace_id for _ in range(5)}
        assert len(ids) == 5

    def test_tracing_disabled_yields_no_trace_id(self):
        db = make_db(tracer=False)
        with QueryService(db, max_workers=2) as service:
            result = service.query(PERSON_QUERY)
            assert result.trace_id is None
            assert service.trace("tdeadbeef") is None

    def test_degradation_events_stamp_the_trace_id(self, db, service):
        db.fault_injector = FaultInjector("relation.scan@v_person:corrupt:1.0")
        result = service.query(PERSON_QUERY)
        assert result.degraded
        assert any(
            f"[trace {result.trace_id}]" in event
            for event in result.degradation_events
        )
        trace = service.trace(result.trace_id)
        assert trace.find("fault.injected")

    def test_retry_spans_under_chaos(self, db, service):
        db.fault_injector = FaultInjector(
            "relation.scan@v_person:transient:1.0:2", seed=1
        )
        result = service.query(PERSON_QUERY)
        trace = service.trace(result.trace_id)
        retries = trace.find("retry")
        assert retries and all(span.ended for span in retries)
        assert result.counters["retry.recovered"] == 1.0


# ---------------------------------------------------------------------------
# tentpole: service counters land in the registry
# ---------------------------------------------------------------------------


class TestServiceMetrics:
    def test_family_schema_present_before_any_query(self, service):
        text = service.metrics.render_prometheus()
        for family in (
            "repro_plan_cache_hit_total",
            "repro_plan_cache_miss_total",
            "repro_retry_attempts_total",
            "repro_breaker_opened_total",
            "repro_faults_injected_transient_total",
            "repro_latency_samples_dropped_total",
            "repro_queries_timeout_total",
        ):
            assert family in text, f"missing family {family}"
        # the latency histogram is labeled, so it exposes only its
        # HELP/TYPE schema until the first sample arrives
        assert "# TYPE repro_query_latency_seconds histogram" in text

    def test_cache_counters_flow_through(self, service):
        service.query(PERSON_QUERY)
        service.query(PERSON_QUERY)
        metrics = service.metrics
        assert metrics.counter_value("plan_cache.hit") == 1.0
        assert metrics.counter_value("plan_cache.miss") == 1.0

    def test_latency_histogram_labeled_by_outcome(self, service):
        service.query(PERSON_QUERY)
        histogram = service.metrics.histogram("query.latency.seconds")
        assert histogram.count(outcome="ok") == 1

    def test_plan_cache_collector_mirrors_stats(self, service):
        service.query(PERSON_QUERY)
        service.query(AUCTION_QUERY)
        service.metrics.collect()  # scrape-time refresh
        assert service.metrics.counter_value("plan_cache.misses") == 2.0
        gauge = service.metrics.gauge("plan_cache.size")
        assert gauge.value() == 2.0

    def test_breaker_counters_labeled_by_module(self, db, service):
        db.fault_injector = FaultInjector("relation.scan@v_person:corrupt:1.0")
        service.query(PERSON_QUERY)
        assert (
            service.metrics.counter_value("breaker.failures", module="v_person")
            >= 1.0
        )

    def test_compile_join_choice_counted(self, service):
        joined = (
            "for $p in //people/person return ($p/name/text(), $p/id/text())"
        )
        service.query(joined)
        total = sum(
            service.metrics.counter_total(f"compile.join.{kind}")
            for kind in ("hash", "nested", "merge", "index")
        )
        assert total >= 0.0  # family may legitimately be empty on this plan


# ---------------------------------------------------------------------------
# slow-query log
# ---------------------------------------------------------------------------


class TestSlowQueryLog:
    def test_none_threshold_disables_capture(self):
        log = SlowQueryLog(threshold=None)
        assert log.consider("q", 99.0, "ok", None) is None
        assert log.captured == 0

    def test_capture_preserves_rendered_tree(self):
        log = SlowQueryLog(threshold=0.0)
        trace = Trace("t9")
        trace.finish()
        entry = log.consider("//a", 0.5, "ok", trace)
        assert entry.trace_id == "t9"
        assert "query" in entry.rendered
        assert "500.0ms" in log.render()

    def test_bounded_capacity(self):
        log = SlowQueryLog(threshold=0.0, capacity=2)
        for index in range(5):
            log.consider(f"q{index}", 1.0, "ok", None)
        assert len(log) == 2 and log.captured == 5

    def test_service_captures_slow_queries_end_to_end(self, db):
        with QueryService(
            db, max_workers=2, slow_query_threshold=0.0
        ) as service:
            result = service.query(PERSON_QUERY)
            entries = service.slow_queries.entries()
            assert entries and entries[0].trace_id == result.trace_id
            assert "execute" in entries[0].rendered
            assert service.metrics.counter_value("slow_queries.captured") == 1


# ---------------------------------------------------------------------------
# the /metrics HTTP endpoint
# ---------------------------------------------------------------------------


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


class TestHTTPEndpoint:
    @pytest.fixture()
    def server(self, service):
        server = start_observability_server(service, port=0)
        yield server
        server.stop()

    def test_metrics_route_serves_prometheus_text(self, service, server):
        service.query(PERSON_QUERY)
        status, content_type, body = fetch(server.url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert "repro_plan_cache_miss_total 1" in body
        assert "repro_query_latency_seconds_count" in body

    def test_metrics_json_route(self, service, server):
        service.query(PERSON_QUERY)
        status, content_type, body = fetch(server.url + "/metrics.json")
        assert status == 200 and "json" in content_type
        payload = json.loads(body)
        assert payload["plan_cache.miss"]["series"][0]["value"] == 1.0

    def test_trace_route_round_trip(self, service, server):
        result = service.query(PERSON_QUERY)
        status, _, body = fetch(server.url + f"/trace/{result.trace_id}")
        assert status == 200
        payload = json.loads(body)
        assert payload["trace_id"] == result.trace_id
        assert payload["root"]["name"] == "query"
        _, _, listing = fetch(server.url + "/traces")
        assert result.trace_id in json.loads(listing)["traces"]

    def test_trace_route_text_format(self, service, server):
        result = service.query(PERSON_QUERY)
        _, content_type, body = fetch(
            server.url + f"/trace/{result.trace_id}?format=text"
        )
        assert content_type.startswith("text/plain")
        assert body.startswith("query")

    def test_unknown_trace_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(server.url + "/trace/tnope")
        assert excinfo.value.code == 404

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(server.url + "/nothing")
        assert excinfo.value.code == 404

    def test_health_and_slow_routes(self, service, server):
        status, _, body = fetch(server.url + "/health")
        assert status == 200
        assert json.loads(body) == {
            "modules": {}, "live": True, "ready": True,
        }
        status, _, body = fetch(server.url + "/slow")
        assert status == 200
        assert json.loads(body)["captured"] == 0

    def test_liveness_and_readiness_split(self, service, server):
        status, _, body = fetch(server.url + "/health/live")
        assert status == 200 and json.loads(body) == {"live": True}
        status, _, body = fetch(server.url + "/health/ready")
        assert status == 200 and json.loads(body) == {"ready": True}
        # sustained shed flips readiness (503 + admission detail) while
        # liveness keeps answering 200 — the split's whole point
        for _ in range(8):
            service.admission.note_shed()
        with pytest.raises(urllib.error.HTTPError) as not_ready:
            fetch(server.url + "/health/ready")
        payload = json.loads(not_ready.value.read().decode("utf-8"))
        assert not_ready.value.code == 503 and payload["ready"] is False
        assert "admission" in payload
        status, _, _ = fetch(server.url + "/health/live")
        assert status == 200

    def test_concurrent_scrapes_during_queries(self, service, server):
        errors = []

        def scrape():
            try:
                for _ in range(5):
                    fetch(server.url + "/metrics")
            except Exception as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        scraper = threading.Thread(target=scrape)
        scraper.start()
        for _ in range(10):
            service.query(PERSON_QUERY)
        scraper.join()
        assert not errors


# ---------------------------------------------------------------------------
# satellite: 8-worker chaos stress test with exact reconciliation
# ---------------------------------------------------------------------------


RECONCILED_FAMILIES = (
    "plan_cache.hit",
    "plan_cache.miss",
    "plan_cache.invalidated",
    "retry.attempts",
    "retry.recovered",
    "faults.injected.transient",
    "degraded.reroutes",
    "degraded.base_fallbacks",
)


class TestConcurrentReconciliation:
    def test_registry_reconciles_with_per_query_counters(self, db):
        # times-bounded transient faults: every query eventually succeeds,
        # so every per-query counters dict is returned and summable.  The
        # 6-injection budget is global, so under unlucky interleaving one
        # query can absorb several faults itself — max_attempts must cover
        # the whole budget or the test races on thread scheduling.
        db.fault_injector = FaultInjector(
            "relation.scan@v_person:transient:1.0:6", seed=7
        )
        queries = [PERSON_QUERY, AUCTION_QUERY, ITEM_QUERY]
        results = []
        results_lock = threading.Lock()
        errors = []

        with QueryService(
            db,
            cache_capacity=16,
            max_workers=8,
            retry_policy=RetryPolicy(max_attempts=7, base_delay=0.002),
        ) as service:

            def worker(worker_id):
                try:
                    for index in range(6):
                        result = service.query(
                            queries[(worker_id + index) % len(queries)]
                        )
                        with results_lock:
                            results.append(result)
                except Exception as error:  # noqa: BLE001 - surfaced below
                    errors.append(error)

            threads = [
                threading.Thread(target=worker, args=(n,)) for n in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert not errors, errors
            assert len(results) == 48

            for family in RECONCILED_FAMILIES:
                expected = sum(
                    result.counters.get(family, 0.0) for result in results
                )
                actual = service.metrics.counter_total(family)
                assert actual == expected, (
                    f"{family}: registry={actual} per-query-sum={expected}"
                )
            # the chaos actually fired: this test must not pass vacuously
            assert service.metrics.counter_total("faults.injected.transient") > 0

            # every query produced a sample in the shared recorder
            assert len(service.latency) == 48
            histogram = service.metrics.histogram("query.latency.seconds")
            assert histogram.count(outcome="ok") == 48

    def test_no_span_orphaned_or_double_closed(self, db):
        db.fault_injector = FaultInjector(
            "relation.scan@v_person:transient:1.0:4", seed=3
        )
        trace_ids = []
        ids_lock = threading.Lock()

        with QueryService(db, cache_capacity=16, max_workers=8) as service:

            def worker(worker_id):
                for index in range(4):
                    result = service.query(
                        [PERSON_QUERY, AUCTION_QUERY][(worker_id + index) % 2]
                    )
                    with ids_lock:
                        trace_ids.append(result.trace_id)

            threads = [
                threading.Thread(target=worker, args=(n,)) for n in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert len(trace_ids) == 32 and all(trace_ids)
            retained = 0
            for trace_id in trace_ids:
                trace = service.trace(trace_id)
                if trace is None:  # evicted from the tracer ring
                    continue
                retained += 1
                assert trace.done, f"trace {trace_id} never finished"
                assert trace.complete(), f"open span inside {trace_id}"
            assert retained > 0


# ---------------------------------------------------------------------------
# satellite: /profile and /flamegraph error paths + scrape-during-profiling
# ---------------------------------------------------------------------------


class TestProfileEndpointErrorPaths:
    """The profiling routes must fail with targeted hints, not stack
    traces: disabled profiler, empty ring, malformed and unknown trace
    ids each get a distinct, documented response."""

    @pytest.fixture()
    def server(self, service):
        # the default service has no profiler attached at all
        server = start_observability_server(service, port=0)
        yield server
        server.stop()

    def _error_payload(self, excinfo):
        return json.loads(excinfo.value.read().decode("utf-8"))

    def test_profile_disabled_is_404_with_hint(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(server.url + "/profile")
        assert excinfo.value.code == 404
        payload = self._error_payload(excinfo)
        assert payload["error"] == "profiler disabled"
        assert "--profile" in payload["hint"]

    def test_flamegraph_disabled_is_404_with_hint(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(server.url + "/flamegraph")
        assert excinfo.value.code == 404
        assert "--sample-hz" in self._error_payload(excinfo)["hint"]

    def test_empty_ring_serves_cleanly(self, db):
        with QueryService(db, profiler=True) as service:
            with start_observability_server(service, port=0) as server:
                status, _, body = fetch(server.url + "/profile")
        assert status == 200
        payload = json.loads(body)
        assert payload["recorded"] == 0 and payload["ring"] == []

    def test_malformed_trace_id_is_400(self, db):
        with QueryService(db, profiler=True) as service:
            with start_observability_server(service, port=0) as server:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    fetch(server.url + "/profile?trace=DROP%20TABLE")
                assert excinfo.value.code == 400
                payload = self._error_payload(excinfo)
                assert "malformed" in payload["error"]
                assert "t0000002a" in payload["hint"]

    def test_unknown_but_wellformed_trace_id_is_404(self, db):
        with QueryService(db, profiler=True) as service:
            with start_observability_server(service, port=0) as server:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    fetch(server.url + "/profile?trace=t00ffee")
                assert excinfo.value.code == 404

    def test_flamegraph_without_sampler_is_404(self, db):
        # profiler attached (attributed ring) but no sampling rate
        with QueryService(db, profiler=True) as service:
            with start_observability_server(service, port=0) as server:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    fetch(server.url + "/flamegraph")
                assert excinfo.value.code == 404
                assert "sampler" in self._error_payload(excinfo)["error"]


class TestScrapeDuringProfiledQueries:
    def test_concurrent_profile_scrapes_see_no_torn_state(self):
        """Scraping /profile, /flamegraph and /metrics while profiled
        queries execute on 4 workers must neither error nor expose a
        half-written profile (every ring entry carries a complete
        operator row set)."""
        db = make_db(profile=True)
        errors = []
        with QueryService(
            db, cache_capacity=16, max_workers=4, sample_hz=200.0
        ) as service:
            with start_observability_server(service, port=0) as server:

                def scrape():
                    try:
                        for _ in range(10):
                            _, _, body = fetch(server.url + "/profile")
                            for entry in json.loads(body)["ring"]:
                                assert entry["trace_id"]
                                assert entry["cpu_ms"] >= 0.0
                            fetch(server.url + "/flamegraph")
                            fetch(server.url + "/metrics")
                    except Exception as error:  # noqa: BLE001
                        errors.append(error)

                scrapers = [
                    threading.Thread(target=scrape) for _ in range(3)
                ]
                for thread in scrapers:
                    thread.start()
                for _ in range(12):
                    service.query(PERSON_QUERY)
                    service.query(ITEM_QUERY)
                for thread in scrapers:
                    thread.join()
        assert not errors
        # every profile in the ring is complete: operators present, the
        # roots' inclusive CPU sums to the profile's headline number
        profiles = []
        with QueryService(db, profiler=True) as service:
            service.query(PERSON_QUERY)
            profiles = service.profiler.profiles()
        assert profiles and all(p.operators for p in profiles)
