"""Shared fixtures: the thesis' running examples and synthetic corpora."""

import pytest

from repro.summary import build_enhanced_summary
from repro.workloads import generate_dblp, generate_xmark
from repro.xmldata import load

#: Figure 2.5 — the bibliographic running example
BIB_XML = """
<library>
  <book year="1999">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <author>Suciu</author>
  </book>
  <book>
    <title>The Syntactic Web</title>
    <author>Tom Lerners-Bee</author>
  </book>
  <phdthesis year="2004">
    <title>The Web: next generation</title>
    <author>Jim Smith</author>
  </phdthesis>
</library>
"""

#: Figure 5.2 flavor — a small auction fragment with recursion-ready markup
AUCTION_XML = """
<site>
  <regions>
    <item id="i1">
      <name>Fish</name>
      <description>
        <parlist>
          <listitem><keyword>rare</keyword><keyword>big</keyword></listitem>
          <listitem><text>plain text</text></listitem>
        </parlist>
      </description>
      <mail>first</mail>
    </item>
    <item id="i2">
      <name>Rock</name>
      <mail>second</mail>
    </item>
  </regions>
</site>
"""


@pytest.fixture(scope="session")
def bib_doc():
    return load(BIB_XML, "bib.xml")


@pytest.fixture(scope="session")
def bib_summary(bib_doc):
    return build_enhanced_summary(bib_doc)


@pytest.fixture(scope="session")
def auction_doc():
    return load(AUCTION_XML, "auction.xml")


@pytest.fixture(scope="session")
def auction_summary(auction_doc):
    return build_enhanced_summary(auction_doc)


@pytest.fixture(scope="session")
def xmark_doc():
    return generate_xmark(scale=1, seed=0)


@pytest.fixture(scope="session")
def xmark_summary(xmark_doc):
    return build_enhanced_summary(xmark_doc)


@pytest.fixture(scope="session")
def dblp_doc():
    return generate_dblp(scale=1, seed=1)


@pytest.fixture(scope="session")
def dblp_summary(dblp_doc):
    return build_enhanced_summary(dblp_doc)
