"""Tests for pattern minimization under summary constraints (§4.5),
including the Figure 4.12 scenario where full minimization beats
S-contraction."""

import pytest

from repro.core import (
    contractions,
    is_equivalent,
    minimize_by_contraction,
    minimize_under_summary,
    parse_pattern,
    pattern_from_path,
)
from repro.summary import PathSummary


@pytest.fixture()
def fig412_summary():
    """Figure 4.12 flavor: two a-branches both funneling into f/e, so that
    //a//f//e is equivalent to the two-branch pattern but smaller than any
    contraction."""
    return PathSummary.from_paths(
        ["/r/a/b/d/f/e", "/r/a/c/d/f/e", "/r/a/g"]
    )


def fig412_pattern():
    """t: //a{//b//e?, //c//e?} — spelled as a two-branch conjunctive
    pattern returning e."""
    return parse_pattern("//a{//d{//f{//e[id:s]}}}")


class TestContractions:
    def test_contraction_never_touches_return_nodes(self):
        pattern = parse_pattern("//a{//b{//e[id:s]}}")
        for contraction in contractions(pattern):
            assert any(n.store_id for n in contraction.nodes())

    def test_contraction_reconnects_children(self):
        pattern = parse_pattern("//a{//b{//e[id:s]}}")
        results = list(contractions(pattern))
        sizes = sorted(p.size() for p in results)
        assert sizes == [2, 2]

    def test_redundant_node_contracts_away(self, fig412_summary):
        redundant = parse_pattern("//a{//d{//f{//e[id:s]}}}")
        minimal = minimize_by_contraction(redundant, fig412_summary)
        assert minimal
        best = min(p.size() for p in minimal)
        # f is forced between d and e by the summary: contraction can drop
        # d and f
        assert best <= 2

    def test_minimal_patterns_stay_equivalent(self, fig412_summary):
        pattern = fig412_pattern()
        for minimal in minimize_by_contraction(pattern, fig412_summary):
            assert is_equivalent(pattern, minimal, fig412_summary)


class TestFullMinimization:
    def test_summary_labels_beat_contraction(self):
        """A pattern //a//b//c//e whose b and c can be replaced by the
        single summary label f lying on every path to e."""
        summary = PathSummary.from_paths(["/r/a/x/f/e", "/r/a/y/f/e", "/r/f/z"])
        pattern = parse_pattern("//a{//f{//e[id:s]}}")
        minima = minimize_under_summary(pattern, summary)
        assert minima
        best = min(p.size() for p in minima)
        assert best <= 2
        for candidate in minima:
            assert is_equivalent(pattern, candidate, summary)

    def test_multi_return_falls_back_to_contraction(self, fig412_summary):
        pattern = parse_pattern("//a{//f[id:s]{//e[id:s]}}")
        minima = minimize_under_summary(pattern, fig412_summary)
        assert minima
        for candidate in minima:
            assert is_equivalent(pattern, candidate, fig412_summary)

    def test_already_minimal_pattern_is_returned(self, fig412_summary):
        pattern = pattern_from_path("//g")
        minima = minimize_under_summary(pattern, fig412_summary)
        assert min(p.size() for p in minima) == 1
