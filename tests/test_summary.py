"""Tests for path summaries (thesis §4.2) and enhanced annotations."""

import pytest

from repro.summary import (
    PathSummary,
    annotate_edges,
    build_enhanced_summary,
    build_summary,
    is_one_to_one_chain,
    is_strong_chain,
    summary_statistics,
)
from repro.xmldata import load


class TestConstruction:
    def test_one_node_per_rooted_path(self, bib_doc, bib_summary):
        paths = {n.rooted_path() for n in bib_doc.nodes()}
        assert len(bib_summary) == len(paths)

    def test_path_numbers_are_preorder_from_one(self, bib_summary):
        numbers = [n.number for n in bib_summary.nodes()]
        assert numbers == list(range(1, len(bib_summary) + 1))
        assert bib_summary.node_by_number(1).label == "library"

    def test_phi_maps_same_path_nodes_together(self, bib_doc, bib_summary):
        books = [n for n in bib_doc.elements() if n.label == "book"]
        images = {bib_summary.node_for(b) for b in books}
        assert len(images) == 1

    def test_text_and_attribute_children(self, bib_summary):
        book = bib_summary.node_for_path("/library/book")
        assert "@year" in book.children
        title = book.children["title"]
        assert "#text" in title.children

    def test_from_paths(self):
        summary = PathSummary.from_paths(["/a/b/c", "/a/d"])
        assert len(summary) == 4
        assert summary.node_for_path("/a/b/c").path_string() == "/a/b/c"

    def test_cardinalities(self, bib_doc, bib_summary):
        book = bib_summary.node_for_path("/library/book")
        assert book.cardinality == 2
        author = bib_summary.node_for_path("/library/book/author")
        assert author.cardinality == 3


class TestNavigation:
    def test_nodes_labeled(self, bib_summary):
        titles = bib_summary.nodes_labeled("title")
        assert {n.path_string() for n in titles} == {
            "/library/book/title",
            "/library/phdthesis/title",
        }

    def test_ancestor_tests_via_intervals(self, bib_summary):
        library = bib_summary.node_for_path("/library")
        title = bib_summary.node_for_path("/library/book/title")
        assert library.is_ancestor_of(title)
        assert not title.is_ancestor_of(library)

    def test_chain(self, bib_summary):
        library = bib_summary.node_for_path("/library")
        text = bib_summary.node_for_path("/library/book/title/#text")
        labels = [n.label for n in bib_summary.chain(library, text)]
        assert labels == ["library", "book", "title", "#text"]

    def test_chain_unrelated_raises(self, bib_summary):
        book = bib_summary.node_for_path("/library/book")
        thesis = bib_summary.node_for_path("/library/phdthesis")
        with pytest.raises(ValueError):
            bib_summary.chain(book, thesis)

    def test_node_for_path_missing(self, bib_summary):
        assert bib_summary.node_for_path("/library/ghost") is None


class TestConformance:
    def test_document_conforms_to_own_summary(self, bib_doc, bib_summary):
        assert bib_summary.conforms(bib_doc)
        assert bib_summary.describes(bib_doc)

    def test_different_structure_does_not_conform(self, bib_summary):
        other = load("<library><journal/></library>")
        assert not bib_summary.conforms(other)
        assert not bib_summary.describes(other)

    def test_similar_documents_share_a_summary(self):
        a = load("<r><x><y>1</y></x></r>")
        b = load("<r><x><y>other</y></x><x><y>2</y></x></r>")
        assert build_summary(a).conforms(b)

    def test_subset_document_describes_but_not_conforms(self, bib_summary):
        smaller = load("<library><book year='1'><title>t</title><author>a</author></book></library>")
        assert bib_summary.describes(smaller)
        assert not bib_summary.conforms(smaller)


class TestEnhancedAnnotations:
    def test_one_to_one_edges(self, bib_summary):
        title = bib_summary.node_for_path("/library/book/title")
        assert title.edge_annotation == "1"

    def test_strong_but_not_one_to_one(self, bib_summary):
        author = bib_summary.node_for_path("/library/book/author")
        assert author.edge_annotation == "+"  # 1..2 authors per book

    def test_star_edges(self, bib_summary):
        year = bib_summary.node_for_path("/library/book/@year")
        assert year.edge_annotation == "*"  # second book has no year

    def test_strong_chain(self, bib_summary):
        library = bib_summary.node_for_path("/library")
        text = bib_summary.node_for_path("/library/book/title/#text")
        assert is_strong_chain(library, text)

    def test_one_to_one_chain(self, bib_summary):
        book = bib_summary.node_for_path("/library/book")
        text = bib_summary.node_for_path("/library/book/title/#text")
        assert is_one_to_one_chain(book, text)
        author = bib_summary.node_for_path("/library/book/author")
        assert not is_one_to_one_chain(book, author)

    def test_annotation_counts(self, bib_summary):
        assert bib_summary.count_strong_edges() >= bib_summary.count_one_to_one_edges()

    def test_statistics_row(self, bib_doc, bib_summary):
        stats = summary_statistics(bib_summary, bib_doc)
        assert stats["summary_size"] == len(bib_summary)
        assert stats["nodes"] == bib_doc.count()
        assert stats["strong_edges"] >= stats["one_to_one_edges"]

    def test_annotate_rejects_nonconforming_document(self, bib_summary):
        other = load("<library><alien/></library>")
        with pytest.raises(ValueError):
            annotate_edges(bib_summary, other)


class TestScaling:
    def test_summary_stays_small_as_documents_grow(self):
        from repro.workloads import generate_xmark

        small = build_enhanced_summary(generate_xmark(scale=1))
        large = build_enhanced_summary(generate_xmark(scale=5))
        # the Figure 4.13 observation: |S| grows only marginally
        assert len(large) <= len(small) * 1.15

    def test_multi_document_summary(self):
        summary = PathSummary()
        summary.add_document(load("<r><a>1</a></r>"))
        summary.add_document(load("<r><b/></r>"))
        summary.finalize()
        assert summary.node_for_path("/r/a") is not None
        assert summary.node_for_path("/r/b") is not None
