"""Smoke tests: every shipped example must run to completion and print
the key lines its docstring promises.  Guards the examples against
public-API drift."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_examples_directory_complete():
    shipped = {p.name for p in EXAMPLES.glob("*.py")}
    assert shipped == {
        "quickstart.py",
        "auction_views.py",
        "storage_models_tour.py",
        "containment_lab.py",
        "index_access_paths.py",
        "xquery_pipeline.py",
    }


def test_quickstart():
    out = run("quickstart.py")
    assert "rewriting" in out.lower() or "view" in out.lower()


def test_auction_views():
    out = run("auction_views.py")
    # the flagship scenario must actually answer from the views and state
    # agreement with the base-store evaluation
    assert "V1" in out and "V2" in out
    assert "identical" in out.lower() or "same" in out.lower() or "agree" in out.lower()


def test_storage_models_tour():
    out = run("storage_models_tour.py")
    for model in ("Edge", "blob"):
        assert model.lower() in out.lower()


def test_containment_lab():
    out = run("containment_lab.py")
    assert "//b//e ⊑ //a//e : True" in out
    assert "q ⊑ //b/c ∪ //d/c  : True" in out
    assert "q ⊑ low            : False" in out


def test_index_access_paths():
    out = run("index_access_paths.py")
    assert "idxLookup(1999, 'Data on the Web') → 1 book" in out
    assert "idxLookup(2005, '?')               → 0 books" in out
    assert "index → 2 titles, \nscan → 2 titles" in out.replace("\n", "\n") or "2 titles" in out


def test_xquery_pipeline():
    out = run("xquery_pipeline.py")
    # the four sections, each with the right answers
    assert "-> Ana" in out and "-> Bob" in out
    assert "<who>Ana</who>" in out and "<who>Bob</who>" not in out
    assert "<auction>12<inc>3</inc><inc>5</inc></auction>" in out
    assert "<auction>40</auction>" in out
    assert "<sale>Ana</sale>" in out and "<sale>Bob</sale>" in out
    # the s-edge from the where clause is visible in the extracted XAM
    assert "/s:city[val=Paris]" in out
