"""Tests for pattern extraction (Chapter 3): maximality across nested
blocks, edge-semantics rules, compensations, and templates."""

import pytest

from repro.core import NEST, NEST_OUTER, SEMI, evaluate_pattern
from repro.xquery import (
    assemble_plan,
    bind_patterns,
    extract,
    parse_query,
)
from repro.xmldata import load


def unit_of(text):
    return extract(parse_query(text)).units[0]


class TestPathQueries:
    def test_bare_path_pattern(self):
        unit = unit_of("//book/title")
        (pattern,) = unit.patterns
        assert [n.tag for n in pattern.nodes()] == ["book", "title"]
        assert pattern.nodes()[-1].store_content
        assert unit.template is None
        assert unit.outputs

    def test_text_suffix_stores_value(self):
        unit = unit_of("//book/title/text()")
        assert unit.patterns[0].nodes()[-1].store_value

    def test_step_predicates_become_semijoins(self):
        unit = unit_of('//book[author][year = "1999"]/title')
        book = unit.patterns[0].nodes()[0]
        semis = [e for e in book.edges if e.semantics == SEMI]
        assert len(semis) == 2
        year = next(e.child for e in semis if e.child.tag == "year")
        assert year.value_formula.equality_constant() == "1999"


class TestFLWRExtraction:
    def test_iteration_edges_are_joins(self):
        unit = unit_of("for $x in //site/item return $x/name")
        pattern = unit.patterns[0]
        item = pattern.node_by_name(unit.var_nodes["x"][1])
        assert item.parent_edge.semantics == "j"
        assert item.store_id == "s"

    def test_where_constant_becomes_semijoin_with_formula(self):
        unit = unit_of("for $x in //item where $x/quantity = 2 return $x/name")
        item = unit.patterns[0].node_by_name(unit.var_nodes["x"][1])
        quantity = next(e.child for e in item.edges if e.child.tag == "quantity")
        assert quantity.parent_edge.semantics == SEMI
        assert quantity.value_formula.evaluate(2)

    def test_where_path_to_path_becomes_cross_pattern_join(self):
        unit = unit_of(
            "for $x in //a, $y in //b where $x/v = $y/w return $x/name"
        )
        assert len(unit.patterns) == 2
        assert len(unit.join_predicates) == 1
        _lp, lpath, op, _rp, rpath = unit.join_predicates[0]
        assert op == "=" and lpath.endswith(".V") and rpath.endswith(".V")

    def test_constructor_paths_are_nest_outer(self):
        unit = unit_of("for $x in //item return <r>{ $x/name }</r>")
        name = next(
            n for n in unit.patterns[0].nodes() if n.tag == "name"
        )
        assert name.parent_edge.semantics == NEST_OUTER

    def test_bare_return_is_nest_join(self):
        unit = unit_of("for $x in //item return $x/name")
        name = next(n for n in unit.patterns[0].nodes() if n.tag == "name")
        assert name.parent_edge.semantics == NEST


class TestMaximality:
    """The headline Chapter 3 property: one pattern spans nested blocks."""

    def test_nested_block_grafts_into_outer_pattern(self):
        unit = unit_of(
            "for $x in //item return <r>{ for $y in $x/bid return $y/amount }</r>"
        )
        assert len(unit.patterns) == 1  # NOT two patterns
        tags = [n.tag for n in unit.patterns[0].nodes()]
        assert set(tags) >= {"item", "bid", "amount"}

    def test_doubly_nested_blocks_still_one_pattern(self):
        unit = unit_of(
            "for $x in //a return <r>{ for $y in $x/b return <s>{ for $z in $y/c return $z/d }</s> }</r>"
        )
        assert len(unit.patterns) == 1

    def test_document_rooted_inner_block_starts_new_pattern(self):
        unit = unit_of(
            "for $x in //a return <r>{ for $y in //b return $y/c }</r>"
        )
        assert len(unit.patterns) == 2

    def test_unrelated_top_variables_make_separate_patterns(self):
        unit = unit_of("for $x in /a/x, $y in //b return <r>{ $x/c, $y/e }</r>")
        assert len(unit.patterns) == 2


class TestCompensations:
    def test_thesis_dependency_detected(self):
        """§3.1: content of an outer variable extracted inside an inner
        block depends on the inner bindings — σ (z.ID ≠ ⊥) ∨ (e.C = ⊥)."""
        unit = unit_of(
            "for $y in //b return <r>{ for $z in $y/d return <s>{ $y/e }</s> }</r>"
        )
        assert len(unit.compensations) == 1
        _wp, guard, _dp, dependent = unit.compensations[0]
        assert guard.endswith(".ID")
        assert dependent.endswith(".C")

    def test_no_compensation_for_block_local_content(self):
        unit = unit_of(
            "for $y in //b return <r>{ for $z in $y/d return <s>{ $z/e }</s> }</r>"
        )
        assert unit.compensations == []


class TestTemplates:
    def test_repeat_scope_on_nested_constructor(self):
        unit = unit_of(
            "for $x in //item return <r>{ for $y in $x/bid return <b>{ $y/amount }</b> }</r>"
        )
        template = unit.template
        inner = next(
            c for c in template.children if getattr(c, "tag", None) == "b"
        )
        assert inner.repeat_over is not None

    def test_literals_preserved(self):
        unit = unit_of("for $x in //item return <r>total: { $x/price }</r>")
        assert "total:" in repr(unit.template)


class TestEndToEnd:
    DOC = "<site><item><name>Fish</name><bid><amount>10</amount></bid><bid><amount>20</amount></bid></item><item><name>Rock</name></item></site>"

    def run(self, text):
        unit = unit_of(text)
        doc = load(self.DOC)
        results = [evaluate_pattern(p, doc) for p in unit.patterns]
        plan = assemble_plan(unit)
        out = plan.evaluate(bind_patterns(unit, results))
        if unit.template is not None:
            return [t["xml"] for t in out]
        values = []
        for t in out:
            for _p, path in unit.outputs:
                values.extend(v for v in t.iter_path(path) if v is not None and not isinstance(v, list))
        return values

    def test_flat_constructor(self):
        out = self.run("for $x in //item return <r>{ $x/name/text() }</r>")
        assert out == ["<r>Fish</r>", "<r>Rock</r>"]

    def test_nested_blocks_group_and_stay_optional(self):
        out = self.run(
            "for $x in //item return <r>{ $x/name/text(), for $y in $x/bid return <b>{ $y/amount/text() }</b> }</r>"
        )
        assert out == ["<r>Fish<b>10</b><b>20</b></r>", "<r>Rock</r>"]

    def test_where_filters(self):
        out = self.run(
            "for $x in //item where $x/bid/amount = 10 return <r>{ $x/name/text() }</r>"
        )
        assert out == ["<r>Fish</r>"]

    def test_bare_path_output(self):
        out = self.run("//item/name/text()")
        assert out == ["Fish", "Rock"]
