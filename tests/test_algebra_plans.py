"""Tests for plan inspection helpers and order descriptors."""

from repro.algebra import (
    BaseTuples,
    NestedTuple,
    Project,
    Scan,
    StructuralJoin,
    Union,
    count_by_type,
    plan_shape,
    scans_used,
)
from repro.engine import sort_key_for
from repro.engine.orderdesc import satisfies


def sample_plan():
    left = Project(Scan("a", ["x.ID"]), ["x.ID"])
    right = Scan("b", ["y.ID"])
    return StructuralJoin(left, right, "x.ID", "y.ID", axis="descendant")


def test_count_by_type():
    counts = count_by_type(sample_plan())
    assert counts["Scan"] == 2
    assert counts["StructuralJoin"] == 1
    assert counts["Project"] == 1


def test_scans_used_in_leaf_order():
    assert scans_used(sample_plan()) == ["a", "b"]


def test_plan_shape():
    shape = plan_shape(sample_plan())
    assert shape["joins"] == 1
    assert shape["structural_joins"] == 1
    assert shape["value_joins"] == 0
    assert shape["scans"] == 2
    assert shape["depth"] == 3


def test_union_has_no_joins():
    plan = Union(Scan("a", ["x"]), Scan("b", ["x"]))
    assert plan_shape(plan)["joins"] == 0


def test_base_tuples_leaf_not_a_scan():
    plan = BaseTuples([NestedTuple({"x": 1})])
    assert scans_used(plan) == []


class TestOrderDescriptors:
    def test_satisfies(self):
        assert satisfies("a.ID", "a.ID")
        assert satisfies(None, None)
        assert satisfies("anything", None)
        assert not satisfies(None, "a.ID")
        assert not satisfies("a.ID", "b.ID")

    def test_sort_key_handles_nulls_and_mixed_types(self):
        key = sort_key_for("x")
        rows = [NestedTuple({"x": v}) for v in (3, None, "a", 1)]
        ordered = sorted(rows, key=key)
        assert ordered[0]["x"] is None  # nulls first
        values = [t["x"] for t in ordered[1:]]
        assert values == [1, 3, "a"] or values == ["a", 1, 3]

    def test_sort_key_descends_collections(self):
        key = sort_key_for("c/v")
        rows = [
            NestedTuple({"c": [NestedTuple({"v": 2})]}),
            NestedTuple({"c": [NestedTuple({"v": 1})]}),
        ]
        ordered = sorted(rows, key=key)
        assert ordered[0].first("c/v") == 1
