"""Tests for identifier schemes (thesis §1.2.1): the pre/post plane
decision procedures and the Dewey navigational properties."""

import pytest

from repro.xmldata import (
    DeweyID,
    id_of,
    is_ancestor_id,
    is_parent_id,
    kind_supports,
    load,
    prepost_plane,
    strongest_common_kind,
)


@pytest.fixture()
def doc():
    return load("<a><b><c/><d/></b><e><f><g/></f></e></a>")


def node(doc, label):
    return next(n for n in doc.elements() if n.label == label)


class TestStructuralIDs:
    def test_descendant_iff_interval_containment(self, doc):
        a, c, e = (id_of(node(doc, l), "s") for l in "ace")
        assert a.is_ancestor_of(c)
        assert a.is_ancestor_of(e)
        assert not c.is_ancestor_of(a)
        assert not e.is_ancestor_of(c)

    def test_parent_requires_depth_plus_one(self, doc):
        a, b, c = (id_of(node(doc, l), "s") for l in "abc")
        assert a.is_parent_of(b)
        assert b.is_parent_of(c)
        assert not a.is_parent_of(c)  # ancestor but not parent

    def test_precedes_follows_quarters(self, doc):
        b, e = id_of(node(doc, "b"), "s"), id_of(node(doc, "e"), "s")
        assert b.precedes(e)
        assert e.follows(b)
        assert not e.precedes(b)

    def test_document_order_is_pre_order(self, doc):
        ids = [id_of(n, "s") for n in doc.elements()]
        assert ids == sorted(ids)

    def test_full_pairwise_consistency_with_tree(self, doc):
        elements = list(doc.elements())
        for m in elements:
            for n in elements:
                expected = m.is_ancestor_of(n)
                assert id_of(m, "s").is_ancestor_of(id_of(n, "s")) == expected


class TestDeweyIDs:
    def test_parent_derivation(self, doc):
        g = id_of(node(doc, "g"), "p")
        f = id_of(node(doc, "f"), "p")
        assert g.parent() == f

    def test_ancestor_at_depth(self, doc):
        g = id_of(node(doc, "g"), "p")
        a = id_of(node(doc, "a"), "p")
        assert g.ancestor_at_depth(1) == a

    def test_root_has_no_parent(self, doc):
        a = id_of(node(doc, "a"), "p")
        with pytest.raises(ValueError):
            a.parent().parent()

    def test_prefix_is_ancestor(self, doc):
        assert DeweyID((1,)).is_ancestor_of(DeweyID((1, 2, 1)))
        assert not DeweyID((1, 2)).is_ancestor_of(DeweyID((1, 3, 1)))
        assert DeweyID((1, 2)).is_parent_of(DeweyID((1, 2, 5)))

    def test_document_order(self, doc):
        ids = [id_of(n, "p") for n in doc.elements()]
        assert all(ids[i] < ids[i + 1] for i in range(len(ids) - 1))

    def test_agreement_with_structural(self, doc):
        elements = list(doc.elements())
        for m in elements:
            for n in elements:
                assert id_of(m, "p").is_ancestor_of(id_of(n, "p")) == id_of(
                    m, "s"
                ).is_ancestor_of(id_of(n, "s"))


class TestKindLattice:
    def test_capabilities(self):
        assert kind_supports("i", "identity")
        assert not kind_supports("i", "order")
        assert kind_supports("o", "order")
        assert not kind_supports("o", "structural")
        assert kind_supports("s", "structural")
        assert not kind_supports("s", "parent-derivation")
        assert kind_supports("p", "parent-derivation")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            kind_supports("z", "identity")

    def test_strongest_common(self):
        assert strongest_common_kind("s", "p") == "s"
        assert strongest_common_kind("p", "p") == "p"
        assert strongest_common_kind("i", "s") == "i"


class TestHelpers:
    def test_id_of_simple_and_ordered_are_ints(self, doc):
        assert isinstance(id_of(doc.top, "i"), int)
        assert isinstance(id_of(doc.top, "o"), int)

    def test_id_of_unlabeled_node_raises(self):
        from repro.xmldata import parse_document

        raw = parse_document("<a/>")
        with pytest.raises(ValueError):
            id_of(raw.top, "s")

    def test_mixed_id_kinds_cannot_be_compared(self, doc):
        s = id_of(node(doc, "b"), "s")
        p = id_of(node(doc, "c"), "p")
        with pytest.raises(TypeError):
            is_ancestor_id(s, p)
        with pytest.raises(TypeError):
            is_parent_id(s, p)

    def test_simple_ids_cannot_answer_structural_tests(self, doc):
        with pytest.raises(TypeError):
            is_ancestor_id(id_of(doc.top, "i"), id_of(node(doc, "b"), "i"))

    def test_prepost_plane_matches_elements(self, doc):
        plane = prepost_plane(doc)
        assert len(plane) == sum(1 for _ in doc.elements())
        labels = {entry[2] for entry in plane}
        assert labels == set("abcdefg")
