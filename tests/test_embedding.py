"""Tests for the embedding-based semantics (§4.1): edge semantics,
kind admission, and the generic return-tuple machinery."""

from repro.core import evaluate_pattern, parse_pattern, return_tuples
from repro.core.embedding import admits_xml_node, embeddings
from repro.xmldata import load


DOC = load(
    "<site><item><name>Fish</name><kw>a</kw><kw>b</kw></item>"
    "<item><name>Rock</name></item></site>"
)


class TestAdmission:
    def test_tag_match(self):
        pattern = parse_pattern("//item")
        item = next(n for n in DOC.elements() if n.label == "item")
        name = next(n for n in DOC.elements() if n.label == "name")
        assert admits_xml_node(pattern.nodes()[0], item)
        assert not admits_xml_node(pattern.nodes()[0], name)

    def test_wildcard_admits_elements_only(self):
        pattern = parse_pattern("//*")
        star = pattern.nodes()[0]
        item = next(n for n in DOC.elements() if n.label == "item")
        attr_doc = load("<a x='1'>t</a>")
        attribute = attr_doc.top.attribute_children()[0]
        text = [n for n in attr_doc.nodes() if n.kind == "text"][0]
        assert admits_xml_node(star, item)
        assert not admits_xml_node(star, attribute)
        assert not admits_xml_node(star, text)

    def test_attribute_and_text_tests(self):
        doc = load("<a x='1'>t</a>")
        attr_pattern = parse_pattern("//a{/@x[val]}")
        out = evaluate_pattern(attr_pattern, doc)
        assert out[0]["e2.V"] == "1"
        text_pattern = parse_pattern("//a{/#text[val]}")
        assert evaluate_pattern(text_pattern, doc)[0]["e2.V"] == "t"

    def test_value_formula_admission(self):
        pattern = parse_pattern('//name[val="Fish", id:s]')
        assert len(evaluate_pattern(pattern, DOC)) == 1


class TestEdgeSemantics:
    def test_join_drops_unmatched(self):
        out = evaluate_pattern(parse_pattern("//item[id:s]{/kw[val]}"), DOC)
        assert len(out) == 2  # two kws of the first item; second item gone

    def test_semi_keeps_but_does_not_multiply(self):
        out = evaluate_pattern(parse_pattern("//item[id:s]{/s:kw}"), DOC)
        assert len(out) == 1

    def test_outer_pads(self):
        out = evaluate_pattern(parse_pattern("//item[id:s]{/o:kw[val]}"), DOC)
        assert len(out) == 3
        assert sum(1 for t in out if t["e2.V"] is None) == 1

    def test_nest_groups_and_requires(self):
        out = evaluate_pattern(parse_pattern("//item[id:s]{/nj:kw[val]}"), DOC)
        assert len(out) == 1 and len(out[0]["e2"]) == 2

    def test_nest_outer_keeps_empty(self):
        out = evaluate_pattern(parse_pattern("//item[id:s]{/no:kw[val]}"), DOC)
        assert [len(t["e2"]) for t in out] == [2, 0]

    def test_descendant_axis(self):
        out = evaluate_pattern(parse_pattern("//site[id:s]{//kw[val]}"), DOC)
        assert len(out) == 2

    def test_results_are_duplicate_free(self):
        # both kws reach the same (site, item-ID) pair through // twice
        out = evaluate_pattern(parse_pattern("//site{//item[id:s]}"), DOC)
        assert len(out) == len({t.freeze() for t in out})


class TestReturnTuples:
    def test_on_xml_tree(self):
        pattern = parse_pattern("//item[id:s]{/name[val]}")

        def children(node):
            return node.children

        tuples = return_tuples(pattern, DOC.root, children, admits_xml_node)
        assert len(tuples) == 2
        labels = {tuple(n.label for n in t) for t in tuples}
        assert labels == {("item", "name")}

    def test_optional_bottom_is_none(self):
        pattern = parse_pattern("//item[id:s]{/o:kw[id:s]}")

        def children(node):
            return node.children

        tuples = return_tuples(pattern, DOC.root, children, admits_xml_node)
        assert any(t[1] is None for t in tuples)
        assert any(t[1] is not None for t in tuples)

    def test_embeddings_count(self):
        pattern = parse_pattern("//kw")

        def children(node):
            return node.children

        assert len(embeddings(pattern, DOC.root, children, admits_xml_node)) == 2


class TestDocumentOrderAndNesting:
    def test_nested_tuples_preserve_order(self):
        out = evaluate_pattern(parse_pattern("//item[id:s]{/nj:kw[val]}"), DOC)
        assert [m["e2.V"] for m in out[0]["e2"]] == ["a", "b"]

    def test_deep_nesting(self):
        doc = load("<r><a><b><c>1</c></b><b><c>2</c><c>3</c></b></a></r>")
        out = evaluate_pattern(
            parse_pattern("//a[id:s]{/nj:b[id:s]{/nj:c[val]}}"), doc
        )
        assert len(out) == 1
        counts = [len(m["e3"]) for m in out[0]["e2"]]
        assert counts == [1, 2]
