"""Failure injection: malformed inputs and misuse of the public API must
fail loudly with precise errors — and valid-but-degenerate inputs must not
fail at all."""

import pytest

from repro import Database
from repro.core import parse_pattern
from repro.core.xam_parser import XAMParseError
from repro.xmldata import load
from repro.xmldata.parser import XMLSyntaxError
from repro.xquery import XQueryParseError, parse_query


class TestMalformedXML:
    @pytest.mark.parametrize(
        "source, fragment",
        [
            ("<a><b></a>", "mismatched end tag"),
            ("<a attr='x", "unterminated attribute"),
            ("<a>&unknown;</a>", "unknown entity"),
            ("", "expected '<'"),
            ("text only", "expected '<'"),
            ("<a><b/></a><c/>", "trailing content"),
            ("<a x='1' x='2'/>", "duplicate attribute"),
            ("<a x=1/>", "must be quoted"),
        ],
    )
    def test_rejected_with_message(self, source, fragment):
        with pytest.raises(XMLSyntaxError, match=fragment):
            load(source)

    def test_error_carries_offset(self):
        with pytest.raises(XMLSyntaxError, match=r"offset"):
            load("<a><b></a>")

    @pytest.mark.parametrize(
        "source",
        [
            "<a/>",
            "<a></a>",
            "<a><!-- comment --></a>",
            "<?xml version='1.0'?><a/>",
            "<a>&amp;&lt;&gt;&quot;&apos;</a>",
            "<a x='&#65;'/>",  # numeric character reference
        ],
    )
    def test_degenerate_but_valid(self, source):
        load(source)


class TestMalformedXAMs:
    @pytest.mark.parametrize(
        "text",
        ["", "//a[", "//a{/b", "/q:name", "//a[val~3]", "//a}}", "//a[[val]]"],
    )
    def test_rejected(self, text):
        with pytest.raises(XAMParseError):
            parse_pattern(text)

    def test_unknown_id_kind_rejected(self):
        with pytest.raises(XAMParseError, match="unknown ID kind 'z'"):
            parse_pattern("//a[id:z]")

    @pytest.mark.parametrize("kind", ["i", "o", "s", "p"])
    def test_all_real_id_kinds_accepted(self, kind):
        node = parse_pattern(f"//a[id:{kind}]").nodes()[0]
        assert node.store_id == kind


class TestMalformedXQuery:
    @pytest.mark.parametrize(
        "text",
        [
            "for $x in //a",            # no return
            "for $x in //a return",     # empty return
            "for x in //a return $x",   # $ missing
            "//a[",                     # unterminated predicate
            "'unterminated",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(XQueryParseError):
            parse_query(text)


class TestDatabaseMisuse:
    def test_query_with_no_documents_is_empty(self):
        result = Database().query("//a")
        assert result.values == [] and result.xml == []

    def test_duplicate_view_name_rejected(self):
        db = Database.from_xml("<a><b>x</b></a>")
        db.add_view("v", "//b[id:s, val]")
        with pytest.raises(ValueError, match="already exists"):
            db.add_view("v", "//b[id:s]")
        # the original view is untouched and still answers
        assert db.query("//b/text()").values == ["x"]
        assert db.views() == ["v"]

    def test_drop_then_readd_same_name(self):
        db = Database.from_xml("<a><b>x</b></a>")
        db.add_view("v", "//b[id:s, val]")
        db.drop_view("v")
        db.add_view("v", "//b[id:s, val]")
        assert db.views() == ["v"]

    def test_drop_unknown_view_raises(self):
        with pytest.raises(KeyError):
            Database.from_xml("<a/>").drop_view("ghost")

    def test_view_matching_nothing_is_legal_and_empty(self):
        db = Database.from_xml("<a><b>x</b></a>")
        db.add_view("empty", "//zzz[id:s]")
        # never usable, never harmful: queries still answer from base
        assert db.query("//b/text()").values == ["x"]

    def test_malformed_view_pattern_propagates(self):
        db = Database.from_xml("<a/>")
        with pytest.raises(XAMParseError):
            db.add_view("bad", "//a[")
