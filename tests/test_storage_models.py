"""Tests for the storage models of §2.1/§2.3: every builder loads the
expected relations, registers describing XAMs, and the QEP-shape claims
(blob beats path-partitioning on recomposition) hold."""

import pytest

from repro.algebra import Scan, StructuralJoin, plan_shape
from repro.engine import Store, execute
from repro.storage import (
    Catalog,
    build_content_store,
    build_document_blob,
    build_edge_store,
    build_node_store,
    build_path_partitioned_store,
    build_shredded_store,
    build_structural_store,
    build_tag_partitioned_store,
    build_universal_store,
    build_xrel_store,
    materialize_view,
)


@pytest.fixture()
def loaded(bib_doc):
    store, catalog = Store(), Catalog()
    return bib_doc, store, catalog


class TestEdgeAndUniversal:
    def test_edge_relation_has_one_row_per_edge(self, loaded):
        doc, store, catalog = loaded
        build_edge_store(doc, store, catalog)
        non_text = [
            n for n in doc.nodes() if n.kind in ("element", "attribute")
        ]
        assert len(store["edge"]) == len(non_text)
        assert "edge_elements" in catalog

    def test_edge_values_capture_text_and_attributes(self, loaded):
        doc, store, catalog = loaded
        build_edge_store(doc, store, catalog)
        values = {t["value"] for t in store["value"]}
        assert "Data on the Web" in values
        assert "1999" in values

    def test_universal_one_row_per_element(self, loaded):
        doc, store, catalog = loaded
        build_universal_store(doc, store, catalog)
        assert len(store["universal"]) == doc.count("element")
        row = store["universal"].tuples[1]  # a book row
        assert row["target_title"] is not None
        # missing children are ⊥
        assert any(t["target_@year"] is None for t in store["universal"])

    def test_universal_xam_is_wide_with_optional_children(self, loaded):
        doc, store, catalog = loaded
        build_universal_store(doc, store, catalog)
        pattern = catalog["universal"].pattern
        assert all(e.optional for e in pattern.nodes()[0].edges)


class TestShredded:
    def test_one_relation_per_element_type(self, loaded):
        doc, store, catalog = loaded
        names = build_shredded_store(doc, store, catalog)
        assert set(names) >= {"shred_book", "shred_title", "shred_author"}

    def test_inlining_of_single_leaf_children(self, loaded):
        doc, store, catalog = loaded
        build_shredded_store(doc, store, catalog)
        book_row = store["shred_book"].tuples[0]
        # title occurs exactly once per book and is a leaf → inlined
        assert book_row["titleValue"] == "Data on the Web"
        # author repeats → not inlined
        assert "authorValue" not in book_row

    def test_parent_columns(self, loaded):
        doc, store, catalog = loaded
        build_shredded_store(doc, store, catalog)
        title_row = store["shred_title"].tuples[0]
        assert title_row["parentType"] == "book"


class TestXRel:
    def test_path_table(self, loaded):
        doc, store, catalog = loaded
        build_xrel_store(doc, store, catalog)
        paths = {t["pathexpr"] for t in store["path"]}
        assert "/library/book/title" in paths

    def test_region_encoding_answers_containment(self, loaded):
        doc, store, catalog = loaded
        build_xrel_store(doc, store, catalog)
        by_path = {}
        for t in store["element"]:
            by_path.setdefault(t["pathID"], []).append(t)
        paths = {t["pathexpr"]: t["pathID"] for t in store["path"]}
        book = by_path[paths["/library/book"]][0]
        title = by_path[paths["/library/book/title"]][0]
        # Dietz containment: anc.pre < desc.pre ∧ desc.post < anc.post
        assert book["start"] < title["start"] and title["end"] < book["end"]

    def test_attribute_xams_registered(self, loaded):
        doc, store, catalog = loaded
        build_xrel_store(doc, store, catalog)
        assert "xrel_attr_year" in catalog


class TestNativeModels:
    def test_node_store_has_all_nodes(self, bib_doc):
        store, catalog = Store(), Catalog()
        build_node_store(bib_doc, store, catalog)
        assert len(store["main"]) == bib_doc.count()
        assert len(store["name"]) == len(
            {n.label for n in bib_doc.nodes() if n.kind != "text"}
        )

    def test_structural_store_drops_parent_pointers(self, bib_doc):
        store, catalog = Store(), Catalog()
        build_structural_store(bib_doc, store, catalog)
        assert "parentID" not in store["main"].tuples[0]

    def test_tag_partitioning(self, bib_doc):
        store, catalog = Store(), Catalog()
        names = build_tag_partitioned_store(bib_doc, store, catalog)
        assert "tag_book" in names
        assert len(store["tag_book"]) == 2
        assert len(store["tag_author"]) == 4

    def test_path_partitioning(self, bib_doc, bib_summary):
        store, catalog = Store(), Catalog()
        build_path_partitioned_store(bib_doc, store, catalog, bib_summary)
        book_path = bib_summary.node_for_path("/library/book")
        relation = store[f"path_{book_path.number}"]
        assert len(relation) == 2
        # value paths store (ID, value)
        text_path = bib_summary.node_for_path("/library/book/title/#text")
        assert store[f"path_{text_path.number}"].tuples[0]["value"]

    def test_path_partition_xams_use_tag_chains(self, bib_doc, bib_summary):
        store, catalog = Store(), Catalog()
        build_path_partitioned_store(bib_doc, store, catalog, bib_summary)
        book_path = bib_summary.node_for_path("/library/book")
        pattern = catalog[f"path_{book_path.number}"].pattern
        assert [n.tag for n in pattern.nodes()] == ["library", "book"]


class TestBlob:
    def test_content_store(self, bib_doc):
        store, catalog = Store(), Catalog()
        build_content_store(bib_doc, store, catalog, ["book"])
        contents = [t["content"] for t in store["bookContent"]]
        assert any("Abiteboul" in c for c in contents)

    def test_document_blob(self, bib_doc):
        store, catalog = Store(), Catalog()
        name = build_document_blob(bib_doc, store, catalog)
        assert len(store[name]) == 1
        assert catalog[name].pattern.nodes()[0].store_content


class TestQEPShapes:
    """The §2.1.1 motivating comparison: recomposing marked-up content is
    one join on the blob store (QEP₉) versus a join cascade on the
    path-partitioned store (QEP₈)."""

    @staticmethod
    def scan(name, columns, alias):
        from repro.algebra import Project

        renames = {c: f"{alias}.{c}" for c in columns}
        return Project(Scan(name, columns), columns, renames=renames)

    def qep_blob(self, doc, summary):
        store, catalog = Store(), Catalog()
        build_tag_partitioned_store(doc, store, catalog)
        build_content_store(doc, store, catalog, ["listitem"])
        plan = StructuralJoin(
            self.scan("tag_item", ["ID"], "i"),
            self.scan("listitemContent", ["ID", "content"], "li"),
            "i.ID",
            "li.ID",
            axis="descendant",
        )
        return plan, store

    def qep_fragmented(self, doc, summary):
        store, catalog = Store(), Catalog()
        build_path_partitioned_store(doc, store, catalog, summary)
        item = summary.node_for_path("/site/regions/item")
        li = summary.node_for_path(
            "/site/regions/item/description/parlist/listitem"
        )
        kw = summary.node_for_path(
            "/site/regions/item/description/parlist/listitem/keyword"
        )
        kw_text = summary.node_for_path(
            "/site/regions/item/description/parlist/listitem/keyword/#text"
        )
        plan = StructuralJoin(
            StructuralJoin(
                self.scan(f"path_{item.number}", ["ID"], "i"),
                self.scan(f"path_{li.number}", ["ID"], "li"),
                "i.ID",
                "li.ID",
                axis="descendant",
            ),
            StructuralJoin(
                self.scan(f"path_{kw.number}", ["ID"], "kw"),
                self.scan(f"path_{kw_text.number}", ["ID", "value"], "t"),
                "kw.ID",
                "t.ID",
                axis="child",
            ),
            "li.ID",
            "kw.ID",
            axis="descendant",
        )
        return plan, store

    def test_blob_plan_is_smaller(self, auction_doc, auction_summary):
        blob_plan, _ = self.qep_blob(auction_doc, auction_summary)
        frag_plan, _ = self.qep_fragmented(auction_doc, auction_summary)
        assert plan_shape(blob_plan)["joins"] < plan_shape(frag_plan)["joins"]

    def test_both_plans_execute(self, auction_doc, auction_summary):
        for builder in (self.qep_blob, self.qep_fragmented):
            plan, store = builder(auction_doc, auction_summary)
            out = list(execute(plan, store.context(), store.scan_orders()))
            assert out  # the first item has listitems/keywords


class TestCatalogSwap:
    """Physical data independence: changing the storage is a catalog
    update, never an optimizer change."""

    def test_register_unregister(self, bib_doc):
        store, catalog = Store(), Catalog()
        entry = materialize_view("v", "//book[id:s]", bib_doc, store, catalog)
        assert "v" in catalog and not entry.is_index
        catalog.unregister("v")
        assert "v" not in catalog

    def test_views_vs_indexes_partition(self, bib_doc):
        store, catalog = Store(), Catalog()
        materialize_view("plain", "//book[id:s]", bib_doc, store, catalog)
        materialize_view("keyed", "//book[id:s]{/title[val!]}", bib_doc, store, catalog)
        assert [e.name for e in catalog.views()] == ["plain"]
        assert [e.name for e in catalog.indexes()] == ["keyed"]
