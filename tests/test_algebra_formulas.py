"""Tests for value-predicate formulas (thesis §4.1), including property
tests of the interval normal form."""

from hypothesis import given, strategies as st

from repro.algebra import FALSE, TRUE, Formula, between, eq, ge, gt, le, lt


class TestAtoms:
    def test_equality(self):
        f = eq(3)
        assert f.evaluate(3)
        assert not f.evaluate(4)
        assert f.equality_constant() == 3

    def test_inequalities(self):
        assert lt(5).evaluate(4) and not lt(5).evaluate(5)
        assert le(5).evaluate(5) and not le(5).evaluate(6)
        assert gt(5).evaluate(6) and not gt(5).evaluate(5)
        assert ge(5).evaluate(5) and not ge(5).evaluate(4)

    def test_not_equal(self):
        f = Formula.compare("!=", 3)
        assert f.evaluate(2) and f.evaluate(4) and not f.evaluate(3)

    def test_between(self):
        f = between(2, 5)
        assert f.evaluate(2) and f.evaluate(5) and f.evaluate(3)
        assert not f.evaluate(1) and not f.evaluate(6)

    def test_strings(self):
        f = eq("web")
        assert f.evaluate("web") and not f.evaluate("data")
        assert lt("m").evaluate("a") and not lt("m").evaluate("z")


class TestCombinators:
    def test_conjunction(self):
        f = gt(2).conjoin(lt(5))
        assert f.evaluate(3) and not f.evaluate(2) and not f.evaluate(5)

    def test_contradiction_is_false(self):
        assert gt(5).conjoin(lt(3)).is_false
        assert eq(1).conjoin(eq(2)).is_false

    def test_disjunction_merges_adjacent(self):
        f = lt(3).disjoin(ge(3))
        assert f.is_true

    def test_negation(self):
        f = eq(3).negate()
        assert f.evaluate(2) and f.evaluate(4) and not f.evaluate(3)
        assert TRUE.negate().is_false
        assert FALSE.negate().is_true

    def test_double_negation(self):
        f = between(2, 5)
        assert f.negate().negate() == f

    def test_operators(self):
        assert ((gt(1) & lt(3)) | eq(7)).evaluate(7)
        assert (~eq(1)).evaluate(2)


class TestImplication:
    def test_point_implies_interval(self):
        assert eq(3).implies(gt(1))
        assert not gt(1).implies(eq(3))

    def test_interval_inclusion(self):
        assert between(2, 3).implies(between(1, 5))
        assert not between(1, 5).implies(between(2, 3))

    def test_everything_implies_true(self):
        for f in (eq(1), between(2, 3), FALSE):
            assert f.implies(TRUE)

    def test_false_implies_everything(self):
        assert FALSE.implies(eq(1))

    def test_thesis_figure_4_9(self):
        # φ_{t'_{φ2}} = (v=3 ∧ v>0) ⇒ (v>1)
        left = eq(3).conjoin(gt(0))
        assert left.implies(gt(1))


class TestMixedTypesAndCoercion:
    def test_mixed_type_constants_do_not_raise(self):
        f = eq(3).disjoin(eq("three"))
        assert f.evaluate(3) and f.evaluate("three") and not f.evaluate(4)

    def test_string_value_coerces_to_number(self):
        assert eq(1999).evaluate("1999")
        assert gt(50000).evaluate("60000")
        assert not gt(50000).evaluate("40000")

    def test_null_satisfies_only_true(self):
        assert TRUE.evaluate(None)
        assert not eq(1).evaluate(None)


class TestQueries:
    def test_flags(self):
        assert TRUE.is_true and not TRUE.is_false
        assert FALSE.is_false and not FALSE.is_true
        assert eq(1).satisfiable() and not FALSE.satisfiable()

    def test_equality_constant_only_for_points(self):
        assert between(1, 2).equality_constant() is None
        assert TRUE.equality_constant() is None

    def test_repr_forms(self):
        assert repr(TRUE) == "T"
        assert repr(FALSE) == "F"
        assert "v=" in repr(eq(3))


# -- property tests ---------------------------------------------------------

values = st.integers(min_value=-20, max_value=20)


def formulas():
    atom = st.builds(
        Formula.compare,
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        values,
    )
    return st.recursive(
        atom,
        lambda children: st.one_of(
            st.builds(lambda a, b: a.conjoin(b), children, children),
            st.builds(lambda a, b: a.disjoin(b), children, children),
            st.builds(lambda a: a.negate(), children),
        ),
        max_leaves=6,
    )


@given(formulas(), values)
def test_negation_complements_evaluation(formula, value):
    assert formula.evaluate(value) != formula.negate().evaluate(value)


@given(formulas(), formulas(), values)
def test_conjunction_evaluates_pointwise(f, g, value):
    assert f.conjoin(g).evaluate(value) == (f.evaluate(value) and g.evaluate(value))


@given(formulas(), formulas(), values)
def test_disjunction_evaluates_pointwise(f, g, value):
    assert f.disjoin(g).evaluate(value) == (f.evaluate(value) or g.evaluate(value))


@given(formulas(), formulas(), values)
def test_implication_is_sound_on_values(f, g, value):
    if f.implies(g) and f.evaluate(value):
        assert g.evaluate(value)


@given(formulas())
def test_self_implication(f):
    assert f.implies(f)


@given(formulas(), formulas(), formulas())
def test_implication_transitive(f, g, h):
    if f.implies(g) and g.implies(h):
        assert f.implies(h)
