"""Tests for the §3.3.1 algebraic translation of path queries: the
full/alg rules over tag-derived collections, checked against direct
pattern evaluation and through the physical engine."""

import pytest

from repro.core import evaluate_pattern, pattern_from_path
from repro.engine import execute
from repro.xquery import alg_path, alg_query, collections_context, full_path, parse_query
from repro.xmldata import load


DOC = load(
    "<bib><book><year>1999</year><title>Data on the Web</title>"
    "<author>A</author><author>B</author></book>"
    "<book><year>2001</year><title>Web2</title></book></bib>"
)
CTX = collections_context(DOC)


def values(plan):
    return sorted(
        v for t in plan.evaluate(CTX) for v in t.attrs.values() if v is not None
    )


class TestTranslationRules:
    def test_descendant_step_is_collection_scan(self):
        plan, alias = full_path(parse_query("//book"))
        assert "Scan(R_book)" in plan.pretty()
        assert alias == "s1"

    def test_root_step_uses_set_difference(self):
        plan, _ = full_path(parse_query("/bib/book"))
        assert "\\" in plan.pretty()

    def test_root_step_excludes_non_roots(self):
        # //book is never a root element here: /book must be empty
        plan = alg_path(parse_query("/book"))
        assert plan.evaluate(CTX) == []
        assert alg_path(parse_query("/bib")).evaluate(CTX) != []

    def test_child_chains_become_structural_joins(self):
        plan, _ = full_path(parse_query("//book/title"))
        assert plan.join_count() == 1

    def test_qualifier_becomes_semijoin(self):
        plan, _ = full_path(parse_query("//book[author]"))
        assert "⋉" in plan.pretty()


class TestAgreementWithPatterns:
    @pytest.mark.parametrize(
        "text, path, attr",
        [
            ("//book/title/text()", "//book/title", "V"),
            ("//book/author/text()", "//book/author", "V"),
            ("/bib/book/title", "/bib/book/title", "C"),
            ("//book[author]/title/text()", None, None),
            ("//book[year = 1999]/title/text()", None, None),
        ],
    )
    def test_alg_matches_pattern_evaluation(self, text, path, attr):
        plan = alg_path(parse_query(text))
        got = sorted(
            v for t in plan.evaluate(CTX) for v in t.attrs.values() if v is not None
        )
        if path is not None:
            pattern = pattern_from_path(path, store=(attr,))
            want = sorted(
                t.first(f"{pattern.nodes()[-1].name}.{attr}")
                for t in evaluate_pattern(pattern, DOC)
            )
            assert got == want
        assert got  # all sample queries are non-empty

    def test_missing_tag_evaluates_empty(self):
        plan = alg_path(parse_query("//nothing/title"))
        assert plan.evaluate(CTX) == []

    def test_duplicate_elimination(self):
        # the two author Cont values are distinct but a //book//book-style
        # query would multiply without π⁰; check dedup on a same-value case
        doc = load("<a><b><t>x</t></b><b><t>x</t></b></a>")
        ctx = collections_context(doc)
        plan = alg_path(parse_query("//b/t/text()"))
        assert len(plan.evaluate(ctx)) == 1  # π⁰ eliminates duplicates


class TestPhysicalExecution:
    @pytest.mark.parametrize(
        "text",
        [
            "//book/title/text()",
            "/bib/book/author/text()",
            "//book[year = 1999]/title",
            "//book[author]/title/text()",
        ],
    )
    def test_logical_physical_agreement(self, text):
        plan = alg_path(parse_query(text))
        logical = sorted(t.freeze() for t in plan.evaluate(CTX))
        physical = sorted(t.freeze() for t in execute(plan, CTX))
        assert logical == physical


class TestQualifierAxes:
    def test_descendant_qualifier(self):
        plan = alg_path(parse_query("//book[//keyword]/title"))
        # no keywords in this document: qualifier filters everything out
        assert plan.evaluate(CTX) == []

    def test_attribute_qualifier(self):
        doc = load('<bib><book id="b1"><title>T</title></book><book><title>U</title></book></bib>')
        ctx = collections_context(doc)
        plan = alg_path(parse_query('//book[@id = "b1"]/title/text()'))
        assert [t.attrs for t in plan.evaluate(ctx)] == [{"s3.Val": "T"}]

    def test_stacked_qualifiers(self):
        plan = alg_path(parse_query("//book[author][year]/title/text()"))
        out = plan.evaluate(CTX)
        assert [v for t in out for v in t.attrs.values()] == ["Data on the Web"]


class TestAlgQuery:
    def test_path_query_delegates(self):
        plans = alg_query(parse_query("//book/title"))
        assert len(plans) == 1

    def test_flwr_produces_pattern_access_plan(self):
        plans = alg_query(
            parse_query("for $x in //book return <r>{ $x/title }</r>")
        )
        assert "PatternAccess" in plans[0].pretty()
        assert "xml[" in plans[0].pretty()

    def test_sequence_yields_one_plan_per_item(self):
        plans = alg_query(parse_query("//book/title, //book/author"))
        assert len(plans) == 2
