"""Tests for the B+ tree backing Sort and value indexes."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.engine import BPlusTree


def test_insert_and_search():
    tree = BPlusTree(order=4)
    tree.insert((5,), "five")
    tree.insert((3,), "three")
    assert tree.search((5,)) == ["five"]
    assert tree.search((4,)) == []
    assert (3,) in tree and (4,) not in tree


def test_duplicate_keys_accumulate():
    tree = BPlusTree(order=4)
    tree.insert((1,), "a")
    tree.insert((1,), "b")
    assert tree.search((1,)) == ["a", "b"]
    assert len(tree) == 2


def test_items_in_key_order():
    tree = BPlusTree(order=4)
    data = list(range(200))
    random.Random(1).shuffle(data)
    for value in data:
        tree.insert((value,), value)
    assert list(tree.values_in_order()) == sorted(data)


def test_range_scan_inclusive():
    tree = BPlusTree(order=4)
    for value in range(50):
        tree.insert((value,), value)
    assert [v for _k, v in tree.range((10,), (14,))] == [10, 11, 12, 13, 14]
    assert [v for _k, v in tree.range(None, (2,))] == [0, 1, 2]
    assert [v for _k, v in tree.range((47,), None)] == [47, 48, 49]


def test_composite_keys():
    tree = BPlusTree(order=4)
    tree.insert(("1999", "Data on the Web"), 1)
    tree.insert(("1999", "Another"), 2)
    tree.insert(("2004", "Thesis"), 3)
    assert tree.search(("1999", "Data on the Web")) == [1]
    both = [v for _k, v in tree.range(("1999", ""), ("1999", "zzz"))]
    assert sorted(both) == [1, 2]


def test_none_sorts_first():
    tree = BPlusTree(order=4)
    tree.insert((None,), "null")
    tree.insert((0,), "zero")
    assert list(tree.values_in_order()) == ["null", "zero"]


def test_mixed_types_do_not_raise():
    tree = BPlusTree(order=4)
    tree.insert((1,), "int")
    tree.insert(("a",), "str")
    tree.insert((2.5,), "float")
    assert len(list(tree.values_in_order())) == 3


def test_depth_grows_logarithmically():
    tree = BPlusTree(order=8)
    for value in range(2000):
        tree.insert((value,), value)
    assert tree.depth() <= 5


def test_order_validation():
    with pytest.raises(ValueError):
        BPlusTree(order=2)


@given(st.lists(st.integers(min_value=-1000, max_value=1000)))
def test_property_sorted_iteration(values):
    tree = BPlusTree(order=6)
    for value in values:
        tree.insert((value,), value)
    assert list(tree.values_in_order()) == sorted(values)


@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=1),
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=0, max_value=100),
)
def test_property_range_equals_filter(values, low, high):
    low, high = min(low, high), max(low, high)
    tree = BPlusTree(order=6)
    for value in values:
        tree.insert((value,), value)
    got = [v for _k, v in tree.range((low,), (high,))]
    assert got == sorted(v for v in values if low <= v <= high)


@given(st.lists(st.text(max_size=5)))
def test_property_search_finds_all_inserted(keys):
    tree = BPlusTree(order=6)
    for index, key in enumerate(keys):
        tree.insert((key,), index)
    for index, key in enumerate(keys):
        assert index in tree.search((key,))
