"""Tests for the self-contained XML parser."""

import pytest

from repro.xmldata import XMLSyntaxError, load, parse_document, parse_fragment, serialize


def test_simple_element():
    doc = parse_document("<a/>")
    assert doc.top.label == "a"
    assert doc.top.children == []


def test_nested_elements_and_text():
    doc = parse_document("<a><b>hello</b></a>")
    b = doc.top.element_children()[0]
    assert b.value == "hello"


def test_attributes_single_and_double_quotes():
    doc = parse_document("""<a x="1" y='2'/>""")
    attrs = {n.label: n.text for n in doc.top.attribute_children()}
    assert attrs == {"@x": "1", "@y": "2"}


def test_entities_in_text_and_attributes():
    doc = parse_document('<a x="&lt;&amp;&quot;">&gt;&apos;&#65;&#x42;</a>')
    assert doc.top.attribute_children()[0].text == '<&"'
    assert doc.top.value == ">'AB"


def test_unknown_entity_raises():
    with pytest.raises(XMLSyntaxError):
        parse_document("<a>&nope;</a>")


def test_comments_are_skipped():
    doc = parse_document("<a><!-- hi --><b/><!-- bye --></a>")
    assert [c.label for c in doc.top.element_children()] == ["b"]


def test_cdata_becomes_text():
    doc = parse_document("<a><![CDATA[<raw> & data]]></a>")
    assert doc.top.value == "<raw> & data"


def test_prolog_and_doctype_skipped():
    source = """<?xml version="1.0"?>
    <!DOCTYPE a [<!ELEMENT a (b)>]>
    <!-- top comment -->
    <a><b/></a>"""
    doc = parse_document(source)
    assert doc.top.label == "a"


def test_processing_instructions_skipped():
    doc = parse_document("<a><?php echo ?><b/></a>")
    assert [c.label for c in doc.top.element_children()] == ["b"]


def test_whitespace_only_text_is_dropped():
    doc = parse_document("<a>\n  <b/>\n</a>")
    assert all(c.kind != "text" for c in doc.top.children)


def test_mismatched_tags_raise():
    with pytest.raises(XMLSyntaxError):
        parse_document("<a><b></a></b>")


def test_trailing_content_raises():
    with pytest.raises(XMLSyntaxError):
        parse_document("<a/><b/>")


def test_unterminated_element_raises():
    with pytest.raises(XMLSyntaxError):
        parse_document("<a><b>")


def test_unquoted_attribute_raises():
    with pytest.raises(XMLSyntaxError):
        parse_document("<a x=1/>")


def test_parse_fragment_returns_detached_element():
    fragment = parse_fragment("<b><c/></b>")
    assert fragment.label == "b"
    assert fragment.parent is None


def test_round_trip_serialize_parse():
    source = '<a x="1"><b>text &amp; more</b><c/><d y="2">t</d></a>'
    doc = parse_document(source)
    assert serialize(doc.top) == source
    again = parse_document(serialize(doc.top))
    assert serialize(again.top) == source


def test_error_reports_position():
    try:
        parse_document("<a><b x=></b></a>")
    except XMLSyntaxError as error:
        assert error.position > 0
    else:  # pragma: no cover
        pytest.fail("expected a parse error")


def test_load_labels_nodes():
    doc = load("<a><b/></a>")
    assert doc.top.pre == 1
    assert doc.top.element_children()[0].pre == 2
