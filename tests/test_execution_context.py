"""Tests for the ExecutionContext spine: cost model, cost-based
compilation, per-operator metrics, and the three-stage EXPLAIN."""

import pytest

from repro import Database
from repro.algebra.model import NestedTuple
from repro.algebra.operators import BaseTuples, Select, StructuralJoin, ValueJoin, XMLize
from repro.algebra.plans import annotate_cardinalities, cardinality_profile
from repro.algebra.predicates import Attr, Compare, Const
from repro.engine import (
    CostModel,
    ExecutionContext,
    PScan,
    Tunables,
    compile_plan,
)
from repro.engine.orderdesc import project_order
from repro.workloads import generate_xmark
from tests.conftest import AUCTION_XML


def rows(name, values):
    return BaseTuples([NestedTuple({name: v}) for v in values])


def equality_join(n_left, n_right):
    return ValueJoin(
        rows("x", range(n_left)),
        rows("y", range(n_right)),
        Compare(Attr("x", 0), "=", Attr("y", 1)),
    )


class TestCostModel:
    def test_hash_join_above_threshold(self):
        model = CostModel()
        assert model.choose_join(50, 50) == "hash"

    def test_nested_loops_below_threshold(self):
        model = CostModel()
        assert model.choose_join(1, 1) == "nested"

    def test_costs_cross_over_monotonically(self):
        # once the hash join wins, it keeps winning as inputs grow
        model = CostModel()
        choices = [model.choose_join(n, n) for n in range(1, 40)]
        first_hash = choices.index("hash")
        assert all(c == "hash" for c in choices[first_hash:])

    def test_unknown_cardinalities_assume_large_inputs(self):
        model = CostModel()
        assert model.choose_join(None, None) == "hash"

    def test_tunables_shift_the_threshold(self):
        expensive_build = CostModel(Tunables(hash_build_cost=1000.0))
        assert expensive_build.choose_join(10, 10) == "nested"


class TestCostBasedCompilation:
    def test_large_equality_join_compiles_to_hash(self):
        physical = compile_plan(equality_join(50, 50))
        assert "PHashJoin" in physical.pretty()

    def test_tiny_equality_join_compiles_to_nested_loops(self):
        physical = compile_plan(equality_join(1, 1))
        assert "PNestedLoopsJoin" in physical.pretty()

    def test_choice_follows_cost_model_not_fixed_rules(self):
        # same plan, different tunables → different algorithm
        plan = equality_join(10, 10)
        default = compile_plan(plan)
        assert "PHashJoin" in default.pretty()
        ctx = ExecutionContext(tunables=Tunables(hash_build_cost=1000.0))
        overridden = compile_plan(plan, context=ctx)
        assert "PNestedLoopsJoin" in overridden.pretty()

    def test_estimates_stamped_on_physical_operators(self):
        physical = compile_plan(equality_join(8, 4))
        scans = [op for op in physical.walk() if not op.children]
        assert sorted(op.estimated_rows for op in scans) == [4.0, 8.0]

    def test_registry_overrides_builtin_lowering(self):
        ctx = ExecutionContext(
            registry={BaseTuples: lambda op, lower, c: PScan("swapped")}
        )
        physical = compile_plan(rows("x", range(3)), context=ctx)
        assert physical.label() == "PScan(swapped)"


class TestCardinalityWalk:
    def test_walk_covers_every_operator(self):
        plan = Select(equality_join(5, 5), Compare(Attr("x"), ">", Const(2)))
        assert len(list(plan.walk())) == 4

    def test_annotations_key_by_node_identity(self):
        plan = equality_join(6, 3)
        ctx = ExecutionContext()
        estimates = annotate_cardinalities(plan, ctx)
        assert estimates[id(plan.children[0])] == 6.0
        assert estimates[id(plan.children[1])] == 3.0

    def test_profile_pairs_labels_with_estimates(self):
        profile = cardinality_profile(rows("x", range(7)), ExecutionContext())
        assert profile == [("BaseTuples[7]", 7.0)]

    def test_selection_applies_selectivity(self):
        plan = Select(rows("x", range(100)), Compare(Attr("x"), ">", Const(2)))
        ctx = ExecutionContext()
        assert ctx.estimate(plan) == pytest.approx(
            100 * ctx.tunables.predicate_selectivity
        )


class TestSortPlacement:
    def sid_join(self, doc, base_left, base_right):
        return StructuralJoin(
            base_left, base_right, "x.ID", "y.ID", axis="descendant"
        )

    def test_projection_preserves_order_descriptor(self):
        from repro.algebra.operators import Project, Scan

        plan = StructuralJoin(
            Project(Scan("bs", ["x.ID", "x.V"]), ["x.ID"]),
            Scan("cs", ["y.ID"]),
            "x.ID",
            "y.ID",
            axis="descendant",
        )
        physical = compile_plan(plan, {"bs": "x.ID", "cs": "y.ID"})
        assert "PSort" not in physical.pretty()

    def test_projection_translates_renamed_descriptor(self):
        assert project_order("x.ID", ["x.ID"], {"x.ID": "z.ID"}) == "z.ID"
        assert project_order("x.ID", ["x.V"]) is None
        assert project_order(None, ["x.ID"]) is None

    def test_projection_dropping_order_attr_still_sorts(self):
        from repro.algebra.operators import Project, Scan

        plan = StructuralJoin(
            Project(Scan("bs", ["x.ID", "z.ID"]), ["z.ID"], renames={"z.ID": "x.ID"}),
            Scan("cs", ["y.ID"]),
            "x.ID",
            "y.ID",
            axis="descendant",
        )
        # bs is ordered by x.ID, but the projection keeps only z.ID
        # (renamed to x.ID) — a *different* attribute, so a sort is needed
        physical = compile_plan(plan, {"bs": "x.ID", "cs": "y.ID"})
        assert "PSort" in physical.pretty()


class TestPlanMetrics:
    def run_with_metrics(self, plan, data=None):
        ctx = ExecutionContext()
        physical = compile_plan(plan, context=ctx)
        tuples, metrics = ctx.run(physical, data or {})
        return tuples, metrics

    def test_rows_out_matches_result(self):
        tuples, metrics = self.run_with_metrics(rows("x", range(9)))
        assert len(tuples) == 9
        assert metrics.root.rows_out == 9

    def test_filter_counts_are_monotone(self):
        plan = Select(rows("x", range(20)), Compare(Attr("x"), "<", Const(5)))
        tuples, metrics = self.run_with_metrics(plan)
        assert len(tuples) == 5
        for node in metrics.walk():
            assert node.rows_out >= 0
            assert node.executions == 1
        # a selection can only shrink its input
        assert metrics.root.rows_out <= metrics.root.rows_in
        assert metrics.root.rows_in == 20

    def test_join_metrics_record_both_inputs(self):
        tuples, metrics = self.run_with_metrics(equality_join(50, 50))
        assert metrics.root.rows_in == 100
        assert metrics.root.rows_out == len(tuples) == 50

    def test_estimates_flow_into_metrics(self):
        _, metrics = self.run_with_metrics(rows("x", range(4)))
        assert metrics.root.estimated_rows == 4.0

    def test_elapsed_accumulates(self):
        _, metrics = self.run_with_metrics(equality_join(100, 100))
        assert metrics.root.elapsed > 0.0

    def test_pretty_shows_est_and_act(self):
        _, metrics = self.run_with_metrics(rows("x", range(3)))
        assert "est=3.0" in metrics.pretty()
        assert "act=3" in metrics.pretty()


class TestLogicalFallbackMaterialization:
    def fallback_plan(self):
        from repro.algebra.operators import TemplateAttr, TemplateElement

        template = TemplateElement("r", [TemplateAttr("x")])
        return XMLize(rows("x", [1, 2, 3]), template)

    def test_children_materialize_exactly_once_per_execution(self):
        ctx = ExecutionContext()
        physical = compile_plan(self.fallback_plan(), context=ctx)
        assert "PLogicalFallback" in physical.pretty()
        _, metrics = ctx.run(physical, {})
        (child,) = metrics.root.children
        assert child.executions == 1
        assert child.rows_out == 3

    def test_reexecution_with_same_context_reuses_inputs(self):
        ctx = ExecutionContext()
        physical = compile_plan(self.fallback_plan(), context=ctx)
        metrics = ctx.instrument(physical)
        data = {}
        first = list(physical.execute(data))
        second = list(physical.execute(data))
        assert first == second and len(first) == 3
        (child,) = metrics.root.children
        # the child subtree ran once; the second execution reused the
        # materialized substitution
        assert child.executions == 1

    def test_fresh_context_rematerializes(self):
        ctx = ExecutionContext()
        physical = compile_plan(self.fallback_plan(), context=ctx)
        metrics = ctx.instrument(physical)
        first, second = {}, {}  # two live context objects, distinct ids
        list(physical.execute(first))
        list(physical.execute(second))
        (child,) = metrics.root.children
        assert child.executions == 2


class TestExplain:
    @pytest.fixture()
    def db(self):
        return Database.from_xml(AUCTION_XML, "auction.xml")

    def test_report_iterates_resolutions(self, db):
        (resolution,) = db.explain("//item/name/text()")
        assert resolution.access_path == "base"

    def test_report_carries_three_stages(self, db):
        db.add_view("v", "//item[id:s]{/name[id:s, val]}")
        report = db.explain("//item/name/text()")
        (unit,) = report.units
        assert "PatternAccess" in unit.logical.pretty()
        assert unit.rewritten[0] is not None  # view-based plan chosen
        assert "PScan(__pattern_0)" in unit.physical.pretty()
        assert unit.metrics.root.rows_out == len(
            db.query("//item/name/text()").values
        )

    def test_estimated_and_actual_side_by_side(self, db):
        report = db.explain("//item/name/text()")
        (resolution,) = report
        assert resolution.estimated_cardinality is not None
        assert resolution.actual_cardinality == 2
        rendered = report.render()
        assert "est=" in rendered and "act=" in rendered
        assert "→" in rendered

    def test_query_stats_collects_metrics(self, db):
        result = db.query("//item/name/text()", stats=True)
        assert result.values == ["Fish", "Rock"]
        assert len(result.metrics) == 1
        assert result.metrics[0].root.rows_out == 2

    def test_stats_results_match_plain_results(self, db):
        query = "for $i in //item return <r>{ $i/name/text() }</r>"
        assert db.query(query, stats=True).xml == db.query(query).xml


class TestXMarkEstimateRegression:
    """Estimated vs. actual cardinality on the XMark sample.

    Documented bound (DESIGN.md, "Execution pipeline & EXPLAIN"):
    predicate-free structural patterns must estimate within 25% of the
    actual count — the summary φ-image cardinalities make single-branch
    chains exact, and the independence assumption governs the rest.
    """

    QUERIES = [
        "//item/name/text()",
        "//person/name/text()",
        "for $i in //item return <r>{ $i/name/text() }</r>",
    ]

    @pytest.fixture(scope="class")
    def db(self):
        db = Database()
        db.add_document(generate_xmark(scale=2, seed=3))
        return db

    @pytest.mark.parametrize("query", QUERIES)
    def test_estimate_within_documented_bound(self, db, query):
        report = db.explain(query)
        for resolution in report:
            est = resolution.estimated_cardinality
            act = resolution.actual_cardinality
            assert est is not None and act is not None and act > 0
            assert abs(est - act) / act <= 0.25
