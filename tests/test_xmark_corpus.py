"""Structural quality checks for the synthetic XMark corpus: the shapes
the benchmark experiments depend on must actually be present."""

import pytest

from repro.workloads import generate_xmark
from repro.workloads.xmark import REGIONS


@pytest.fixture(scope="module")
def doc():
    return generate_xmark(scale=2, seed=3)


def elements(doc, label):
    return [n for n in doc.elements() if n.label == label]


def test_all_regions_present(doc):
    regions = {n.label for n in elements(doc, "regions")[0].element_children()}
    assert regions == set(REGIONS)


def test_items_have_required_children(doc):
    for item in elements(doc, "item"):
        labels = [c.label for c in item.element_children()]
        for required in ("location", "quantity", "name", "payment", "description"):
            assert required in labels


def test_description_markup_recursion(doc):
    # descriptions carry text with bold/keyword/emph and a parlist that can
    # recurse (the §5.2 discussion point)
    parlists = elements(doc, "parlist")
    assert parlists
    nested = [
        p for p in parlists
        if any(a.label == "listitem" for a in p.ancestors())
    ]
    assert nested, "no recursive parlist generated"


def test_itemref_ids_resolve(doc):
    item_ids = {
        a.text
        for item in elements(doc, "item")
        for a in item.attribute_children()
        if a.label == "@id"
    }
    for ref in elements(doc, "itemref"):
        target = next(a.text for a in ref.attribute_children() if a.label == "@item")
        assert target in item_ids


def test_personref_ids_resolve(doc):
    person_ids = {
        a.text
        for person in elements(doc, "person")
        for a in person.attribute_children()
        if a.label == "@id"
    }
    for holder in ("personref", "seller", "buyer", "author"):
        for ref in elements(doc, holder):
            target = next(
                (a.text for a in ref.attribute_children() if a.label == "@person"),
                None,
            )
            if target is not None:
                assert target in person_ids


def test_auctions_reference_structure(doc):
    for auction in elements(doc, "open_auction"):
        labels = [c.label for c in auction.element_children()]
        assert "itemref" in labels and "seller" in labels
        assert "initial" in labels and "current" in labels


def test_numeric_fields_parse(doc):
    for label in ("initial", "current", "price", "increase"):
        for node in elements(doc, label):
            float(node.value)


def test_scale_grows_entities_linearly(doc):
    small = generate_xmark(scale=1, seed=3)
    assert len(elements(doc, "item")) == 2 * len(elements(small, "item"))
    assert len(elements(doc, "person")) == 2 * len(elements(small, "person"))
