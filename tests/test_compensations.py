"""Tests for the §3.1 compensating selections on flattened views.

The thesis' V₁₁ discussion: a flattened tree-pattern view stores one tuple
per (d, e) combination; the pattern cannot express that e-content should
only appear when the block binding d exists, so the consumer applies
σ (d.ID ≠ ⊥) ∨ (e.Cont = ⊥).  Our pipeline keeps data nested, so the σ is
off by default — these tests exercise the flattened path explicitly.
"""

from repro.algebra import NULL, NestedTuple, Select
from repro.algebra.predicates import Attr, IsNull, NotNull, Or
from repro.xquery import assemble_plan, extract, parse_query


QUERY = (
    "for $y in //b return <r>{ for $z in $y/d return <s>{ $y/e }</s> }</r>"
)


def test_compensation_recorded_with_thesis_shape():
    unit = extract(parse_query(QUERY)).units[0]
    assert len(unit.compensations) == 1
    _wp, guard, _dp, dependent = unit.compensations[0]
    assert guard.endswith(".ID")       # d.ID
    assert dependent.endswith(".C")    # e.Cont


def test_plan_without_compensations_by_default():
    unit = extract(parse_query(QUERY)).units[0]
    plan = assemble_plan(unit)
    assert "σ" not in plan.pretty()


def test_plan_with_compensations_filters_flattened_tuples():
    unit = extract(parse_query(QUERY)).units[0]
    plan = assemble_plan(unit, apply_compensations=True)
    assert "σ" in plan.pretty()
    _wp, guard, _dp, dependent = unit.compensations[0]

    # flattened view tuples in the thesis' V11 style:
    keep_with_d = NestedTuple({guard.split("/")[-1]: "some-id", dependent.split("/")[-1]: "<e/>"})
    keep_without_both = NestedTuple({guard.split("/")[-1]: NULL, dependent.split("/")[-1]: NULL})
    drop_e_without_d = NestedTuple({guard.split("/")[-1]: NULL, dependent.split("/")[-1]: "<e/>"})

    predicate = Or((NotNull(Attr(guard.split("/")[-1])), IsNull(Attr(dependent.split("/")[-1]))))
    assert predicate.holds(keep_with_d)
    assert predicate.holds(keep_without_both)
    assert not predicate.holds(drop_e_without_d)


def test_select_applies_thesis_sigma_on_view_tuples():
    """End-to-end σ over a hand-built flattened V11."""
    from repro.algebra import BaseTuples

    rows = [
        NestedTuple({"d.ID": 1, "e.C": "<e>E1</e>"}),
        NestedTuple({"d.ID": NULL, "e.C": "<e>E2</e>"}),  # must be dropped
        NestedTuple({"d.ID": NULL, "e.C": NULL}),
    ]
    sigma = Select(
        BaseTuples(rows),
        Or((NotNull(Attr("d.ID")), IsNull(Attr("e.C")))),
    )
    out = sigma.evaluate({})
    assert len(out) == 2
    assert all(not (t["d.ID"] is NULL and t["e.C"] is not NULL) for t in out)
