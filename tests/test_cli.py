"""Tests for the command-line shell."""

import pytest

from repro import Database
from repro.cli import main, run_command
from tests.conftest import BIB_XML


@pytest.fixture()
def db():
    return Database.from_xml(BIB_XML, "bib.xml")


def test_query_command(db, capsys):
    assert run_command(db, "//book/title/text()")
    out = capsys.readouterr().out
    assert "Data on the Web" in out
    assert "base store" in out


def test_view_lifecycle(db, capsys):
    run_command(db, ".view v //book[id:s]{/title[id:s, val]}")
    run_command(db, ".views")
    run_command(db, "//book/title/text()")
    out = capsys.readouterr().out
    assert "materialized" in out
    assert "[view] v:" in out
    assert "answered via views: v" in out
    run_command(db, ".drop v")
    run_command(db, "//book/title/text()")
    out = capsys.readouterr().out
    assert "base store" in out


def test_explain_and_summary(db, capsys):
    run_command(db, ".view v //book[id:s]")
    run_command(db, ".explain //book")
    run_command(db, ".summary")
    out = capsys.readouterr().out
    assert "→" in out
    assert "summary paths" in out


def test_errors_are_reported_not_raised(db, capsys):
    assert run_command(db, "for broken $syntax")
    assert run_command(db, ".view x not-a-xam[[[")
    assert run_command(db, ".drop ghost")
    out = capsys.readouterr().out
    assert out.count("error:") >= 2
    assert "no view named" in out


def test_parse_errors_labeled_as_such(db, capsys):
    run_command(db, "for broken $syntax")
    out = capsys.readouterr().out
    assert "parse error:" in out


def test_health_command(db, capsys):
    run_command(db, ".health")
    out = capsys.readouterr().out
    assert "healthy" in out
    db.breakers.record_failure("v", "boom")
    run_command(db, ".health")
    out = capsys.readouterr().out
    assert "v: closed" in out and "boom" in out


def test_quit_and_empty(db):
    assert run_command(db, "") is True
    assert run_command(db, ".quit") is False


def test_main_parse_error_exit_code(tmp_path, capsys):
    document = tmp_path / "doc.xml"
    document.write_text(BIB_XML)
    code = main([str(document), "--query", "for broken $syntax"])
    assert code == 2
    assert "parse error:" in capsys.readouterr().err


def test_main_execution_fault_exit_code(tmp_path, capsys, monkeypatch):
    document = tmp_path / "doc.xml"
    document.write_text(BIB_XML)
    monkeypatch.setenv("REPRO_FAULTS", "relation.scan:transient")
    code = main(
        [
            str(document),
            "--view",
            "v=//book[id:s]{/title[id:s, val]}",
            "--query",
            "//book/title/text()",
        ]
    )
    assert code == 3
    assert "TransientStorageFault" in capsys.readouterr().err


def test_main_one_shot(tmp_path, capsys):
    document = tmp_path / "doc.xml"
    document.write_text(BIB_XML)
    code = main(
        [
            str(document),
            "--view",
            "v=//book[id:s]{/title[id:s, val]}",
            "--query",
            "//book/title/text()",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Data on the Web" in out
    assert "via views: v" in out


def test_repl_bugs_are_not_masked(db, monkeypatch):
    # the REPL catches the typed ReproError hierarchy only: an untyped
    # exception is an engine bug and must escape with its traceback
    # instead of being rendered as a one-liner
    from repro.cli import _service_for

    service = _service_for(db)

    def boom(*args, **kwargs):
        raise TypeError("engine bug")

    monkeypatch.setattr(service, "query", boom)
    with pytest.raises(TypeError, match="engine bug"):
        run_command(db, "//book/title/text()")
    with pytest.raises(TypeError, match="engine bug"):
        run_command(db, ".stats //book")

    monkeypatch.setattr(service, "explain", boom)
    with pytest.raises(TypeError, match="engine bug"):
        run_command(db, ".explain //book")

    monkeypatch.setattr(service, "add_view", boom)
    with pytest.raises(TypeError, match="engine bug"):
        run_command(db, ".view v //book[id:s]")


def test_duplicate_view_is_reported_not_raised(db, capsys):
    run_command(db, ".view v //book[id:s]{/title[id:s, val]}")
    assert run_command(db, ".view v //book[id:s]{/title[id:s, val]}")
    out = capsys.readouterr().out
    assert "DuplicateViewError" in out


def test_batch_settle_propagates_untyped_errors(db):
    from repro.cli import _run_batch_settled
    from repro.core.service import QueryService

    class BuggyFuture:
        def result(self, timeout=None):
            raise TypeError("engine bug")

    service = QueryService(db, max_workers=1)
    try:
        service.submit = lambda *args, **kwargs: BuggyFuture()
        with pytest.raises(TypeError, match="engine bug"):
            _run_batch_settled(service, service.session("s"), ["//book"])
    finally:
        del service.submit
        service.shutdown()


def test_metrics_command(db, capsys):
    run_command(db, "//book/title/text()")
    run_command(db, ".metrics")
    out = capsys.readouterr().out
    assert "# TYPE repro_plan_cache_miss_total counter" in out
    assert "repro_query_latency_seconds_count" in out


def test_trace_command_runs_query_and_prints_tree(db, capsys):
    run_command(db, ".trace //book/title/text()")
    out = capsys.readouterr().out
    assert "Data on the Web" in out
    assert "query" in out and "execute" in out and "ms]" in out


def test_trace_command_looks_up_past_trace(db, capsys):
    from repro.cli import _service_for

    result = _service_for(db).query("//book/title/text()")
    capsys.readouterr()
    run_command(db, f".trace {result.trace_id}")
    out = capsys.readouterr().out
    assert "query" in out and "execute" in out


def test_slow_command_empty(db, capsys):
    run_command(db, ".slow")
    out = capsys.readouterr().out
    assert "no slow queries captured" in out


def test_serve_with_metrics_endpoint(tmp_path, capsys):
    document = tmp_path / "doc.xml"
    document.write_text(BIB_XML)
    queries = tmp_path / "queries.txt"
    queries.write_text("//book/title/text()\n")
    code = main(
        [
            "serve",
            str(document),
            "--queries",
            str(queries),
            "--metrics-port",
            "0",
            "--slow-query-ms",
            "0",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "-- metrics: http://" in out
    assert "-- slow:" in out


def test_serve_no_trace_flag(tmp_path, capsys):
    document = tmp_path / "doc.xml"
    document.write_text(BIB_XML)
    queries = tmp_path / "queries.txt"
    queries.write_text("//book/title/text()\n")
    code = main(["serve", str(document), "--queries", str(queries), "--no-trace"])
    assert code == 0
    assert "Data on the Web" in capsys.readouterr().out
