"""Tests for the command-line shell."""

import pytest

from repro import Database
from repro.cli import main, run_command
from tests.conftest import BIB_XML


@pytest.fixture()
def db():
    return Database.from_xml(BIB_XML, "bib.xml")


def test_query_command(db, capsys):
    assert run_command(db, "//book/title/text()")
    out = capsys.readouterr().out
    assert "Data on the Web" in out
    assert "base store" in out


def test_view_lifecycle(db, capsys):
    run_command(db, ".view v //book[id:s]{/title[id:s, val]}")
    run_command(db, ".views")
    run_command(db, "//book/title/text()")
    out = capsys.readouterr().out
    assert "materialized" in out
    assert "[view] v:" in out
    assert "answered via views: v" in out
    run_command(db, ".drop v")
    run_command(db, "//book/title/text()")
    out = capsys.readouterr().out
    assert "base store" in out


def test_explain_and_summary(db, capsys):
    run_command(db, ".view v //book[id:s]")
    run_command(db, ".explain //book")
    run_command(db, ".summary")
    out = capsys.readouterr().out
    assert "→" in out
    assert "summary paths" in out


def test_errors_are_reported_not_raised(db, capsys):
    assert run_command(db, "for broken $syntax")
    assert run_command(db, ".view x not-a-xam[[[")
    assert run_command(db, ".drop ghost")
    out = capsys.readouterr().out
    assert out.count("error:") >= 2
    assert "no view named" in out


def test_parse_errors_labeled_as_such(db, capsys):
    run_command(db, "for broken $syntax")
    out = capsys.readouterr().out
    assert "parse error:" in out


def test_health_command(db, capsys):
    run_command(db, ".health")
    out = capsys.readouterr().out
    assert "healthy" in out
    db.breakers.record_failure("v", "boom")
    run_command(db, ".health")
    out = capsys.readouterr().out
    assert "v: closed" in out and "boom" in out


def test_quit_and_empty(db):
    assert run_command(db, "") is True
    assert run_command(db, ".quit") is False


def test_main_parse_error_exit_code(tmp_path, capsys):
    document = tmp_path / "doc.xml"
    document.write_text(BIB_XML)
    code = main([str(document), "--query", "for broken $syntax"])
    assert code == 2
    assert "parse error:" in capsys.readouterr().err


def test_main_execution_fault_exit_code(tmp_path, capsys, monkeypatch):
    document = tmp_path / "doc.xml"
    document.write_text(BIB_XML)
    monkeypatch.setenv("REPRO_FAULTS", "relation.scan:transient")
    code = main(
        [
            str(document),
            "--view",
            "v=//book[id:s]{/title[id:s, val]}",
            "--query",
            "//book/title/text()",
        ]
    )
    assert code == 3
    assert "TransientStorageFault" in capsys.readouterr().err


def test_main_one_shot(tmp_path, capsys):
    document = tmp_path / "doc.xml"
    document.write_text(BIB_XML)
    code = main(
        [
            str(document),
            "--view",
            "v=//book[id:s]{/title[id:s, val]}",
            "--query",
            "//book/title/text()",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Data on the Web" in out
    assert "via views: v" in out
