"""Unit tests of the overload-protection primitives: the retry token
bucket, the AIMD concurrency limiter, the admission controller's
shed/deadline/readiness protocol, and the env-var knob resolvers.

Every class takes an injectable clock, so refill, deadline and readiness
arithmetic is tested deterministically — no sleeps, no wall time."""

import pytest

from repro.engine.admission import (
    AdaptiveConcurrencyLimiter,
    AdmissionController,
    TokenBucket,
    resolve_adaptive_limit,
    resolve_hedge,
    resolve_hedge_delay,
    resolve_queue_capacity,
    resolve_retry_budget,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_spends_down_to_zero_then_denies(self):
        clock = FakeClock()
        bucket = TokenBucket(3, refill_per_second=0, clock=clock)
        assert [bucket.try_spend() for _ in range(4)] == [
            True, True, True, False,
        ]
        assert bucket.spent == 3 and bucket.denied == 1

    def test_refills_continuously_and_caps_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(10, refill_per_second=2, clock=clock)
        for _ in range(10):
            assert bucket.try_spend()
        assert not bucket.try_spend()
        clock.advance(1.0)  # 2 tokens back
        assert bucket.tokens == pytest.approx(2.0)
        assert bucket.try_spend() and bucket.try_spend()
        assert not bucket.try_spend()
        clock.advance(1000.0)  # refill never overshoots capacity
        assert bucket.tokens == pytest.approx(10.0)

    def test_render_and_validation(self):
        clock = FakeClock()
        bucket = TokenBucket(4, 1, clock=clock)
        assert "tokens=4.0/4" in bucket.render()
        with pytest.raises(ValueError):
            TokenBucket(0, 1)


class TestAdaptiveConcurrencyLimiter:
    def make(self, **kwargs):
        clock = FakeClock()
        defaults = dict(
            max_limit=8, window=4, target_latency=0.010, clock=clock
        )
        defaults.update(kwargs)
        return AdaptiveConcurrencyLimiter(**defaults), clock

    def test_degraded_window_shrinks_multiplicatively(self):
        limiter, _ = self.make()
        assert limiter.limit == 8 and not limiter.degraded
        for _ in range(4):  # p99 = 50ms >> 2 * 10ms target
            limiter.observe(0.050)
        assert limiter.limit == 4 and limiter.degraded
        assert limiter.decreases == 1
        for _ in range(4):
            limiter.observe(0.050)
        assert limiter.limit == 2

    def test_healthy_windows_regrow_additively(self):
        limiter, _ = self.make()
        for _ in range(8):
            limiter.observe(0.050)
        assert limiter.limit == 2
        for _ in range(4):  # healthy window: p99 within 2x target
            limiter.observe(0.005)
        assert limiter.limit == 3
        for _ in range(5 * 4):
            limiter.observe(0.005)
        assert limiter.limit == 8  # recovered, capped at max
        assert not limiter.degraded

    def test_never_leaves_min_max_bounds(self):
        limiter, _ = self.make(min_limit=2)
        for _ in range(100):
            limiter.observe(1.0)
        assert limiter.limit == 2

    def test_learned_baseline_without_target(self):
        limiter, _ = self.make(target_latency=None)
        for _ in range(4):  # the best window seen becomes the baseline
            limiter.observe(0.010)
        assert limiter.limit == 8
        for _ in range(4):  # 5x the learned baseline: degrade
            limiter.observe(0.050)
        assert limiter.limit == 4

    def test_acquire_blocks_at_limit_and_times_out(self):
        # the acquire timeout is measured on the limiter's clock, so this
        # test needs the real monotonic clock, not the frozen fake
        limiter = AdaptiveConcurrencyLimiter(
            2, min_limit=1, window=4, target_latency=None
        )
        assert limiter.acquire() and limiter.acquire()
        assert limiter.inflight == 2
        assert not limiter.acquire(timeout=0.01)  # full: times out
        limiter.release()
        assert limiter.acquire(timeout=0.01)
        for _ in range(2):
            limiter.release()

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimiter(0)
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimiter(2, min_limit=3)
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimiter(2, decrease_factor=1.5)


class TestAdmissionController:
    def make(self, **kwargs):
        clock = FakeClock()
        defaults = dict(queue_capacity=2, clock=clock)
        defaults.update(kwargs)
        return AdmissionController(**defaults), clock

    def test_bounded_queue_sheds_when_full(self):
        controller, _ = self.make()
        assert controller.try_admit().admitted
        assert controller.try_admit().admitted
        decision = controller.try_admit()
        assert not decision.admitted and decision.reason == "queue_full"
        assert controller.depth == 2
        assert controller.admitted == 2 and controller.shed == 1

    def test_started_decrements_depth_and_learns_wait(self):
        controller, clock = self.make()
        controller.try_admit()
        queued_at = clock()
        clock.advance(0.2)
        wait = controller.started(queued_at)
        assert wait == pytest.approx(0.2)
        assert controller.depth == 0
        assert controller.wait_estimate == pytest.approx(0.2)

    def test_deadline_shed_uses_wait_estimate(self):
        controller, clock = self.make(queue_capacity=100)
        controller.try_admit()
        clock.advance(0.5)
        controller.started(clock() - 0.5)  # EWMA wait ~= 0.5s
        # remaining deadline (0.1s) < observed wait (0.5s): shed now
        decision = controller.try_admit(deadline=clock() + 0.1)
        assert not decision.admitted and decision.reason == "deadline"
        assert decision.wait_estimate == pytest.approx(0.5)
        # a roomy deadline clears the estimate comfortably: admitted
        assert controller.try_admit(deadline=clock() + 10.0).admitted

    def test_background_has_smaller_share(self):
        controller, _ = self.make(queue_capacity=4, background_share=0.5)
        assert controller.try_admit("background").admitted
        assert controller.try_admit("background").admitted
        decision = controller.try_admit("background")
        assert not decision.admitted and decision.reason == "queue_full"
        # interactive still has room up to the full capacity
        assert controller.try_admit("interactive").admitted

    def test_background_shed_first_under_degraded_limiter(self):
        clock = FakeClock()
        limiter = AdaptiveConcurrencyLimiter(
            4, window=2, target_latency=0.01, clock=clock
        )
        controller = AdmissionController(
            queue_capacity=100, limiter=limiter, clock=clock
        )
        assert controller.try_admit("background").admitted
        for _ in range(2):
            limiter.observe(0.5)  # degrade
        assert limiter.degraded
        decision = controller.try_admit("background")
        assert not decision.admitted and decision.reason == "background_shed"
        assert controller.try_admit("interactive").admitted

    def test_cancelled_unwinds_depth(self):
        controller, _ = self.make()
        controller.try_admit()
        controller.cancelled()
        assert controller.depth == 0

    def test_unknown_priority_rejected(self):
        controller, _ = self.make()
        with pytest.raises(ValueError):
            controller.try_admit("batch")

    def test_readiness_flips_under_sustained_shed_and_recovers(self):
        controller, clock = self.make(
            queue_capacity=1, ready_min_samples=4, ready_horizon=60.0
        )
        assert controller.ready()  # too few samples: optimistic
        controller.try_admit()
        for _ in range(6):  # queue pinned full: everything sheds
            assert not controller.try_admit().admitted
        assert not controller.ready()
        controller.started(clock())  # drain the queue
        for _ in range(12):  # accepted traffic dilutes the window
            assert controller.try_admit().admitted
            controller.started(clock())
        assert controller.ready()
        assert "admitted=" in controller.render()

    def test_note_shed_counts_into_readiness(self):
        controller, _ = self.make(ready_min_samples=2)
        for _ in range(4):
            controller.note_shed()
        assert not controller.ready()
        assert controller.shed == 4


class TestEnvResolvers:
    def test_queue_capacity(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUEUE_CAPACITY", raising=False)
        assert resolve_queue_capacity(None, 4) == 64
        assert resolve_queue_capacity(None, 16) == 256
        assert resolve_queue_capacity(7, 4) == 7
        monkeypatch.setenv("REPRO_QUEUE_CAPACITY", "12")
        assert resolve_queue_capacity(None, 4) == 12
        with pytest.raises(ValueError):
            resolve_queue_capacity(0, 4)

    def test_adaptive_limit(self, monkeypatch):
        monkeypatch.delenv("REPRO_ADAPTIVE_LIMIT", raising=False)
        assert resolve_adaptive_limit(None) is True
        assert resolve_adaptive_limit(False) is False
        monkeypatch.setenv("REPRO_ADAPTIVE_LIMIT", "off")
        assert resolve_adaptive_limit(None) is False
        assert resolve_adaptive_limit(True) is True  # explicit wins

    def test_retry_budget(self, monkeypatch):
        monkeypatch.delenv("REPRO_RETRY_BUDGET", raising=False)
        monkeypatch.delenv("REPRO_RETRY_REFILL", raising=False)
        assert resolve_retry_budget(None, None) == (256.0, 64.0)
        monkeypatch.setenv("REPRO_RETRY_BUDGET", "8")
        monkeypatch.setenv("REPRO_RETRY_REFILL", "0.5")
        assert resolve_retry_budget(None, None) == (8.0, 0.5)
        with pytest.raises(ValueError):
            resolve_retry_budget(0, None)
        with pytest.raises(ValueError):
            resolve_retry_budget(None, -1)

    def test_hedge(self, monkeypatch):
        monkeypatch.delenv("REPRO_HEDGE", raising=False)
        monkeypatch.delenv("REPRO_HEDGE_DELAY", raising=False)
        assert resolve_hedge(None) is False  # opt-in
        assert resolve_hedge(True) is True
        monkeypatch.setenv("REPRO_HEDGE", "1")
        assert resolve_hedge(None) is True
        assert resolve_hedge_delay(None) is None
        monkeypatch.setenv("REPRO_HEDGE_DELAY", "0.02")
        assert resolve_hedge_delay(None) == pytest.approx(0.02)
        assert resolve_hedge_delay(0.5) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            resolve_hedge_delay(-1.0)
