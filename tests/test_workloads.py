"""Tests for the workload generators: determinism, summary regimes, and
the §4.6 random-pattern knobs."""

import random

import pytest

from repro.core import is_satisfiable
from repro.summary import build_enhanced_summary
from repro.workloads import (
    XMARK_QUERIES,
    GeneratorConfig,
    generate_bib,
    generate_dblp,
    generate_nasa,
    generate_pattern,
    generate_patterns,
    generate_shakespeare,
    generate_swissprot,
    generate_xmark,
    xmark_query_patterns,
)


class TestGenerators:
    @pytest.mark.parametrize(
        "generator",
        [generate_xmark, generate_dblp, generate_shakespeare, generate_nasa, generate_swissprot],
    )
    def test_deterministic(self, generator):
        a = generator(1)
        b = generator(1)
        assert a.top.content == b.top.content

    def test_seeds_vary_content(self):
        assert (
            generate_dblp(1, seed=1).top.content
            != generate_dblp(1, seed=2).top.content
        )

    def test_summary_size_regimes(self):
        """Figure 4.13 regime: XMark summaries are an order of magnitude
        larger than DBLP's (formatting markup vs flat records)."""
        xmark = build_enhanced_summary(generate_xmark(1))
        dblp = build_enhanced_summary(generate_dblp(1))
        assert len(xmark) > 5 * len(dblp)

    def test_xmark_recursion_present(self, xmark_summary):
        recursive = xmark_summary.node_for_path(
            "/site/regions/africa/item/description/parlist/listitem/parlist"
        )
        assert recursive is not None

    def test_bib_matches_thesis_figure(self):
        doc = generate_bib()
        assert doc.top.label == "library"
        titles = [n.value for n in doc.elements() if n.label == "title"]
        assert "Data on the Web" in titles


class TestRandomPatterns:
    def test_generated_patterns_are_satisfiable(self, xmark_summary):
        patterns = generate_patterns(xmark_summary, 7, 2, 25, seed=5)
        assert all(is_satisfiable(p, xmark_summary) for p in patterns)

    def test_size_respected(self, xmark_summary):
        rng = random.Random(0)
        for size in (3, 8, 13):
            pattern = generate_pattern(xmark_summary, size, 1, rng)
            assert pattern.size() == size

    def test_return_labels_fixed(self, xmark_summary):
        rng = random.Random(1)
        pattern = generate_pattern(xmark_summary, 6, 3, rng)
        labels = [n.tag for n in pattern.return_nodes()]
        assert labels == ["item", "name", "initial"]

    def test_optional_probability_zero_gives_conjunctive_edges(self, xmark_summary):
        config = GeneratorConfig(
            optional_probability=0.0, predicate_probability=0.0, wildcard_probability=0.0
        )
        patterns = generate_patterns(xmark_summary, 9, 1, 10, seed=2, config=config)
        assert all(not p.has_optional_edges for p in patterns)

    def test_optional_probability_one_marks_fillers_optional(self, xmark_summary):
        config = GeneratorConfig(optional_probability=1.0)
        patterns = generate_patterns(xmark_summary, 9, 1, 10, seed=3, config=config)
        assert all(p.has_optional_edges for p in patterns if p.size() > 2)

    def test_deterministic_batches(self, xmark_summary):
        a = generate_patterns(xmark_summary, 7, 2, 5, seed=9)
        b = generate_patterns(xmark_summary, 7, 2, 5, seed=9)
        assert [p.to_text() for p in a] == [p.to_text() for p in b]

    def test_missing_return_label_raises(self):
        from repro.summary import PathSummary

        summary = PathSummary.from_paths(["/a/b"])
        with pytest.raises(ValueError):
            generate_pattern(summary, 3, 1, random.Random(0))


class TestXMarkQueries:
    def test_twenty_queries(self):
        assert len(XMARK_QUERIES) == 20

    def test_patterns_extracted_for_all(self):
        patterns = xmark_query_patterns()
        assert set(patterns) == set(XMARK_QUERIES)
        assert all(patterns.values())

    def test_q07_has_unrelated_variables(self):
        patterns = xmark_query_patterns()["q07"]
        assert len(patterns) == 3  # three structurally unrelated patterns

    def test_most_queries_satisfiable_on_xmark(self, xmark_summary):
        satisfiable = 0
        for patterns in xmark_query_patterns().values():
            if all(is_satisfiable(p, xmark_summary) for p in patterns):
                satisfiable += 1
        assert satisfiable >= 15
