"""Tests for index models (§2.1.2/§2.3.3): value indexes, full-text
inverted files, XISS, and the pre/post plane."""

import pytest

from repro.algebra import NestedTuple
from repro.engine import Store
from repro.indexes import (
    PrePostPlane,
    build_fulltext_index,
    build_value_index,
    build_xiss_indexes,
    contains_word,
    fulltext_lookup,
    tokenize,
    value_index_pattern,
    word_index_tree,
)
from repro.storage import Catalog, index_lookup
from repro.xmldata import id_of, load


class TestValueIndex:
    def test_pattern_marks_keys_required(self):
        pattern = value_index_pattern("book", ["@year", "title"])
        required = [n for n in pattern.nodes() if n.value_required]
        assert [n.tag for n in required] == ["@year", "title"]
        assert pattern.has_required_attrs

    def test_lookup_hit_and_miss(self, bib_doc):
        store, catalog = Store(), Catalog()
        entry = build_value_index(
            "byYearTitle", bib_doc, store, catalog, "book", ["@year", "title"]
        )
        hit = index_lookup(
            entry,
            store,
            [NestedTuple({"e2.V": "1999", "e3.V": "Data on the Web"})],
        )
        assert len(hit) == 1
        miss = index_lookup(
            entry, store, [NestedTuple({"e2.V": "2000", "e3.V": "Data on the Web"})]
        )
        assert miss == []

    def test_multi_binding_lookup_respects_order(self, bib_doc):
        store, catalog = Store(), Catalog()
        entry = build_value_index(
            "byTitle", bib_doc, store, catalog, "book", ["title"]
        )
        out = index_lookup(
            entry,
            store,
            [
                NestedTuple({"e2.V": "The Syntactic Web"}),
                NestedTuple({"e2.V": "Data on the Web"}),
            ],
        )
        assert [t["e2.V"] for t in out] == ["The Syntactic Web", "Data on the Web"]

    def test_nested_key_path(self, auction_doc):
        store, catalog = Store(), Catalog()
        entry = build_value_index(
            "byName", auction_doc, store, catalog, "item", ["name"]
        )
        out = index_lookup(entry, store, [NestedTuple({"e2.V": "Fish"})])
        assert len(out) == 1


class TestFullText:
    def test_tokenize(self):
        assert tokenize("The Web, the DATA!") == ["the", "web", "the", "data"]

    def test_contains_word(self):
        assert contains_word("Data on the Web", "web")
        assert not contains_word("Data on the Web", "sea")
        assert not contains_word(None, "web")

    def test_index_agrees_with_scan(self, bib_doc):
        store, catalog = Store(), Catalog()
        entry = build_fulltext_index(
            "titleFTI", bib_doc, store, catalog, "book/title"
        )
        via_index = {t["ID"] for t in fulltext_lookup(entry, store, "Web")}
        via_scan = {
            id_of(n, "s")
            for n in bib_doc.elements()
            if n.label == "title"
            and n.rooted_path()[-2] == "book"
            and contains_word(n.value, "Web")
        }
        assert via_index == via_scan

    def test_scope_restricts(self, bib_doc):
        store, catalog = Store(), Catalog()
        scoped = build_fulltext_index("a", bib_doc, store, catalog, "book/title")
        unscoped = build_fulltext_index("b", bib_doc, store, catalog, None)
        assert len(fulltext_lookup(scoped, store, "web")) < len(
            fulltext_lookup(unscoped, store, "web")
        )

    def test_word_index_tree_prefix_scan(self, bib_doc):
        tree = word_index_tree(bib_doc)
        words = {key[0] for key, _v in tree.range(("w",), ("wz",))}
        assert "web" in words


class TestXISS:
    def test_relations_and_dictionaries(self, bib_doc):
        store, catalog = Store(), Catalog()
        out = build_xiss_indexes(bib_doc, store, catalog)
        assert "xiss_elem_book" in out["relations"]
        assert len(store["xiss_elem_author"]) == 4
        # the name index is a plain dictionary — XAMs do not model it
        assert "book" in out["name_index"]
        assert "Data on the Web" in out["value_index"]

    def test_structural_index_has_parent_pointers(self, bib_doc):
        store, catalog = Store(), Catalog()
        build_xiss_indexes(bib_doc, store, catalog)
        roots = [t for t in store["xiss_structure"] if t["parentID"] is None]
        assert len(roots) == 1

    def test_structural_index_xam_is_restricted(self, bib_doc):
        store, catalog = Store(), Catalog()
        build_xiss_indexes(bib_doc, store, catalog)
        assert catalog["xiss_structure"].is_index


class TestPrePostPlane:
    @pytest.fixture()
    def doc(self):
        return load("<a><b><c/><d/></b><e><f/></e></a>")

    def plane_and(self, doc, label):
        node = next(n for n in doc.elements() if n.label == label)
        return PrePostPlane(doc), id_of(node, "s")

    def test_descendants_quarter(self, doc):
        plane, b = self.plane_and(doc, "b")
        labels = {doc.find_by_pre(sid.pre).label for sid in plane.descendants(b)}
        assert labels == {"c", "d"}

    def test_ancestors_quarter(self, doc):
        plane, c = self.plane_and(doc, "c")
        labels = {doc.find_by_pre(sid.pre).label for sid in plane.ancestors(c)}
        assert labels == {"a", "b"}

    def test_preceding_following_quarters(self, doc):
        plane, e = self.plane_and(doc, "e")
        preceding = {doc.find_by_pre(s.pre).label for s in plane.preceding(e)}
        assert preceding == {"b", "c", "d"}
        plane, b = self.plane_and(doc, "b")
        following = {doc.find_by_pre(s.pre).label for s in plane.following(b)}
        assert following == {"e", "f"}

    def test_children_with_label_filter(self, doc):
        plane, b = self.plane_and(doc, "b")
        children = plane.children(b)
        assert len(children) == 2
        only_c = plane.descendants(b, label="c")
        assert len(only_c) == 1

    def test_plane_matches_tree_for_all_pairs(self, doc):
        plane = PrePostPlane(doc)
        elements = list(doc.elements())
        for node in elements:
            sid = id_of(node, "s")
            expected = {
                id_of(d, "s") for d in node.iter_subtree() if d is not node and d.kind == "element"
            }
            assert set(plane.descendants(sid)) == expected
