"""Cross-cutting property tests: serializer round-trips, pattern text
round-trips, containment laws on random generated patterns, and
rewriting/answer agreement."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    evaluate_pattern,
    is_contained,
    is_equivalent,
    parse_pattern,
)
from repro.summary import build_enhanced_summary
from repro.workloads import GeneratorConfig, generate_pattern
from repro.xmldata import load, serialize


# -- XML round trips ---------------------------------------------------------

@st.composite
def xml_trees(draw):
    labels = ["a", "b", "c"]
    texts = ["x", "1 2", "&<>\"'"]

    def build(depth: int) -> str:
        label = draw(st.sampled_from(labels))
        attrs = ""
        if draw(st.booleans()):
            value = draw(st.sampled_from(texts))
            escaped = (
                value.replace("&", "&amp;").replace("<", "&lt;")
                .replace(">", "&gt;").replace('"', "&quot;")
            )
            attrs = f' k="{escaped}"'
        if depth >= 3 or not draw(st.booleans()):
            return f"<{label}{attrs}/>"
        pieces = []
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            if draw(st.booleans()):
                pieces.append(build(depth + 1))
            else:
                raw = draw(st.sampled_from(texts))
                pieces.append(
                    raw.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
                )
        inner = "".join(pieces)
        if not inner:
            return f"<{label}{attrs}/>"
        return f"<{label}{attrs}>{inner}</{label}>"

    return build(0)


@settings(max_examples=60, deadline=None)
@given(xml_trees())
def test_serialize_parse_round_trip(source):
    doc = load(source)
    again = load(serialize(doc.top))
    assert serialize(again.top) == serialize(doc.top)


# -- pattern text round trips --------------------------------------------------

_SUMMARY_DOC = load(
    "<a>"
    "<b><c>v1</c><d/></b>"
    "<b><c>v2</c></b>"
    "<e><c>v1</c><f><c>v3</c></f></e>"
    "</a>"
)
_SUMMARY = build_enhanced_summary(_SUMMARY_DOC)
_CONFIG = GeneratorConfig(
    return_labels=("c",),
    optional_probability=0.4,
    predicate_probability=0.3,
    value_pool=4,
)


def _random_pattern(seed: int, size: int):
    rng = random.Random(seed)
    return generate_pattern(_SUMMARY, size, 1, rng, _CONFIG)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=5))
def test_pattern_text_round_trip(seed, size):
    pattern = _random_pattern(seed, size)
    assert parse_pattern(pattern.to_text()).same_structure(pattern)


# -- containment laws ------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=4))
def test_containment_reflexive(seed, size):
    pattern = _random_pattern(seed, size)
    assert is_contained(pattern, pattern.copy(), _SUMMARY)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)
def test_containment_transitive(seed_a, seed_b, seed_c):
    a = _random_pattern(seed_a, 3)
    b = _random_pattern(seed_b, 3)
    c = _random_pattern(seed_c, 3)
    if is_contained(a, b, _SUMMARY) and is_contained(b, c, _SUMMARY):
        assert is_contained(a, c, _SUMMARY)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_equivalence_implies_same_results(seed):
    a = _random_pattern(seed, 3)
    b = _random_pattern(seed + 1, 3)
    if is_equivalent(a, b, _SUMMARY):
        ra = {
            t.first(f"{a.return_nodes()[0].name}.ID")
            for t in evaluate_pattern(a, _SUMMARY_DOC)
        }
        rb = {
            t.first(f"{b.return_nodes()[0].name}.ID")
            for t in evaluate_pattern(b, _SUMMARY_DOC)
        }
        assert ra == rb


# -- rewriting answers agree with direct evaluation -----------------------------

@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_rewriting_preserves_answers(seed):
    from repro.core import rewrite_pattern
    from repro.engine import Store
    from repro.storage import Catalog, materialize_view

    query = _random_pattern(seed, 3)
    store, catalog = Store(), Catalog()
    materialize_view("self", query, _SUMMARY_DOC, store, catalog)
    rewritings = rewrite_pattern(query, catalog, _SUMMARY)
    assert rewritings  # the identical view always qualifies
    got = sorted(t.freeze() for t in rewritings[0].plan.evaluate(store.context()))
    want = sorted(
        t.project(rewritings[0].plan.schema()).freeze()
        for t in evaluate_pattern(query, _SUMMARY_DOC)
    )
    assert got == want


# -- minimization preserves S-equivalence ---------------------------------------

@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=5))
def test_contraction_minimization_preserves_equivalence(seed, size):
    from repro.core import is_equivalent
    from repro.core.minimize import minimize_by_contraction

    pattern = _random_pattern(seed, size)
    for minimal in minimize_by_contraction(pattern, _SUMMARY):
        assert minimal.size() <= pattern.size()
        assert is_equivalent(pattern, minimal, _SUMMARY)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=4))
def test_minimization_idempotent(seed, size):
    from repro.core.minimize import minimize_by_contraction

    pattern = _random_pattern(seed, size)
    minimal = min(
        minimize_by_contraction(pattern, _SUMMARY), key=lambda p: p.size()
    )
    again = min(
        minimize_by_contraction(minimal, _SUMMARY), key=lambda p: p.size()
    )
    assert again.size() == minimal.size()


# -- canonical trees stay within the summary ------------------------------------

@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=4))
def test_canonical_trees_use_only_summary_paths(seed, size):
    from repro.core.canonical import canonical_model

    pattern = _random_pattern(seed, size)
    for tree in canonical_model(pattern, _SUMMARY, use_strong_edges=False)[:8]:
        stack = list(tree.root.children)
        while stack:
            node = stack.pop()
            snode = _SUMMARY.node_by_number(node.summary_number)
            assert snode is not None and snode.label == node.label
            stack.extend(node.children)
