"""Unit tests of the versioned LRU plan cache (engine/plan_cache.py)."""

import threading

from repro.engine.plan_cache import CacheStats, PlanCache, normalize_query


class TestNormalizeQuery:
    def test_whitespace_insensitive(self):
        assert normalize_query("  //a/b  ") == "//a/b"
        assert normalize_query("for  $x in\n//a\treturn $x") == (
            "for $x in //a return $x"
        )

    def test_identity_on_normal_text(self):
        assert normalize_query("//a/b/text()") == "//a/b/text()"


class TestLRU:
    def test_capacity_respected(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert "a" not in cache
        assert cache.stats().evictions == 1

    def test_get_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # a becomes most recent
        cache.put("c", 3)  # evicts b, not a
        assert "a" in cache
        assert "b" not in cache

    def test_put_overwrites_without_eviction(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert cache.stats().evictions == 0

    def test_minimum_capacity_enforced(self):
        try:
            PlanCache(capacity=0)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("capacity=0 should be rejected")


class TestVersioning:
    def test_version_mismatch_is_invalidation_and_miss(self):
        cache = PlanCache(capacity=4)
        cache.put("q", "plan", version=1)
        value, outcome = cache.lookup("q", version=2)
        assert value is None and outcome == "stale"
        assert "q" not in cache  # stale entry dropped eagerly
        stats = cache.stats()
        assert stats.invalidations == 1
        assert stats.misses == 1
        assert stats.hits == 0

    def test_same_version_hits(self):
        cache = PlanCache(capacity=4)
        cache.put("q", "plan", version=7)
        value, outcome = cache.lookup("q", version=7)
        assert value == "plan" and outcome == "hit"

    def test_purge_stale_drops_only_old_versions(self):
        cache = PlanCache(capacity=8)
        cache.put("old1", 1, version=1)
        cache.put("old2", 2, version=1)
        cache.put("new", 3, version=2)
        assert cache.purge_stale(version=2) == 2
        assert cache.keys() == ["new"]
        assert cache.stats().invalidations == 2

    def test_clear_counts_invalidations(self):
        cache = PlanCache(capacity=8)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.stats().invalidations == 2


class TestStats:
    def test_counters_and_hit_rate(self):
        cache = PlanCache(capacity=2)
        cache.get("nope")
        cache.put("a", 1)
        cache.get("a")
        stats = cache.stats()
        assert isinstance(stats, CacheStats)
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5
        assert stats.size == 1 and stats.capacity == 2
        assert "hit_rate" in stats.as_dict()
        assert "size=1/2" in stats.render()

    def test_empty_hit_rate_is_zero(self):
        assert PlanCache().stats().hit_rate == 0.0


class TestThreadSafety:
    def test_concurrent_mixed_operations(self):
        cache = PlanCache(capacity=16)
        errors = []

        def worker(seed: int) -> None:
            try:
                for i in range(200):
                    key = f"q{(seed * 7 + i) % 24}"
                    if i % 3 == 0:
                        cache.put(key, i, version=i % 2)
                    else:
                        cache.get(key, version=i % 2)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 16
        stats = cache.stats()
        assert stats.lookups + stats.invalidations > 0
