"""Tests for the DOM access methods modeled as XAMs (§2.3.2)."""

import pytest

from repro.storage.dom import DOMStore
from repro.xmldata import id_of, load


@pytest.fixture()
def dom():
    doc = load("<a><b><c/><c/></b><b><c/></b><d/></a>")
    return doc, DOMStore(doc)


def sid(doc, label, index=0):
    nodes = [n for n in doc.elements() if n.label == label]
    return id_of(nodes[index], "s")


def test_get_elements_by_tag_name(dom):
    doc, store = dom
    assert len(store.get_elements_by_tag_name("c")) == 3
    assert store.get_elements_by_tag_name("ghost") == []


def test_results_in_document_order(dom):
    doc, store = dom
    ids = store.get_elements_by_tag_name("b")
    assert ids == sorted(ids)


def test_parent_and_children(dom):
    doc, store = dom
    b = sid(doc, "b")
    a = sid(doc, "a")
    assert store.get_parent_node(b) == a
    assert store.get_parent_node(a) is None
    assert len(store.get_child_nodes(b)) == 2
    assert len(store.get_child_nodes(a)) == 3


def test_unknown_node_raises(dom):
    _doc, store = dom
    from repro.xmldata.ids import StructuralID

    with pytest.raises(KeyError):
        store.get_parent_node(StructuralID(999, 999, 9))


def test_descendants_by_tag(dom):
    doc, store = dom
    a = sid(doc, "a")
    b2 = sid(doc, "b", 1)
    assert len(store.get_descendants_by_tag(a, "c")) == 3
    assert len(store.get_descendants_by_tag(b2, "c")) == 1


def test_xams_registered(dom):
    _doc, store = dom
    assert "dom_by_tag" in store.catalog
    assert store.catalog["dom_by_tag"].is_index
    assert store.catalog["dom_children"].is_index


def test_no_sibling_navigation_api(dom):
    """§2.3.4: sibling order is outside the XAM formalism — the DOM facade
    deliberately omits nextSibling/previousSibling."""
    _doc, store = dom
    assert not hasattr(store, "get_next_sibling")
    assert not hasattr(store, "get_previous_sibling")
