"""Cross-module integration tests: the full pipeline on synthetic XMark
data, all storage models side by side, and physical-engine execution of
rewritten plans."""

import pytest

from repro import Database
from repro.core import evaluate_pattern, is_equivalent, parse_pattern
from repro.engine import Store, execute
from repro.storage import (
    Catalog,
    build_path_partitioned_store,
    build_tag_partitioned_store,
    materialize_view,
)
from repro.summary import build_enhanced_summary
from repro.workloads import XMARK_QUERIES, generate_xmark
from repro.xquery import collections_context, alg_path, parse_query


@pytest.fixture(scope="module")
def xdb(xmark_doc):
    db = Database()
    db.add_document(xmark_doc)
    return db


class TestXMarkEndToEnd:
    QUERIES = [
        "q01", "q02", "q05", "q06", "q10", "q13", "q17", "q18", "q19",
    ]

    @pytest.mark.parametrize("query_id", QUERIES)
    def test_base_store_answers_xmark_queries(self, xdb, query_id):
        result = xdb.query(XMARK_QUERIES[query_id])
        assert result.xml or result.values or result.tuples == []

    def test_views_preserve_answers_on_xmark(self, xmark_doc):
        db = Database()
        db.add_document(xmark_doc)
        query = "for $i in //regions//item return <out>{ $i/name/text() }</out>"
        baseline = db.query(query, prefer_views=False)
        db.add_view("item_names", "//item[id:s]{/o:name[id:s, val]}")
        rewritten = db.query(query)
        assert rewritten.used_views == ["item_names"]
        assert rewritten.xml == baseline.xml

    def test_physical_and_logical_agree_on_views(self, xmark_doc):
        db = Database()
        db.add_document(xmark_doc)
        db.add_view("item_names", "//item[id:s]{/o:name[id:s, val]}")
        query = "//item/name/text()"
        assert db.query(query, physical=True).values == db.query(query).values


class TestStorageModelAgreement:
    """The same query answered from tag- and path-partitioned stores."""

    def answer_from_tag_store(self, doc):
        store, catalog = Store(), Catalog()
        build_tag_partitioned_store(doc, store, catalog)
        from repro.algebra import Project, Scan, StructuralJoin

        def scan(name, alias):
            return Project(
                Scan(name, ["ID"]), ["ID"], renames={"ID": f"{alias}.ID"}
            )

        plan = StructuralJoin(
            scan("tag_book", "b"), scan("tag_title", "t"), "b.ID", "t.ID", axis="child"
        )
        return {t["t.ID"] for t in execute(plan, store.context(), store.scan_orders())}

    def answer_from_path_store(self, doc, summary):
        store, catalog = Store(), Catalog()
        build_path_partitioned_store(doc, store, catalog, summary)
        title = summary.node_for_path("/library/book/title")
        return {t["ID"] for t in store[f"path_{title.number}"]}

    def test_same_ids_from_both_stores(self, bib_doc, bib_summary):
        assert self.answer_from_tag_store(bib_doc) == self.answer_from_path_store(
            bib_doc, bib_summary
        )

    def test_pattern_evaluation_is_the_reference(self, bib_doc):
        pattern = parse_pattern("//book{/title[id:s]}")
        reference = {
            t["e2.ID"] for t in evaluate_pattern(pattern, bib_doc)
        }
        assert reference == self.answer_from_tag_store(bib_doc)


class TestPathTranslationOnXMark:
    @pytest.mark.parametrize(
        "text",
        [
            "//regions//item/name/text()",
            "//people/person/emailaddress/text()",
            "//open_auctions/open_auction/initial/text()",
        ],
    )
    def test_alg_path_matches_database(self, xmark_doc, text):
        db = Database()
        db.add_document(xmark_doc)
        via_db = sorted(db.query(text).values)
        plan = alg_path(parse_query(text))
        ctx = collections_context(xmark_doc)
        via_algebra = sorted(
            v for t in plan.evaluate(ctx) for v in t.attrs.values() if v is not None
        )
        assert via_db == via_algebra


class TestContainmentRewritingConsistency:
    """If the rewriter accepts a single-view plan, the view pattern and
    query pattern must be provably related; spot-check the converse too."""

    def test_equivalent_views_always_rewrite(self, xmark_doc, xmark_summary):
        store, catalog = Store(), Catalog()
        query = parse_pattern("//regions//item[id:s]")
        view = parse_pattern("//regions//item[id:s]")
        materialize_view("v", view, xmark_doc, store, catalog)
        assert is_equivalent(query, view, xmark_summary)
        from repro.core import rewrite_pattern

        assert rewrite_pattern(query, catalog, xmark_summary)

    def test_rewriting_answers_match_on_xmark(self, xmark_doc, xmark_summary):
        from repro.core import rewrite_pattern

        store, catalog = Store(), Catalog()
        materialize_view(
            "v", "//person[id:s]{/o:emailaddress[id:s, val]}", xmark_doc, store, catalog
        )
        query = parse_pattern("//person[id:s]{/emailaddress[val]}")
        rewritings = rewrite_pattern(query, catalog, xmark_summary)
        assert rewritings
        got = sorted(
            t.freeze() for t in rewritings[0].plan.evaluate(store.context())
        )
        want = sorted(
            t.project(rewritings[0].plan.schema()).freeze()
            for t in evaluate_pattern(query, xmark_doc)
        )
        assert got == want
