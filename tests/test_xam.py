"""Tests for the XAM pattern language and its text syntax (Chapter 2)."""

import pytest

from repro.algebra import eq
from repro.core import (
    CHILD,
    DESCENDANT,
    JOIN,
    NEST,
    NEST_OUTER,
    OUTER,
    SEMI,
    Pattern,
    PatternNode,
    XAMParseError,
    parse_pattern,
    pattern_from_path,
)


class TestBuilding:
    def test_builder_api(self):
        pattern = Pattern()
        item = pattern.root.add_child(PatternNode(tag="item"), DESCENDANT, JOIN)
        item.store_id = "s"
        name = item.add_child(PatternNode(tag="name"), CHILD, NEST_OUTER)
        name.store_value = True
        pattern.finalize()
        assert [n.name for n in pattern.nodes()] == ["e1", "e2"]
        assert pattern.node_by_name("e1").tag == "item"
        assert pattern.node_by_name("e2").parent is item

    def test_finalize_rejects_duplicate_names(self):
        pattern = Pattern()
        pattern.root.add_child(PatternNode(tag="a", name="x"), CHILD, JOIN)
        pattern.root.add_child(PatternNode(tag="b", name="x"), CHILD, JOIN)
        with pytest.raises(ValueError):
            pattern.finalize()

    def test_attribute_nodes_cannot_have_children(self):
        pattern = Pattern()
        attr = pattern.root.add_child(PatternNode(tag="@id"), CHILD, JOIN)
        attr.add_child(PatternNode(tag="x"), CHILD, JOIN)
        with pytest.raises(ValueError):
            pattern.finalize()

    def test_invalid_id_kind_rejected(self):
        with pytest.raises(ValueError):
            PatternNode(tag="a", store_id="zz")

    def test_invalid_edge_labels_rejected(self):
        pattern = Pattern()
        with pytest.raises(ValueError):
            pattern.root.add_child(PatternNode(tag="a"), "sideways", JOIN)
        with pytest.raises(ValueError):
            pattern.root.add_child(PatternNode(tag="a"), CHILD, "zz")


class TestParsing:
    def test_simple_chain(self):
        pattern = parse_pattern("//item[id:s]{/name[val]}")
        item, name = pattern.nodes()
        assert item.tag == "item" and item.store_id == "s"
        assert name.store_value and name.parent_edge.axis == CHILD

    def test_root_with_multiple_edges(self):
        pattern = parse_pattern("root{/a, //b}")
        assert [e.axis for e in pattern.root.edges] == [CHILD, DESCENDANT]

    def test_path_chain_shorthand(self):
        pattern = parse_pattern("/site/people/person[id:s]")
        assert [n.tag for n in pattern.nodes()] == ["site", "people", "person"]

    def test_all_edge_semantics(self):
        pattern = parse_pattern("//a{/o:b, /s:c, /nj:d, /no:e, /f}")
        semantics = [e.semantics for e in pattern.node_by_name("e1").edges]
        assert semantics == [OUTER, SEMI, NEST, NEST_OUTER, JOIN]

    def test_optional_and_nested_flags(self):
        pattern = parse_pattern("//a{/o:b, /nj:c}")
        edges = pattern.node_by_name("e1").edges
        assert edges[0].optional and not edges[0].nested
        assert edges[1].nested and not edges[1].optional

    def test_specs(self):
        pattern = parse_pattern(
            '//a[id:p!, tag, val, cont]{/b[val="x"], /c[val>3, val<=9]}'
        )
        a, b, c = pattern.nodes()
        assert a.store_id == "p" and a.id_required
        assert a.store_tag and a.store_value and a.store_content
        assert b.value_formula.equality_constant() == "x"
        assert c.value_formula.evaluate(5) and not c.value_formula.evaluate(10)

    def test_wildcard_attribute_text_nodes(self):
        pattern = parse_pattern("//*{/@id[val], /#text[val]}")
        star, attr, text = pattern.nodes()
        assert star.is_wildcard
        assert attr.is_attribute
        assert text.tag == "#text"

    def test_tag_predicate_spec(self):
        pattern = parse_pattern('//*[tag="book"]')
        assert pattern.nodes()[0].tag == "book"

    def test_unordered_flag(self):
        assert parse_pattern("unordered //a").ordered is False
        assert parse_pattern("//a").ordered is True

    def test_round_trip(self):
        texts = [
            "root{//item[id:s, cont]{/nj:name[val], //no:keyword[id:s, val]}}",
            "root{//a[id:p!]{/s:b[val=5], /o:c[tag]}}",
            "unordered root{//x[val]}",
        ]
        for text in texts:
            pattern = parse_pattern(text)
            assert parse_pattern(pattern.to_text()).same_structure(pattern)

    @pytest.mark.parametrize(
        "bad",
        ["", "item", "//a{/b", "//a[zz]", "//a{}", "//a,//b", "//a}b"],
    )
    def test_errors(self, bad):
        with pytest.raises(XAMParseError):
            parse_pattern(bad)


class TestPatternFromPath:
    def test_defaults(self):
        pattern = pattern_from_path("//item/name")
        name = pattern.nodes()[-1]
        assert name.store_id == "s"
        assert pattern.nodes()[0].stored_attrs() == ()

    def test_store_selection(self):
        pattern = pattern_from_path("//a", store=("ID", "L", "V", "C"), id_kind="p")
        node = pattern.nodes()[0]
        assert node.stored_attrs() == ("ID", "L", "V", "C")
        assert node.store_id == "p"

    def test_value_predicate(self):
        pattern = pattern_from_path("//a", store=("V",), value_equals=5)
        assert pattern.nodes()[0].value_formula.equality_constant() == 5

    def test_mixed_axes(self):
        pattern = pattern_from_path("/a//b/c")
        axes = [n.parent_edge.axis for n in pattern.nodes()]
        assert axes == [CHILD, DESCENDANT, CHILD]


class TestClassification:
    def test_conjunctive(self):
        assert parse_pattern("//a{/b}").is_conjunctive
        assert not parse_pattern("//a{/o:b}").is_conjunctive
        assert not parse_pattern("//a[val=1]").is_conjunctive

    def test_flags(self):
        assert parse_pattern("//a{/o:b}").has_optional_edges
        assert parse_pattern("//a{/nj:b}").has_nested_edges
        assert parse_pattern("//a[id:s!]").has_required_attrs
        assert not parse_pattern("//a{/b}").has_required_attrs

    def test_return_nodes_are_storing_nodes(self):
        pattern = parse_pattern("//a[id:s]{/b, /c[val]}")
        assert [n.tag for n in pattern.return_nodes()] == ["a", "c"]

    def test_size(self):
        assert parse_pattern("//a{/b{/c}, /d}").size() == 4


class TestStructuralEquality:
    def test_copy_is_equal_but_distinct(self):
        pattern = parse_pattern("//a[id:s]{/o:b[val=3]}")
        clone = pattern.copy()
        assert clone.same_structure(pattern)
        clone.nodes()[0].store_id = None
        assert not clone.same_structure(pattern)

    def test_formulas_participate(self):
        assert not parse_pattern("//a[val=1]").same_structure(
            parse_pattern("//a[val=2]")
        )
        assert parse_pattern("//a[val=1]").same_structure(parse_pattern("//a[val=1]"))

    def test_map_nodes(self):
        pattern = parse_pattern("//a{/b}")

        def strip(node):
            node.store_id = "s"

        mapped = pattern.map_nodes(strip)
        assert all(n.store_id == "s" for n in mapped.nodes())
        assert all(n.store_id is None for n in pattern.nodes())
