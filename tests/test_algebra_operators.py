"""Tests for the logical algebra operators (thesis §1.2.2)."""

import pytest

from repro.algebra import (
    NULL,
    Attr,
    BaseTuples,
    Compare,
    Const,
    DerivedColumn,
    Difference,
    GroupBy,
    Navigate,
    NestAll,
    NestedTuple,
    Product,
    Project,
    Scan,
    Select,
    StructuralJoin,
    TemplateAttr,
    TemplateElement,
    Union,
    Unnest,
    ValueJoin,
    XMLize,
)
from repro.algebra.operators import render_template
from repro.xmldata import id_of, load


def rows(*dicts):
    return BaseTuples([NestedTuple(d) for d in dicts])


@pytest.fixture()
def doc():
    return load("<a><b><c>1</c><c>2</c></b><b><c>3</c></b><d/></a>")


def sids(doc, label, name):
    return BaseTuples(
        [
            NestedTuple({f"{name}.ID": id_of(n, "s"), f"{name}.V": n.value})
            for n in doc.elements()
            if n.label == label
        ]
    )


class TestScanAndBase:
    def test_scan_reads_context(self):
        plan = Scan("r", ["x"])
        assert plan.evaluate({"r": [NestedTuple({"x": 1})]})[0]["x"] == 1

    def test_scan_missing_raises(self):
        with pytest.raises(KeyError):
            Scan("r", ["x"]).evaluate({})

    def test_scan_missing_ok(self):
        assert Scan("r", ["x"], missing_ok=True).evaluate({}) == []

    def test_base_tuples_schema_inference(self):
        base = rows({"x": 1, "y": 2})
        assert base.schema() == ["x", "y"]


class TestSelectProject:
    def test_select(self):
        plan = Select(rows({"x": 1}, {"x": 2}), Compare(Attr("x"), ">", Const(1)))
        assert [t["x"] for t in plan.evaluate({})] == [2]

    def test_select_requires_predicate(self):
        with pytest.raises(ValueError):
            Select(rows({"x": 1}))

    def test_select_reduce_filters_members_and_drops_empty(self):
        base = rows(
            {"k": 1, "c": [NestedTuple({"v": 1}), NestedTuple({"v": 5})]},
            {"k": 2, "c": [NestedTuple({"v": 1})]},
        )
        plan = Select(
            base,
            reduce_path="c",
            member_predicate=Compare(Attr("v"), ">", Const(2)),
        )
        out = plan.evaluate({})
        assert len(out) == 1  # second tuple eliminated (collection emptied)
        assert [m["v"] for m in out[0]["c"]] == [5]

    def test_project_keeps_duplicates_by_default(self):
        plan = Project(rows({"x": 1, "y": 1}, {"x": 1, "y": 2}), ["x"])
        assert len(plan.evaluate({})) == 2

    def test_project_dedup(self):
        plan = Project(rows({"x": 1, "y": 1}, {"x": 1, "y": 2}), ["x"], dedup=True)
        assert len(plan.evaluate({})) == 1

    def test_project_rename(self):
        plan = Project(rows({"x": 1}), ["x"], renames={"x": "z"})
        assert plan.schema() == ["z"]
        assert plan.evaluate({})[0]["z"] == 1


class TestSetOperators:
    def test_product(self):
        plan = Product(rows({"x": 1}, {"x": 2}), rows({"y": 3}))
        assert len(plan.evaluate({})) == 2

    def test_union_preserves_duplicates_and_order(self):
        plan = Union(rows({"x": 1}), rows({"x": 1}, {"x": 2}))
        assert [t["x"] for t in plan.evaluate({})] == [1, 1, 2]

    def test_difference_is_bag_semantics(self):
        plan = Difference(rows({"x": 1}, {"x": 1}, {"x": 2}), rows({"x": 1}))
        assert sorted(t["x"] for t in plan.evaluate({})) == [1, 2]


class TestValueJoin:
    def make(self, kind):
        left = rows({"x": 1}, {"x": 2})
        right = rows({"y": 1}, {"y": 1})
        return ValueJoin(
            left, right, Compare(Attr("x", 0), "=", Attr("y", 1)), kind=kind, nest_as="g"
        )

    def test_inner(self):
        assert len(self.make("j").evaluate({})) == 2

    def test_outer_pads_with_nulls(self):
        out = self.make("o").evaluate({})
        assert len(out) == 3
        padded = [t for t in out if t["x"] == 2]
        assert padded[0]["y"] is NULL

    def test_semi(self):
        out = self.make("s").evaluate({})
        assert [t["x"] for t in out] == [1]
        assert "y" not in out[0]

    def test_nest(self):
        out = self.make("nj").evaluate({})
        assert len(out) == 1 and len(out[0]["g"]) == 2

    def test_nest_outer_keeps_empty_groups(self):
        out = self.make("no").evaluate({})
        assert len(out) == 2
        empty = [t for t in out if t["x"] == 2][0]
        assert empty["g"] == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            self_join = rows({"x": 1})
            ValueJoin(self_join, self_join, Compare(Attr("x"), "=", Const(1)), kind="zz")


class TestStructuralJoin:
    def test_child_join(self, doc):
        plan = StructuralJoin(
            sids(doc, "b", "b"), sids(doc, "c", "c"), "b.ID", "c.ID", axis="child"
        )
        assert len(plan.evaluate({})) == 3

    def test_descendant_join(self, doc):
        plan = StructuralJoin(
            sids(doc, "a", "a"), sids(doc, "c", "c"), "a.ID", "c.ID", axis="descendant"
        )
        assert len(plan.evaluate({})) == 3

    def test_semijoin(self, doc):
        plan = StructuralJoin(
            sids(doc, "b", "b"), sids(doc, "c", "c"), "b.ID", "c.ID", axis="child", kind="s"
        )
        assert len(plan.evaluate({})) == 2

    def test_outer_join_pads(self, doc):
        plan = StructuralJoin(
            sids(doc, "d", "d"), sids(doc, "c", "c"), "d.ID", "c.ID", axis="child", kind="o"
        )
        out = plan.evaluate({})
        assert len(out) == 1 and out[0]["c.ID"] is NULL

    def test_nest_join_groups(self, doc):
        plan = StructuralJoin(
            sids(doc, "b", "b"), sids(doc, "c", "c"), "b.ID", "c.ID",
            axis="child", kind="nj", nest_as="cs",
        )
        out = plan.evaluate({})
        assert [len(t["cs"]) for t in out] == [2, 1]

    def test_map_extended_join_inside_collection(self, doc):
        nested = StructuralJoin(
            sids(doc, "a", "a"), sids(doc, "b", "b"), "a.ID", "b.ID",
            axis="child", kind="nj", nest_as="bs",
        )
        plan = StructuralJoin(
            nested, sids(doc, "c", "c"), "bs/b.ID", "c.ID", axis="child", kind="nj",
            nest_as="cs",
        )
        out = plan.evaluate({})
        assert len(out) == 1
        members = out[0]["bs"]
        assert [len(m["cs"]) for m in members] == [2, 1]

    def test_bad_axis_rejected(self, doc):
        with pytest.raises(ValueError):
            StructuralJoin(sids(doc, "b", "b"), sids(doc, "c", "c"), "b.ID", "c.ID", axis="up")


class TestGroupingOperators:
    def test_group_by(self):
        base = rows({"k": 1, "v": "a"}, {"k": 1, "v": "b"}, {"k": 2, "v": "c"})
        out = GroupBy(base, ["k"], nest_as="g").evaluate({})
        assert [t["k"] for t in out] == [1, 2]
        assert [len(t["g"]) for t in out] == [2, 1]

    def test_unnest(self):
        base = rows({"k": 1, "g": [NestedTuple({"v": "a"}), NestedTuple({"v": "b"})]})
        out = Unnest(base, "g").evaluate({})
        assert [(t["k"], t["v"]) for t in out] == [(1, "a"), (1, "b")]

    def test_unnest_drops_empty_collections(self):
        base = rows({"k": 1, "g": []})
        assert Unnest(base, "g").evaluate({}) == []

    def test_nest_all(self):
        out = NestAll(rows({"x": 1}, {"x": 2}), nest_as="all").evaluate({})
        assert len(out) == 1 and len(out[0]["all"]) == 2


class TestDerivedAndNavigate:
    def test_derived_column(self):
        plan = DerivedColumn(rows({"x": 2}), "y", lambda t: t["x"] * 10)
        assert plan.evaluate({})[0]["y"] == 20

    def test_navigate_flat(self):
        base = rows({"c": "<li><kw>rare</kw><kw>big</kw></li>"})
        plan = Navigate(base, "c", [("child", "kw")], out="k")
        out = plan.evaluate({})
        assert [t["k.V"] for t in out] == ["rare", "big"]
        assert out[0]["k.C"] == "<kw>rare</kw>"

    def test_navigate_unmatched_dropped_or_kept(self):
        base = rows({"c": "<li/>"})
        assert Navigate(base, "c", [("child", "kw")], out="k").evaluate({}) == []
        kept = Navigate(
            base, "c", [("child", "kw")], out="k", keep_unmatched=True
        ).evaluate({})
        assert kept[0]["k.V"] is NULL

    def test_navigate_descendant_axis_and_wildcard(self):
        base = rows({"c": "<li><p><kw>x</kw></p></li>"})
        plan = Navigate(base, "c", [("descendant", "kw")], out="k")
        assert plan.evaluate({})[0]["k.V"] == "x"
        star = Navigate(base, "c", [("child", "*")], out="k")
        assert star.evaluate({})[0]["k.C"] == "<p><kw>x</kw></p>"

    def test_navigate_nested_output(self):
        base = rows({"c": "<li><kw>a</kw><kw>b</kw></li>"}, {"c": "<li/>"})
        plan = Navigate(
            base, "c", [("child", "kw")], out="k", nest_out=True, keep_unmatched=True
        )
        out = plan.evaluate({})
        assert [len(t["k"]) for t in out] == [2, 0]

    def test_navigate_inside_collection(self):
        base = rows(
            {
                "id": 1,
                "li": [
                    NestedTuple({"li.C": "<li><kw>a</kw></li>"}),
                    NestedTuple({"li.C": "<li/>"}),
                ],
            }
        )
        plan = Navigate(
            base, "li/li.C", [("child", "kw")], out="k", nest_out=True,
            keep_unmatched=True,
        )
        out = plan.evaluate({})
        assert [len(m["k"]) for m in out[0]["li"]] == [1, 0]


class TestTemplates:
    def test_simple_template(self):
        template = TemplateElement("res", [TemplateAttr("x")])
        assert render_template(template, NestedTuple({"x": "hi"})) == "<res>hi</res>"

    def test_literal_children(self):
        template = TemplateElement("res", ["label: ", TemplateAttr("x")])
        assert render_template(template, NestedTuple({"x": 1})) == "<res>label: 1</res>"

    def test_nulls_are_skipped(self):
        template = TemplateElement("res", [TemplateAttr("x")])
        assert render_template(template, NestedTuple({"x": None})) == "<res></res>"

    def test_repeat_over_collection(self):
        template = TemplateElement(
            "res",
            [TemplateElement("k", [TemplateAttr("c/v")], repeat_over="c")],
        )
        t = NestedTuple({"c": [NestedTuple({"v": 1}), NestedTuple({"v": 2})]})
        assert render_template(template, t) == "<res><k>1</k><k>2</k></res>"

    def test_repeat_scope_mixes_outer_refs(self):
        template = TemplateElement(
            "res",
            [
                TemplateElement(
                    "k", [TemplateAttr("name"), TemplateAttr("c/v")], repeat_over="c"
                )
            ],
        )
        t = NestedTuple(
            {"name": "N", "c": [NestedTuple({"v": 1}), NestedTuple({"v": 2})]}
        )
        assert render_template(template, t) == "<res><k>N1</k><k>N2</k></res>"

    def test_xmlize_operator(self):
        template = TemplateElement("r", [TemplateAttr("x")])
        plan = XMLize(rows({"x": "a"}, {"x": "b"}), template)
        assert [t["xml"] for t in plan.evaluate({})] == ["<r>a</r>", "<r>b</r>"]


class TestPlanInspection:
    def test_counts_and_leaves(self, doc):
        plan = StructuralJoin(
            sids(doc, "b", "b"), sids(doc, "c", "c"), "b.ID", "c.ID", axis="child"
        )
        assert plan.operator_count() == 3
        assert plan.join_count() == 1
        assert len(plan.leaves()) == 2
        assert "⨝" in plan.pretty()
