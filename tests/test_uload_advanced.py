"""Deeper Database tests: sequences, templates with literals, value joins
across patterns, compensations, and catalog interactions."""

import pytest

from repro import Database


DOC = """
<shop>
  <item><name>Fish</name><price>10</price><tag>wet</tag></item>
  <item><name>Rock</name><price>5</price></item>
  <item><name>Tree</name><price>10</price><tag>green</tag></item>
  <offers>
    <offer><amount>10</amount></offer>
    <offer><amount>7</amount></offer>
  </offers>
</shop>
"""


@pytest.fixture()
def db():
    return Database.from_xml(DOC, "shop.xml")


class TestQueryShapes:
    def test_sequence_of_queries(self, db):
        result = db.query("//item/name/text(), //offer/amount/text()")
        assert result.values == ["Fish", "Rock", "Tree", "10", "7"]

    def test_literal_text_in_constructor(self, db):
        result = db.query(
            "for $i in //item return <line>name: { $i/name/text() }</line>"
        )
        assert result.xml[0] == "<line>name: Fish</line>"

    def test_value_join_across_patterns(self, db):
        result = db.query(
            "for $i in //item, $o in //offer where $i/price = $o/amount "
            "return <match>{ $i/name/text() }</match>"
        )
        assert result.xml == ["<match>Fish</match>", "<match>Tree</match>"]

    def test_nested_constructor_inside_sequence(self, db):
        result = db.query(
            "for $i in //item return <r>{ $i/name/text(), <p>{ $i/price/text() }</p> }</r>"
        )
        assert result.xml[0] == "<r>Fish<p>10</p></r>"

    def test_predicate_on_binding_path(self, db):
        result = db.query(
            "for $i in //item[tag] return <t>{ $i/name/text() }</t>"
        )
        assert result.xml == ["<t>Fish</t>", "<t>Tree</t>"]

    def test_numeric_comparison(self, db):
        result = db.query(
            "for $i in //item where $i/price > 7 return $i/name/text()"
        )
        assert sorted(result.values) == ["Fish", "Tree"]


class TestViewInteraction:
    def test_views_serve_value_joined_query(self, db):
        query = (
            "for $i in //item, $o in //offer where $i/price = $o/amount "
            "return <match>{ $i/name/text() }</match>"
        )
        baseline = db.query(query, prefer_views=False)
        db.add_view("items", "//item[id:s]{/o:name[id:s, val], /o:price[id:s, val]}")
        db.add_view("offers", "//offer[id:s]{/o:amount[id:s, val]}")
        rewritten = db.query(query)
        assert rewritten.xml == baseline.xml
        assert set(rewritten.used_views) <= {"items", "offers"}

    def test_ranking_picks_cheaper_view(self, db):
        db.add_view("everything", "//item[id:s, cont]")
        db.add_view("fitted", "//item[id:s]{/o:name[id:s, val]}")
        result = db.query("//item/name/text()")
        assert result.used_views == ["fitted"]

    def test_view_addition_does_not_change_answers(self, db):
        queries = [
            "//item/name/text()",
            "for $i in //item return <x>{ $i/tag/text() }</x>",
        ]
        before = [db.query(q).xml + db.query(q).values for q in queries]
        db.add_view("v1", "//item[id:s]{/o:name[id:s, val], /o:tag[id:s, val]}")
        db.add_view("v2", "//offer[id:s, cont]")
        after = [db.query(q).xml + db.query(q).values for q in queries]
        assert before == after


class TestExplainAndPlans:
    def test_query_result_exposes_plans(self, db):
        result = db.query("for $i in //item return <r>{ $i/name/text() }</r>")
        assert result.plans and "xml[" in result.plans[0].pretty()

    def test_explain_lists_one_resolution_per_pattern(self, db):
        resolutions = db.explain(
            "for $i in //item, $o in //offer where $i/price = $o/amount return $i/name"
        )
        assert len(resolutions) == 2
