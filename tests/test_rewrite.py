"""Tests for the Chapter 5 rewriting engine: every §5.2 enabler, the
§5.5 plan→pattern machinery, and answer agreement with direct evaluation."""

import pytest

from repro.core import evaluate_pattern, parse_pattern, rewrite_pattern
from repro.core.plan_pattern import GlueCondition, merged_patterns
from repro.engine import Store
from repro.storage import Catalog, materialize_view
from repro.summary import PathSummary, build_enhanced_summary
from repro.xmldata import load


AUCTION = (
    "<site><regions>"
    "<item><name>Fish</name><description><parlist>"
    "<listitem><keyword>rare</keyword><keyword>big</keyword></listitem>"
    "<listitem><text>plain</text></listitem>"
    "</parlist></description><mail>m</mail></item>"
    "<item><name>Rock</name><mail>m</mail></item>"
    "</regions></site>"
)


@pytest.fixture()
def env():
    doc = load(AUCTION)
    return doc, build_enhanced_summary(doc)


def setup_views(doc, views):
    store, catalog = Store(), Catalog()
    for name, text in views.items():
        materialize_view(name, text, doc, store, catalog)
    return store, catalog


def check_rewriting(rewriting, store, query, doc):
    got = sorted(t.freeze() for t in rewriting.plan.evaluate(store.context()))
    want = sorted(
        t.project(rewriting.plan.schema()).freeze()
        for t in evaluate_pattern(query, doc)
    )
    assert got == want, f"{rewriting} answers differ"


class TestSingleView:
    def test_identical_view(self, env):
        doc, summary = env
        store, catalog = setup_views(doc, {"v": "//item[id:s]"})
        query = parse_pattern("//item[id:s]")
        rewritings = rewrite_pattern(query, catalog, summary)
        assert rewritings and rewritings[0].kind == "single"
        check_rewriting(rewritings[0], store, query, doc)

    def test_summary_closes_path_gap(self, env):
        """//parlist/listitem answers //description//listitem because the
        summary forces the path (§5.2's third opportunity)."""
        doc, summary = env
        store, catalog = setup_views(doc, {"v": "//parlist/listitem[id:s]"})
        query = parse_pattern("//description//listitem[id:s]")
        rewritings = rewrite_pattern(query, catalog, summary)
        assert rewritings
        check_rewriting(rewritings[0], store, query, doc)

    def test_gap_not_closable_without_summary(self, env):
        doc, _ = env
        loose = PathSummary.from_paths(
            ["/site/regions/item/description/parlist/listitem",
             "/site/regions/item/listitem"]
        )
        store, catalog = setup_views(doc, {"v": "//parlist/listitem[id:s]"})
        query = parse_pattern("//item//listitem[id:s]")
        assert rewrite_pattern(query, catalog, loose) == []

    def test_compensating_selection(self, env):
        doc, summary = env
        store, catalog = setup_views(doc, {"v": "//keyword[id:s, val]"})
        query = parse_pattern('//keyword[id:s, val="rare"]')
        rewritings = rewrite_pattern(query, catalog, summary)
        assert rewritings
        assert "σ" in rewritings[0].plan.pretty() or "~" in rewritings[0].plan.pretty()
        check_rewriting(rewritings[0], store, query, doc)

    def test_view_predicate_must_be_weaker(self, env):
        doc, summary = env
        store, catalog = setup_views(doc, {"v": '//keyword[id:s, val="big"]'})
        query = parse_pattern("//keyword[id:s]")
        assert rewrite_pattern(query, catalog, summary) == []

    def test_view_without_needed_attr_fails(self, env):
        doc, summary = env
        store, catalog = setup_views(doc, {"v": "//keyword[id:s]"})
        query = parse_pattern("//keyword[id:s, val]")
        assert rewrite_pattern(query, catalog, summary) == []


class TestNavigation:
    def test_content_navigation(self, env):
        doc, summary = env
        store, catalog = setup_views(doc, {"v": "//listitem[id:s, cont]"})
        query = parse_pattern("//listitem[id:s]{/keyword[val]}")
        rewritings = rewrite_pattern(query, catalog, summary)
        assert rewritings
        assert any("nav" in r.plan.pretty() for r in rewritings)
        for rewriting in rewritings:
            check_rewriting(rewriting, store, query, doc)

    def test_navigation_cannot_supply_ids(self, env):
        doc, summary = env
        store, catalog = setup_views(doc, {"v": "//listitem[id:s, cont]"})
        query = parse_pattern("//listitem[id:s]{/keyword[id:s]}")
        assert rewrite_pattern(query, catalog, summary) == []


class TestJoins:
    def test_equality_join_on_shared_node(self, env):
        doc, summary = env
        store, catalog = setup_views(
            doc,
            {
                "names": "//item[id:s]{/name[id:s, val]}",
                "keywords": "//item[id:s]{//keyword[id:s, val]}",
            },
        )
        query = parse_pattern(
            "//item[id:s]{/name[id:s, val], //keyword[id:s, val]}"
        )
        rewritings = rewrite_pattern(query, catalog, summary)
        joins = [r for r in rewritings if r.kind == "join"]
        assert joins
        for rewriting in joins:
            check_rewriting(rewriting, store, query, doc)

    def test_structural_join_without_common_node(self, env):
        """§5.2: V1 and V2 have no common node but structural IDs let them
        combine."""
        doc, summary = env
        store, catalog = setup_views(
            doc,
            {"items": "//item[id:s]", "names": "//name[id:s, val]"},
        )
        query = parse_pattern("//item[id:s]{/name[val]}")
        rewritings = rewrite_pattern(query, catalog, summary)
        assert rewritings
        check_rewriting(rewritings[0], store, query, doc)

    def test_order_ids_cannot_join_structurally(self, env):
        doc, summary = env
        store, catalog = setup_views(
            doc,
            {"items": "//item[id:o]", "names": "//name[id:o, val]"},
        )
        query = parse_pattern("//item[id:o]{/name[val]}")
        assert rewrite_pattern(query, catalog, summary) == []


class TestParentDerivation:
    def test_dewey_ids_derive_missing_parents(self, env):
        doc, summary = env
        store, catalog = setup_views(doc, {"lis": "//listitem[id:p]"})
        query = parse_pattern("//parlist[id:p]")
        rewritings = rewrite_pattern(query, catalog, summary)
        assert rewritings
        assert "derive" in rewritings[0].plan.pretty()
        check_rewriting(rewritings[0], store, query, doc)

    def test_structural_ids_cannot_derive(self, env):
        doc, summary = env
        store, catalog = setup_views(doc, {"lis": "//listitem[id:s]"})
        query = parse_pattern("//parlist[id:s]")
        assert rewrite_pattern(query, catalog, summary) == []


class TestUnion:
    def test_union_of_path_partitions(self):
        doc = load("<a><b><c>1</c></b><d><c>2</c></d></a>")
        summary = build_enhanced_summary(doc)
        store, catalog = setup_views(
            doc, {"bc": "//b/c[id:s]", "dc": "//d/c[id:s]"}
        )
        query = parse_pattern("//a//c[id:s]")
        rewritings = rewrite_pattern(query, catalog, summary)
        unions = [r for r in rewritings if r.kind == "union"]
        assert unions
        check_rewriting(unions[0], store, query, doc)

    def test_incomplete_union_rejected(self):
        doc = load("<a><b><c>1</c></b><d><c>2</c></d><e><c>3</c></e></a>")
        summary = build_enhanced_summary(doc)
        store, catalog = setup_views(
            doc, {"bc": "//b/c[id:s]", "dc": "//d/c[id:s]"}
        )
        query = parse_pattern("//a//c[id:s]")
        assert [r for r in rewrite_pattern(query, catalog, summary) if r.kind == "union"] == []


class TestOptionalAndNested:
    def test_nested_view_serves_nested_query(self, env):
        doc, summary = env
        store, catalog = setup_views(
            doc, {"v": "//item[id:s]{/no:name[id:s, val]}"}
        )
        query = parse_pattern("//item[id:s]{/no:name[id:s, val]}")
        rewritings = rewrite_pattern(query, catalog, summary)
        assert rewritings
        check_rewriting(rewritings[0], store, query, doc)

    def test_flat_view_regroups_into_nested_query(self, env):
        doc, summary = env
        store, catalog = setup_views(
            doc, {"v": "//item[id:s]{/o:name[id:s, val]}"}
        )
        query = parse_pattern("//item[id:s]{/no:name[id:s, val]}")
        rewritings = rewrite_pattern(query, catalog, summary)
        assert rewritings
        assert "γⁿ" in rewritings[0].plan.pretty()
        check_rewriting(rewritings[0], store, query, doc)

    def test_strict_view_cannot_serve_optional_query(self, env):
        doc, summary = env
        # description is NOT on every item: a strict-join view loses items
        store, catalog = setup_views(
            doc, {"v": "//item[id:s]{//listitem[id:s]}"}
        )
        query = parse_pattern("//item[id:s]{//o:listitem[id:s]}")
        assert rewrite_pattern(query, catalog, summary) == []


class TestPlanPattern:
    def test_join_plan_expands_to_single_pattern_under_tight_summary(self, env):
        _doc, summary = env
        items = parse_pattern("//item[id:s]")
        names = parse_pattern("//name[id:s, val]")
        for node in items.nodes():
            node.name = "u0:" + node.name
        for node in names.nodes():
            node.name = "u1:" + node.name
        glue = GlueCondition("parent", 0, "u0:e1", 1, "u1:e1")
        union = merged_patterns([items, names], [glue], summary)
        assert len(union) == 1
        pattern, aliases = union[0]
        tags = [n.tag for n in pattern.nodes()]
        assert "item" in tags and "name" in tags

    def test_ambiguous_relation_yields_union(self):
        """§5.5's point: a plan may be equivalent only to a *union* of
        patterns (the same-label node occurs on two incomparable paths)."""
        summary = PathSummary.from_paths(["/a/b/c", "/a/c/b"])
        left = parse_pattern("//b[id:s]")
        right = parse_pattern("//c[id:s]")
        for node in left.nodes():
            node.name = "u0:" + node.name
        for node in right.nodes():
            node.name = "u1:" + node.name
        glue = GlueCondition("ancestor", 0, "u0:e1", 1, "u1:e1")
        union = merged_patterns([left, right], [glue], summary)
        assert len(union) == 1  # only /a/b/c has b above c
        glue_rev = GlueCondition("ancestor", 0, "u1:e1", 1, "u0:e1")
        union_rev = merged_patterns([right, left], [glue_rev], summary)
        assert len(union_rev) == 1


class TestEnumerationCap:
    """``max_results`` must truncate only after the final sort: stopping
    mid-enumeration made the returned set depend on catalog registration
    order, hiding cheaper rewritings registered late."""

    PAD_VIEW = "//item[id:s]{/o:name[id:s, val]}"  # flat; needs a regroup

    def _catalog(self, doc, pads):
        views = {f"pad{i}": self.PAD_VIEW for i in range(pads)}
        # registered last, so every pad (and every pad-pair join) is
        # enumerated before the one join that can use these:
        views["items"] = "//item[id:s]"
        views["names"] = "//name[id:s, val]"
        return setup_views(doc, views)

    def test_best_join_enumerated_last_survives_cap(self, env):
        doc, summary = env
        store, catalog = self._catalog(doc, pads=3)
        query = parse_pattern("//item[id:s]{/no:name[id:s, val]}")
        # 3 single rewritings (pads) come first in enumeration order, then
        # pad-pair joins — the items⨝names join is enumerated last.  The
        # old early break stopped join enumeration the moment the cap
        # filled, so that join was invisible at any cap it would have
        # sorted into.
        capped = rewrite_pattern(query, catalog, summary, max_results=5)
        assert len(capped) == 5
        assert ("items", "names") in [r.views for r in capped]
        check_rewriting(
            next(r for r in capped if r.views == ("items", "names")),
            store, query, doc,
        )

    def test_cap_is_postsort_prefix_of_full_enumeration(self, env):
        doc, summary = env
        store, catalog = self._catalog(doc, pads=3)
        query = parse_pattern("//item[id:s]{/no:name[id:s, val]}")
        full = rewrite_pattern(query, catalog, summary, max_results=None)
        assert len(full) > 5
        for cap in (1, 3, 5, len(full), len(full) + 10):
            capped = rewrite_pattern(query, catalog, summary, max_results=cap)
            assert [(r.kind, r.views) for r in capped] == [
                (r.kind, r.views) for r in full[:cap]
            ]

    def test_default_cap_still_bounds_the_result(self, env):
        doc, summary = env
        store, catalog = self._catalog(doc, pads=12)
        query = parse_pattern("//item[id:s]{/no:name[id:s, val]}")
        rewritings = rewrite_pattern(query, catalog, summary)
        assert len(rewritings) == 10
        counts = [r.plan.operator_count() for r in rewritings]
        assert counts == sorted(counts)


class TestRanking:
    def test_plans_sorted_by_size(self, env):
        doc, summary = env
        store, catalog = setup_views(
            doc,
            {
                "exact": "//item[id:s]{/name[val]}",
                "items": "//item[id:s]",
                "names": "//name[id:s, val]",
            },
        )
        query = parse_pattern("//item[id:s]{/name[val]}")
        rewritings = rewrite_pattern(query, catalog, summary)
        assert len(rewritings) >= 2
        counts = [r.plan.operator_count() for r in rewritings]
        assert counts == sorted(counts)
        assert rewritings[0].views == ("exact",)
