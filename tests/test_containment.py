"""Tests for S-containment (thesis §4.4): the figure scenarios, all
pattern dialects, and a soundness property over concrete documents."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ContainmentError,
    evaluate_pattern,
    is_contained,
    is_equivalent,
    parse_pattern,
    pattern_from_path,
)
from repro.summary import PathSummary, build_enhanced_summary
from repro.workloads.random_patterns import GeneratorConfig, generate_pattern
from repro.xmldata import load


@pytest.fixture()
def chain_summary():
    return PathSummary.from_paths(["/a/b/c", "/a/d/c", "/a/b/e"])


class TestConjunctive:
    def test_reflexive(self, chain_summary):
        pattern = pattern_from_path("//a//c")
        assert is_equivalent(pattern, pattern, chain_summary)

    def test_specialization_contained_in_generalization(self, chain_summary):
        specific = pattern_from_path("//b/c")
        general = pattern_from_path("//a//c")
        assert is_contained(specific, general, chain_summary)
        assert not is_contained(general, specific, chain_summary)

    def test_summary_makes_syntactically_different_patterns_equivalent(self):
        # every listitem sits under description/parlist — the §5.2 scenario
        summary = PathSummary.from_paths(
            ["/site/item/description/parlist/listitem/keyword"]
        )
        via_item = pattern_from_path("//item//listitem")
        via_parlist = pattern_from_path("//description/parlist/listitem")
        assert is_equivalent(via_item, via_parlist, summary)

    def test_without_summary_paths_nothing_holds(self, chain_summary):
        assert not is_contained(
            pattern_from_path("//b/c"), pattern_from_path("//d/c"), chain_summary
        )

    def test_arity_mismatch_fails(self, chain_summary):
        one = pattern_from_path("//a//c")
        two = parse_pattern("//a[id:s]{//c[id:s]}")
        assert not is_contained(one, two, chain_summary)

    def test_empty_union_is_an_error(self, chain_summary):
        with pytest.raises(ContainmentError):
            is_contained(pattern_from_path("//a"), [], chain_summary)

    def test_unsatisfiable_pattern_vacuously_contained(self, chain_summary):
        ghost = pattern_from_path("//z")
        assert is_contained(ghost, pattern_from_path("//a"), chain_summary)


class TestUnions:
    def test_union_covers_what_members_cannot(self, chain_summary):
        query = pattern_from_path("//a//c")
        left = pattern_from_path("//b/c")
        right = pattern_from_path("//d/c")
        assert not is_contained(query, left, chain_summary)
        assert not is_contained(query, right, chain_summary)
        assert is_contained(query, [left, right], chain_summary)

    def test_partial_union_fails(self):
        summary = PathSummary.from_paths(["/a/b/c", "/a/d/c", "/a/e/c"])
        query = pattern_from_path("//a//c")
        views = [pattern_from_path("//b/c"), pattern_from_path("//d/c")]
        assert not is_contained(query, views, summary)


class TestDecorated:
    def test_point_in_interval(self, chain_summary):
        strict = pattern_from_path("//c", store=("ID",))
        strict.nodes()[-1].value_formula = parse_pattern("//c[val=3]").nodes()[0].value_formula
        loose = pattern_from_path("//c", store=("ID",))
        loose.nodes()[-1].value_formula = parse_pattern("//c[val>1]").nodes()[0].value_formula
        assert is_contained(strict, loose, chain_summary)
        assert not is_contained(loose, strict, chain_summary)

    def test_figure_4_9_union_splitting(self):
        """p_φ2 ⊑ p_φ1 ∪ p_φ3 ∪ p_φ4: no single member suffices, the value
        space splits across members."""
        summary = PathSummary.from_paths(["/a/b/c/d", "/a/b/e/f"])
        # query: //b//f with f.val > 0 … reachable both as (3) and (1)+(4)
        query = parse_pattern("//e{/f[id:s, val>0, val<8]}")
        low = parse_pattern("//e{/f[id:s, val>0, val<5]}")
        high = parse_pattern("//e{/f[id:s, val>=5, val<8]}")
        assert not is_contained(query, low, summary)
        assert not is_contained(query, high, summary)
        assert is_contained(query, [low, high], summary)

    def test_view_predicate_not_implied_fails(self, chain_summary):
        query = pattern_from_path("//c", store=("ID",))
        view = pattern_from_path("//c", store=("ID",))
        view.nodes()[-1].value_formula = parse_pattern("//c[val=1]").nodes()[0].value_formula
        assert not is_contained(query, view, chain_summary)
        assert is_contained(view, query, chain_summary)


class TestOptional:
    def test_optional_view_contains_strict_query(self, chain_summary):
        # p1 ⊑ p2 when p2 relaxes an edge to optional?  No: arity/⊥ rules.
        strict = parse_pattern("//b[id:s]{/c[id:s]}")
        optional = parse_pattern("//b[id:s]{/o:c[id:s]}")
        assert is_contained(strict, optional, chain_summary)
        assert not is_contained(optional, strict, chain_summary)

    def test_equal_optional_patterns(self, chain_summary):
        a = parse_pattern("//b[id:s]{/o:c[id:s], /o:e[val]}")
        assert is_equivalent(a, a.copy(), chain_summary)

    def test_strong_edge_closes_optional_gap(self):
        summary = PathSummary.from_paths(["/a/b"])
        for node in summary.nodes():
            node.edge_annotation = "+"
        strict = parse_pattern("//a[id:s]{/b[id:s]}")
        optional = parse_pattern("//a[id:s]{/o:b[id:s]}")
        # every a has a b ⇒ the optional never produces ⊥ ⇒ equivalent
        assert is_equivalent(strict, optional, summary)

    def test_without_strong_edges_gap_remains(self):
        summary = PathSummary.from_paths(["/a/b"])
        strict = parse_pattern("//a[id:s]{/b[id:s]}")
        optional = parse_pattern("//a[id:s]{/o:b[id:s]}")
        assert not is_contained(optional, strict, summary, use_strong_edges=False)


class TestAttributePatterns:
    def test_attrs_must_match_exactly(self, chain_summary):
        with_val = parse_pattern("//c[id:s, val]")
        id_only = parse_pattern("//c[id:s]")
        assert not is_contained(with_val, id_only, chain_summary)
        assert is_contained(with_val, with_val.copy(), chain_summary)

    def test_figure_4_11_style(self, chain_summary):
        p1 = parse_pattern("//b[id:s]{/c[id:s, val]}")
        p2 = parse_pattern("//a{//b[id:s]{/c[id:s, val]}}")
        assert is_contained(p1, p2, chain_summary)


class TestNestedPatterns:
    def test_same_nesting_is_equivalent(self, chain_summary):
        a = parse_pattern("//b[id:s]{/nj:c[id:s]}")
        assert is_equivalent(a, a.copy(), chain_summary)

    def test_nesting_depth_mismatch_fails(self, chain_summary):
        nested = parse_pattern("//b[id:s]{/nj:c[id:s]}")
        flat = parse_pattern("//b[id:s]{/c[id:s]}")
        assert not is_contained(nested, flat, chain_summary)
        assert not is_contained(flat, nested, chain_summary)

    def test_one_to_one_relaxation(self):
        # nesting under a vs under its 1-1 child b is interchangeable
        summary = PathSummary.from_paths(["/r/a/b/c"])
        for node in summary.nodes():
            node.edge_annotation = "1"
        under_a = parse_pattern("//a[id:s]{/b{/nj:c[id:s]}}")
        under_b = parse_pattern("//a[id:s]{/b{/nj:c[id:s]}}")
        # rebuild under_b with the nest edge one level up: a{nj:b{c}}
        under_b = parse_pattern("//a[id:s]{/nj:b{/c[id:s]}}")
        assert is_contained(under_a, under_b, summary, relax_one_to_one=True)
        assert not is_contained(under_a, under_b, summary, relax_one_to_one=False)


class TestSemijoinBranches:
    def test_filter_branch_restricts(self, auction_summary):
        filtered = parse_pattern("//item[id:s]{/s:mail}")
        unfiltered = parse_pattern("//item[id:s]")
        assert is_contained(filtered, unfiltered, auction_summary)
        # not every item is forced to have mail in a generic summary
        plain = PathSummary.from_paths(["/site/regions/item/mail", "/site/regions/item/name"])
        filtered2 = parse_pattern("//item[id:s]{/s:mail}")
        assert not is_contained(
            parse_pattern("//item[id:s]"), filtered2, plain, use_strong_edges=False
        )


# -- soundness property: containment implies result inclusion ----------------

_DOC = load(
    "<a><b><c>v1</c><e>x</e></b><b><c>v2</c></b><d><c>v1</c></d></a>"
)
_SUMMARY = build_enhanced_summary(_DOC)
_CONFIG = GeneratorConfig(
    return_labels=("c",), optional_probability=0.4, predicate_probability=0.3
)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_containment_sound_on_documents(seed):
    rng = random.Random(seed)
    p = generate_pattern(_SUMMARY, rng.randint(1, 4), 1, rng, _CONFIG)
    q = generate_pattern(_SUMMARY, rng.randint(1, 4), 1, rng, _CONFIG)
    # align attribute sets so containment is not trivially false
    for pattern in (p, q):
        node = pattern.return_nodes()[0]
        node.store_id = "s"
    if is_contained(p, q, _SUMMARY):
        p_result = {
            t.first(f"{p.return_nodes()[0].name}.ID")
            for t in evaluate_pattern(p, _DOC)
        }
        q_result = {
            t.first(f"{q.return_nodes()[0].name}.ID")
            for t in evaluate_pattern(q, _DOC)
        }
        assert p_result <= q_result
