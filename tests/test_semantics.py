"""Tests for the algebraic XAM semantics (§2.2.2): tag-derived collections,
the bottom-up structural-join construction, agreement with the embedding
semantics, and restricted (index) XAMs with binding tuples."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import NestedTuple
from repro.core import (
    evaluate_algebraic,
    evaluate_pattern,
    evaluate_with_bindings,
    parse_pattern,
    tag_derived_collection,
    tuple_intersection,
)
from repro.core.semantics import binding_signature, build_semantics_plan
from repro.xmldata import load


class TestTagDerivedCollections:
    def test_one_tuple_per_matching_element(self, bib_doc):
        books = tag_derived_collection(bib_doc, "book")
        assert len(books) == 2
        assert books[0]["Tag"] == "book"
        assert "Data on the Web" in books[0]["Cont"]

    def test_star_collection(self, bib_doc):
        everything = tag_derived_collection(bib_doc)
        assert len(everything) == 11  # all elements

    def test_attribute_collection(self, bib_doc):
        years = tag_derived_collection(bib_doc, "@year", attributes=True)
        assert sorted(t["Val"] for t in years) == ["1999", "2004"]

    def test_document_order(self, bib_doc):
        ids = [t["ID"] for t in tag_derived_collection(bib_doc)]
        assert ids == sorted(ids)


PATTERNS_FOR_AGREEMENT = [
    "//book[id:s]",
    "/library[id:s]{//author[val]}",
    "//book[id:s, tag]{/title[val]}",
    "//book[id:s]{/s:@year}",
    "//book[id:s]{/o:@year[val], /title[val]}",
    "//book[id:s]{/nj:author[id:s, val]}",
    "//book[id:s]{/no:author[val]}",
    '//book{/title[val="Data on the Web"]}',
    '//*[tag]{/title[val="The Syntactic Web"]}',
    "//book[cont]",
    "//phdthesis[id:o]{/author[val]}",
    "//book{/title{/#text[val]}}",
]


class TestAlgebraicVsEmbedding:
    @pytest.mark.parametrize("text", PATTERNS_FOR_AGREEMENT)
    def test_agreement_on_bib(self, bib_doc, text):
        pattern = parse_pattern(text)
        algebraic = sorted(t.freeze() for t in evaluate_algebraic(pattern, bib_doc))
        embedding = sorted(t.freeze() for t in evaluate_pattern(pattern, bib_doc))
        assert algebraic == embedding

    def test_agreement_on_auction(self, auction_doc):
        pattern = parse_pattern(
            "//item[id:s]{/s:mail, /no:name[val], //no:listitem[id:s]{/no:keyword[cont]}}"
        )
        algebraic = sorted(t.freeze() for t in evaluate_algebraic(pattern, auction_doc))
        embedding = sorted(t.freeze() for t in evaluate_pattern(pattern, auction_doc))
        assert algebraic == embedding

    def test_plan_shape_mirrors_pattern(self, bib_doc):
        pattern = parse_pattern("//book{/title, /author}")
        plan = build_semantics_plan(pattern, bib_doc)
        # a structural join per pattern edge (incl. the root edge)
        assert plan.join_count() == 3


class TestRestrictedXAMs:
    def test_lookup_hit(self, bib_doc):
        pattern = parse_pattern("//book[id:s]{/title[val!]}")
        binding = NestedTuple({"e2.V": "Data on the Web"})
        out = evaluate_with_bindings(pattern, bib_doc, [binding])
        assert len(out) == 1
        assert out[0]["e2.V"] == "Data on the Web"

    def test_lookup_miss(self, bib_doc):
        pattern = parse_pattern("//book[id:s]{/title[val!]}")
        binding = NestedTuple({"e2.V": "No Such Book"})
        assert evaluate_with_bindings(pattern, bib_doc, [binding]) == []

    def test_multiple_bindings_union_in_order(self, bib_doc):
        pattern = parse_pattern("//book[id:s]{/title[val!]}")
        bindings = [
            NestedTuple({"e2.V": "The Syntactic Web"}),
            NestedTuple({"e2.V": "Data on the Web"}),
        ]
        out = evaluate_with_bindings(pattern, bib_doc, bindings)
        assert [t["e2.V"] for t in out] == [
            "The Syntactic Web",
            "Data on the Web",
        ]

    def test_tag_binding(self, bib_doc):
        pattern = parse_pattern("//*[id:s, tag!]{/title[val]}")
        binding = NestedTuple({"e1.L": "phdthesis"})
        out = evaluate_with_bindings(pattern, bib_doc, [binding])
        assert len(out) == 1 and out[0]["e2.V"] == "The Web: next generation"

    def test_binding_signature(self):
        pattern = parse_pattern("//*[id:s, tag!]{/title[val!], /author[val]}")
        assert binding_signature(pattern) == ["e1.L", "e2.V"]


class TestTupleIntersection:
    def test_atomic_disagreement_is_none(self):
        t = NestedTuple({"x": 1, "y": 2})
        assert tuple_intersection(t, NestedTuple({"x": 9})) is None

    def test_atomic_agreement_copies_rest(self):
        t = NestedTuple({"x": 1, "y": 2})
        out = tuple_intersection(t, NestedTuple({"x": 1}))
        assert out.attrs == {"x": 1, "y": 2}

    def test_collection_intersection(self):
        # the thesis' Algorithm 1 walkthrough: authors Abiteboul/Suciu vs
        # binding Suciu/Buneman keeps exactly Suciu
        t = NestedTuple(
            {
                "ID": 2,
                "Tag": "book",
                "authors": [NestedTuple({"V": "Abiteboul"}), NestedTuple({"V": "Suciu"})],
            }
        )
        b = NestedTuple(
            {
                "ID": 2,
                "authors": [NestedTuple({"V": "Suciu"}), NestedTuple({"V": "Buneman"})],
            }
        )
        out = tuple_intersection(t, b)
        assert [m["V"] for m in out["authors"]] == ["Suciu"]
        assert out["Tag"] == "book"

    def test_empty_collection_intersection_is_none(self):
        t = NestedTuple({"authors": [NestedTuple({"V": "A"})]})
        b = NestedTuple({"authors": [NestedTuple({"V": "B"})]})
        assert tuple_intersection(t, b) is None

    def test_binding_attr_missing_from_tuple_raises(self):
        with pytest.raises(ValueError):
            tuple_intersection(NestedTuple({"x": 1}), NestedTuple({"z": 1}))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            tuple_intersection(
                NestedTuple({"x": [NestedTuple({"v": 1})]}), NestedTuple({"x": 1})
            )


# -- property test: the two semantics agree on random patterns/documents ----

_TAGS = ["book", "title", "author", "phdthesis"]


@st.composite
def random_bib_patterns(draw):
    """Random small XAMs over the bib vocabulary."""

    def spec():
        return draw(
            st.sampled_from(["[id:s]", "[val]", "[tag]", "[id:s, val]", ""])
        )

    def edge():
        axis = draw(st.sampled_from(["/", "//"]))
        semantics = draw(st.sampled_from(["", "o:", "s:", "nj:", "no:"]))
        return axis + semantics

    depth2 = draw(st.integers(min_value=0, max_value=2))
    children = ", ".join(
        f"{edge()}{draw(st.sampled_from(_TAGS))}{spec()}" for _ in range(depth2)
    )
    body = f"//{draw(st.sampled_from(_TAGS))}{spec()}"
    if children:
        body += "{" + children + "}"
    return body


@settings(max_examples=60, deadline=None)
@given(random_bib_patterns())
def test_property_semantics_agree(bib_pattern_text):
    doc = load(
        "<library><book year='1999'><title>T1</title><author>A</author>"
        "<author>B</author></book><book><title>T2</title></book>"
        "<phdthesis year='2004'><title>T3</title><author>C</author></phdthesis></library>"
    )
    pattern = parse_pattern(bib_pattern_text)
    algebraic = sorted((t.freeze() for t in evaluate_algebraic(pattern, doc)), key=repr)
    embedding = sorted((t.freeze() for t in evaluate_pattern(pattern, doc)), key=repr)
    assert algebraic == embedding
