"""Tests for the XML tree data model (thesis §1.1)."""

import pytest

from repro.xmldata import Document, XMLNode, load
from repro.xmldata.node import ATTRIBUTE, DOCUMENT, ELEMENT, TEXT


def test_node_kinds_are_validated():
    with pytest.raises(ValueError):
        XMLNode("widget", "a")


def test_element_children_and_attributes():
    root = XMLNode(ELEMENT, "book")
    root.add_attribute("year", "1999")
    root.add_element("title").add_text("Data on the Web")
    assert [c.label for c in root.attribute_children()] == ["@year"]
    assert [c.label for c in root.element_children()] == ["title"]


def test_attribute_label_gets_at_prefix():
    root = XMLNode(ELEMENT, "book")
    attr = root.add_attribute("year", "1999")
    assert attr.label == "@year"
    already = root.add_attribute("@id", "b1")
    assert already.label == "@id"


def test_value_of_attribute_and_text_nodes():
    root = XMLNode(ELEMENT, "a")
    attr = root.add_attribute("x", "v")
    text = root.add_text("hello")
    assert attr.value == "v"
    assert text.value == "hello"


def test_element_value_concatenates_text_descendants():
    doc = load("<a><b>one</b><c><d>two</d></c></a>")
    assert doc.top.value == "onetwo"


def test_element_without_text_has_null_value():
    doc = load("<a><b/></a>")
    assert doc.top.element_children()[0].value is None


def test_content_serializes_subtree():
    doc = load('<a><b x="1">t</b></a>')
    b = doc.top.element_children()[0]
    assert b.content == '<b x="1">t</b>'


def test_iter_subtree_is_preorder():
    doc = load("<a><b><c/></b><d/></a>")
    labels = [n.label for n in doc.top.iter_subtree()]
    assert labels == ["a", "b", "c", "d"]


def test_ancestors_and_is_ancestor_of():
    doc = load("<a><b><c/></b></a>")
    a = doc.top
    c = a.element_children()[0].element_children()[0]
    assert [n.label for n in c.ancestors()] == ["b", "a", "#document"]
    assert a.is_ancestor_of(c)
    assert not c.is_ancestor_of(a)


def test_rooted_path():
    doc = load("<a><b><c/></b></a>")
    c = doc.top.element_children()[0].element_children()[0]
    assert c.rooted_path() == ("a", "b", "c")


def test_document_requires_single_top_element():
    node = XMLNode(DOCUMENT, "#document")
    with pytest.raises(ValueError):
        Document(node)
    node.add_element("a")
    node.add_element("b")
    with pytest.raises(ValueError):
        Document(node)


def test_document_counts(bib_doc):
    assert bib_doc.count(ELEMENT) == 11
    assert bib_doc.count(ATTRIBUTE) == 2
    assert bib_doc.count(TEXT) == 7
    assert bib_doc.count() == 20


def test_document_from_top_element():
    top = XMLNode(ELEMENT, "a")
    doc = Document.from_top_element(top, "x.xml")
    assert doc.top is top
    assert doc.name == "x.xml"


def test_nodes_excludes_document_node(bib_doc):
    assert all(n.kind != DOCUMENT for n in bib_doc.nodes())


def test_find_by_pre(bib_doc):
    assert bib_doc.find_by_pre(1).label == "library"
    assert bib_doc.find_by_pre(10**9) is None
