"""Tests for the in-memory store and stored-relation indexes."""

import pytest

from repro.algebra import NestedTuple
from repro.engine import Store


@pytest.fixture()
def store():
    s = Store()
    s.add(
        "people",
        [
            NestedTuple({"id": 1, "name": "Alice", "city": "Paris"}),
            NestedTuple({"id": 2, "name": "Bob", "city": "Oslo"}),
            NestedTuple({"id": 3, "name": "Alice", "city": "Lima"}),
        ],
        order="id",
    )
    return s


def test_add_and_lookup(store):
    assert "people" in store
    assert len(store["people"]) == 3
    assert store.names() == ["people"]


def test_drop(store):
    store.drop("people")
    assert "people" not in store


def test_context_and_scan_orders(store):
    context = store.context()
    assert len(context["people"]) == 3
    assert store.scan_orders() == {"people": "id"}


def test_index_lookup(store):
    hits = store["people"].lookup(["name"], ["Alice"])
    assert sorted(t["id"] for t in hits) == [1, 3]
    assert store["people"].lookup(["name"], ["Zoe"]) == []


def test_composite_index(store):
    hits = store["people"].lookup(["name", "city"], ["Alice", "Lima"])
    assert [t["id"] for t in hits] == [3]


def test_index_is_cached(store):
    first = store["people"].build_index(["name"])
    second = store["people"].build_index(["name"])
    assert first is second


def test_columns_and_totals(store):
    assert store["people"].columns() == ["id", "name", "city"]
    assert store.total_tuples() == 3
    store.add("empty", [])
    assert store["empty"].columns() == []
