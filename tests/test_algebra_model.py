"""Tests for nested tuples (thesis §1.2.2 data model)."""

import pytest

from repro.algebra import NULL, NestedTuple, concat


def nested():
    return NestedTuple(
        {
            "A1": 1,
            "A2": [
                NestedTuple({"A21": 3, "A22": NULL}),
                NestedTuple({"A21": 4, "A22": 5}),
            ],
        }
    )


def test_basic_access():
    t = nested()
    assert t["A1"] == 1
    assert t.get("missing") is NULL
    assert "A2" in t
    assert t.names() == ["A1", "A2"]


def test_iter_path_flat():
    assert list(nested().iter_path("A1")) == [1]


def test_iter_path_descends_collections_existentially():
    t = nested()
    assert list(t.iter_path("A2/A21")) == [3, 4]
    assert list(t.iter_path("A2/A22")) == [NULL, 5]


def test_iter_path_missing_segments_yield_nothing():
    t = nested()
    assert list(t.iter_path("A2/nope")) == []
    assert list(t.iter_path("A1/deeper")) == []


def test_first():
    t = nested()
    assert t.first("A2/A21") == 3
    assert t.first("nope", default="d") == "d"


def test_with_attrs_does_not_mutate():
    t = nested()
    t2 = t.with_attrs(A3=9)
    assert "A3" not in t
    assert t2["A3"] == 9


def test_project_drop_rename():
    t = nested()
    assert t.project(["A1"]).names() == ["A1"]
    assert t.project(["A1", "ghost"]).get("ghost") is NULL
    assert t.drop(["A1"]).names() == ["A2"]
    assert t.rename({"A1": "B1"}).names() == ["B1", "A2"]


def test_freeze_equality_and_hash():
    assert nested() == nested()
    assert hash(nested()) == hash(nested())
    assert nested() != nested().with_attrs(A1=2)
    assert len({nested(), nested()}) == 1


def test_freeze_is_order_insensitive_on_attr_names():
    a = NestedTuple({"x": 1, "y": 2})
    b = NestedTuple({"y": 2, "x": 1})
    assert a == b


def test_freeze_is_order_sensitive_inside_collections():
    a = NestedTuple({"c": [NestedTuple({"v": 1}), NestedTuple({"v": 2})]})
    b = NestedTuple({"c": [NestedTuple({"v": 2}), NestedTuple({"v": 1})]})
    assert a != b


def test_concat_merges_disjoint():
    t = concat(NestedTuple({"a": 1}), NestedTuple({"b": 2}))
    assert t.attrs == {"a": 1, "b": 2}


def test_concat_rejects_collisions():
    with pytest.raises(ValueError):
        concat(NestedTuple({"a": 1}), NestedTuple({"a": 2}))


def test_kwargs_constructor():
    t = NestedTuple(a=1, b=2)
    assert t["a"] == 1 and t["b"] == 2
