"""Differential harness: every workload query must produce identical
observable output — result checksum *and* degradation flags — under the
iterator and the batch executor, including with chaos fault points armed
and with circuit breakers forced open.

Each comparison runs two identically seeded databases (one per executor)
rather than flipping one database: fault injectors and breaker boards are
stateful, and the contract under test is that the executor choice is the
*only* difference between the runs."""

import pytest

from repro import Database
from repro.engine.breaker import OPEN
from repro.engine.faults import FaultInjector
from repro.engine.metrics import MetricsRegistry
from repro.engine.qlog import result_checksum
from repro.workloads import (
    DBLP_QUERIES,
    GeneratorConfig,
    XMARK_QUERIES,
    generate_dblp,
    generate_patterns,
    generate_xmark,
    pattern_to_query,
)

CHAOS_SPECS = [
    "relation.scan@v_person:corrupt",
    "relation.scan@v_item:transient:0.3:2",
    "*:latency:0.2",
]


def make_xmark_db(executor):
    db = Database(metrics=MetricsRegistry(), executor=executor)
    db.add_document(generate_xmark(scale=1, seed=0))
    db.add_view("v_person", "//people/person[id:s]{/name[id:s, val]}")
    db.add_view("v_person_b", "//people/person[id:s]{/name[id:s, val]}")
    db.add_view("v_item", "//regions//item[id:s]{/name[id:s, val]}")
    return db


def make_dblp_db(executor):
    db = Database(metrics=MetricsRegistry(), executor=executor)
    db.add_document(generate_dblp(scale=2, seed=1))
    db.add_view("v_article", "//dblp/article[id:s]{/title[id:s, val]}")
    db.add_view("v_author", "//dblp//author[id:s, val]")
    return db


def run_pair(make_db, query, configure=None):
    """The same query on two identically seeded databases differing only
    in executor; returns the (iter, batch) results."""
    results = []
    for executor in ("iter", "batch"):
        db = make_db(executor)
        if configure is not None:
            configure(db)
        try:
            results.append(
                db.query(query, stats=True, physical=True)
            )
        except Exception as error:
            results.append(error)
    return results


def assert_equivalent(query, iter_outcome, batch_outcome):
    if isinstance(iter_outcome, Exception) or isinstance(
        batch_outcome, Exception
    ):
        # both engines must fail, and with the same typed error
        assert type(iter_outcome) is type(batch_outcome), (
            query,
            iter_outcome,
            batch_outcome,
        )
        return
    assert result_checksum(iter_outcome) == result_checksum(
        batch_outcome
    ), query
    assert iter_outcome.degraded == batch_outcome.degraded, query
    assert len(iter_outcome.degradation_events) == len(
        batch_outcome.degradation_events
    ), query


@pytest.mark.parametrize("query_id", sorted(XMARK_QUERIES))
def test_xmark_query_differential(query_id):
    query = XMARK_QUERIES[query_id]
    iter_outcome, batch_outcome = run_pair(make_xmark_db, query)
    assert_equivalent(query, iter_outcome, batch_outcome)


@pytest.mark.parametrize("query_id", sorted(DBLP_QUERIES))
def test_dblp_query_differential(query_id):
    query = DBLP_QUERIES[query_id]
    iter_outcome, batch_outcome = run_pair(make_dblp_db, query)
    assert_equivalent(query, iter_outcome, batch_outcome)


def test_random_pattern_differential():
    summary_db = Database(metrics=MetricsRegistry())
    summary_db.add_document(generate_xmark(scale=1, seed=0))
    config = GeneratorConfig(wildcard_probability=0.0)
    queries = []
    for size in (4, 6, 8):
        for pattern in generate_patterns(
            summary_db.summary, size=size, return_count=1,
            count=4, seed=size, config=config,
        ):
            queries.append(pattern_to_query(pattern))
    assert len(queries) == 12
    for query in queries:
        iter_outcome, batch_outcome = run_pair(make_xmark_db, query)
        assert_equivalent(query, iter_outcome, batch_outcome)


@pytest.mark.parametrize("specs", CHAOS_SPECS)
@pytest.mark.parametrize("seed", [0, 7])
def test_chaos_differential(specs, seed):
    """Seeded fault injection must fire identically under both engines:
    children are evaluated in the iterator's consumption order, so the
    injector RNG draws line up and degradation plays out the same way."""

    def arm(db):
        db.fault_injector = FaultInjector(specs, seed=seed)

    for query in (
        "for $p in //people/person return $p/name/text()",
        "//regions//item/name/text()",
    ):
        iter_outcome, batch_outcome = run_pair(
            make_xmark_db, query, configure=arm
        )
        assert_equivalent(query, iter_outcome, batch_outcome)


def test_breakers_forced_open_differential():
    """With every view's breaker forced open, planning routes around the
    modules entirely — and both engines must land on the same base-store
    answer."""

    def trip(db):
        for name in ("v_person", "v_person_b", "v_item"):
            for _ in range(db.breakers.failure_threshold):
                db.breakers.record_failure(name, "forced open")
            assert db.breakers.state(name) == OPEN

    for query in (
        "for $p in //people/person return $p/name/text()",
        "//regions//item/name/text()",
    ):
        iter_outcome, batch_outcome = run_pair(
            make_xmark_db, query, configure=trip
        )
        assert_equivalent(query, iter_outcome, batch_outcome)
        assert not isinstance(iter_outcome, Exception)
        assert not iter_outcome.used_views
