"""Tests for the Q-subset parser (§3.2)."""

import pytest

from repro.workloads import XMARK_QUERIES
from repro.xquery import (
    ElementConstructor,
    FLWR,
    Literal,
    PathExpr,
    SequenceExpr,
    XQueryParseError,
    free_variables,
    parse_query,
)


class TestPaths:
    def test_absolute_path(self):
        expr = parse_query("//book/title")
        assert isinstance(expr, PathExpr) and expr.is_absolute
        assert [(s.axis, s.test) for s in expr.steps] == [("//", "book"), ("/", "title")]

    def test_doc_function(self):
        expr = parse_query('doc("bib.xml")//book')
        assert expr.document == "bib.xml"

    def test_wildcard_and_attribute_steps(self):
        expr = parse_query("/a/*/@id")
        assert [s.test for s in expr.steps] == ["a", "*", "@id"]

    def test_text_call(self):
        expr = parse_query("//title/text()")
        assert expr.ends_with_text
        assert [s.test for s in expr.navigation_steps()] == ["title"]

    def test_text_element_vs_text_function(self):
        expr = parse_query("//listitem/text/keyword")
        assert [s.test for s in expr.steps] == ["listitem", "text", "keyword"]
        assert not expr.ends_with_text

    def test_step_predicates(self):
        expr = parse_query('//book[author][year = "1999"]/title')
        book = expr.steps[0]
        assert len(book.predicates) == 2
        assert book.predicates[0].op is None
        assert book.predicates[1].op == "=" and book.predicates[1].value == "1999"

    def test_predicate_with_descendant_path(self):
        expr = parse_query("//book[//keyword = 5]")
        predicate = expr.steps[0].predicates[0]
        assert predicate.path.steps[0].axis == "//"
        assert predicate.value == 5

    def test_numeric_constants(self):
        expr = parse_query("//a[b = 1.5]")
        assert expr.steps[0].predicates[0].value == 1.5


class TestFLWR:
    def test_bindings_and_where(self):
        expr = parse_query(
            "for $x in //item, $y in $x/name where $x/quantity = 2 and $y/text() = 'a' return $y"
        )
        assert isinstance(expr, FLWR)
        assert [b.var for b in expr.bindings] == ["x", "y"]
        assert expr.bindings[1].path.root == "x"
        assert len(expr.where) == 2

    def test_where_path_comparison(self):
        expr = parse_query("for $x in //a, $y in //b where $x/v = $y/w return $x")
        comparison = expr.where[0]
        assert isinstance(comparison.right, PathExpr)
        assert not comparison.against_constant

    def test_word_comparators(self):
        expr = parse_query("for $x in //a where $x/v ge 3 return $x")
        assert expr.where[0].op == ">="

    def test_nested_flwr(self):
        expr = parse_query(
            "for $x in //a return <r>{ for $y in $x/b return $y }</r>"
        )
        inner = expr.ret.children[0]
        assert isinstance(inner, FLWR)

    def test_bare_variable_return(self):
        expr = parse_query("for $x in //a return $x")
        assert isinstance(expr.ret, PathExpr) and expr.ret.root == "x"


class TestConstructors:
    def test_sequence_inside_braces(self):
        expr = parse_query("for $x in //a return <r>{ $x/b, $x/c }</r>")
        inner = expr.ret.children[0]
        assert isinstance(inner, SequenceExpr) and len(inner.items) == 2

    def test_literal_text(self):
        expr = parse_query("for $x in //a return <r>label: { $x/b }</r>")
        assert isinstance(expr.ret.children[0], Literal)

    def test_nested_constructors(self):
        expr = parse_query("for $x in //a return <r><s>{ $x/b }</s></r>")
        inner = expr.ret.children[0]
        assert isinstance(inner, ElementConstructor) and inner.tag == "s"

    def test_top_level_sequence(self):
        expr = parse_query("//a, //b")
        assert isinstance(expr, SequenceExpr)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "for x in //a return $x",
            "for $x //a return $x",
            "for $x in //a where $x/v ~ 3 return $x",
            "for $x in //a return <r>{$x}</s>",
            "//a[",
            "//a extra",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(XQueryParseError):
            parse_query(bad)

    def test_unbound_variable_detected_via_free_variables(self):
        expr = parse_query("for $x in //a return $y")
        assert free_variables(expr) == {"y"}


class TestXMarkQueries:
    def test_all_twenty_parse(self):
        for query_id, text in XMARK_QUERIES.items():
            parse_query(text)

    def test_free_variable_closure(self):
        for text in XMARK_QUERIES.values():
            assert free_variables(parse_query(text)) == set()
