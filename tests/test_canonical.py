"""Tests for canonical models (thesis §4.3): Figure 4.7/4.8-style
fixtures, optional expansion, decoration, satisfiability, annotations."""

import pytest

from repro.core import (
    canonical_model,
    is_satisfiable,
    parse_pattern,
    path_annotations,
    pattern_from_path,
    summary_embeddings,
)
from repro.summary import PathSummary


@pytest.fixture()
def fig47_summary():
    """The Figure 4.7 summary: a with nested b chains (b under b)."""
    return PathSummary.from_paths(
        ["/a/b/c/b", "/a/b/c/b/e", "/a/d", "/a/b/e"]
    )


class TestEmbeddingsIntoSummaries:
    def test_chain_pattern(self, fig47_summary):
        pattern = pattern_from_path("//a//b")
        embeddings = summary_embeddings(pattern, fig47_summary)
        targets = {e[pattern.nodes()[-1]].path_string() for e in embeddings}
        assert targets == {"/a/b", "/a/b/c/b"}

    def test_child_axis_restricts(self, fig47_summary):
        pattern = pattern_from_path("/a/b")
        embeddings = summary_embeddings(pattern, fig47_summary)
        assert len(embeddings) == 1

    def test_wildcards_match_any_element(self, fig47_summary):
        pattern = pattern_from_path("//*")
        embeddings = summary_embeddings(pattern, fig47_summary)
        assert len(embeddings) == len(fig47_summary)

    def test_unsatisfiable_pattern_has_no_embedding(self, fig47_summary):
        assert summary_embeddings(pattern_from_path("//z"), fig47_summary) == []


class TestCanonicalTrees:
    def test_chains_expand_edges(self, fig47_summary):
        pattern = parse_pattern("//a{//e[id:s]}")
        trees = canonical_model(pattern, fig47_summary, use_strong_edges=False)
        sizes = sorted(t.size() for t in trees)
        # /a/b/e needs 3 nodes; /a/b/c/b/e needs 5
        assert sizes == [3, 5]

    def test_return_tuples_recorded(self, fig47_summary):
        pattern = parse_pattern("//b[id:s]")
        trees = canonical_model(pattern, fig47_summary, use_strong_edges=False)
        paths = [t.return_paths() for t in trees]
        numbers = {
            fig47_summary.node_for_path(p).number for p in ("/a/b", "/a/b/c/b")
        }
        assert {p[0] for p in paths} == numbers

    def test_duplicate_embeddings_deduplicate(self, fig47_summary):
        # //a//*//e: both * placements can yield the same expanded tree
        pattern = parse_pattern("//a{//*{//e[id:s]}}")
        trees = canonical_model(pattern, fig47_summary, use_strong_edges=False)
        keys = [t.structure_key() for t in trees]
        assert len(keys) == len(set(keys))

    def test_worst_case_growth_with_unrelated_stars(self, fig47_summary):
        # Figure 4.8: unrelated return nodes multiply the model
        one = parse_pattern("//*[id:s]")
        two = parse_pattern("root{//*[id:s], //*[id:s]}")
        assert len(canonical_model(two, fig47_summary, use_strong_edges=False)) > len(
            canonical_model(one, fig47_summary, use_strong_edges=False)
        )


class TestDecoratedTrees:
    def test_formulas_attach_to_end_nodes(self, fig47_summary):
        pattern = parse_pattern("//d[val=5, id:s]")
        tree = canonical_model(pattern, fig47_summary, use_strong_edges=False)[0]
        decorated = [n for n in tree.root.iter_subtree() if not n.formula.is_true]
        assert len(decorated) == 1 and decorated[0].label == "d"

    def test_false_formula_empties_model(self, fig47_summary):
        pattern = parse_pattern("//d[val=5, id:s]")
        pattern.nodes()[0].value_formula = (
            pattern.nodes()[0].value_formula.conjoin(
                parse_pattern("//d[val=6]").nodes()[0].value_formula
            )
        )
        assert canonical_model(pattern, fig47_summary) == []
        assert not is_satisfiable(pattern, fig47_summary)

    def test_var_formulas_keyed_per_node(self, fig47_summary):
        pattern = parse_pattern("root{//d[val=5, id:s], //d[val=7, id:s]}")
        tree = canonical_model(pattern, fig47_summary, use_strong_edges=False)[0]
        assert len(tree.var_formulas()) == 2


class TestOptionalExpansion:
    def test_erasure_variants(self, fig47_summary):
        pattern = parse_pattern("//a[id:s]{/o:d[id:s]}")
        trees = canonical_model(pattern, fig47_summary, use_strong_edges=False)
        paths = {t.return_paths() for t in trees}
        d_number = fig47_summary.node_for_path("/a/d").number
        a_number = fig47_summary.node_for_path("/a").number
        assert (a_number, None) in paths
        assert (a_number, d_number) in paths

    def test_whole_chain_erased(self, fig47_summary):
        # optional //e via /a/b/e: erasing e must not leave a dangling b
        pattern = parse_pattern("//a[id:s]{//o:e[id:s]}")
        trees = canonical_model(pattern, fig47_summary, use_strong_edges=False)
        bottom = [t for t in trees if t.return_paths()[1] is None]
        assert bottom and all(t.size() == 1 for t in bottom)

    def test_strong_edges_prune_unrealizable_erasures(self):
        summary = PathSummary.from_paths(["/a/b"])
        summary.node_for_path("/a/b").edge_annotation = "+"
        summary.node_for_path("/a").edge_annotation = "+"
        pattern = parse_pattern("//a[id:s]{/o:b[id:s]}")
        trees = canonical_model(pattern, summary)
        # every a has a b: the ⊥ variant is unrealizable
        assert all(t.return_paths()[1] is not None for t in trees)

    def test_without_strong_edges_erasure_stays(self):
        summary = PathSummary.from_paths(["/a/b"])
        pattern = parse_pattern("//a[id:s]{/o:b[id:s]}")
        trees = canonical_model(pattern, summary, use_strong_edges=False)
        assert any(t.return_paths()[1] is None for t in trees)


class TestStrongAugmentation:
    def test_guaranteed_children_added(self):
        summary = PathSummary.from_paths(["/a/b/c"])
        summary.node_for_path("/a/b").edge_annotation = "+"
        summary.node_for_path("/a/b/c").edge_annotation = "+"
        pattern = parse_pattern("//a[id:s]")
        tree = canonical_model(pattern, summary)[0]
        labels = sorted(n.label for n in tree.root.iter_subtree())
        assert labels == ["#document", "a", "b", "c"]

    def test_full_strong_closure_added(self):
        paths = ["/a" + "/b" * 6]
        summary = PathSummary.from_paths(paths)
        for node in summary.nodes():
            node.edge_annotation = "+"
        pattern = parse_pattern("//a[id:s]")
        tree = canonical_model(pattern, summary)[0]
        # the whole guaranteed chain appears (height-bounded by the summary)
        assert tree.size() == 7


class TestAnnotationsAndSatisfiability:
    def test_path_annotations(self, fig47_summary):
        pattern = parse_pattern("//a{//b[id:s]}")
        annotations = path_annotations(pattern, fig47_summary)
        b_name = pattern.nodes()[1].name
        expected = {
            fig47_summary.node_for_path(p).number for p in ("/a/b", "/a/b/c/b")
        }
        assert annotations[b_name] == expected

    def test_satisfiability(self, fig47_summary):
        assert is_satisfiable(pattern_from_path("//c//e"), fig47_summary)
        assert not is_satisfiable(pattern_from_path("//e//c"), fig47_summary)
        assert not is_satisfiable(pattern_from_path("/a/e"), fig47_summary)

    def test_xmark_query_models_are_small(self, xmark_summary):
        # the Figure 4.14 observation: |mod_S(p)| ≪ |S|^|p|
        from repro.workloads import xmark_query_patterns

        for query_id, patterns in xmark_query_patterns().items():
            for pattern in patterns:
                if not is_satisfiable(pattern, xmark_summary):
                    continue
                model = canonical_model(pattern, xmark_summary)
                assert len(model) <= 600, query_id


class TestExpansionDedup:
    """The copy-free variant keys must agree with materialized keys."""

    def test_skipping_key_matches_materialized(self, xmark_summary):
        import random
        from repro.workloads.random_patterns import GeneratorConfig, generate_pattern
        from repro.core.canonical import canonical_model

        config = GeneratorConfig(return_labels=("item", "name", "initial"))
        rng = random.Random(5)
        for _ in range(6):
            pattern = generate_pattern(xmark_summary, rng.randint(3, 7), 1, rng, config)
            model = canonical_model(pattern, xmark_summary, use_strong_edges=False)
            keys = [tree.structure_key() for tree in model]
            # materialized trees must be pairwise distinct — if the fast
            # key disagreed with the real key, duplicates would slip in
            assert len(keys) == len(set(keys))

    def test_erased_variant_keys_distinct_from_full(self):
        from repro.core import parse_pattern
        from repro.core.canonical import canonical_model
        from repro.summary import PathSummary

        summary = PathSummary.from_paths(["/a/b", "/a/c"])
        pattern = parse_pattern("//a[id:s]{/o:b[id:s], /o:c[id:s]}")
        model = canonical_model(pattern, summary, use_strong_edges=False)
        # full + 3 erasure shapes (b⊥, c⊥, both ⊥)
        assert len(model) == 4


class TestValueCapablePlacement:
    """Decorated nodes may only embed onto value-capable paths (attributes
    or elements with a #text child) — when the summary tracks text at all."""

    @pytest.fixture()
    def text_summary(self):
        from repro.summary import build_enhanced_summary
        from repro.xmldata import load

        # b carries text, d does not; @k is an attribute
        return build_enhanced_summary(
            load('<a><b>hello</b><d><e k="1">x</e></d></a>')
        )

    def test_decorated_wildcard_skips_valueless_paths(self, text_summary):
        pattern = parse_pattern("//*[id:s, val=hello]")
        model = canonical_model(pattern, text_summary, use_strong_edges=False)
        placed = {
            text_summary.node_by_number(t.return_paths()[0]).path_string()
            for t in model
        }
        # d has no #text child: a value predicate can never hold there
        assert "/a/d" not in placed
        assert "/a/b" in placed and "/a/d/e" in placed

    def test_attribute_placements_always_value_capable(self, text_summary):
        pattern = parse_pattern("//e{/@k[id:s, val=1]}")
        assert is_satisfiable(pattern, text_summary)

    def test_predicate_on_valueless_element_unsatisfiable(self, text_summary):
        assert not is_satisfiable(
            parse_pattern("/a/d[val=x]"), text_summary
        )
        # same path without the predicate stays satisfiable
        assert is_satisfiable(parse_pattern("/a/d"), text_summary)

    def test_label_only_summary_skips_the_filter(self):
        # from_paths summaries carry no value information: the filter must
        # not fire, otherwise every decorated pattern becomes unsatisfiable
        summary = PathSummary.from_paths(["/a/b", "/a/d"])
        assert is_satisfiable(parse_pattern("/a/b[val=x]"), summary)
        model = canonical_model(
            parse_pattern("//b[id:s, val=x]"), summary, use_strong_edges=False
        )
        assert len(model) == 1

    def test_true_formula_nodes_unaffected(self, text_summary):
        # undecorated nodes embed everywhere regardless of value capability
        model = canonical_model(
            parse_pattern("//*[id:s]"), text_summary, use_strong_edges=False
        )
        placed = {
            text_summary.node_by_number(t.return_paths()[0]).path_string()
            for t in model
        }
        assert "/a/d" in placed

    def test_containment_respects_value_capability(self, text_summary):
        from repro.core import is_contained

        # the decorated wildcard can only ever bind /a/b or /a/d/e: a view
        # returning exactly those two paths covers it
        query = parse_pattern("//*[id:s, val=hello]")
        view = parse_pattern("//*[id:s, val=hello]")
        assert is_contained(query, view, text_summary)
