"""Proposition 4.3.1 made executable: every canonical tree instantiates
to a concrete conforming document on which the pattern produces the
tree's return tuple."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import evaluate_pattern
from repro.core.canonical import CanonNode, canonical_model
from repro.summary import build_enhanced_summary
from repro.workloads import GeneratorConfig, generate_pattern
from repro.xmldata import Document, XMLNode, label_document
from repro.xmldata.node import DOCUMENT


def tree_to_document(tree) -> Document:
    """Materialize a canonical tree as a real document (formulas realized
    by their equality constants, unconstrained values left empty)."""

    def build(canon: CanonNode) -> XMLNode:
        if canon.label.startswith("@"):
            node = XMLNode("attribute", canon.label, _value_for(canon))
            return node
        if canon.label == "#text":
            return XMLNode("text", "#text", _value_for(canon) or "x")
        node = XMLNode("element", canon.label)
        constant = canon.formula.equality_constant()
        if constant is not None:
            node.add_text(str(constant))
        for child in canon.children:
            node.append(build(child))
        return node

    def _value_for(canon: CanonNode):
        constant = canon.formula.equality_constant()
        return str(constant) if constant is not None else "x"

    roots = [build(child) for child in tree.root.children]
    document_node = XMLNode(DOCUMENT, "#document")
    if len(roots) == 1:
        document_node.append(roots[0])
    else:
        # several top branches share the same top label by construction
        merged = roots[0]
        for extra in roots[1:]:
            for child in list(extra.children):
                merged.append(child)
        document_node.append(merged)
    return label_document(Document(document_node, "canonical.xml"))


_DOC_SOURCE = (
    "<a><b><c>v1</c><d/></b><b><c>v2</c></b>"
    "<e><c>v1</c><f><c>v3</c></f></e></a>"
)


@pytest.fixture(scope="module")
def summary():
    from repro.xmldata import load

    return build_enhanced_summary(load(_DOC_SOURCE))


_CONFIG = GeneratorConfig(
    return_labels=("c",),
    optional_probability=0.3,
    predicate_probability=0.3,
    value_pool=3,
)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=4))
def test_canonical_trees_instantiate(summary, seed, size):
    rng = random.Random(seed)
    pattern = generate_pattern(summary, size, 1, rng, _CONFIG)
    model = canonical_model(pattern, summary, use_strong_edges=False)
    assert model  # generator produces satisfiable patterns
    for tree in model[:5]:
        doc = tree_to_document(tree)
        # the document's paths must exist in the summary (conformance in
        # the describes sense — the tree needn't exercise every path)
        assert summary.describes(doc)
        # and the pattern must produce results on it
        results = evaluate_pattern(pattern, doc)
        assert results, f"pattern has no match on its own canonical tree: {tree.return_paths()}"


def test_specific_tree_return_tuple(summary):
    from repro.core import parse_pattern

    pattern = parse_pattern("//b{/c[id:s]}")
    model = canonical_model(pattern, summary, use_strong_edges=False)
    for tree in model:
        doc = tree_to_document(tree)
        results = evaluate_pattern(pattern, doc)
        expected_path = summary.node_by_number(tree.return_paths()[0]).path_labels()
        produced_paths = set()
        for t in results:
            sid = t.first("e2.ID")
            node = doc.find_by_pre(sid.pre)
            produced_paths.add(node.rooted_path())
        assert tuple(expected_path) in produced_paths
