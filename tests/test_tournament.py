"""Tests for the offline plan tournament (``repro optimize``) and the
pinned-plan layer it promotes into.

Three concerns share this file because they share machinery:

* the tournament itself — full candidate enumeration, checksum
  validation against the recording under both executors, benchmark
  scoring, promotion, and the per-query audit trail;
* the pinned-plan lifecycle — a pin bypasses cost-model ranking at
  prepare time, survives LRU cache pressure, is invalidated by every
  kind of catalog mutation, replays diff-free, and a stale pin can
  degrade plan *choice* but never answer correctness;
* the standing differential sweep — every XMark and DBLP workload query
  has *all* of its S-equivalent candidates validated checksum-identical
  under both executors (the satellite bug hunt; currently clean, and
  this test keeps it that way).
"""

import json
import os

import pytest

from repro import Database
from repro.core.service import QueryService
from repro.core.tournament import (
    EXECUTORS,
    run_tournament,
    trimmed_mean,
)
from repro.engine.metrics import MetricsRegistry
from repro.engine.plan_cache import PinnedChoice, PinnedPlan, PlanPinStore
from repro.engine.qlog import (
    QueryLog,
    result_checksum,
    rewriting_signature,
)
from repro.workloads import DBLP_QUERIES, XMARK_QUERIES, generate_dblp, generate_xmark

PERSON_QUERY = "for $p in //people/person return $p/name/text()"


def make_db(xmark_doc, executor="batch"):
    """XMark database whose catalog supports both a single-view and a
    join access path for the person pattern: ``v_person`` answers it
    alone; ``v_person_ids`` ⨝ ``v_person_names`` reconstructs it."""
    db = Database(metrics=MetricsRegistry(), executor=executor)
    db.add_document(xmark_doc)
    db.add_view("v_person", "//people/person[id:s]{/name[id:s, val]}")
    db.add_view("v_person_ids", "//people/person[id:s]")
    db.add_view("v_person_names", "//people/person/name[id:s, val]")
    return db


def record_workload(db, queries, tmp_path, name="capture.jsonl"):
    path = str(tmp_path / name)
    qlog = QueryLog(path)
    with QueryService(db, qlog=qlog) as service:
        for query in queries:
            service.query(query)
    qlog.close()
    return QueryLog.read_all(path)


class TestTrimmedMean:
    def test_drops_min_and_max(self):
        assert trimmed_mean([1.0, 100.0, 2.0, 3.0, 0.5]) == pytest.approx(2.0)

    def test_small_samples_plain_mean(self):
        assert trimmed_mean([4.0]) == pytest.approx(4.0)
        assert trimmed_mean([2.0, 4.0]) == pytest.approx(3.0)


class TestTournament:
    def test_validates_all_candidates_and_audits(self, xmark_doc, tmp_path):
        db = make_db(xmark_doc)
        records = record_workload(db, [PERSON_QUERY], tmp_path)
        audit = str(tmp_path / "audit")
        report = run_tournament(
            db, records, runs=2, min_margin=0.0, audit_dir=audit, pin=False
        )
        assert report.ok, report.divergences
        assert len(report.queries) == 1
        outcome = report.queries[0]
        # base + single(v_person) + several joins: a real candidate space
        assert len(outcome.candidates) >= 4
        assert outcome.candidates[0].default
        for candidate in outcome.candidates:
            assert candidate.valid
            assert candidate.fingerprint
            # recorded flags + one full physical run per executor
            assert set(candidate.verdicts) == {"recorded", *EXECUTORS}
            assert all(v == "ok" for v in candidate.verdicts.values())
            assert candidate.score is not None
        # audit trail: per-query directory + run-level summary and pins
        query_dir = os.path.join(audit, outcome.slug)
        with open(os.path.join(query_dir, "query.json")) as handle:
            meta = json.load(handle)
        assert meta["recorded_checksum"] == outcome.recorded_checksum
        with open(os.path.join(query_dir, "candidates.jsonl")) as handle:
            lines = [json.loads(line) for line in handle]
        assert len(lines) == len(outcome.candidates)
        with open(os.path.join(query_dir, "winner.json")) as handle:
            winner = json.load(handle)
        assert winner["winner"]["index"] == outcome.winner
        # losers carry their margins — the audit names the price of every
        # alternative, not just the victor
        assert len(winner["losers"]) == len(
            [c for c in outcome.candidates if c.valid]
        ) - 1
        with open(os.path.join(audit, "summary.json")) as handle:
            summary = json.load(handle)
        assert summary["ok"] is True
        assert os.path.exists(os.path.join(audit, "pins.json"))

    def test_promotes_over_misranked_default(self, xmark_doc, tmp_path):
        """The deterministic promotion scenario: record against honest
        statistics, then poison ``v_person``'s size so the cost model's
        default pick becomes the two-view join — genuinely slower than
        the single-view plan the tournament rediscovers."""
        db = make_db(xmark_doc)
        records = record_workload(db, [PERSON_QUERY], tmp_path)
        optimizer = make_db(xmark_doc)
        optimizer.override_statistic("v_person", 1e9)
        default = optimizer.prepare(PERSON_QUERY, consult_pins=False)
        assert default.units[0].resolutions[0].rewriting.views == (
            "v_person_ids", "v_person_names",
        )
        report = run_tournament(
            optimizer, records, runs=3, min_margin=0.0,
            audit_dir=str(tmp_path / "audit"),
        )
        assert report.ok, report.divergences
        assert len(report.promotions) == 1
        outcome = report.promotions[0]
        assert outcome.margin > 0.0
        pin = optimizer.plan_pins.get(
            outcome.normalized, optimizer.catalog_version
        )
        assert pin is not None
        assert pin.margin == pytest.approx(outcome.margin)
        winner = outcome.candidates[outcome.winner]
        assert pin.fingerprint == winner.fingerprint
        # the pinned preparation reproduces the winner's exact plan —
        # and beats what ranking alone would pick
        pinned = optimizer.prepare(PERSON_QUERY)
        assert pinned.pinned
        assert pinned.fingerprint == winner.fingerprint
        assert pinned.fingerprint != default.fingerprint
        result = optimizer.execute_prepared(pinned)
        assert result.pinned
        assert result_checksum(result) == outcome.recorded_checksum

    def test_detects_divergence_loudly(self, xmark_doc, tmp_path):
        """Non-vacuity of validation: a capture whose checksum does not
        match what the engine produces must fail the run with a verdict
        naming the divergence."""
        db = make_db(xmark_doc)
        records = record_workload(db, [PERSON_QUERY], tmp_path)
        records[0]["checksum"] = "0" * 16
        report = run_tournament(db, records, runs=1, pin=False)
        assert not report.ok
        assert report.divergences
        outcome = report.queries[0]
        assert all(not c.valid for c in outcome.candidates)
        # invalid candidates are never benchmarked or promoted
        assert all(not c.timings for c in outcome.candidates)
        assert not report.promotions

    def test_dedups_repeated_queries(self, xmark_doc, tmp_path):
        db = make_db(xmark_doc)
        records = record_workload(
            db, [PERSON_QUERY, PERSON_QUERY, "  " + PERSON_QUERY], tmp_path
        )
        report = run_tournament(db, records, runs=1, pin=False)
        assert report.records == 3
        assert report.skipped == 2
        assert len(report.queries) == 1

    def test_candidate_cap_keeps_default(self, xmark_doc, tmp_path):
        db = make_db(xmark_doc)
        records = record_workload(db, [PERSON_QUERY], tmp_path)
        report = run_tournament(
            db, records, runs=1, max_candidates=2, pin=False
        )
        outcome = report.queries[0]
        assert len(outcome.candidates) == 2
        assert outcome.candidates[0].default
        assert outcome.candidate_space > 2  # the cap was real, and logged


class TestPinLifecycle:
    def pin_for(self, db, query=PERSON_QUERY):
        """A pin selecting the single-view plan for the person pattern."""
        prepared = db.prepare(query, consult_pins=False)
        resolution = prepared.units[0].resolutions[0]
        assert resolution.rewriting is not None
        return PinnedPlan(
            query=" ".join(query.split()),
            catalog_version=db.catalog_version,
            choices=(
                PinnedChoice(
                    unit=0,
                    pattern=0,
                    access="rewriting",
                    signature=rewriting_signature(resolution.rewriting),
                    views=tuple(resolution.rewriting.views),
                ),
            ),
            fingerprint=prepared.fingerprint,
        )

    def test_pin_survives_lru_pressure(self, xmark_doc):
        db = make_db(xmark_doc)
        pin = self.pin_for(db)
        with QueryService(db, cache_capacity=2) as service:
            service.pin_plan(pin)
            # evict every cached plan several times over
            for query in (
                "//regions//item/name/text()",
                "//people/person/name/text()",
                "//open_auctions/open_auction/reserve/text()",
                "//closed_auctions/closed_auction/price/text()",
            ):
                service.query(query)
            assert len(db.plan_pins) == 1
            result = service.query(PERSON_QUERY)
            assert result.pinned
            assert service.pins()[0].query == pin.query

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda s: s.add_view("v_extra", "//regions//item[id:s]"),
            lambda s: s.drop_view("v_person_ids"),
            lambda s: s.add_document_xml("<site><extra>1</extra></site>", "extra.xml"),
            lambda s: s.refresh_statistics(),
            lambda s: s.db.override_statistic("v_person", 123.0),
        ],
        ids=["add_view", "drop_view", "add_document", "refresh_stats", "override_stat"],
    )
    def test_pin_invalidated_by_mutations(self, xmark_doc, mutate):
        db = make_db(xmark_doc)
        with QueryService(db) as service:
            service.pin_plan(self.pin_for(db))
            assert service.query(PERSON_QUERY).pinned
            before = db.plan_pins.stats().invalidations
            mutate(service)
            # eager purge on service mutations; the direct database
            # mutation is caught lazily on the next lookup instead
            result = service.query(PERSON_QUERY)
            assert not result.pinned
            assert len(db.plan_pins) == 0
            assert db.plan_pins.stats().invalidations > before

    def test_pinned_replay_is_diff_free(self, xmark_doc, tmp_path):
        """A workload recorded under pins replays clean — same
        fingerprints, same checksums — when the replay database loads the
        same pins; and the pinned fingerprint genuinely differs from the
        unpinned one, so the equivalence is not vacuous."""
        from repro.core.replay import replay_records

        recorder = make_db(xmark_doc)
        pin = self.pin_for(recorder)
        # pin the JOIN plan instead of the ranked pick so pinned and
        # unpinned preparations demonstrably differ
        join_sig = None
        for rewriting in recorder.rewrite(
            recorder.prepare(PERSON_QUERY, consult_pins=False)
            .units[0].unit.patterns[0],
            max_results=None,
        ):
            if rewriting.views == ("v_person_ids", "v_person_names"):
                join_sig = rewriting_signature(rewriting)
        assert join_sig
        pin = PinnedPlan(
            query=pin.query,
            catalog_version=recorder.catalog_version,
            choices=(
                PinnedChoice(
                    unit=0, pattern=0, access="rewriting",
                    signature=join_sig,
                    views=("v_person_ids", "v_person_names"),
                ),
            ),
        )
        records = []
        path = str(tmp_path / "pinned.jsonl")
        qlog = QueryLog(path)
        with QueryService(recorder, qlog=qlog) as service:
            unpinned_fp = service.query(PERSON_QUERY).plan_fingerprint
            service.pin_plan(pin)
            pinned = service.query(PERSON_QUERY)
            assert pinned.pinned
            assert pinned.plan_fingerprint != unpinned_fp
        qlog.close()
        records = [
            r for r in QueryLog.read_all(path) if r.get("pinned")
        ]
        assert len(records) == 1

        replayer = make_db(xmark_doc)
        replayer.plan_pins.pin(
            pin.restamped(replayer.catalog_version)
        )
        report = replay_records(replayer, records)
        assert report.ok, [d.summary() for d in report.diffs]

        # without the pin the same replay flags a fingerprint diff (and
        # only a fingerprint diff — answers agree across access paths)
        bare = make_db(xmark_doc)
        bare_report = replay_records(bare, records)
        assert not bare_report.ok
        assert {d.kind for d in bare_report.diffs} == {"fingerprint"}

    def test_stale_pin_never_serves_wrong_answer(self, xmark_doc):
        """Two staleness shapes: a version-stale pin is dropped before it
        influences planning, and a pin whose signature matches nothing at
        the current catalog state falls back to ranking — in both cases
        the answer equals the unpinned one."""
        db = make_db(xmark_doc)
        expected = result_checksum(db.query(PERSON_QUERY))

        # version staleness: install, then mutate the catalog under it
        db.plan_pins.pin(self.pin_for(db))
        db.override_statistic("v_person_names", 7.0)  # bumps the version
        result = db.query(PERSON_QUERY)
        assert not result.pinned
        assert result_checksum(result) == expected
        assert len(db.plan_pins) == 0

        # signature staleness: right version, dangling signature (the
        # rewriting it names does not exist at this catalog state)
        db.plan_pins.pin(
            PinnedPlan(
                query=" ".join(PERSON_QUERY.split()),
                catalog_version=db.catalog_version,
                choices=(
                    PinnedChoice(
                        unit=0, pattern=0, access="rewriting",
                        signature="feedfacefeedface",
                        views=("v_gone",),
                    ),
                ),
            )
        )
        result = db.query(PERSON_QUERY)
        assert not result.pinned  # the unmatched choice was not applied
        assert result_checksum(result) == expected
        ctx_counters = result.counters
        assert ctx_counters.get("plan_pin.unmatched", 0) >= 1

    def test_pin_store_persistence_round_trip(self, xmark_doc, tmp_path):
        db = make_db(xmark_doc)
        pin = self.pin_for(db)
        db.plan_pins.pin(pin)
        path = str(tmp_path / "pins.json")
        assert db.plan_pins.save(path) == 1
        loaded = PlanPinStore.load(path)
        assert loaded == [pin]

        fresh = make_db(xmark_doc)
        with QueryService(fresh) as service:
            assert service.load_pins(path) == 1
            result = service.query(PERSON_QUERY)
            assert result.pinned

    def test_sharded_database_honours_pins(self, xmark_doc):
        from repro.core.coordinator import ShardedDatabase

        db = make_db(xmark_doc)
        expected = result_checksum(db.query(PERSON_QUERY))
        sharded = ShardedDatabase(2, metrics=MetricsRegistry())
        sharded.add_document(xmark_doc)
        sharded.add_view("v_person", "//people/person[id:s]{/name[id:s, val]}")
        sharded.add_view("v_person_ids", "//people/person[id:s]")
        sharded.add_view("v_person_names", "//people/person/name[id:s, val]")
        pin = self.pin_for(db)
        sharded.plan_pins.pin(pin.restamped(sharded.catalog_version))
        result = sharded.query(PERSON_QUERY)
        assert result.pinned
        assert result_checksum(result) == expected


class TestDifferentialSweep:
    """Satellite bug hunt, kept standing: every workload query's *entire*
    candidate set must validate checksum-identical to a recording under
    both executors.  The sweep over the full XMark + DBLP workloads (plus
    random patterns and enriched catalogs) found zero divergences when
    the tournament landed; these compact versions keep the property."""

    def _sweep(self, build, queries, tmp_path):
        records = record_workload(build(), queries, tmp_path)
        report = run_tournament(
            build(), records, runs=1, max_candidates=64, pin=False
        )
        assert report.ok, report.divergences
        assert len(report.queries) == len(queries)
        return report

    def test_xmark_candidates_agree_under_both_executors(
        self, xmark_doc, tmp_path
    ):
        queries = [XMARK_QUERIES[q] for q in ("q01", "q07", "q08", "q09", "q11")]
        report = self._sweep(
            lambda: make_db(xmark_doc), queries, tmp_path
        )
        # non-vacuity: the sweep must actually exercise multi-candidate
        # queries, not just validate one plan per query
        assert sum(len(q.candidates) for q in report.queries) > len(queries)

    def test_dblp_candidates_agree_under_both_executors(
        self, dblp_doc, tmp_path
    ):
        def build():
            db = Database(metrics=MetricsRegistry())
            db.add_document(dblp_doc)
            db.add_view("v_article", "//dblp/article[id:s]{/title[id:s, val]}")
            db.add_view("v_article_ids", "//dblp/article[id:s]")
            db.add_view("v_titles", "//dblp/article/title[id:s, val]")
            db.add_view("v_author", "//dblp//author[id:s, val]")
            return db

        queries = list(DBLP_QUERIES.values())[:5]
        report = self._sweep(build, queries, tmp_path)
        assert sum(len(q.candidates) for q in report.queries) > len(queries)
