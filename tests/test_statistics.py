"""Tests for summary-based cardinality estimation and rewriting ranking."""

import pytest

from repro.core import evaluate_pattern, parse_pattern, pattern_from_path, rewrite_pattern
from repro.core.statistics import (
    estimate_pattern_cardinality,
    estimate_view_size,
    rank_rewritings,
)
from repro.engine import Store
from repro.storage import Catalog, materialize_view
from repro.summary import build_enhanced_summary
from repro.xmldata import load


@pytest.fixture()
def env():
    doc = load(
        "<lib>"
        + "".join(
            f"<book><title>T{i}</title><author>A</author><author>B</author></book>"
            for i in range(10)
        )
        + "<journal><title>J</title></journal></lib>"
    )
    return doc, build_enhanced_summary(doc)


class TestEstimates:
    def test_exact_on_single_path(self, env):
        doc, summary = env
        pattern = pattern_from_path("//book")
        estimate = estimate_pattern_cardinality(pattern, summary)
        assert estimate.expected == pytest.approx(10)

    def test_join_multiplies_children_per_parent(self, env):
        doc, summary = env
        pattern = parse_pattern("//book[id:s]{/author[id:s]}")
        estimate = estimate_pattern_cardinality(pattern, summary)
        actual = len(evaluate_pattern(pattern, doc))
        assert estimate.expected == pytest.approx(actual)  # 20 pairs

    def test_semijoin_filters_instead_of_multiplying(self, env):
        doc, summary = env
        pattern = parse_pattern("//book[id:s]{/s:author}")
        estimate = estimate_pattern_cardinality(pattern, summary)
        assert estimate.expected == pytest.approx(10)

    def test_outer_join_never_drops_parents(self, env):
        doc, summary = env
        # journals have no authors; //*{/o:author} keeps them
        pattern = parse_pattern("//title[id:s]{/o:missing}")
        estimate = estimate_pattern_cardinality(pattern, summary)
        assert estimate.expected >= 10

    def test_nested_edge_keeps_parent_multiplicity(self, env):
        doc, summary = env
        pattern = parse_pattern("//book[id:s]{/nj:author[val]}")
        estimate = estimate_pattern_cardinality(pattern, summary)
        assert estimate.expected == pytest.approx(10)

    def test_predicates_apply_selectivity(self, env):
        doc, summary = env
        plain = estimate_pattern_cardinality(
            pattern_from_path("//title", store=("V",)), summary
        )
        filtered = estimate_pattern_cardinality(
            pattern_from_path("//title", store=("V",), value_equals="T1"), summary
        )
        assert filtered.expected < plain.expected

    def test_multiple_embeddings_sum(self, env):
        doc, summary = env
        pattern = pattern_from_path("//title")
        estimate = estimate_pattern_cardinality(pattern, summary)
        assert len(estimate.per_embedding) == 2  # book/title + journal/title
        assert estimate.expected == pytest.approx(11)

    def test_view_size_matches_materialization(self, env):
        doc, summary = env
        store, catalog = Store(), Catalog()
        entry = materialize_view("v", "//book[id:s]", doc, store, catalog)
        assert estimate_view_size(entry.pattern, summary) == pytest.approx(
            len(store["v"])
        )


class TestRanking:
    def test_prefers_smaller_views(self, env):
        doc, summary = env
        store, catalog = Store(), Catalog()
        # two single-view rewritings for //book: one exact view, one via
        # a bigger view set joined structurally
        materialize_view("small", "//book[id:s]{/title[id:s, val]}", doc, store, catalog)
        materialize_view("books", "//book[id:s]", doc, store, catalog)
        materialize_view("titles", "//title[id:s, val]", doc, store, catalog)
        query = parse_pattern("//book[id:s]{/title[id:s, val]}")
        rewritings = rewrite_pattern(query, catalog, summary)
        assert len(rewritings) >= 2
        ranked = rank_rewritings(rewritings, catalog, summary, store)
        assert ranked[0].views == ("small",)

    def test_statistics_less_view_still_beats_full_base_scan(self, env):
        """A view with *unknown* statistics must not poison its plan's
        cost to infinity.  Two joins both touch the stats-less ``books``
        view; one partner is tiny, the other is a scan of everything.
        Under the old ``inf`` pricing both plans collapsed to infinite
        volume and the tie fell to enumeration order — which put the full
        scan first.  The ``(unknown, known_volume, ops)`` key lets the
        known part of the plan separate them."""
        doc, summary = env
        store, catalog = Store(), Catalog()
        materialize_view("books", "//book[id:s]", doc, store, catalog)
        # twin title views: only the pinned sizes differ
        materialize_view("base_scan", "//title[id:s, val]", doc, store, catalog)
        materialize_view("titles", "//title[id:s, val]", doc, store, catalog)

        class Stub:
            def relation_size(self, name):
                return {"base_scan": 100000.0, "titles": 5.0}.get(name)

            def pattern_cardinality(self, pattern):
                return None

        query = parse_pattern("//book[id:s]{/title[id:s, val]}")
        rewritings = rewrite_pattern(query, catalog, summary, max_results=None)
        joins = [r for r in rewritings if "books" in r.views]
        assert {("books", "base_scan"), ("books", "titles")} <= {
            r.views for r in joins
        }
        ranked = rank_rewritings(joins, catalog, summary, statistics=Stub())
        assert ranked[0].views == ("books", "titles")

    def test_fewer_unknown_views_rank_first(self, env):
        """Rewritings touching fewer statistics-less views win outright;
        among all-unknown plans the smallest plan wins — deterministic
        order even under a complete statistics blackout."""
        doc, summary = env
        store, catalog = Store(), Catalog()
        materialize_view("small", "//book[id:s]{/title[id:s, val]}", doc, store, catalog)
        materialize_view("books", "//book[id:s]", doc, store, catalog)
        materialize_view("titles", "//title[id:s, val]", doc, store, catalog)

        class Blackout:
            def relation_size(self, name):
                return None

            def pattern_cardinality(self, pattern):
                return None

        query = parse_pattern("//book[id:s]{/title[id:s, val]}")
        rewritings = rewrite_pattern(query, catalog, summary, max_results=None)
        ranked = rank_rewritings(
            rewritings, catalog, summary, statistics=Blackout()
        )
        # single-view exact match: one unknown view and the fewest
        # operators — first under the new key, inf-tied before
        assert ranked[0].views == ("small",)

        class TitlesKnown:
            def relation_size(self, name):
                return 11.0 if name == "titles" else None

            def pattern_cardinality(self, pattern):
                return None

        join_pairs = [r for r in rewritings if len(r.views) == 2]
        assert join_pairs
        mixed = rank_rewritings(
            join_pairs, catalog, summary, statistics=TitlesKnown()
        )
        # ("books","titles") has one unknown view; all-unknown pairs have
        # two — unknown count dominates the ordering
        assert "titles" in mixed[0].views

    def test_estimated_and_actual_ranking_agree_here(self, env):
        doc, summary = env
        store, catalog = Store(), Catalog()
        materialize_view("small", "//journal[id:s]", doc, store, catalog)
        materialize_view("big", "//book[id:s]", doc, store, catalog)
        query = parse_pattern("//journal[id:s]")
        rewritings = rewrite_pattern(query, catalog, summary)
        with_store = rank_rewritings(rewritings, catalog, summary, store)
        without = rank_rewritings(rewritings, catalog, summary)
        assert [r.views for r in with_store] == [r.views for r in without]
