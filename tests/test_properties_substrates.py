"""Hypothesis property tests on the substrate layers: B+-tree vs a
model sorted map, structural/Dewey ID axioms on random trees, and the
interval-normal-form formula algebra as a boolean algebra over points."""

import random

from hypothesis import given, settings, strategies as st

from repro.algebra.formulas import Formula
from repro.engine import BPlusTree
from repro.xmldata import Document, XMLNode, id_of, label_document
from repro.xmldata.node import DOCUMENT


# --------------------------------------------------------------------------
# B+-tree vs model
# --------------------------------------------------------------------------

_keys = st.lists(
    st.tuples(st.integers(min_value=-50, max_value=50), st.integers(0, 5)),
    min_size=0,
    max_size=120,
)


@given(_keys, st.integers(min_value=4, max_value=64))
@settings(max_examples=60, deadline=None)
def test_btree_matches_sorted_model(keys, order):
    tree = BPlusTree(order=order)
    model: dict[tuple, list[int]] = {}
    for i, key in enumerate(keys):
        tree.insert(key, i)
        model.setdefault(key, []).append(i)

    # lookups agree, including duplicates (in insertion order)
    for key, expected in model.items():
        assert tree.search(key) == expected
    assert tree.search((999, 999)) == []

    # full iteration is key-sorted and complete (duplicate keys yield
    # one (key, value) pair per stored entry)
    got_keys = [k for k, _ in tree.items()]
    assert got_keys == sorted(keys)
    assert sum(len(tree.search(k)) for k in model) == len(keys)


@given(_keys, st.tuples(st.integers(-50, 50), st.integers(0, 5)),
       st.tuples(st.integers(-50, 50), st.integers(0, 5)))
@settings(max_examples=60, deadline=None)
def test_btree_range_matches_filter(keys, low, high):
    if high < low:
        low, high = high, low
    tree = BPlusTree(order=8)
    for i, key in enumerate(keys):
        tree.insert(key, i)
    got = [k for k, _ in tree.range(low, high)]
    expected = sorted(k for k in keys if low <= k <= high)
    assert got == expected


@given(_keys)
@settings(max_examples=40, deadline=None)
def test_btree_len_counts_entries(keys):
    tree = BPlusTree(order=6)
    for i, key in enumerate(keys):
        tree.insert(key, i)
    assert len(tree) == len(keys)


# --------------------------------------------------------------------------
# ID axioms on random trees
# --------------------------------------------------------------------------

def _random_document(rng: random.Random, size: int) -> Document:
    root = XMLNode("element", "r")
    nodes = [root]
    for i in range(size):
        parent = rng.choice(nodes)
        child = XMLNode("element", f"t{i % 3}")
        parent.append(child)
        nodes.append(child)
    document_node = XMLNode(DOCUMENT, "#document")
    document_node.append(root)
    return label_document(Document(document_node, "rand.xml"))


@given(st.integers(min_value=0, max_value=10_000), st.integers(1, 40))
@settings(max_examples=50, deadline=None)
def test_structural_ids_encode_exact_ancestry(seed, size):
    doc = _random_document(random.Random(seed), size)
    elements = list(doc.elements())
    sids = {id(n): id_of(n, "s") for n in elements}
    for a in elements:
        for b in elements:
            related = sids[id(a)].is_ancestor_of(sids[id(b)])
            assert related == (id(a) in {id(x) for x in b.ancestors()})


@given(st.integers(min_value=0, max_value=10_000), st.integers(1, 40))
@settings(max_examples=50, deadline=None)
def test_dewey_parent_matches_tree_parent(seed, size):
    doc = _random_document(random.Random(seed), size)
    for node in doc.elements():
        parent = node.parent
        if parent is None or parent.kind == DOCUMENT:
            continue
        assert id_of(node, "p").parent() == id_of(parent, "p")


@given(st.integers(min_value=0, max_value=10_000), st.integers(1, 40))
@settings(max_examples=30, deadline=None)
def test_pre_order_equals_document_order(seed, size):
    doc = _random_document(random.Random(seed), size)
    elements = list(doc.elements())
    pres = [id_of(n, "s").pre for n in elements]
    assert pres == sorted(pres)
    # depth really is the ancestor count
    for n in elements:
        assert id_of(n, "s").depth == len(list(n.ancestors()))


# --------------------------------------------------------------------------
# Formula algebra over sampled points
# --------------------------------------------------------------------------

_constants = st.integers(min_value=-5, max_value=5)
_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


@st.composite
def _formulas(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return Formula.compare(draw(_ops), draw(_constants))
    left = draw(_formulas(depth=depth - 1))
    right = draw(_formulas(depth=depth - 1))
    combinator = draw(st.sampled_from(["and", "or", "not"]))
    if combinator == "and":
        return left & right
    if combinator == "or":
        return left | right
    return ~left


_POINTS = [x / 2 for x in range(-14, 15)]


def _truth_table(formula):
    return tuple(formula.evaluate(p) for p in _POINTS)


@given(_formulas(), _formulas())
@settings(max_examples=120, deadline=None)
def test_conjunction_is_pointwise_and(f, g):
    assert _truth_table(f & g) == tuple(
        a and b for a, b in zip(_truth_table(f), _truth_table(g))
    )


@given(_formulas(), _formulas())
@settings(max_examples=120, deadline=None)
def test_disjunction_is_pointwise_or(f, g):
    assert _truth_table(f | g) == tuple(
        a or b for a, b in zip(_truth_table(f), _truth_table(g))
    )


@given(_formulas())
@settings(max_examples=120, deadline=None)
def test_negation_is_pointwise_not(f):
    assert _truth_table(~f) == tuple(not a for a in _truth_table(f))
    assert _truth_table(~~f) == _truth_table(f)


@given(_formulas(), _formulas())
@settings(max_examples=120, deadline=None)
def test_implication_sound_on_points(f, g):
    if f.implies(g):
        for a, b in zip(_truth_table(f), _truth_table(g)):
            assert (not a) or b


@given(_formulas())
@settings(max_examples=120, deadline=None)
def test_unsatisfiable_iff_empty_truth_table(f):
    # interval normal form is exact over numeric points: is_false must
    # coincide with "no sampled integer point satisfies f" whenever the
    # formula only mentions the sampled constants
    if f.is_false:
        assert not any(_truth_table(f))
    if not f.satisfiable():
        assert f.is_false
