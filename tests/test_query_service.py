"""The concurrent query service: cache correctness, invalidation on every
mutation kind, timeouts/cancellation, and the multi-threaded smoke test
over XMark the ISSUE asks for."""

import os
import random
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import Database, QueryService
from repro.core.service import QueryTimeout
from repro.core.uload import QueryCancelled
from repro.errors import QueryRejected, TransientStorageFault
from repro.workloads import generate_xmark

from tests.conftest import BIB_XML

PERSON_QUERY = "for $p in //people/person return $p/name/text()"
AUCTION_QUERY = "//open_auctions/open_auction/initial/text()"
ITEM_QUERY = "//regions//item/name/text()"
CLOSED_QUERY = "//closed_auctions/closed_auction/price/text()"


@pytest.fixture()
def xmark_db():
    db = Database()
    db.add_document(generate_xmark(scale=1, seed=0))
    db.add_view("v_person", "//people/person[id:s]{/name[id:s, val]}")
    db.add_view("v_item", "//regions//item[id:s]{/name[id:s, val]}")
    return db


@pytest.fixture()
def service(xmark_db):
    svc = QueryService(xmark_db, cache_capacity=16, max_workers=8)
    yield svc
    svc.shutdown()


def frozen(result):
    return [t.freeze() for t in result.tuples]


class TestCacheCorrectness:
    def test_hit_after_miss_returns_identical_tuples(self, service):
        first = service.query(PERSON_QUERY)
        second = service.query(PERSON_QUERY)
        assert frozen(first) == frozen(second)
        assert first.values == second.values
        assert first.xml == second.xml
        stats = service.cache_stats()
        assert stats.misses == 1 and stats.hits == 1

    def test_counters_surface_in_result(self, service):
        miss = service.query(PERSON_QUERY, stats=True)
        hit = service.query(PERSON_QUERY, stats=True)
        assert miss.counters["plan_cache.miss"] == 1.0
        assert hit.counters["plan_cache.hit"] == 1.0
        assert hit.metrics, "stats=True should still record plan metrics"

    def test_counters_surface_in_explain(self, service):
        service.explain(PERSON_QUERY)
        report = service.explain(PERSON_QUERY)
        assert report.counters["plan_cache.hit"] == 1.0
        assert "plan_cache.hit" in report.render()

    def test_distinct_queries_cached_separately(self, service):
        service.query(PERSON_QUERY)
        service.query(AUCTION_QUERY)
        assert service.cache_stats().size == 2

    def test_whitespace_variants_share_one_entry(self, service):
        service.query(PERSON_QUERY)
        service.query("  " + PERSON_QUERY.replace(" return", "   return") + "  ")
        stats = service.cache_stats()
        assert stats.hits == 1 and stats.size == 1

    def test_matches_plain_database_results(self, xmark_db, service):
        direct = xmark_db.query(AUCTION_QUERY)
        via_service = service.query(AUCTION_QUERY)
        assert frozen(direct) == frozen(via_service)


class TestInvalidation:
    def test_register_xam_invalidates(self, service):
        service.query(AUCTION_QUERY)
        service.add_view(
            "v_auction", "//open_auctions/open_auction[id:s]{/initial[id:s, val]}"
        )
        assert service.cache_stats().invalidations >= 1
        result = service.query(AUCTION_QUERY)
        assert "v_auction" in result.used_views
        assert service.cache_stats().misses == 2  # re-prepared, not reused

    def test_drop_view_invalidates(self, service):
        before = service.query(PERSON_QUERY)
        assert "v_person" in before.used_views
        service.drop_view("v_person")
        after = service.query(PERSON_QUERY)
        assert "v_person" not in after.used_views
        assert sorted(before.values) == sorted(after.values)

    def test_load_document_invalidates(self, service):
        baseline = service.query("//book/title/text()")
        assert baseline.values == []
        service.add_document_xml(BIB_XML, "bib.xml")
        enriched = service.query("//book/title/text()")
        assert "Data on the Web" in enriched.values
        assert service.cache_stats().invalidations >= 1

    def test_refresh_statistics_invalidates(self, service):
        service.query(PERSON_QUERY)
        version = service.db.catalog_version
        service.refresh_statistics()
        assert service.db.catalog_version == version + 1
        service.query(PERSON_QUERY)
        stats = service.cache_stats()
        assert stats.misses == 2 and stats.invalidations >= 1

    def test_lru_eviction_respects_capacity(self, xmark_db):
        with QueryService(xmark_db, cache_capacity=2, max_workers=2) as svc:
            for query in (PERSON_QUERY, AUCTION_QUERY, ITEM_QUERY, CLOSED_QUERY):
                svc.query(query)
            stats = svc.cache_stats()
            assert stats.size == 2
            assert stats.evictions == 2


class TestTimeoutAndCancellation:
    def test_timeout_raises_query_timeout(self, xmark_db):
        original = xmark_db.prepare

        def slow_prepare(*args, **kwargs):
            time.sleep(0.4)
            return original(*args, **kwargs)

        xmark_db.prepare = slow_prepare
        with QueryService(xmark_db, max_workers=1) as svc:
            with pytest.raises(QueryTimeout):
                svc.query(PERSON_QUERY, timeout=0.05)

    def test_should_stop_cancels_between_units(self, xmark_db):
        prepared = xmark_db.prepare(PERSON_QUERY)
        with pytest.raises(QueryCancelled):
            xmark_db.execute_prepared(prepared, should_stop=lambda: True)

    def test_shutdown_rejects_new_queries(self, xmark_db):
        svc = QueryService(xmark_db, max_workers=1)
        svc.shutdown()
        with pytest.raises(RuntimeError):
            svc.query(PERSON_QUERY)


class TestAdmissionControl:
    """Overload protection at the service boundary: bounded-queue sheds,
    the queued-then-shed cancellation race, retry-budget exhaustion
    converting to degraded fallback, and a cancellation landing while a
    breaker is half-open (the probe must stay un-judged)."""

    def test_queue_full_sheds_with_typed_rejection(self, xmark_db):
        release = threading.Event()
        original = xmark_db.prepare

        def gated_prepare(*args, **kwargs):
            release.wait(10)
            return original(*args, **kwargs)

        xmark_db.prepare = gated_prepare
        svc = QueryService(xmark_db, max_workers=1, queue_capacity=1)
        try:
            blocker = svc.submit(PERSON_QUERY, timeout=30)
            time.sleep(0.05)  # the worker picks it up: queue depth 0
            queued = svc.submit(AUCTION_QUERY, timeout=30)  # depth 1 = cap
            with pytest.raises(QueryRejected) as rejection:
                svc.submit(ITEM_QUERY, timeout=30)
            assert rejection.value.reason == "queue_full"
            assert rejection.value.priority == "interactive"
            assert svc.admission.shed == 1
            release.set()
            blocker.result(timeout=30)
            queued.result(timeout=30)
        finally:
            release.set()
            xmark_db.prepare = original
            svc.shutdown()

    def test_queued_then_shed_race(self, xmark_db):
        """A query admitted while healthy whose deadline expires in the
        queue is shed by the worker that dequeues it — never executed,
        never a wrong answer, a typed rejection instead."""
        release = threading.Event()
        original = xmark_db.prepare

        def gated_prepare(*args, **kwargs):
            release.wait(10)
            return original(*args, **kwargs)

        xmark_db.prepare = gated_prepare
        svc = QueryService(xmark_db, max_workers=1)
        try:
            blocker = svc.submit(PERSON_QUERY, timeout=30)
            time.sleep(0.05)  # worker is now parked inside the blocker
            queued = svc.submit(AUCTION_QUERY, timeout=0.05)
            time.sleep(0.1)  # the queued deadline expires while waiting
            release.set()
            blocker.result(timeout=30)
            with pytest.raises(QueryRejected) as rejection:
                queued.result(timeout=30)
            assert rejection.value.reason == "queued_deadline"
        finally:
            release.set()
            xmark_db.prepare = original
            svc.shutdown()

    def test_retry_budget_exhaustion_degrades_immediately(self, xmark_db):
        """With the service-wide retry budget empty, a transient fault is
        not backoff-retried: the faulting module's breaker is forced open
        and the query re-executes degraded, without sleeping."""
        original = xmark_db.execute_prepared
        calls = {"count": 0}

        def flaky(prepared, **kwargs):
            calls["count"] += 1
            if calls["count"] == 1:
                raise TransientStorageFault(
                    "injected read fault", xam="v_person"
                )
            return original(prepared, **kwargs)

        xmark_db.execute_prepared = flaky
        svc = QueryService(
            xmark_db, max_workers=1, retry_budget=1, retry_budget_refill=0
        )
        try:
            assert svc.retry_budget.try_spend()  # drain the only token
            result = svc.query(PERSON_QUERY, timeout=30)
            assert calls["count"] == 2  # fault, then immediate re-run
            assert result.counters["retry_budget.exhausted"] == 1.0
            assert result.counters["retry_budget.degraded_fallbacks"] == 1.0
            assert xmark_db.breakers.state("v_person") == "open"
        finally:
            xmark_db.execute_prepared = original
            svc.shutdown()

    def test_cancelled_while_breaker_half_open(self, xmark_db):
        """A query cancelled mid-probe must leave a half-open breaker
        half-open: the cancelled run judged nothing, so the next query is
        still the recovery probe (and its success closes the breaker)."""
        board = xmark_db.breakers
        board.force_open("v_person", "probe rehearsal")
        board.breaker("v_person").recovery_timeout = 0.0
        assert board.state("v_person") == "half-open"

        stop_set = threading.Event()
        original = xmark_db.prepare

        def gated_prepare(*args, **kwargs):
            stop_set.wait(10)  # hold the worker until the cancel landed
            return original(*args, **kwargs)

        xmark_db.prepare = gated_prepare
        svc = QueryService(xmark_db, max_workers=1)
        try:
            future = svc.submit(PERSON_QUERY, timeout=30)
            future.cancel_query()  # cooperative stop before execution
            stop_set.set()
            with pytest.raises(QueryCancelled):
                future.result(timeout=30)
            assert board.state("v_person") == "half-open"
            xmark_db.prepare = original
            result = svc.query(PERSON_QUERY, timeout=30)
            assert "v_person" in result.used_views
            assert board.state("v_person") == "closed"
        finally:
            xmark_db.prepare = original
            stop_set.set()
            svc.shutdown()

    def test_background_shed_before_interactive_when_degraded(self, xmark_db):
        svc = QueryService(
            xmark_db, max_workers=2, target_latency=0.001
        )
        try:
            # feed the limiter a window of terrible latencies: degraded
            for _ in range(svc.limiter.window):
                svc.limiter.observe(1.0)
            assert svc.limiter.degraded
            with pytest.raises(QueryRejected) as rejection:
                svc.query(PERSON_QUERY, priority="background", timeout=30)
            assert rejection.value.reason == "background_shed"
            interactive = svc.query(PERSON_QUERY, timeout=30)
            assert interactive.values
        finally:
            svc.shutdown()


class TestSigtermUnderSaturation:
    """SIGTERM during a saturated serve exits promptly with code 130 —
    the atexit guard cancels the queued futures so the worker pool's
    interpreter-exit join cannot hang (satellite regression test)."""

    def test_sigterm_exits_130_promptly(self, tmp_path):
        document = tmp_path / "bib.xml"
        document.write_text(BIB_XML, encoding="utf-8")
        queries = tmp_path / "queries.txt"
        queries.write_text("//book/title/text()\n" * 50, encoding="utf-8")
        repo_root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(repo_root / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve", str(document),
                "--queries", str(queries), "--repeat", "2000",
                "--workers", "1", "--queue-capacity", "4",
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            env=env,
            cwd=str(repo_root),
        )
        try:
            time.sleep(1.5)  # let the flood saturate the queue
            assert process.poll() is None, "serve finished before SIGTERM"
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                pytest.fail("serve did not exit within 10s of SIGTERM")
            assert process.returncode == 130
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


class TestSessions:
    def test_sessions_record_latency_percentiles(self, service):
        session = service.session("alice")
        for _ in range(5):
            session.query(PERSON_QUERY)
        assert len(session.latency) == 5
        p50 = session.latency.percentile(50)
        p99 = session.latency.percentile(99)
        assert p50 is not None and p99 is not None and p50 <= p99
        assert 50 in session.latency.percentiles((50, 99))
        assert "p50=" in session.latency.render()

    def test_named_session_is_stable_and_autonames_unique(self, service):
        assert service.session("alice") is service.session("alice")
        assert service.session().name != service.session().name
        assert len(service.sessions()) >= 2

    def test_empty_recorder(self, service):
        fresh = service.session("idle")
        assert fresh.latency.percentile(50) is None
        assert fresh.latency.render() == "no queries recorded"


class TestConcurrentSmoke:
    """≥8 threads, mixed cached/uncached queries, one mid-run catalog
    mutation — results must be deterministic (acceptance criterion)."""

    QUERIES = [PERSON_QUERY, AUCTION_QUERY, ITEM_QUERY, CLOSED_QUERY]

    def test_eight_thread_smoke(self, xmark_db):
        reference = {
            q: sorted(frozen(xmark_db.query(q))) for q in self.QUERIES
        }
        svc = QueryService(xmark_db, cache_capacity=16, max_workers=8)
        errors: list = []
        mismatches: list = []
        started = threading.Barrier(9)
        mutated = threading.Event()

        def reader(seed: int) -> None:
            rng = random.Random(seed)
            try:
                started.wait()
                session = svc.session(f"reader-{seed}")
                for i in range(12):
                    query = rng.choice(self.QUERIES)
                    result = session.query(query, timeout=30)
                    if sorted(frozen(result)) != reference[query]:
                        mismatches.append((seed, i, query))
            except Exception as error:  # pragma: no cover - failure detail
                errors.append((seed, error))

        def mutator() -> None:
            try:
                started.wait()
                time.sleep(0.02)  # land mid-run
                svc.add_view(
                    "v_closed",
                    "//closed_auctions/closed_auction[id:s]{/price[id:s, val]}",
                )
                mutated.set()
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(("mutator", error))

        threads = [threading.Thread(target=reader, args=(s,)) for s in range(8)]
        threads.append(threading.Thread(target=mutator))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        svc.shutdown()

        assert not errors, errors
        assert not mismatches, mismatches
        assert mutated.is_set()
        stats = svc.cache_stats()
        assert stats.hits > 0, "repeated queries must hit the cache"
        assert stats.misses > 0
        # every reader finished all its queries
        assert sum(len(s.latency) for s in svc.sessions()) == 8 * 12

    def test_repeatable_across_runs(self, xmark_db):
        """The same mixed workload twice yields identical result sets —
        determinism independent of thread scheduling."""
        outcomes = []
        for _ in range(2):
            with QueryService(xmark_db, cache_capacity=8, max_workers=8) as svc:
                results = svc.run_batch(self.QUERIES * 4)
                outcomes.append([sorted(frozen(r)) for r in results])
        assert outcomes[0] == outcomes[1]
