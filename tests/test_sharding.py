"""Scatter-gather sharding: the physical-data-independence stress test.

The coordinator re-houses the corpus across N store partitions; every
query must answer bit-for-bit like the single-store database — same
tuples, same duplicates, same order, same plan fingerprint.  These tests
drive that claim through the partitioners, the plan splitter, the merge
primitives, a full query battery at several shard counts, the partial-
results degradation protocol, and (via Hypothesis) *random*
partitionings of the corpus.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database, QueryService
from repro.algebra.operators import Product, Project, Scan
from repro.algebra.model import NestedTuple
from repro.core.coordinator import (
    SHARDS_ENV_VAR,
    ShardedDatabase,
    resolve_shards,
)
from repro.core.replay import replay_records
from repro.core.rewrite import Regroup
from repro.engine.metrics import MetricsRegistry
from repro.engine.qlog import QueryLog, result_checksum
from repro.engine.shard import (
    ExplicitPartitioner,
    HashPartitioner,
    RoundRobinPartitioner,
    GatheredTuples,
    dedup_stream,
    evaluate_suffix,
    merge_runs,
    merge_sorted_runs,
    split_plan,
)
from repro.errors import AccessModuleUnavailable
from repro.xmldata import load


def _item_doc(name: str, *item_names: str) -> str:
    items = "".join(
        f'<item id="{name}-{n}"><name>{label}</name><mail>m</mail></item>'
        for n, label in enumerate(item_names)
    )
    return f"<site><regions>{items}</regions></site>"


#: four documents with cross-document duplicate names ("Fish" appears in
#: three documents, twice in one) — duplicate *order* is part of the
#: equality contract
CORPUS_XML = [
    ("a.xml", _item_doc("a", "Fish", "Rock")),
    ("b.xml", _item_doc("b", "Fish", "Fish", "Tree")),
    ("c.xml", _item_doc("c", "Rock")),
    ("d.xml", _item_doc("d", "Tree", "Fish")),
]


def corpus():
    return [load(xml, name) for name, xml in CORPUS_XML]

VIEWS = {
    "v_names": "//item[id:s]{/name[id:s, val]}",
    "v_items": "//item[id:s, cont]",
}

BATTERY = [
    "//item/name/text()",
    "//regions/item",
    "for $x in //regions/item return <r>{ $x/name/text() }</r>",
    "for $x in //regions/item, $y in //regions/item "
    "where $y/name = $x/name return <pair>{ $x/name/text() }</pair>",
]


def build_db(shards=None, partitioner=None, **kwargs):
    if shards is None:
        db = Database(metrics=MetricsRegistry())
    else:
        db = ShardedDatabase(
            shards,
            partitioner=partitioner,
            metrics=MetricsRegistry(),
            **kwargs,
        )
    db.add_documents(corpus())
    for name, pattern in VIEWS.items():
        db.add_view(name, pattern)
    return db


def outputs(result):
    return (result.xml, result.values, result.tuples)


# -- partitioners ------------------------------------------------------------


class TestPartitioners:
    def test_round_robin(self):
        p = RoundRobinPartitioner()
        assert [p.assign(None, seq, 3) for seq in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_hash_is_deterministic_and_name_keyed(self):
        p = HashPartitioner()
        doc = corpus()[0]
        first = p.assign(doc, 0, 4)
        assert p.assign(doc, 99, 4) == first  # seq does not matter
        assert 0 <= first < 4

    def test_explicit_with_fallback(self):
        p = ExplicitPartitioner([2, 0])
        assert p.assign(None, 0, 3) == 2
        assert p.assign(None, 1, 3) == 0
        assert p.assign(None, 5, 3) == 5 % 3  # unmapped -> round-robin


# -- the plan splitter -------------------------------------------------------


class TestSplitPlan:
    def test_regroup_plan_splits_into_prefix_and_suffix(self):
        db = build_db()
        prepared = db.prepare(
            "for $x in //regions/item return <r>{ $x/name/text() }</r>"
        )
        plans = [
            r.rewriting.plan
            for unit in prepared.units
            for r in unit.resolutions
            if r.rewriting is not None
        ]
        assert plans, "query must be view-answered for this test"
        decision = split_plan(plans[0], {"v_names"}, db.store.names())
        assert decision
        assert any(isinstance(op, Regroup) for op in decision.suffix)
        assert not any(
            isinstance(op, Regroup)
            for op in _walk(decision.scatter_root)
        )

    def test_non_linear_spine_falls_back(self):
        plan = Product(
            Scan("v_names", ["id", "val"]), Scan("v_items", ["id"])
        )
        decision = split_plan(plan, {"v_names", "v_items"}, ())
        assert not decision
        assert "non-linear" in decision.reason

    def test_unpartitioned_relation_falls_back(self):
        decision = split_plan(Scan("mystery", ["id"]), {"v_names"}, {"mystery"})
        assert not decision
        assert "not document-partitioned" in decision.reason

    def test_dedup_projection_stays_in_suffix(self):
        plan = Project(Scan("v_names", ["id", "val"]), ["val"], dedup=True)
        decision = split_plan(plan, {"v_names"}, ())
        assert decision
        assert isinstance(decision.scatter_root, Scan)
        assert [type(op) for op in decision.suffix] == [Project]

    def test_plain_projection_scatters(self):
        plan = Project(Scan("v_names", ["id", "val"]), ["val"])
        decision = split_plan(plan, {"v_names"}, ())
        assert decision.scatter_root is plan
        assert decision.suffix == []


def _walk(op):
    yield op
    for child in op.children:
        yield from _walk(child)


# -- merge primitives --------------------------------------------------------


class TestMergePrimitives:
    def test_merge_runs_orders_by_global_sequence(self):
        runs = [(2, ["e"]), (0, ["a", "b"]), (1, ["c", "d"])]
        assert merge_runs(runs) == ["a", "b", "c", "d", "e"]

    def test_merge_sorted_runs_is_stable(self):
        # ties on the key must preserve (document sequence, position)
        runs = [(1, [(5, "late")]), (0, [(5, "early"), (7, "x")])]
        merged = merge_sorted_runs(runs, key=lambda t: t[0])
        assert merged == [(5, "early"), (5, "late"), (7, "x")]

    def test_dedup_stream_keeps_first_occurrence(self):
        a, b = NestedTuple(v=1), NestedTuple(v=2)
        assert dedup_stream([a, b, NestedTuple(v=1)]) == [a, b]

    def test_evaluate_suffix_clones_operators(self):
        scan = Scan("r", ["v"])
        suffix = [Project(scan, ["v"], dedup=True)]
        tuples = [NestedTuple(v=1), NestedTuple(v=1), NestedTuple(v=2)]
        out = evaluate_suffix(suffix, tuples)
        assert [t["v"] for t in out] == [1, 2]
        # the original operator keeps its original child (plans are shared)
        assert suffix[0].children == (scan,)

    def test_gathered_tuples_leaf(self):
        leaf = GatheredTuples([NestedTuple(v=1)], ["v"])
        assert leaf.schema() == ["v"]
        assert len(leaf.evaluate()) == 1
        assert "Gathered" in leaf.label()


# -- equality: the independence claim ----------------------------------------


class TestShardedEquality:
    @pytest.mark.parametrize("shards", [2, 4, 7])
    def test_battery_matches_single_store(self, shards):
        single = build_db()
        with build_db(shards) as sharded:
            for query in BATTERY:
                p1, p2 = single.prepare(query), sharded.prepare(query)
                assert p1.fingerprint == p2.fingerprint, query
                r1 = single.execute_prepared(p1)
                r2 = sharded.execute_prepared(p2)
                assert outputs(r1) == outputs(r2), query
                assert result_checksum(r1) == result_checksum(r2), query

    def test_physical_and_stats_modes_match(self):
        single = build_db()
        with build_db(3) as sharded:
            for physical, stats in ((True, False), (False, True)):
                for query in BATTERY:
                    r1 = single.query(query, physical=physical, stats=stats)
                    r2 = sharded.query(query, physical=physical, stats=stats)
                    assert outputs(r1) == outputs(r2), query

    def test_view_answered_query_scatters_without_fallback(self):
        with build_db(4) as sharded:
            result = sharded.query(BATTERY[2])
            assert result.used_views == ["v_names"]
            assert result.counters.get("shard.fanout", 0) > 0
            assert "shard.fallback" not in result.counters
            assert result.shard_count == 4

    def test_shard_of_existing_database(self):
        single = build_db()
        single.override_statistic("v_names", 123.0)
        with single.shard(3) as sharded:
            assert isinstance(sharded, ShardedDatabase)
            assert sharded.statistics_overrides == single.statistics_overrides
            for query in BATTERY:
                assert (
                    sharded.prepare(query).fingerprint
                    == single.prepare(query).fingerprint
                )
                assert outputs(sharded.query(query)) == outputs(
                    single.query(query)
                )

    def test_empty_shards_are_harmless(self):
        # more shards than documents: trailing shards hold nothing
        with build_db(11) as sharded:
            assert outputs(sharded.query(BATTERY[0])) == outputs(
                build_db().query(BATTERY[0])
            )

    def test_drop_view_keeps_layouts_aligned(self):
        single = build_db()
        single.drop_view("v_names")
        with build_db(3) as sharded:
            sharded.drop_view("v_names")
            for shard in sharded.shards:
                assert "v_names" not in shard.store
            r1, r2 = single.query(BATTERY[2]), sharded.query(BATTERY[2])
            assert outputs(r1) == outputs(r2)
            assert r2.used_views == []


# -- degradation: partial results --------------------------------------------


class TestPartialDegradation:
    VIEW_QUERY = BATTERY[2]  # view-answered via v_names

    def test_one_shard_down_yields_degraded_partial(self):
        with build_db(4) as sharded:
            full = sharded.query(self.VIEW_QUERY)
            assert not full.degraded
            sharded.shards[1].breakers.force_open("v_names")
            partial = sharded.query(self.VIEW_QUERY)
            assert partial.degraded
            assert 0 < len(partial.xml) < len(full.xml)
            assert partial.counters.get("shard.degraded") == 1.0
            assert any(
                "shard 1" in event for event in partial.degradation_events
            )
            # the partial answer is exactly the single-store answer over
            # the surviving shards' documents (shard 1 holds b.xml)
            survivors = Database(metrics=MetricsRegistry())
            survivors.add_documents(
                [
                    doc
                    for seq, doc in enumerate(corpus())
                    if seq % 4 != 1
                ]
            )
            for name, pattern in VIEWS.items():
                survivors.add_view(name, pattern)
            assert partial.xml == survivors.query(self.VIEW_QUERY).xml

    def test_all_shards_down_fails_the_query(self):
        with build_db(3) as sharded:
            for shard in sharded.shards:
                shard.breakers.force_open("v_names")
            with pytest.raises(AccessModuleUnavailable):
                sharded.query(self.VIEW_QUERY)

    def test_missed_deadline_drops_the_slow_shard(self, monkeypatch):
        import time as time_module

        with build_db(3, shard_timeout=0.05) as sharded:
            original = sharded._shard_task

            def task(shard_index, *args, **kwargs):
                if shard_index == 1:
                    time_module.sleep(0.5)
                return original(shard_index, *args, **kwargs)

            monkeypatch.setattr(sharded, "_shard_task", task)
            result = sharded.query(self.VIEW_QUERY)
            assert result.degraded
            assert any(
                "deadline" in event for event in result.degradation_events
            )

    def test_zero_deadline_with_all_shards_slow_fails(self, monkeypatch):
        import time as time_module

        with build_db(2, shard_timeout=0.01) as sharded:
            original = sharded._shard_task

            def task(*args, **kwargs):
                time_module.sleep(0.5)
                return original(*args, **kwargs)

            monkeypatch.setattr(sharded, "_shard_task", task)
            with pytest.raises(AccessModuleUnavailable, match="deadline"):
                sharded.query(self.VIEW_QUERY)

    def test_health_reports_every_shard(self):
        with build_db(3) as sharded:
            sharded.shards[2].breakers.force_open("v_names")
            board = sharded.health()
            assert "coordinator (3 shard(s))" in board
            assert "shard 2" in board and "open" in board

    def test_force_open_blocks_and_recovers(self):
        with build_db(2) as sharded:
            shard = sharded.shards[0]
            shard.breakers.force_open("v_names")
            assert not shard.breakers.allows("v_names")


# -- hedged scatter: winner-vs-loser identity ---------------------------------


class TestHedgedScatter:
    def _counter(self, db, name):
        snap = db.metrics.snapshot()
        series = snap.get(name, {}).get("series", [])
        return sum(entry["value"] for entry in series)

    def test_hedge_winner_matches_loser_identity(self, tmp_path, monkeypatch):
        """Race a hedge against a stalled primary on every scatter, record
        the winners, and replay the capture against a non-hedged layout:
        whichever attempt won, fingerprints and checksums must be
        identical — hedging may change latency, never answers."""
        import threading
        import time as time_module

        path = str(tmp_path / "hedged.jsonl")
        qlog = QueryLog(path)
        with build_db(
            4, fanout_workers=6, hedge=True, hedge_delay=0.01
        ) as hedged:
            original = hedged._shard_task
            seen: set = set()
            lock = threading.Lock()

            def straggler(shard_index, resolution, decision, ctx):
                # the first attempt on shard 1 of each scatter stalls;
                # the hedge re-issue (same ctx, same shard) runs clean
                stall = False
                if shard_index == 1:
                    key = (id(ctx), shard_index)
                    with lock:
                        if key not in seen:
                            seen.add(key)
                            stall = True
                if stall:
                    time_module.sleep(0.2)
                return original(shard_index, resolution, decision, ctx)

            monkeypatch.setattr(hedged, "_shard_task", straggler)
            with QueryService(hedged, cache_capacity=8, qlog=qlog) as svc:
                for query in BATTERY:
                    svc.query(query, timeout=30)
            assert self._counter(hedged, "hedge.launched") >= 1
            assert self._counter(hedged, "hedge.wins") >= 1
        qlog.close()

        records = QueryLog.read_all(path)
        assert len(records) == len(BATTERY)
        with build_db(4) as plain:  # same layout, no hedging
            report = replay_records(plain, records)
            assert report.ok and report.matches == len(records)

    def test_hedge_disabled_by_default(self):
        with build_db(2) as sharded:
            assert sharded.hedge is False
            assert sharded._hedge_delay_now() is None


# -- capture / replay across layouts -----------------------------------------


class TestCrossLayoutReplay:
    def test_recorded_workload_replays_on_other_layouts(self, tmp_path):
        path = str(tmp_path / "workload.jsonl")
        qlog = QueryLog(path)
        with QueryService(build_db(), cache_capacity=16, qlog=qlog) as svc:
            for query in BATTERY:
                svc.query(query)
        qlog.close()
        records = QueryLog.read_all(path)
        assert all("shards" not in record for record in records)
        for shards in (2, 5):
            with build_db(shards) as sharded:
                report = replay_records(sharded, records)
                assert report.ok and report.matches == len(records)

    def test_sharded_capture_is_stamped_with_shard_count(self, tmp_path):
        path = str(tmp_path / "sharded.jsonl")
        qlog = QueryLog(path)
        with build_db(3) as sharded:
            with QueryService(sharded, cache_capacity=4, qlog=qlog) as svc:
                svc.query(BATTERY[0])
        qlog.close()
        records = QueryLog.read_all(path)
        assert [record.get("shards") for record in records] == [3]


# -- configuration surfaces --------------------------------------------------


class TestConfiguration:
    def test_resolve_shards_explicit_env_default(self, monkeypatch):
        monkeypatch.delenv(SHARDS_ENV_VAR, raising=False)
        assert resolve_shards(None) == 1
        assert resolve_shards(4) == 4
        assert resolve_shards("6") == 6
        monkeypatch.setenv(SHARDS_ENV_VAR, "3")
        assert resolve_shards(None) == 3
        with pytest.raises(ValueError):
            resolve_shards(0)

    def test_shard_requires_at_least_one(self):
        with pytest.raises(ValueError):
            ShardedDatabase(0, metrics=MetricsRegistry())

    def test_metrics_families_registered(self):
        with build_db(2) as sharded:
            sharded.query(BATTERY[2])
            snap = sharded.metrics.snapshot()
            for family in (
                "shard.fanout",
                "shard.merge",
                "shard.fallback",
                "shard.degraded",
                "shard.latency.seconds",
                "shard.count",
            ):
                assert family in snap
            gauge = snap["shard.count"]["series"][0]["value"]
            assert gauge == 2.0

    def test_serve_cli_accepts_shards(self, tmp_path, capsys):
        from repro.cli import main

        document = tmp_path / "doc.xml"
        document.write_text(_item_doc("a", "Fish", "Rock"))
        queries = tmp_path / "queries.txt"
        queries.write_text("//item/name/text()\n")
        code = main(
            ["serve", str(document), "--queries", str(queries), "--shards", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "-- shards: 2" in out
        assert "Fish" in out


# -- Hypothesis: random partitionings ----------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    shards=st.integers(min_value=2, max_value=5),
    assignments=st.lists(
        st.integers(min_value=0, max_value=4),
        min_size=len(CORPUS_XML),
        max_size=len(CORPUS_XML),
    ),
    query=st.sampled_from(BATTERY),
)
def test_any_partitioning_matches_single_store(shards, assignments, query):
    """For *every* document → shard assignment, sorted or not, the
    scattered answer equals the single-store answer tuple for tuple —
    duplicates and their order included."""
    single = build_db()
    with build_db(
        shards, partitioner=ExplicitPartitioner(assignments)
    ) as sharded:
        r1, r2 = single.query(query), sharded.query(query)
        assert outputs(r1) == outputs(r2)
        assert result_checksum(r1) == result_checksum(r2)
        assert (
            single.prepare(query).fingerprint
            == sharded.prepare(query).fingerprint
        )


@settings(max_examples=50, deadline=None)
@given(
    runs=st.lists(
        st.lists(st.integers(min_value=0, max_value=9), max_size=6).map(sorted),
        max_size=5,
    )
)
def test_merge_sorted_runs_equals_stable_sort(runs):
    numbered = list(enumerate(runs))
    merged = merge_sorted_runs(numbered, key=lambda t: t)
    concat = [value for _seq, run in numbered for value in run]
    assert merged == sorted(concat)
