"""Tests for the physical engine: StackTree joins, hash join, Sort,
compilation, and logical/physical agreement (§1.2.3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import (
    Attr,
    BaseTuples,
    Compare,
    Const,
    Difference,
    GroupBy,
    NestedTuple,
    Product,
    Project,
    Scan,
    Select,
    StructuralJoin,
    Union,
    ValueJoin,
)
from repro.engine import (
    PBase,
    PHashJoin,
    PSort,
    PStackTreeAnc,
    PStackTreeDesc,
    compile_plan,
    execute,
)
from repro.xmldata import id_of, load


def sid_rows(doc, label, name):
    return BaseTuples(
        [
            NestedTuple({f"{name}.ID": id_of(n, "s")})
            for n in doc.elements()
            if n.label == label
        ]
    )


@pytest.fixture()
def doc():
    return load(
        "<a><b><c/><c/><b><c/></b></b><b/><c/><b><x><c/></x></b></a>"
    )


def agreement(plan, context=None):
    logical = sorted(t.freeze() for t in plan.evaluate(context or {}))
    physical = sorted(t.freeze() for t in execute(plan, context or {}))
    assert logical == physical
    return logical


class TestStackTree:
    @pytest.mark.parametrize("kind", ["j", "s", "o", "nj", "no"])
    @pytest.mark.parametrize("axis", ["child", "descendant"])
    def test_agreement_with_logical(self, doc, kind, axis):
        plan = StructuralJoin(
            sid_rows(doc, "b", "x"),
            sid_rows(doc, "c", "y"),
            "x.ID",
            "y.ID",
            axis=axis,
            kind=kind,
            nest_as="g",
        )
        agreement(plan)

    def test_desc_output_is_descendant_ordered(self, doc):
        physical = PStackTreeDesc(
            PBase(sid_rows(doc, "b", "x").tuples, order="x.ID"),
            PBase(sid_rows(doc, "c", "y").tuples, order="y.ID"),
            "x.ID",
            "y.ID",
            "descendant",
        )
        out = list(physical.execute({}))
        descendant_ids = [t["y.ID"] for t in out]
        assert descendant_ids == sorted(descendant_ids)

    def test_anc_output_is_ancestor_ordered(self, doc):
        physical = PStackTreeAnc(
            PBase(sid_rows(doc, "b", "x").tuples, order="x.ID"),
            PBase(sid_rows(doc, "c", "y").tuples, order="y.ID"),
            "x.ID",
            "y.ID",
            "descendant",
            kind="nj",
            nest_as="g",
        )
        out = list(physical.execute({}))
        ancestor_ids = [t["x.ID"] for t in out]
        assert ancestor_ids == sorted(ancestor_ids)

    def test_self_nesting_ancestors(self, doc):
        # b elements nest inside b elements in this document
        plan = StructuralJoin(
            sid_rows(doc, "b", "x"),
            sid_rows(doc, "b", "y"),
            "x.ID",
            "y.ID",
            axis="descendant",
            kind="j",
        )
        out = agreement(plan)
        assert len(out) == 1

    def test_compiler_inserts_sorts_for_unordered_inputs(self, doc):
        shuffled = list(sid_rows(doc, "c", "y").tuples)
        random.Random(0).shuffle(shuffled)
        plan = StructuralJoin(
            sid_rows(doc, "b", "x"),
            BaseTuples(shuffled),
            "x.ID",
            "y.ID",
            axis="descendant",
        )
        physical = compile_plan(plan)
        assert "PSort" in physical.pretty()
        agreement(plan)

    def test_declared_scan_order_skips_sort(self, doc):
        plan = StructuralJoin(
            Scan("bs", ["x.ID"]), Scan("cs", ["y.ID"]), "x.ID", "y.ID", axis="descendant"
        )
        context = {
            "bs": sid_rows(doc, "b", "x").tuples,
            "cs": sid_rows(doc, "c", "y").tuples,
        }
        with_order = compile_plan(plan, {"bs": "x.ID", "cs": "y.ID"})
        assert "PSort" not in with_order.pretty()
        without = compile_plan(plan)
        assert "PSort" in without.pretty()
        assert sorted(t.freeze() for t in with_order.execute(context)) == sorted(
            t.freeze() for t in without.execute(context)
        )


class TestDeweyJoins:
    def test_stacktree_works_on_dewey_ids(self, doc):
        def dewey_rows(label, name):
            return BaseTuples(
                [
                    NestedTuple({f"{name}.ID": id_of(n, "p")})
                    for n in doc.elements()
                    if n.label == label
                ]
            )

        plan = StructuralJoin(
            dewey_rows("b", "x"), dewey_rows("c", "y"), "x.ID", "y.ID",
            axis="descendant",
        )
        logical = sorted(t.freeze() for t in plan.evaluate({}))
        physical = sorted(t.freeze() for t in execute(plan, {}))
        assert logical == physical and logical

    def test_mixed_id_types_raise_clearly(self, doc):
        rows_s = BaseTuples(
            [NestedTuple({"x.ID": id_of(n, "s")}) for n in doc.elements() if n.label == "b"]
        )
        rows_p = BaseTuples(
            [NestedTuple({"y.ID": id_of(n, "p")}) for n in doc.elements() if n.label == "c"]
        )
        plan = StructuralJoin(rows_s, rows_p, "x.ID", "y.ID", axis="descendant")
        with pytest.raises(TypeError):
            plan.evaluate({})


class TestValueJoins:
    def base(self):
        left = BaseTuples([NestedTuple({"x": v}) for v in (1, 2, 2, 3)])
        right = BaseTuples([NestedTuple({"y": v}) for v in (2, 3, 3)])
        return left, right

    @pytest.mark.parametrize("kind", ["j", "s", "o", "nj", "no"])
    def test_hash_join_agreement(self, kind):
        left, right = self.base()
        plan = ValueJoin(
            left, right, Compare(Attr("x", 0), "=", Attr("y", 1)), kind=kind, nest_as="g"
        )
        physical = compile_plan(plan)
        assert "PHashJoin" in physical.pretty()
        agreement(plan)

    def test_non_equality_uses_nested_loops(self):
        left, right = self.base()
        plan = ValueJoin(left, right, Compare(Attr("x", 0), "<", Attr("y", 1)))
        physical = compile_plan(plan)
        assert "PNestedLoopsJoin" in physical.pretty()
        agreement(plan)

    def test_hash_join_null_keys_never_match(self):
        left = BaseTuples([NestedTuple({"x": None})])
        right = BaseTuples([NestedTuple({"y": None})])
        join = PHashJoin(PBase(left.tuples), PBase(right.tuples), "x", "y")
        assert list(join.execute({})) == []


class TestOtherOperators:
    def test_sort_by_btree(self):
        base = PBase([NestedTuple({"x": v}) for v in (3, 1, 2)])
        out = list(PSort(base, "x").execute({}))
        assert [t["x"] for t in out] == [1, 2, 3]

    def test_select_project_union_difference_product_groupby(self):
        base = BaseTuples([NestedTuple({"x": v, "y": v % 2}) for v in range(6)])
        plans = [
            Select(base, Compare(Attr("x"), ">", Const(2))),
            Project(base, ["y"], dedup=True),
            Union(base, base),
            Difference(base, BaseTuples(base.tuples[:2])),
            Product(base, BaseTuples([NestedTuple({"z": 1})])),
            GroupBy(base, ["y"], nest_as="g"),
        ]
        for plan in plans:
            agreement(plan)

    def test_map_structural_join_falls_back(self, doc):
        nested = StructuralJoin(
            sid_rows(doc, "a", "a"),
            sid_rows(doc, "b", "b"),
            "a.ID",
            "b.ID",
            axis="child",
            kind="nj",
            nest_as="bs",
        )
        plan = StructuralJoin(
            nested, sid_rows(doc, "c", "c"), "bs/b.ID", "c.ID", axis="child", kind="no",
            nest_as="cs",
        )
        physical = compile_plan(plan)
        assert "PLogicalFallback" in physical.pretty()
        agreement(plan)

    def test_scan_missing_ok_compiles(self):
        plan = Scan("ghost", ["x"], missing_ok=True)
        assert list(execute(plan, {})) == []


# -- property test: StackTree vs nested loops over random trees -------------

@st.composite
def random_documents(draw):
    """Small random trees over labels a/b/c serialized as XML."""

    def build(depth: int) -> str:
        label = draw(st.sampled_from("abc"))
        if depth >= 3:
            return f"<{label}/>"
        count = draw(st.integers(min_value=0, max_value=3 - depth))
        inner = "".join(build(depth + 1) for _ in range(count))
        return f"<{label}>{inner}</{label}>" if inner else f"<{label}/>"

    children = "".join(
        build(1) for _ in range(draw(st.integers(min_value=0, max_value=4)))
    )
    return f"<r>{children}</r>"


@settings(max_examples=40, deadline=None)
@given(random_documents(), st.sampled_from("abc"), st.sampled_from("abc"),
       st.sampled_from(["child", "descendant"]), st.sampled_from(["j", "s", "o", "nj", "no"]))
def test_property_stacktree_matches_naive(source, anc_label, desc_label, axis, kind):
    doc = load(source)
    plan = StructuralJoin(
        sid_rows(doc, anc_label, "x"),
        sid_rows(doc, desc_label, "y"),
        "x.ID",
        "y.ID",
        axis=axis,
        kind=kind,
        nest_as="g",
    )
    logical = sorted(t.freeze() for t in plan.evaluate({}))
    physical = sorted(t.freeze() for t in execute(plan, {}))
    assert logical == physical


class TestLazyExecute:
    """Module-level ``execute`` streams: callers that stop early never pay
    for the full result (the eager ``list()`` was removed)."""

    def test_returns_iterator_not_list(self):
        rows = [NestedTuple({"x": i}) for i in range(3)]
        result = execute(Scan("r", ["x"]), {"r": rows})
        assert not isinstance(result, list)
        assert iter(result) is result  # a true one-shot iterator
        assert [t["x"] for t in result] == [0, 1, 2]

    def test_early_stop_skips_remaining_work(self):
        pulled = []

        def counting_rows():
            for i in range(1000):
                pulled.append(i)
                yield NestedTuple({"x": i})

        result = execute(Scan("r", ["x"]), {"r": counting_rows()})
        first = next(iter(result))
        assert first["x"] == 0
        assert len(pulled) <= 2, "execute must not materialize eagerly"
