"""Compatibility shim: `python setup.py develop` installs an editable
checkout on environments whose setuptools lacks PEP 660 support (no
`wheel` package); `pip install -e .` is the preferred route elsewhere."""

from setuptools import setup

setup()
