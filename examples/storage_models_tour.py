"""A tour of the §2.1/§2.3 storage models.

The same document is shredded into every layout the thesis surveys —
Edge, Universal, schema-driven (Hybrid-style), XRel path tables, native
node/structural/tag/path-partitioned stores, blobs, value and full-text
indexes — and each layout registers the XAMs describing it.  The catalog
printout at the end is the optimizer's entire knowledge of the physical
level.

Run:  python examples/storage_models_tour.py
"""

from repro.algebra import NestedTuple
from repro.engine import Store
from repro.indexes import build_fulltext_index, build_value_index, fulltext_lookup
from repro.storage import (
    Catalog,
    build_content_store,
    build_edge_store,
    build_node_store,
    build_path_partitioned_store,
    build_shredded_store,
    build_structural_store,
    build_tag_partitioned_store,
    build_universal_store,
    build_xrel_store,
    index_lookup,
)
from repro.summary import build_enhanced_summary
from repro.xmldata import load

BIB = """
<bib>
  <book year="1999"><title>Data on the Web</title>
    <author>Abiteboul</author><author>Suciu</author></book>
  <book year="2001"><title>The Syntactic Web</title>
    <author>Tim</author></book>
</bib>
"""


def main() -> None:
    doc = load(BIB, "bib.xml")
    summary = build_enhanced_summary(doc)
    store, catalog = Store(), Catalog()

    print("=== relational layouts (§2.3.1) ===")
    print("Edge:      ", build_edge_store(doc, store, catalog))
    print("Universal: ", build_universal_store(doc, store, catalog))
    print("Shredded:  ", build_shredded_store(doc, store, catalog, summary))
    print("XRel:      ", build_xrel_store(doc, store, catalog, summary))

    print("\n=== native layouts (§2.3.2) ===")
    native = Store()
    print("node store:       ", build_node_store(doc, native, catalog))
    print("structural store: ", build_structural_store(doc, Store(), catalog))
    print("tag-partitioned:  ", build_tag_partitioned_store(doc, Store(), catalog))
    print("path-partitioned: ", build_path_partitioned_store(doc, Store(), catalog, summary))
    print("blob (content):   ", build_content_store(doc, store, catalog, ["book"]))

    print("\n=== indexes (§2.1.2) ===")
    idx = build_value_index(
        "booksByYearTitle", doc, store, catalog, "book", ["@year", "title"]
    )
    print(f"value index key: {idx.metadata['index_key']}")
    hit = index_lookup(
        idx, store, [NestedTuple({"e2.V": "1999", "e3.V": "Data on the Web"})]
    )
    print(f"idxLookup(1999, 'Data on the Web') → {len(hit)} book(s)  (QEP11)")

    fti = build_fulltext_index("titleFTI", doc, store, catalog, "book/title")
    hits = fulltext_lookup(fti, store, "Web")
    print(f"idxLookup(titleFTI, 'Web') → {len(hits)} title(s)  (QEP13)")

    print("\n=== the catalog: all the optimizer ever sees ===")
    for entry in catalog:
        marker = "INDEX" if entry.is_index else entry.kind.upper()
        print(f"  [{marker:7s}] {entry.name:22s} {entry.pattern.to_text()[:70]}")
    print(f"\n{len(catalog)} XAM descriptions; changing storage = editing this list.")


if __name__ == "__main__":
    main()
