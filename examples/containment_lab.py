"""Containment and minimization under summary constraints (Chapter 4).

Walks the thesis' reasoning on small fixtures: canonical models, decorated
union splitting (Fig. 4.9), optional edges, strong-edge constraints, union
rewritability (§5.3), and the Fig. 4.12 minimization effect.

Run:  python examples/containment_lab.py
"""

from repro.core import (
    canonical_model,
    is_contained,
    is_equivalent,
    minimize_by_contraction,
    minimize_under_summary,
    parse_pattern,
    pattern_from_path,
)
from repro.summary import PathSummary


def show(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    # the Fig. 4.7-style summary: b occurs on two paths, one nested
    summary = PathSummary.from_paths(["/a/b/c/b/e", "/a/b/e", "/a/d"])

    show("canonical models (§4.3)")
    pattern = parse_pattern("//a{//e[id:s]}")
    for tree in canonical_model(pattern, summary):
        chain = " / ".join(n.label for n in tree.root.iter_subtree() if n.label != "#document")
        print(f"  tree ({tree.size()} nodes): {chain}")

    show("summary constraints close syntactic gaps (§4.4)")
    via_b = pattern_from_path("//b//e")
    via_a = pattern_from_path("//a//e")
    print(f"  //b//e ⊑ //a//e : {is_contained(via_b, via_a, summary)}")
    print(f"  //a//e ⊑ //b//e : {is_contained(via_a, via_b, summary)}  "
          "(every e sits under a b here!)")

    show("unions cover what no member can (§5.3)")
    split = PathSummary.from_paths(["/a/b/c", "/a/d/c"])
    query = pattern_from_path("//a//c")
    left, right = pattern_from_path("//b/c"), pattern_from_path("//d/c")
    print(f"  q ⊑ //b/c          : {is_contained(query, left, split)}")
    print(f"  q ⊑ //d/c          : {is_contained(query, right, split)}")
    print(f"  q ⊑ //b/c ∪ //d/c  : {is_contained(query, [left, right], split)}")

    show("decorated patterns split across value ranges (Fig. 4.9)")
    deco = PathSummary.from_paths(["/a/b/e/f"])
    query = parse_pattern("//e{/f[id:s, val>0, val<8]}")
    low = parse_pattern("//e{/f[id:s, val>0, val<5]}")
    high = parse_pattern("//e{/f[id:s, val>=5, val<8]}")
    print(f"  q ⊑ low            : {is_contained(query, low, deco)}")
    print(f"  q ⊑ low ∪ high     : {is_contained(query, [low, high], deco)}")

    show("enhanced summaries add integrity constraints (§4.2.2)")
    strong = PathSummary.from_paths(["/a/b"])
    for node in strong.nodes():
        node.edge_annotation = "+"
    strict = parse_pattern("//a[id:s]{/b[id:s]}")
    optional = parse_pattern("//a[id:s]{/o:b[id:s]}")
    print(f"  strict ≡ optional under 'every a has a b': "
          f"{is_equivalent(strict, optional, strong)}")

    show("minimization: the summary beats contraction (Fig. 4.12)")
    funnel = PathSummary.from_paths(["/r/a/x/f/e", "/r/a/y/f/e", "/r/f/z"])
    target = parse_pattern("//a{//f{//e[id:s]}}")
    contraction = min(p.size() for p in minimize_by_contraction(target, funnel))
    full = minimize_under_summary(target, funnel)
    print(f"  pattern size 3 → contraction reaches {contraction} node(s)")
    print(f"  full minimization: {[p.to_text() for p in full]}")


if __name__ == "__main__":
    main()
