"""Index access paths: restricted XAMs and binding-driven lookups.

Reproduces the §2.1.2 story: the same selective query answered by

* QEP₁₀ — structural joins + value selections over path partitions;
* QEP₁₁ — one lookup in a composite-key value index, modeled as a XAM
  whose key attributes carry the ``R`` (required) marker;
* QEP₁₃ — a full-text lookup in an IndexFabric-style inverted file.

Run:  python examples/index_access_paths.py
"""

from repro.algebra import NestedTuple
from repro.engine import Store
from repro.indexes import (
    build_fulltext_index,
    build_value_index,
    contains_word,
    fulltext_lookup,
)
from repro.storage import Catalog, index_lookup
from repro.xmldata import load

BIB = """
<bib>
  <book year="1999"><title>Data on the Web</title><author>Abiteboul</author></book>
  <book year="1999"><title>Foundations of Databases</title><author>Vianu</author></book>
  <book year="2001"><title>The Syntactic Web</title><author>Tim</author></book>
</bib>
"""


def main() -> None:
    doc = load(BIB, "bib.xml")
    store, catalog = Store(), Catalog()

    # --- QEP11: composite-key value index ---------------------------------
    entry = build_value_index(
        "booksByYearTitle", doc, store, catalog, "book", ["@year", "title"]
    )
    print("index XAM:", entry.pattern.to_text())
    print("  (the R-marked attributes are the lookup key:",
          entry.metadata["index_key"], ")")

    binding = NestedTuple({"e2.V": "1999", "e3.V": "Data on the Web"})
    hits = index_lookup(entry, store, [binding])
    print(f"idxLookup(1999, 'Data on the Web') → {len(hits)} book")
    miss = index_lookup(entry, store, [NestedTuple({"e2.V": "2005", "e3.V": "?"})])
    print(f"idxLookup(2005, '?')               → {len(miss)} books")

    # restricted XAM semantics: a list of bindings, answered in order
    bindings = [
        NestedTuple({"e2.V": "1999", "e3.V": "Foundations of Databases"}),
        NestedTuple({"e2.V": "2001", "e3.V": "The Syntactic Web"}),
    ]
    both = index_lookup(entry, store, bindings)
    print(f"two bindings → {len(both)} books, in binding order")

    # --- QEP13 vs QEP12: full-text index vs contains() scan ---------------
    fti = build_fulltext_index("titleFTI", doc, store, catalog, "book/title")
    via_index = fulltext_lookup(fti, store, "Web")
    via_scan = [
        n
        for n in doc.elements()
        if n.label == "title" and contains_word(n.value, "Web")
    ]
    print(f"\nftcontains 'Web': index → {len(via_index)} titles, "
          f"scan → {len(via_scan)} titles (same answer, one probe vs full scan)")

    # --- the catalog view of it all ----------------------------------------
    print("\ncatalog (what the optimizer sees):")
    for item in catalog:
        print(f"  [{'index' if item.is_index else item.kind}] "
              f"{item.name}: {item.pattern.to_text()}")


if __name__ == "__main__":
    main()
