"""The Chapter 3 pipeline, end to end: XQuery text → maximal XAM
extraction → algebraic plan → answer.

For each query this prints the extracted access modules (note the edge
semantics: ``j`` for iteration bindings, ``s`` for where-clause filters,
``nj``/``no`` for returned content), the assembled logical plan, and the
result of running that plan over pattern matches — the same answer a
direct evaluator would give, but now every leaf is a XAM a storage module
could serve.

Run:  python examples/xquery_pipeline.py
"""

from repro.core import evaluate_pattern
from repro.xmldata import load
from repro.xquery import assemble_plan, bind_patterns, extract, parse_query

AUCTION = """
<site>
  <people>
    <person id="p0"><name>Ana</name><city>Paris</city></person>
    <person id="p1"><name>Bob</name><city>Oslo</city></person>
  </people>
  <open_auctions>
    <open_auction>
      <seller person="p0"/>
      <initial>12</initial>
      <bidder><personref person="p1"/><increase>3</increase></bidder>
      <bidder><personref person="p0"/><increase>5</increase></bidder>
    </open_auction>
    <open_auction>
      <seller person="p1"/>
      <initial>40</initial>
    </open_auction>
  </open_auctions>
</site>
"""

QUERIES = [
    (
        "simple projection",
        "//person/name/text()",
    ),
    (
        "filtered iteration (where → s edge)",
        'for $p in //person where $p/city = "Paris" return <who>{ $p/name/text() }</who>',
    ),
    (
        "nested blocks (one maximal pattern, optional return edges)",
        "for $a in //open_auction return <auction>{ $a/initial/text(), "
        "for $b in $a/bidder return <inc>{ $b/increase/text() }</inc> }</auction>",
    ),
    (
        "cross-pattern value join (two XAMs + glue)",
        "for $p in //person, $a in //open_auction "
        "where $a/seller/@person = $p/@id "
        "return <sale>{ $p/name/text() }</sale>",
    ),
]


def run(doc, text: str) -> list[str]:
    unit = extract(parse_query(text)).units[0]
    print("  patterns:")
    for pattern in unit.patterns:
        print(f"    {pattern.to_text()}")
    if unit.join_predicates:
        for p1, a1, op, p2, a2 in unit.join_predicates:
            print(f"  glue: pattern{p1}.{a1} {op} pattern{p2}.{a2}")
    plan = assemble_plan(unit)
    print("  plan:", plan.label())
    results = [evaluate_pattern(p, doc) for p in unit.patterns]
    out = plan.evaluate(bind_patterns(unit, results))
    if unit.template is not None:
        return [t["xml"] for t in out]
    values = []
    for t in out:
        for _p, path in unit.outputs:
            values.extend(
                v for v in t.iter_path(path)
                if v is not None and not isinstance(v, list)
            )
    return values


def main() -> None:
    doc = load(AUCTION, "auction.xml")
    for title, text in QUERIES:
        print(f"\n=== {title} ===")
        print(f"  query: {text}")
        for row in run(doc, text):
            print(f"  -> {row}")


if __name__ == "__main__":
    main()
