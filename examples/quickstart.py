"""Quickstart: physical data independence in five minutes.

Loads a bibliographic document, runs queries against the base store, then
installs materialized XAM views and reruns the *same* queries — the
answers are identical, only the access paths change.

Run:  python examples/quickstart.py
"""

from repro import Database

BIB = """
<library>
  <book year="1999">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <author>Suciu</author>
  </book>
  <book>
    <title>The Syntactic Web</title>
    <author>Tom Lerners-Bee</author>
  </book>
  <phdthesis year="2004">
    <title>The Web: next generation</title>
    <author>Jim Smith</author>
  </phdthesis>
</library>
"""


def main() -> None:
    db = Database.from_xml(BIB, "bib.xml")
    print(f"loaded {db!r}")
    print(f"summary paths: {len(db.summary)}")

    queries = [
        "//book/title/text()",
        'for $b in //book where $b/title = "Data on the Web" '
        "return <hit>{ $b/author/text() }</hit>",
        "for $b in //book return <entry>{ $b/title/text() }</entry>",
    ]

    print("\n— answering from the base store —")
    for query in queries:
        result = db.query(query)
        print(f"  {query[:60]}…" if len(query) > 60 else f"  {query}")
        for item in result.values or result.xml:
            print(f"    → {item}")

    # Install materialized views, described to the optimizer as XAMs.
    # The XAM text syntax: //book[id:s] stores structural IDs of books;
    # {/title[id:s, val]} adds their titles with IDs and values.
    db.add_view("v_titles", "//book[id:s]{/title[id:s, val]}")
    db.add_view("v_authors", "//book[id:s]{/author[id:s, val]}")
    print(f"\ninstalled views: {db.views()}")

    print("\n— same queries, now answered from the views —")
    for query in queries:
        result = db.query(query)
        label = f"via {result.used_views}" if result.used_views else "via base store"
        print(f"  [{label}]")
        for item in result.values or result.xml:
            print(f"    → {item}")

    # access-path report without execution
    print("\n— explain —")
    for resolution in db.explain("//book/title/text()"):
        print(f"  {resolution}")

    # dropping the view flips the access path back — no other change
    db.drop_view("v_titles")
    result = db.query("//book/title/text()")
    print(f"\nafter dropping v_titles: used_views={result.used_views}")
    print(f"answers unchanged: {result.values}")


if __name__ == "__main__":
    main()
