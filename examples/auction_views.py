"""The thesis' flagship rewriting scenario (Fig. 5.2) on auction data.

A query with nested FLWR blocks is answered from two materialized views:

* V1 — items with their listitems' *serialized content*, nested (the
  optional/nested tree-pattern features XPath views lack);
* V2 — item names with structural IDs.

The rewriter combines them with an equality join on the shared item node,
navigates *inside* V1's stored content to extract keywords, and regroups
— exactly the §5.2 toolbox.

Run:  python examples/auction_views.py
"""

from repro import Database
from repro.workloads import generate_xmark


def main() -> None:
    doc = generate_xmark(scale=1, seed=0)
    db = Database()
    db.add_document(doc)
    print(f"XMark-like document: {doc.count()} nodes, summary {len(db.summary)} paths")

    query = (
        "for $x in //item[mailbox] return "
        "<res>{ $x/name/text(), "
        "for $y in $x//listitem return <key>{ $y//keyword }</key> }</res>"
    )

    baseline = db.query(query, prefer_views=False)
    print(f"\nbase-store answer: {len(baseline.xml)} result elements")
    print(f"  first: {baseline.xml[0][:90]}…")

    # Fig. 5.2's V1 and V2 — V2 additionally checks the mailbox filter the
    # query needs (a view fitted to the workload; without it, items lacking
    # mailboxes could leak through and the rewriter correctly refuses)
    db.add_view("V1", "//item[id:s]{//no:listitem[id:s, cont]}")
    db.add_view("V2", "//item[id:s]{/s:mailbox, /name[id:s, val]}")

    rewritten = db.query(query)
    print(f"\nview-based answer: {len(rewritten.xml)} result elements")
    print(f"  access paths: {rewritten.used_views}")
    assert rewritten.xml == baseline.xml, "physical data independence violated!"
    print("  identical to the base-store answer ✓")

    # inspect the chosen plan
    rewritten_resolutions = [r for r in db.explain(query) if r.rewriting]
    if rewritten_resolutions:
        resolution = rewritten_resolutions[0]
        print("\nchosen rewriting plan:")
        for line in resolution.rewriting.plan.pretty().splitlines():
            print(f"  {line}")
        # the equivalent pattern(s) the §5.5 machinery derived for the plan
        print("\nS-equivalent pattern of the plan:")
        for pattern in resolution.rewriting.equivalent_patterns:
            print(f"  {pattern.to_text()}")
    else:
        print("\n(no rewriting available — fell back to the base store)")


if __name__ == "__main__":
    main()
