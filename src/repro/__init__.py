"""repro — XML Access Modules: physical data independence for XML databases.

A from-scratch reproduction of the XAM framework: a tree-pattern language
uniformly describing XML stores, indexes and materialized views; pattern
extraction from an XQuery subset; containment and rewriting under path
summary constraints; and the ULoad-style database facade tying them
together.

Quickstart::

    from repro import Database

    db = Database.from_xml(open("bib.xml").read())
    db.add_view("v_titles", "//book{/title[id:s, val]}")
    plan, results = db.query('for $b in //book return $b/title')

See README.md for the architecture tour and DESIGN.md for the paper →
module map.
"""

__version__ = "1.0.0"

from .core.uload import Database  # noqa: E402  (public facade)
from .core.service import QueryService  # noqa: E402  (concurrent facade)
from .core.coordinator import ShardedDatabase  # noqa: E402  (cluster mode)

__all__ = ["Database", "QueryService", "ShardedDatabase", "__version__"]
