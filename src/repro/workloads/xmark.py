"""Synthetic XMark-like auction documents.

The thesis evaluates on XMark [115] instances (11/111/233 MB).  We cannot
ship the original generator's output, so this module builds deterministic
synthetic documents following the XMark DTD's shape: a ``site`` with
regions/items (with marked-up descriptions: parlist/listitem/text/keyword/
bold/emph — the recursion §5.2 discusses), categories, people (profiles,
watches, addresses), and open/closed auctions with bidders and
annotations.

What matters for the reproduced experiments is the **path summary**: its
size, its recursion (parlist inside listitem), its breadth of formatting
tags, and its strong/one-to-one edge mix — containment and rewriting
complexity depend only on those, not on document bytes (DESIGN.md,
substitutions).  ``scale=1`` yields a small document whose summary has the
XMark character; larger scales add data volume while the summary stays
almost fixed — reproducing the Figure 4.13 observation.
"""

from __future__ import annotations

import random

from ..xmldata import Document, XMLNode, label_document
from ..xmldata.node import DOCUMENT

__all__ = ["generate_xmark", "REGIONS"]

REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")

_WORDS = (
    "auction antique rare vintage gold silver painting book chair lamp "
    "watch ring coin stamp map camera guitar violin carpet vase clock"
).split()

_CITIES = ("Paris", "Cairo", "Sydney", "Lima", "Oslo", "Kyoto", "Boston")
_COUNTRIES = ("France", "Egypt", "Australia", "Peru", "Norway", "Japan", "USA")
_NAMES = ("Alice", "Bob", "Carol", "Dan", "Erin", "Frank", "Grace", "Heidi")


def generate_xmark(scale: int = 1, seed: int = 0, name: str = "xmark.xml") -> Document:
    """A deterministic XMark-like document; ``scale`` multiplies entity
    counts (items per region, people, auctions)."""
    rng = random.Random(seed)
    site = XMLNode("element", "site")

    regions = site.add_element("regions")
    item_ids: list[str] = []
    for region in REGIONS:
        region_node = regions.add_element(region)
        for index in range(2 * scale):
            item_id = f"item{region[0]}{index}"
            item_ids.append(item_id)
            _add_item(region_node, item_id, rng)

    categories = site.add_element("categories")
    category_ids = []
    for index in range(max(2, scale)):
        category_id = f"category{index}"
        category_ids.append(category_id)
        category = categories.add_element("category")
        category.add_attribute("id", category_id)
        category.add_element("name").add_text(rng.choice(_WORDS).title())
        _add_rich_text(category.add_element("description"), rng, depth=1)

    catgraph = site.add_element("catgraph")
    for index in range(len(category_ids) - 1):
        edge = catgraph.add_element("edge")
        edge.add_attribute("from", category_ids[index])
        edge.add_attribute("to", category_ids[index + 1])

    people = site.add_element("people")
    person_ids = []
    for index in range(4 * scale):
        person_id = f"person{index}"
        person_ids.append(person_id)
        _add_person(people, person_id, rng, category_ids)

    open_auctions = site.add_element("open_auctions")
    for index in range(3 * scale):
        _add_open_auction(open_auctions, index, rng, item_ids, person_ids)

    closed_auctions = site.add_element("closed_auctions")
    for index in range(2 * scale):
        _add_closed_auction(closed_auctions, index, rng, item_ids, person_ids)

    document_node = XMLNode(DOCUMENT, "#document")
    document_node.append(site)
    return label_document(Document(document_node, name))


def _sentence(rng: random.Random, words: int = 6) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(words))


def _add_rich_text(parent: XMLNode, rng: random.Random, depth: int) -> None:
    """XMark-style marked-up description: text with bold/keyword/emph and
    the parlist/listitem recursion."""
    text = parent.add_element("text")
    text.add_text(_sentence(rng))
    text.add_element("bold").add_text(rng.choice(_WORDS))
    text.add_text(_sentence(rng, 3))
    text.add_element("keyword").add_text(rng.choice(_WORDS))
    text.add_element("emph").add_text(rng.choice(_WORDS))
    if depth > 0:
        parlist = parent.add_element("parlist")
        for _ in range(rng.randint(1, 2)):
            listitem = parlist.add_element("listitem")
            inner = listitem.add_element("text")
            inner.add_text(_sentence(rng, 4))
            inner.add_element("keyword").add_text(rng.choice(_WORDS))
            if depth > 1 and rng.random() < 0.5:
                _add_rich_text(listitem, rng, depth - 1)


def _add_item(region_node: XMLNode, item_id: str, rng: random.Random) -> None:
    item = region_node.add_element("item")
    item.add_attribute("id", item_id)
    item.add_attribute("featured", "yes" if rng.random() < 0.3 else "no")
    item.add_element("location").add_text(rng.choice(_COUNTRIES))
    item.add_element("quantity").add_text(str(rng.randint(1, 5)))
    item.add_element("name").add_text(f"{rng.choice(_WORDS)} {item_id}")
    payment = item.add_element("payment")
    payment.add_text("Creditcard")
    description = item.add_element("description")
    _add_rich_text(description, rng, depth=2)
    item.add_element("shipping").add_text("Will ship internationally")
    if rng.random() < 0.8:
        mailbox = item.add_element("mailbox")
        for _ in range(rng.randint(1, 2)):
            mail = mailbox.add_element("mail")
            mail.add_element("from").add_text(rng.choice(_NAMES))
            mail.add_element("to").add_text(rng.choice(_NAMES))
            mail.add_element("date").add_text(f"0{rng.randint(1,9)}/2005")
            mail.add_element("text").add_text(_sentence(rng))


def _add_person(
    people: XMLNode, person_id: str, rng: random.Random, category_ids: list[str]
) -> None:
    person = people.add_element("person")
    person.add_attribute("id", person_id)
    person.add_element("name").add_text(rng.choice(_NAMES))
    person.add_element("emailaddress").add_text(f"mailto:{person_id}@example.com")
    if rng.random() < 0.6:
        person.add_element("phone").add_text(f"+33 {rng.randint(100, 999)}")
    if rng.random() < 0.7:
        address = person.add_element("address")
        address.add_element("street").add_text(f"{rng.randint(1, 99)} Main St")
        address.add_element("city").add_text(rng.choice(_CITIES))
        address.add_element("country").add_text(rng.choice(_COUNTRIES))
        address.add_element("zipcode").add_text(str(rng.randint(10000, 99999)))
    if rng.random() < 0.4:
        person.add_element("homepage").add_text(f"http://{person_id}.example.com")
    if rng.random() < 0.5:
        person.add_element("creditcard").add_text(
            " ".join(str(rng.randint(1000, 9999)) for _ in range(4))
        )
    if rng.random() < 0.8:
        profile = person.add_element("profile")
        profile.add_attribute("income", str(rng.randint(20000, 90000)))
        for _ in range(rng.randint(0, 2)):
            interest = profile.add_element("interest")
            interest.add_attribute("category", rng.choice(category_ids))
        if rng.random() < 0.5:
            profile.add_element("education").add_text("Graduate School")
        if rng.random() < 0.5:
            profile.add_element("gender").add_text(rng.choice(("male", "female")))
        profile.add_element("business").add_text("No")
        if rng.random() < 0.5:
            profile.add_element("age").add_text(str(rng.randint(18, 80)))
    watches = person.add_element("watches")
    for _ in range(rng.randint(0, 2)):
        watch = watches.add_element("watch")
        watch.add_attribute("open_auction", f"auction{rng.randint(0, 5)}")


def _add_open_auction(
    open_auctions: XMLNode,
    index: int,
    rng: random.Random,
    item_ids: list[str],
    person_ids: list[str],
) -> None:
    auction = open_auctions.add_element("open_auction")
    auction.add_attribute("id", f"auction{index}")
    auction.add_element("initial").add_text(f"{rng.uniform(1, 100):.2f}")
    if rng.random() < 0.5:
        auction.add_element("reserve").add_text(f"{rng.uniform(100, 200):.2f}")
    for _ in range(rng.randint(0, 3)):
        bidder = auction.add_element("bidder")
        bidder.add_element("date").add_text(f"0{rng.randint(1,9)}/2005")
        bidder.add_element("time").add_text(f"{rng.randint(0,23)}:{rng.randint(10,59)}")
        personref = bidder.add_element("personref")
        personref.add_attribute("person", rng.choice(person_ids))
        bidder.add_element("increase").add_text(f"{rng.uniform(1, 20):.2f}")
    auction.add_element("current").add_text(f"{rng.uniform(1, 300):.2f}")
    if rng.random() < 0.3:
        auction.add_element("privacy").add_text("Yes")
    itemref = auction.add_element("itemref")
    itemref.add_attribute("item", rng.choice(item_ids))
    seller = auction.add_element("seller")
    seller.add_attribute("person", rng.choice(person_ids))
    annotation = auction.add_element("annotation")
    author = annotation.add_element("author")
    author.add_attribute("person", rng.choice(person_ids))
    _add_rich_text(annotation.add_element("description"), rng, depth=1)
    annotation.add_element("happiness").add_text(str(rng.randint(1, 10)))
    auction.add_element("quantity").add_text(str(rng.randint(1, 3)))
    auction.add_element("type").add_text("Regular")
    interval = auction.add_element("interval")
    interval.add_element("start").add_text("01/2005")
    interval.add_element("end").add_text("12/2005")


def _add_closed_auction(
    closed_auctions: XMLNode,
    index: int,
    rng: random.Random,
    item_ids: list[str],
    person_ids: list[str],
) -> None:
    auction = closed_auctions.add_element("closed_auction")
    seller = auction.add_element("seller")
    seller.add_attribute("person", rng.choice(person_ids))
    buyer = auction.add_element("buyer")
    buyer.add_attribute("person", rng.choice(person_ids))
    itemref = auction.add_element("itemref")
    itemref.add_attribute("item", rng.choice(item_ids))
    auction.add_element("price").add_text(f"{rng.uniform(1, 500):.2f}")
    auction.add_element("date").add_text(f"0{rng.randint(1,9)}/2005")
    auction.add_element("quantity").add_text(str(rng.randint(1, 3)))
    auction.add_element("type").add_text("Regular")
    annotation = auction.add_element("annotation")
    author = annotation.add_element("author")
    author.add_attribute("person", rng.choice(person_ids))
    _add_rich_text(annotation.add_element("description"), rng, depth=1)
