"""Synthetic DBLP-like bibliographic documents.

DBLP is flat and wide: a huge root sequence of publication records, each a
shallow tuple of author/title/year/venue fields.  Its summary is tiny
(43–47 nodes in Figure 4.13) with many one-to-one edges — which is why the
thesis' DBLP containment runs ~4× faster than XMark's: fewer embedding
candidates, smaller canonical models, and fewer formatting tags for the
random pattern generator to pick up.
"""

from __future__ import annotations

import random

from ..xmldata import Document, XMLNode, label_document
from ..xmldata.node import DOCUMENT

__all__ = ["DBLP_QUERIES", "generate_dblp"]

#: query id → Q-subset text over the generated document: the flat-and-wide
#: shape means these are scan/filter heavy with shallow structural joins —
#: the complement of XMark's deep-path workload
DBLP_QUERIES: dict[str, str] = {
    # every article title (pure scan + projection)
    "d01": "//dblp/article/title/text()",
    # articles in one journal (value filter)
    "d02": 'for $a in //dblp/article[journal = "TODS"] return $a/title/text()',
    # conference papers that cross-reference proceedings (existential branch)
    "d03": "for $p in //dblp/inproceedings[crossref] return <paper>{ $p/booktitle/text() }</paper>",
    # thesis schools (rare record type)
    "d04": "//dblp/phdthesis/school/text()",
    # proceedings metadata (multi-field construction)
    "d05": "for $p in //dblp/proceedings return <proc>{ $p/title/text(), $p/isbn/text() }</proc>",
    # articles published the same year as a proceedings volume (value join)
    "d06": "for $a in //dblp/article, $p in //dblp/proceedings "
           "where $a/year = $p/year return <pair>{ $a/title/text() }</pair>",
    # homepage URLs (www records)
    "d07": "for $w in //dblp/www return $w/url/text()",
    # every author anywhere (descendant axis over all record types)
    "d08": "for $a in //dblp//author return <a>{ $a/text() }</a>",
}

_AUTHORS = (
    "Serge Abiteboul", "Dan Suciu", "Ioana Manolescu", "Andrei Arion",
    "Victor Vianu", "Peter Buneman", "Mary Fernandez", "Jerome Simeon",
)
_VENUES = ("SIGMOD", "VLDB", "ICDE", "EDBT", "PODS")
_JOURNALS = ("TODS", "VLDB Journal", "SIGMOD Record")
_TITLE_WORDS = (
    "XML query optimization views rewriting tree patterns summaries "
    "containment algebra storage indexing fragments paths semantics"
).split()


def generate_dblp(scale: int = 1, seed: int = 1, name: str = "dblp.xml") -> Document:
    """A deterministic DBLP-like document with ``scale × 40`` records
    spread over the classic record types."""
    rng = random.Random(seed)
    dblp = XMLNode("element", "dblp")
    for index in range(scale * 40):
        kind = rng.random()
        if kind < 0.45:
            _add_article(dblp, rng, index)
        elif kind < 0.85:
            _add_inproceedings(dblp, rng, index)
        elif kind < 0.93:
            _add_proceedings(dblp, rng, index)
        elif kind < 0.98:
            _add_phdthesis(dblp, rng, index)
        else:
            _add_www(dblp, rng, index)
    document_node = XMLNode(DOCUMENT, "#document")
    document_node.append(dblp)
    return label_document(Document(document_node, name))


def _title(rng: random.Random) -> str:
    return " ".join(rng.choice(_TITLE_WORDS) for _ in range(5)).title()


def _record(parent: XMLNode, tag: str, rng: random.Random, index: int) -> XMLNode:
    record = parent.add_element(tag)
    record.add_attribute("key", f"{tag}/{index}")
    record.add_attribute("mdate", f"200{rng.randint(0, 5)}-0{rng.randint(1, 9)}-15")
    for _ in range(rng.randint(1, 3)):
        record.add_element("author").add_text(rng.choice(_AUTHORS))
    record.add_element("title").add_text(_title(rng))
    record.add_element("year").add_text(str(rng.randint(1995, 2005)))
    return record


def _add_article(parent: XMLNode, rng: random.Random, index: int) -> None:
    record = _record(parent, "article", rng, index)
    record.add_element("journal").add_text(rng.choice(_JOURNALS))
    record.add_element("volume").add_text(str(rng.randint(1, 30)))
    if rng.random() < 0.7:
        record.add_element("number").add_text(str(rng.randint(1, 4)))
    record.add_element("pages").add_text(f"{rng.randint(1, 400)}-{rng.randint(401, 500)}")
    if rng.random() < 0.5:
        record.add_element("ee").add_text(f"db/journals/a{index}.html")
    if rng.random() < 0.3:
        record.add_element("url").add_text(f"http://dblp.example/a{index}")
    for cited in range(rng.randint(0, 2)):
        record.add_element("cite").add_text(f"article/{max(0, index - cited - 1)}")


def _add_inproceedings(parent: XMLNode, rng: random.Random, index: int) -> None:
    record = _record(parent, "inproceedings", rng, index)
    record.add_element("booktitle").add_text(rng.choice(_VENUES))
    record.add_element("pages").add_text(f"{rng.randint(1, 400)}-{rng.randint(401, 500)}")
    if rng.random() < 0.6:
        record.add_element("ee").add_text(f"db/conf/p{index}.html")
    if rng.random() < 0.4:
        record.add_element("crossref").add_text(f"proceedings/{index % 7}")


def _add_proceedings(parent: XMLNode, rng: random.Random, index: int) -> None:
    record = parent.add_element("proceedings")
    record.add_attribute("key", f"proceedings/{index}")
    record.add_element("editor").add_text(rng.choice(_AUTHORS))
    record.add_element("title").add_text(f"Proceedings of {rng.choice(_VENUES)}")
    record.add_element("year").add_text(str(rng.randint(1995, 2005)))
    record.add_element("publisher").add_text("ACM")
    record.add_element("isbn").add_text(f"1-58113-{rng.randint(100, 999)}-7")


def _add_phdthesis(parent: XMLNode, rng: random.Random, index: int) -> None:
    record = parent.add_element("phdthesis")
    record.add_attribute("key", f"phd/{index}")
    record.add_element("author").add_text(rng.choice(_AUTHORS))
    record.add_element("title").add_text(_title(rng))
    record.add_element("year").add_text(str(rng.randint(1995, 2007)))
    record.add_element("school").add_text("Universite Paris Sud")


def _add_www(parent: XMLNode, rng: random.Random, index: int) -> None:
    record = parent.add_element("www")
    record.add_attribute("key", f"www/{index}")
    record.add_element("author").add_text(rng.choice(_AUTHORS))
    record.add_element("title").add_text("Home Page")
    record.add_element("url").add_text(f"http://example.org/{index}")
