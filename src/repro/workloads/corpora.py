"""Synthetic analogs of the remaining Figure 4.13 corpora.

Shakespeare (per-play drama markup), NASA (astronomical dataset records)
and SwissProt (protein entries) differ from XMark/DBLP in summary size and
edge-annotation mix; the table experiment (E1) only needs documents whose
summaries land in the right regime — small and stable as data grows.
"""

from __future__ import annotations

import random

from ..xmldata import Document, XMLNode, label_document
from ..xmldata.node import DOCUMENT

__all__ = ["generate_shakespeare", "generate_nasa", "generate_swissprot", "generate_bib"]

_LINE_WORDS = (
    "thou art more lovely temperate rough winds shake darling buds may "
    "summer lease hath all too short a date"
).split()


def _sentence(rng: random.Random, count: int = 6) -> str:
    return " ".join(rng.choice(_LINE_WORDS) for _ in range(count))


def generate_shakespeare(
    scale: int = 1, seed: int = 2, name: str = "shakespeare.xml"
) -> Document:
    """A PLAY document in the Bosak markup (ACT/SCENE/SPEECH/LINE…)."""
    rng = random.Random(seed)
    play = XMLNode("element", "PLAY")
    play.add_element("TITLE").add_text("The Tragedy of Synthetic Data")
    front = play.add_element("FM")
    for _ in range(3):
        front.add_element("P").add_text(_sentence(rng))
    personae = play.add_element("PERSONAE")
    personae.add_element("TITLE").add_text("Dramatis Personae")
    speakers = []
    for index in range(6):
        speaker = f"SPEAKER{index}"
        speakers.append(speaker)
        personae.add_element("PERSONA").add_text(speaker)
    group = personae.add_element("PGROUP")
    group.add_element("PERSONA").add_text("ATTENDANT")
    group.add_element("GRPDESCR").add_text("attendants and messengers")
    for act_index in range(2 * scale):
        act = play.add_element("ACT")
        act.add_element("TITLE").add_text(f"ACT {act_index + 1}")
        for scene_index in range(3):
            scene = act.add_element("SCENE")
            scene.add_element("TITLE").add_text(f"SCENE {scene_index + 1}")
            scene.add_element("STAGEDIR").add_text("Enter " + rng.choice(speakers))
            for _ in range(4):
                speech = scene.add_element("SPEECH")
                speech.add_element("SPEAKER").add_text(rng.choice(speakers))
                for _ in range(rng.randint(1, 4)):
                    speech.add_element("LINE").add_text(_sentence(rng, 8))
                if rng.random() < 0.2:
                    speech.add_element("STAGEDIR").add_text("Aside")
    document_node = XMLNode(DOCUMENT, "#document")
    document_node.append(play)
    return label_document(Document(document_node, name))


def generate_nasa(scale: int = 1, seed: int = 3, name: str = "nasa.xml") -> Document:
    """Astronomical ``datasets`` records (titles, references, keywords…)."""
    rng = random.Random(seed)
    datasets = XMLNode("element", "datasets")
    for index in range(8 * scale):
        dataset = datasets.add_element("dataset")
        dataset.add_attribute("subject", "astronomy")
        dataset.add_element("title").add_text(f"Survey {index}")
        if rng.random() < 0.5:
            dataset.add_element("altname").add_text(f"SRV-{index}")
        reference = dataset.add_element("reference")
        source = reference.add_element("source")
        other = source.add_element("other")
        other.add_element("title").add_text("Astronomical Journal")
        author = other.add_element("author")
        author.add_element("lastName").add_text("Hale")
        author.add_element("firstName").add_text("George")
        other.add_element("name").add_text("AJ")
        other.add_element("publisher").add_text("AAS")
        if rng.random() < 0.6:
            other.add_element("city").add_text("Washington")
        date = other.add_element("date")
        date.add_element("year").add_text(str(rng.randint(1980, 2002)))
        keywords = dataset.add_element("keywords")
        for _ in range(rng.randint(1, 3)):
            keywords.add_element("keyword").add_text(rng.choice(_LINE_WORDS))
        descriptions = dataset.add_element("descriptions")
        description = descriptions.add_element("description")
        description.add_element("para").add_text(_sentence(rng, 12))
        if rng.random() < 0.4:
            details = descriptions.add_element("details")
            details.add_text(_sentence(rng))
        dataset.add_element("identifier").add_text(f"ID-{index}")
    document_node = XMLNode(DOCUMENT, "#document")
    document_node.append(datasets)
    return label_document(Document(document_node, name))


def generate_swissprot(scale: int = 1, seed: int = 4, name: str = "swissprot.xml") -> Document:
    """Protein ``Entry`` records with references and feature tables."""
    rng = random.Random(seed)
    root = XMLNode("element", "root")
    feature_kinds = ("DOMAIN", "CHAIN", "BINDING", "CONFLICT", "MUTAGEN")
    for index in range(10 * scale):
        entry = root.add_element("Entry")
        entry.add_attribute("id", f"P{10000 + index}")
        entry.add_attribute("seqlen", str(rng.randint(80, 900)))
        entry.add_element("AC").add_text(f"Q{20000 + index}")
        entry.add_element("Mod").add_text("01-JAN-2002")
        entry.add_element("Descr").add_text("Synthetic protein " + str(index))
        entry.add_element("Species").add_text("Homo sapiens")
        entry.add_element("Org").add_text("Eukaryota")
        for _ in range(rng.randint(1, 2)):
            entry.add_element("OC").add_text("Metazoa")
        for ref_index in range(rng.randint(1, 3)):
            ref = entry.add_element("Ref")
            ref.add_attribute("num", str(ref_index + 1))
            for _ in range(rng.randint(1, 2)):
                ref.add_element("Author").add_text("Doe J.")
            ref.add_element("Cite").add_text("J. Biol. Chem. 270:1-9(1995)")
            if rng.random() < 0.5:
                ref.add_element("MedlineID").add_text(str(rng.randint(9_000_000, 9_999_999)))
            comment = ref.add_element("Comment")
            comment.add_text("SEQUENCE FROM N.A.")
        for _ in range(rng.randint(1, 3)):
            entry.add_element("Keyword").add_text(rng.choice(_LINE_WORDS).title())
        features = entry.add_element("Features")
        for _ in range(rng.randint(1, 4)):
            kind = rng.choice(feature_kinds)
            feature = features.add_element(kind)
            feature.add_element("from").add_text(str(rng.randint(1, 100)))
            feature.add_element("to").add_text(str(rng.randint(101, 200)))
            if rng.random() < 0.5:
                feature.add_element("Descr").add_text(_sentence(rng, 3))
    document_node = XMLNode(DOCUMENT, "#document")
    document_node.append(root)
    return label_document(Document(document_node, name))


def generate_bib(seed: int = 5, name: str = "bib.xml") -> Document:
    """The thesis' running bibliographic example (Figure 2.5 flavor)."""
    rng = random.Random(seed)
    del rng  # fixed content, kept for signature symmetry
    library = XMLNode("element", "library")
    book1 = library.add_element("book")
    book1.add_attribute("year", "1999")
    book1.add_element("title").add_text("Data on the Web")
    book1.add_element("author").add_text("Abiteboul")
    book1.add_element("author").add_text("Suciu")
    book2 = library.add_element("book")
    book2.add_element("title").add_text("The Syntactic Web")
    book2.add_element("author").add_text("Tom Lerners-Bee")
    thesis = library.add_element("phdthesis")
    thesis.add_attribute("year", "2004")
    thesis.add_element("title").add_text("The Web: next generation")
    thesis.add_element("author").add_text("Jim Smith")
    document_node = XMLNode(DOCUMENT, "#document")
    document_node.append(library)
    return label_document(Document(document_node, name))
