"""The 20 XMark benchmark queries, restated in the supported subset Q.

The Figure 4.14 experiment extracts the tree pattern of each XMark query
and tests its self-containment under the XMark summary.  XMark uses
XQuery features outside the thesis' subset (aggregation, sorting, user
functions, full-text); following the thesis' own usage — what matters is
each query's *pattern* — we restate every query so that its navigational
skeleton (the tree pattern) is preserved while unsupported post-processing
is dropped.  Q7 deliberately combines variables with no structural
relationship between them; its canonical model is the outlier the thesis
calls out (204 trees on their summary).
"""

from __future__ import annotations

from ..core.xam import Pattern
from ..summary.path_summary import PathSummary
from ..xquery.extract import extract
from ..xquery.parser import parse_query

__all__ = ["XMARK_QUERIES", "xmark_query_patterns"]

#: query id → Q-subset text (navigational skeleton of the XMark query)
XMARK_QUERIES: dict[str, str] = {
    # Q1: the person with a given id
    "q01": 'for $b in //people/person[@id = "person0"] return $b/name/text()',
    # Q2: bidder increases of open auctions
    "q02": "for $b in //open_auctions/open_auction return <increase>{ $b/bidder/increase/text() }</increase>",
    # Q3: auctions with bidders (ordered-bid arithmetic dropped)
    "q03": "for $b in //open_auctions/open_auction[bidder/increase] return <auction>{ $b/reserve/text() }</auction>",
    # Q4: bidder history with person references
    "q04": "for $b in //open_auctions/open_auction[bidder/personref] return <history>{ $b/initial/text() }</history>",
    # Q5: prices of closed auctions (count dropped)
    "q05": "//closed_auctions/closed_auction/price/text()",
    # Q6: items per region (count dropped)
    "q06": "//site/regions//item",
    # Q7: unrelated pieces of site content — variables with no structural
    # relationship, the canonical-model outlier
    "q07": "for $p in //site//description, $q in //site//mail, $r in //site//emailaddress return <pieces>{ $p/text }</pieces>",
    # Q8: buyers per person (join on person id)
    "q08": 'for $p in //people/person, $t in //closed_auctions/closed_auction where $t/buyer = $p/name return <item>{ $p/name/text() }</item>',
    # Q9: sellers of europe items (double join collapsed to the skeleton)
    "q09": 'for $p in //people/person, $a in //closed_auctions/closed_auction where $a/seller = $p/name return <person>{ $p/name/text() }</person>',
    # Q10: person profiles grouped by interest
    "q10": "for $p in //people/person[profile/interest] return <categories>{ $p/profile/education/text(), $p/profile/age/text() }</categories>",
    # Q11: people vs open auctions by income vs initial (value join)
    "q11": "for $p in //people/person, $o in //open_auctions/open_auction where $o/initial = $p/profile/age return <items>{ $p/name/text() }</items>",
    # Q12: same shape, restricted incomes
    "q12": 'for $p in //people/person[profile/age = 50], $o in //open_auctions/open_auction where $o/initial = $p/profile/age return <items>{ $p/name/text() }</items>',
    # Q13: names and descriptions of australian items
    "q13": "for $i in //regions/australia/item return <item>{ $i/name/text(), $i/description }</item>",
    # Q14: items whose name matches a constant (ftcontains dropped)
    "q14": 'for $i in //site//item[name = "gold itema0"] return $i/name/text()',
    # Q15: a very long path
    "q15": "//closed_auctions/closed_auction/annotation/description/parlist/listitem/text/keyword/text()",
    # Q16: long path with an existential branch
    "q16": "for $a in //closed_auctions/closed_auction[annotation/description/parlist/listitem] return <person>{ $a/seller }</person>",
    # Q17: persons with homepages (negation dropped)
    "q17": "for $p in //people/person[homepage] return <person>{ $p/name/text() }</person>",
    # Q18: open auction reserves
    "q18": "//open_auctions/open_auction/reserve/text()",
    # Q19: items with name and location
    "q19": "for $b in //site/regions//item return <item>{ $b/name/text(), $b/location/text() }</item>",
    # Q20: profiles by income bracket
    "q20": "for $p in //people/person/profile[@income > 50000] return <rich>{ $p/business/text() }</rich>",
}


def xmark_query_patterns(
    queries: dict[str, str] | None = None,
) -> dict[str, list[Pattern]]:
    """Extract the (maximal) tree patterns of every XMark query."""
    queries = queries or XMARK_QUERIES
    patterns: dict[str, list[Pattern]] = {}
    for query_id, text in queries.items():
        extraction = extract(parse_query(text))
        patterns[query_id] = [
            pattern for unit in extraction.units for pattern in unit.patterns
        ]
    return patterns


def satisfiable_query_patterns(summary: PathSummary) -> dict[str, list[Pattern]]:
    """Query patterns filtered to those satisfiable under the summary
    (benchmarks report canonical-model sizes only for those)."""
    from ..core.canonical import is_satisfiable

    out: dict[str, list[Pattern]] = {}
    for query_id, patterns in xmark_query_patterns().items():
        out[query_id] = [p for p in patterns if is_satisfiable(p, summary)]
    return out
