"""Workload generators: synthetic corpora, random patterns, XMark queries."""

from .xmark import generate_xmark
from .dblp import DBLP_QUERIES, generate_dblp
from .corpora import (
    generate_bib,
    generate_nasa,
    generate_shakespeare,
    generate_swissprot,
)
from .random_patterns import (
    GeneratorConfig,
    generate_pattern,
    generate_patterns,
    pattern_to_query,
)
from .xmark_queries import XMARK_QUERIES, xmark_query_patterns

__all__ = [
    "generate_xmark",
    "generate_dblp",
    "DBLP_QUERIES",
    "generate_bib",
    "generate_nasa",
    "generate_shakespeare",
    "generate_swissprot",
    "GeneratorConfig",
    "generate_pattern",
    "generate_patterns",
    "pattern_to_query",
    "XMARK_QUERIES",
    "xmark_query_patterns",
]
