"""A small, self-contained XML parser.

The reproduction implements every substrate from scratch, including document
parsing.  The parser covers the XML subset the thesis workloads need:

* elements with attributes (single or double quoted),
* character data with the five predefined entities plus numeric references,
* comments ``<!-- ... -->``, processing instructions ``<? ... ?>`` and a
  leading ``<!DOCTYPE ...>`` declaration (all skipped),
* CDATA sections.

Namespaces are treated literally (prefixes stay part of the label), which is
what the thesis data model does.  Parse errors raise :class:`XMLSyntaxError`
with a position.
"""

from __future__ import annotations

from .node import DOCUMENT, Document, XMLNode

__all__ = ["parse_document", "parse_fragment", "XMLSyntaxError"]

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}


class XMLSyntaxError(ValueError):
    """Raised on malformed input, with the offending character offset."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at offset {position})")
        self.position = position


def parse_document(source: str, name: str = "doc.xml") -> Document:
    """Parse a complete document and return a :class:`Document`."""
    parser = _Parser(source)
    top = parser.parse()
    doc_node = XMLNode(DOCUMENT, "#document")
    doc_node.append(top)
    return Document(doc_node, name)


def parse_fragment(source: str) -> XMLNode:
    """Parse a single element and return it unattached to any document."""
    return _Parser(source).parse()


class _Parser:
    """Recursive-descent parser over a source string."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.length = len(source)

    # -- public entry point -------------------------------------------------

    def parse(self) -> XMLNode:
        self._skip_prolog()
        element = self._parse_element()
        self._skip_misc()
        if self.pos != self.length:
            raise XMLSyntaxError("trailing content after top element", self.pos)
        return element

    # -- lexical helpers ------------------------------------------------------

    def _error(self, message: str) -> XMLSyntaxError:
        return XMLSyntaxError(message, self.pos)

    def _skip_whitespace(self) -> None:
        while self.pos < self.length and self.source[self.pos] in " \t\r\n":
            self.pos += 1

    def _expect(self, literal: str) -> None:
        if not self.source.startswith(literal, self.pos):
            raise self._error(f"expected {literal!r}")
        self.pos += len(literal)

    def _skip_until(self, terminator: str) -> None:
        end = self.source.find(terminator, self.pos)
        if end < 0:
            raise self._error(f"unterminated construct, missing {terminator!r}")
        self.pos = end + len(terminator)

    def _skip_prolog(self) -> None:
        """Skip the XML declaration, DOCTYPE, comments and PIs."""
        while True:
            self._skip_whitespace()
            if self.source.startswith("<?", self.pos):
                self._skip_until("?>")
            elif self.source.startswith("<!--", self.pos):
                self._skip_until("-->")
            elif self.source.startswith("<!DOCTYPE", self.pos):
                self._skip_doctype()
            else:
                return

    def _skip_doctype(self) -> None:
        depth = 0
        while self.pos < self.length:
            ch = self.source[self.pos]
            self.pos += 1
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth <= 0:
                return
        raise self._error("unterminated DOCTYPE")

    def _skip_misc(self) -> None:
        while True:
            self._skip_whitespace()
            if self.source.startswith("<!--", self.pos):
                self._skip_until("-->")
            elif self.source.startswith("<?", self.pos):
                self._skip_until("?>")
            else:
                return

    def _read_name(self) -> str:
        start = self.pos
        while self.pos < self.length and self.source[self.pos] not in " \t\r\n/>=":
            self.pos += 1
        if self.pos == start:
            raise self._error("expected a name")
        return self.source[start : self.pos]

    def _decode_entities(self, data: str) -> str:
        if "&" not in data:
            return data
        parts: list[str] = []
        i = 0
        while i < len(data):
            ch = data[i]
            if ch != "&":
                parts.append(ch)
                i += 1
                continue
            end = data.find(";", i)
            if end < 0:
                raise self._error("unterminated entity reference")
            name = data[i + 1 : end]
            if name.startswith("#x") or name.startswith("#X"):
                parts.append(chr(int(name[2:], 16)))
            elif name.startswith("#"):
                parts.append(chr(int(name[1:])))
            elif name in _ENTITIES:
                parts.append(_ENTITIES[name])
            else:
                raise self._error(f"unknown entity &{name};")
            i = end + 1
        return "".join(parts)

    # -- grammar --------------------------------------------------------------

    def _parse_element(self) -> XMLNode:
        self._expect("<")
        tag = self._read_name()
        element = XMLNode("element", tag)
        self._parse_attributes(element)
        if self.source.startswith("/>", self.pos):
            self.pos += 2
            return element
        self._expect(">")
        self._parse_content(element)
        self._expect("</")
        closing = self._read_name()
        if closing != tag:
            raise self._error(f"mismatched end tag </{closing}>, expected </{tag}>")
        self._skip_whitespace()
        self._expect(">")
        return element

    def _parse_attributes(self, element: XMLNode) -> None:
        seen: set[str] = set()
        while True:
            self._skip_whitespace()
            if self.pos >= self.length:
                raise self._error("unterminated start tag")
            if self.source[self.pos] in "/>":
                return
            name = self._read_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            quote = self.source[self.pos : self.pos + 1]
            if quote not in ('"', "'"):
                raise self._error("attribute value must be quoted")
            self.pos += 1
            end = self.source.find(quote, self.pos)
            if end < 0:
                raise self._error("unterminated attribute value")
            raw = self.source[self.pos : end]
            self.pos = end + 1
            if name in seen:
                raise self._error(f"duplicate attribute {name!r}")
            seen.add(name)
            element.add_attribute(name, self._decode_entities(raw))

    def _parse_content(self, element: XMLNode) -> None:
        text_start = self.pos
        while self.pos < self.length:
            ch = self.source[self.pos]
            if ch != "<":
                self.pos += 1
                continue
            self._flush_text(element, text_start)
            if self.source.startswith("</", self.pos):
                return
            if self.source.startswith("<!--", self.pos):
                self._skip_until("-->")
            elif self.source.startswith("<![CDATA[", self.pos):
                self.pos += len("<![CDATA[")
                end = self.source.find("]]>", self.pos)
                if end < 0:
                    raise self._error("unterminated CDATA section")
                element.add_text(self.source[self.pos : end])
                self.pos = end + 3
            elif self.source.startswith("<?", self.pos):
                self._skip_until("?>")
            else:
                element.append(self._parse_element())
            text_start = self.pos
        raise self._error(f"unterminated element <{element.label}>")

    def _flush_text(self, element: XMLNode, start: int) -> None:
        raw = self.source[start : self.pos]
        if raw and raw.strip():
            element.add_text(self._decode_entities(raw))
