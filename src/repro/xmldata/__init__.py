"""XML data model substrate: tree model, parser, serializer, node IDs."""

from .node import ATTRIBUTE, DOCUMENT, ELEMENT, TEXT, Document, XMLNode
from .parser import XMLSyntaxError, parse_document, parse_fragment
from .serialize import serialize
from .ids import (
    ID_KINDS,
    ORDERED,
    PARENT_DERIVING,
    SIMPLE,
    STRUCTURAL,
    DeweyID,
    NodeID,
    StructuralID,
    id_of,
    is_ancestor_id,
    is_parent_id,
    kind_supports,
    label_document,
    prepost_plane,
    strongest_common_kind,
)

__all__ = [
    "ATTRIBUTE",
    "DOCUMENT",
    "ELEMENT",
    "TEXT",
    "Document",
    "XMLNode",
    "XMLSyntaxError",
    "parse_document",
    "parse_fragment",
    "serialize",
    "ID_KINDS",
    "SIMPLE",
    "ORDERED",
    "STRUCTURAL",
    "PARENT_DERIVING",
    "DeweyID",
    "NodeID",
    "StructuralID",
    "id_of",
    "is_ancestor_id",
    "is_parent_id",
    "kind_supports",
    "label_document",
    "prepost_plane",
    "strongest_common_kind",
]


def load(source: str, name: str = "doc.xml") -> Document:
    """Parse ``source`` and assign identifier labels — the common entry
    point (equivalent to ``label_document(parse_document(source))``)."""
    return label_document(parse_document(source, name))
