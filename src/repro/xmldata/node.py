"""Tree data model for XML documents (thesis Section 1.1).

A document is a tree ``(N, E)`` where ``N = N_d ∪ N_e ∪ N_a ∪ N_t``:
exactly one *document* node (the tree root, parent of the top element),
element nodes, attribute nodes, and text nodes.  Every node has

* an identity (its position in the tree, materialized by the identifier
  schemes of :mod:`repro.xmldata.ids`),
* a label (element tag, ``@name`` for attributes, ``#text`` for text nodes),
* a value — for an element, the concatenation of its text descendants in
  document order (the ``text()`` semantics of Section 1.1); for an attribute
  or text node, the literal string,
* a content — the serialized subtree rooted at the node.

The model is deliberately independent of any identifier scheme: schemes are
assigned by :func:`repro.xmldata.ids.label_document` after parsing.
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = ["XMLNode", "Document", "DOCUMENT", "ELEMENT", "ATTRIBUTE", "TEXT"]

DOCUMENT = "document"
ELEMENT = "element"
ATTRIBUTE = "attribute"
TEXT = "text"

_KINDS = (DOCUMENT, ELEMENT, ATTRIBUTE, TEXT)


class XMLNode:
    """A single node of an XML tree.

    Attributes assigned during construction:

    ``kind``
        One of ``document``, ``element``, ``attribute``, ``text``.
    ``label``
        The element tag; ``@name`` for attributes; ``#text`` for text nodes;
        ``#document`` for the document node.
    ``text``
        The literal string carried by attribute and text nodes (``None``
        elsewhere).
    ``children`` / ``parent``
        Tree structure.  Attribute nodes precede element/text children in
        the child list, mirroring serialized order.

    Identifier fields filled by :func:`repro.xmldata.ids.label_document`:
    ``pre``, ``post``, ``depth``, ``dewey``.
    """

    __slots__ = (
        "kind",
        "label",
        "text",
        "children",
        "parent",
        "pre",
        "post",
        "depth",
        "dewey",
    )

    def __init__(self, kind: str, label: str, text: Optional[str] = None):
        if kind not in _KINDS:
            raise ValueError(f"unknown node kind: {kind!r}")
        self.kind = kind
        self.label = label
        self.text = text
        self.children: list[XMLNode] = []
        self.parent: Optional[XMLNode] = None
        self.pre: Optional[int] = None
        self.post: Optional[int] = None
        self.depth: Optional[int] = None
        self.dewey: Optional[tuple[int, ...]] = None

    # -- construction -----------------------------------------------------

    def append(self, child: "XMLNode") -> "XMLNode":
        """Attach ``child`` as the last child of this node and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def add_element(self, tag: str) -> "XMLNode":
        """Create, attach and return an element child."""
        return self.append(XMLNode(ELEMENT, tag))

    def add_attribute(self, name: str, value: str) -> "XMLNode":
        """Create, attach and return an attribute child named ``@name``."""
        label = name if name.startswith("@") else "@" + name
        return self.append(XMLNode(ATTRIBUTE, label, value))

    def add_text(self, data: str) -> "XMLNode":
        """Create, attach and return a text child."""
        return self.append(XMLNode(TEXT, "#text", data))

    # -- navigation --------------------------------------------------------

    def iter_subtree(self) -> Iterator["XMLNode"]:
        """All nodes of the subtree rooted here, in document (pre) order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def element_children(self) -> list["XMLNode"]:
        return [c for c in self.children if c.kind == ELEMENT]

    def attribute_children(self) -> list["XMLNode"]:
        return [c for c in self.children if c.kind == ATTRIBUTE]

    def ancestors(self) -> Iterator["XMLNode"]:
        """Proper ancestors, nearest first, up to and including the
        document node."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def is_ancestor_of(self, other: "XMLNode") -> bool:
        """Structural test via tree walking (identifier-free)."""
        return any(anc is self for anc in other.ancestors())

    def rooted_path(self) -> tuple[str, ...]:
        """Labels from the top element down to this node (document node
        excluded), e.g. ``('site', 'people', 'person')``."""
        labels: list[str] = []
        node: Optional[XMLNode] = self
        while node is not None and node.kind != DOCUMENT:
            labels.append(node.label)
            node = node.parent
        return tuple(reversed(labels))

    # -- value and content (Section 1.1) ------------------------------------

    @property
    def value(self) -> Optional[str]:
        """The node value: ``text()`` semantics.

        Attribute/text nodes carry their literal string.  For an element,
        the values of all text descendants are concatenated in document
        order (losing their count and relative placement, exactly as the
        thesis model does).  Elements without text descendants have value
        ``None`` (⊥).
        """
        if self.kind in (ATTRIBUTE, TEXT):
            return self.text
        pieces = [n.text for n in self.iter_subtree() if n.kind == TEXT and n.text]
        if not pieces:
            return None
        return "".join(pieces)

    @property
    def content(self) -> str:
        """The serialized subtree rooted at this node."""
        from .serialize import serialize

        return serialize(self)

    # -- misc ----------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ident = f" pre={self.pre}" if self.pre is not None else ""
        return f"<{self.kind} {self.label!r}{ident}>"


class Document:
    """An XML document: the document node plus lookup helpers.

    ``doc.root`` is the document node (the ⊤ of XAM patterns); ``doc.top``
    is its unique element child, which the thesis calls the document's root
    element.
    """

    def __init__(self, document_node: XMLNode, name: str = "doc.xml"):
        if document_node.kind != DOCUMENT:
            raise ValueError("Document must wrap a document node")
        elements = document_node.element_children()
        if len(elements) != 1:
            raise ValueError(
                f"document node must have exactly one element child, got {len(elements)}"
            )
        self.root = document_node
        self.name = name

    @classmethod
    def from_top_element(cls, top: XMLNode, name: str = "doc.xml") -> "Document":
        """Wrap an element tree in a fresh document node."""
        doc_node = XMLNode(DOCUMENT, "#document")
        doc_node.append(top)
        return cls(doc_node, name)

    @property
    def top(self) -> XMLNode:
        return self.root.element_children()[0]

    def nodes(self) -> Iterator[XMLNode]:
        """All nodes except the document node, in document order."""
        it = self.root.iter_subtree()
        next(it)  # skip the document node itself
        return it

    def elements(self) -> Iterator[XMLNode]:
        return (n for n in self.nodes() if n.kind == ELEMENT)

    def attributes(self) -> Iterator[XMLNode]:
        return (n for n in self.nodes() if n.kind == ATTRIBUTE)

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return sum(1 for _ in self.nodes())
        return sum(1 for n in self.nodes() if n.kind == kind)

    def find_by_pre(self, pre: int) -> Optional[XMLNode]:
        for node in self.nodes():
            if node.pre == pre:
                return node
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Document {self.name!r} top={self.top.label!r}>"
