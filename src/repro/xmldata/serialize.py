"""Serialization of XML trees.

``serialize(node)`` produces the *content* of a node in the thesis sense:
the serialized labels and values of the subtree rooted at the node, in a
top-down left-to-right traversal.  Attribute nodes serialize as
``name="value"`` inside their parent's begin tag.
"""

from __future__ import annotations

from .node import ATTRIBUTE, DOCUMENT, TEXT, XMLNode

__all__ = ["serialize", "escape_text", "escape_attribute"]

_TEXT_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ATTR_ESCAPES = _TEXT_ESCAPES + [('"', "&quot;")]


def escape_text(data: str) -> str:
    for raw, escaped in _TEXT_ESCAPES:
        data = data.replace(raw, escaped)
    return data


def escape_attribute(data: str) -> str:
    for raw, escaped in _ATTR_ESCAPES:
        data = data.replace(raw, escaped)
    return data


def serialize(node: XMLNode) -> str:
    """Serialize the subtree rooted at ``node``.

    * document nodes serialize as their single element child;
    * element nodes serialize as ``<tag a="v">children</tag>`` (or the
      self-closing ``<tag a="v"/>`` when there is no non-attribute child);
    * attribute nodes serialize as ``name="value"`` (used when a XAM stores
      the *content* of an attribute node);
    * text nodes serialize as their escaped character data.
    """
    parts: list[str] = []
    _serialize_into(node, parts)
    return "".join(parts)


def _serialize_into(node: XMLNode, parts: list[str]) -> None:
    if node.kind == DOCUMENT:
        for child in node.children:
            _serialize_into(child, parts)
        return
    if node.kind == TEXT:
        parts.append(escape_text(node.text or ""))
        return
    if node.kind == ATTRIBUTE:
        parts.append(f'{node.label.lstrip("@")}="{escape_attribute(node.text or "")}"')
        return

    attributes = node.attribute_children()
    others = [c for c in node.children if c.kind != ATTRIBUTE]
    parts.append("<")
    parts.append(node.label)
    for attr in attributes:
        parts.append(" ")
        _serialize_into(attr, parts)
    if not others:
        parts.append("/>")
        return
    parts.append(">")
    for child in others:
        _serialize_into(child, parts)
    parts.append(f"</{node.label}>")
