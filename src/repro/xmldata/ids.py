"""Persistent node identifier schemes (thesis Section 1.2.1 and §2.2.1).

The XAM grammar distinguishes four levels of identifier expressiveness:

``i``  simple IDs — only node identity can be decided;
``o``  order-reflecting IDs — document order is comparable (plain integers);
``s``  structural IDs — parent/ancestor relationships decidable by
       comparing IDs (the ``(pre, post, depth)`` scheme of Dietz/Grust);
``p``  navigational structural IDs — the parent's ID is *derivable* from a
       child's ID (Dewey/ORDPATH style).

:func:`label_document` walks a parsed document once and fills the ``pre``,
``post``, ``depth`` and ``dewey`` fields of every node.  :func:`id_of` then
materializes the identifier value of a node under any of the four schemes.
The value classes implement the decision procedures listed in §1.2.1
(descendant/child/ancestor/parent/precedes/follows) so that structural join
operators can work on identifier values alone, never touching the tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .node import Document, XMLNode

__all__ = [
    "SIMPLE",
    "ORDERED",
    "STRUCTURAL",
    "PARENT_DERIVING",
    "ID_KINDS",
    "StructuralID",
    "DeweyID",
    "NodeID",
    "label_document",
    "id_of",
    "kind_supports",
    "strongest_common_kind",
    "is_ancestor_id",
    "is_parent_id",
    "prepost_plane",
]

SIMPLE = "i"
ORDERED = "o"
STRUCTURAL = "s"
PARENT_DERIVING = "p"

#: All identifier kinds, weakest first.  Later kinds subsume earlier ones.
ID_KINDS = (SIMPLE, ORDERED, STRUCTURAL, PARENT_DERIVING)

_CAPABILITIES = {
    SIMPLE: {"identity"},
    ORDERED: {"identity", "order"},
    STRUCTURAL: {"identity", "order", "structural"},
    PARENT_DERIVING: {"identity", "order", "structural", "parent-derivation"},
}


def kind_supports(kind: str, capability: str) -> bool:
    """Whether an ID kind offers a capability.

    Capabilities: ``identity``, ``order``, ``structural``,
    ``parent-derivation``.
    """
    try:
        return capability in _CAPABILITIES[kind]
    except KeyError:
        raise ValueError(f"unknown ID kind {kind!r}") from None


def strongest_common_kind(kind_a: str, kind_b: str) -> str:
    """The strongest scheme both arguments support (meet in the lattice)."""
    index = min(ID_KINDS.index(kind_a), ID_KINDS.index(kind_b))
    return ID_KINDS[index]


@dataclass(frozen=True, order=True)
class StructuralID:
    """A ``(pre, post, depth)`` identifier (Dietz labeling).

    Ordering on the dataclass is by ``pre`` first, i.e. document order.
    """

    pre: int
    post: int
    depth: int

    def is_ancestor_of(self, other: "StructuralID") -> bool:
        return self.pre < other.pre and other.post < self.post

    def is_parent_of(self, other: "StructuralID") -> bool:
        return self.is_ancestor_of(other) and self.depth + 1 == other.depth

    def is_descendant_of(self, other: "StructuralID") -> bool:
        return other.is_ancestor_of(self)

    def precedes(self, other: "StructuralID") -> bool:
        """True when this node precedes ``other`` in document order and is
        not one of its ancestors (the pre/post-plane "preceding" quarter)."""
        return self.post < other.pre

    def follows(self, other: "StructuralID") -> bool:
        return other.post < self.pre


@dataclass(frozen=True)
class DeweyID:
    """A Dewey identifier: the vector of child ordinals from the root.

    Supports everything :class:`StructuralID` does *plus* deriving ancestor
    identifiers directly (the ``p`` capability exploited by the rewriting
    algorithm in §5.2 to reconstruct parent IDs not stored in any view).
    """

    path: tuple[int, ...]

    def parent(self) -> "DeweyID":
        if not self.path:
            raise ValueError("the root Dewey ID has no parent")
        return DeweyID(self.path[:-1])

    def ancestor_at_depth(self, depth: int) -> "DeweyID":
        """The ancestor identifier ``depth`` levels below the root
        (``depth`` counts path components, so ``ancestor_at_depth(1)`` is
        the top element)."""
        if depth < 0 or depth > len(self.path):
            raise ValueError(f"no ancestor at depth {depth}")
        return DeweyID(self.path[:depth])

    @property
    def depth(self) -> int:
        return len(self.path)

    def is_ancestor_of(self, other: "DeweyID") -> bool:
        return (
            len(self.path) < len(other.path)
            and other.path[: len(self.path)] == self.path
        )

    def is_parent_of(self, other: "DeweyID") -> bool:
        return len(self.path) + 1 == len(other.path) and self.is_ancestor_of(other)

    def is_descendant_of(self, other: "DeweyID") -> bool:
        return other.is_ancestor_of(self)

    def __lt__(self, other: "DeweyID") -> bool:
        return self.path < other.path


NodeID = Union[int, StructuralID, DeweyID]


def label_document(doc: Document) -> Document:
    """Assign ``pre``/``post``/``depth``/``dewey`` labels to every node.

    The document node gets ``pre = post_max + 1``?  No — following Fig. 1.1
    the document node is ignored for labeling purposes: the top element has
    ``pre = 1`` and ``depth = 1``; attribute and text nodes participate in
    the traversal so that every node owns a unique label.  Returns ``doc``
    for chaining.
    """
    pre_counter = 0
    post_counter = 0

    def visit(node: XMLNode, depth: int, dewey: tuple[int, ...]) -> None:
        nonlocal pre_counter, post_counter
        pre_counter += 1
        node.pre = pre_counter
        node.depth = depth
        node.dewey = dewey
        for ordinal, child in enumerate(node.children, start=1):
            visit(child, depth + 1, dewey + (ordinal,))
        post_counter += 1
        node.post = post_counter

    doc.root.pre = 0
    doc.root.post = 2 * doc.count() + 1
    doc.root.depth = 0
    doc.root.dewey = ()
    for ordinal, child in enumerate(doc.root.children, start=1):
        visit(child, 1, (ordinal,))
    return doc


def _require_labels(node: XMLNode) -> None:
    if node.pre is None:
        raise ValueError(
            "node has no identifier labels; call label_document() after parsing"
        )


def id_of(node: XMLNode, kind: str = STRUCTURAL) -> NodeID:
    """Materialize the identifier of ``node`` under scheme ``kind``."""
    _require_labels(node)
    if kind in (SIMPLE, ORDERED):
        # Simple IDs must only be unique; reusing the pre number keeps them
        # deterministic.  Order IDs are exactly the pre number.
        return node.pre  # type: ignore[return-value]
    if kind == STRUCTURAL:
        return StructuralID(node.pre, node.post, node.depth)  # type: ignore[arg-type]
    if kind == PARENT_DERIVING:
        return DeweyID(node.dewey)  # type: ignore[arg-type]
    raise ValueError(f"unknown ID kind {kind!r}")


def is_ancestor_id(id_a: NodeID, id_b: NodeID) -> bool:
    """``id_a ≺≺ id_b`` — decidable only for structural identifier values."""
    if isinstance(id_a, StructuralID) and isinstance(id_b, StructuralID):
        return id_a.is_ancestor_of(id_b)
    if isinstance(id_a, DeweyID) and isinstance(id_b, DeweyID):
        return id_a.is_ancestor_of(id_b)
    raise TypeError(
        "ancestor test requires structural identifiers on both sides, got "
        f"{type(id_a).__name__} and {type(id_b).__name__}"
    )


def is_parent_id(id_a: NodeID, id_b: NodeID) -> bool:
    """``id_a ≺ id_b`` — decidable only for structural identifier values."""
    if isinstance(id_a, StructuralID) and isinstance(id_b, StructuralID):
        return id_a.is_parent_of(id_b)
    if isinstance(id_a, DeweyID) and isinstance(id_b, DeweyID):
        return id_a.is_parent_of(id_b)
    raise TypeError(
        "parent test requires structural identifiers on both sides, got "
        f"{type(id_a).__name__} and {type(id_b).__name__}"
    )


def prepost_plane(doc: Document) -> list[tuple[int, int, str]]:
    """The pre/post plane of Example 1.2.1: ``(pre, post, label)`` for every
    element, usable to visualize the ancestor/descendant quarters."""
    return [(n.pre, n.post, n.label) for n in doc.elements()]  # type: ignore[misc]
