"""The typed error hierarchy of the engine.

Physical data independence has an availability corollary: when a storage
model or index fails, the engine knows *which* access module failed (the
XAM catalog names them) and can route around it — retry a transient I/O
error, or re-rank the S-equivalent rewritings excluding the broken module
(see ``Database.execute_prepared``).  Routing decisions need typed
failures: :class:`TransientStorageFault` is retryable, while
:class:`AccessModuleUnavailable` means the module should be circuit-broken
and the query degraded onto another access path.

The module is import-light on purpose (no engine imports), so every layer
— storage, indexes, engine, service, CLI — can raise and catch these
without cycles.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "StorageFault",
    "TransientStorageFault",
    "AccessModuleUnavailable",
    "PlanExecutionError",
    "NoUsableAccessPath",
    "DuplicateViewError",
    "QueryRejected",
]


class ReproError(Exception):
    """Base of every error the engine raises deliberately.

    Catching this (and nothing broader) separates "the engine reporting a
    typed failure" from genuine bugs — the CLI and the chaos suite rely on
    that distinction ("never a silent wrong answer, never an untyped
    crash")."""


class StorageFault(ReproError):
    """A failure at a storage-model boundary.

    ``point`` names the fault point that fired (e.g. ``relation.scan``,
    ``btree.lookup``); ``xam`` names the access module (catalog entry /
    base relation) being read when the fault hit, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        point: Optional[str] = None,
        xam: Optional[str] = None,
    ):
        super().__init__(message)
        self.point = point
        self.xam = xam


class TransientStorageFault(StorageFault):
    """A storage failure expected to clear on retry (lost page read, I/O
    timeout).  The query service absorbs these with exponential backoff,
    bounded by the per-query deadline."""


class AccessModuleUnavailable(StorageFault):
    """A storage structure that is persistently unreadable (corrupt pages,
    missing relation).  The executor records it in the module's circuit
    breaker and degrades onto the next-best S-equivalent rewriting.

    ``corrupt`` distinguishes detected corruption from plain
    unavailability; both are handled identically (never serve data from a
    structure that failed a read)."""

    def __init__(
        self,
        message: str,
        *,
        point: Optional[str] = None,
        xam: Optional[str] = None,
        corrupt: bool = False,
    ):
        super().__init__(message, point=point, xam=xam)
        self.corrupt = corrupt


class PlanExecutionError(ReproError):
    """An unexpected failure while executing a plan, wrapped with the
    failing operator's label and, when the plan was reading a view, the
    XAM name — so operators surface *where* a plan died, not just why."""

    def __init__(
        self,
        message: str,
        *,
        operator: Optional[str] = None,
        xam: Optional[str] = None,
    ):
        super().__init__(message)
        self.operator = operator
        self.xam = xam


class NoUsableAccessPath(ReproError):
    """Every access path for a pattern is circuit-broken or failed and no
    base-store fallback exists.  (With in-memory documents the base store
    always exists, so this is reserved for configurations that drop it.)"""


class QueryRejected(ReproError):
    """The admission controller shed this query instead of running it.

    Raised *before* any work happens: the queue is full, the query's
    remaining deadline cannot cover the observed queue wait (running it
    would only burn a worker slot to produce a timeout), or the adaptive
    limiter is degraded and the query's priority class is shed first.
    Distinct from :class:`~repro.core.service.QueryTimeout` — a rejected
    query consumed no capacity and is immediately safe to retry elsewhere
    or after :attr:`retry_after` seconds.

    ``reason`` is a stable machine-readable tag (``queue_full``,
    ``deadline``, ``background_shed``, ``queued_deadline``,
    ``limiter_deadline``); ``priority`` names the admission class the
    query was submitted under.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "queue_full",
        priority: str = "interactive",
        retry_after: Optional[float] = None,
    ):
        super().__init__(message)
        self.reason = reason
        self.priority = priority
        self.retry_after = retry_after


class DuplicateViewError(ReproError, ValueError):
    """Registering a view under a name the catalog already holds.  Keeps
    :class:`ValueError` as a base so pre-existing callers catching that
    still work, while joining the typed hierarchy the CLI's narrowed
    handlers rely on."""
