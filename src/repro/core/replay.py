"""Deterministic workload replay: re-run a captured query log and diff.

The query log (:mod:`repro.engine.qlog`) gives every executed query a
plan fingerprint and a result checksum.  This module closes the loop: it
re-runs a captured log against a :class:`~repro.core.uload.Database` and
reports, per query,

* **fingerprint diffs** — the optimizer now picks a different physical
  plan than it did at record time.  Against unchanged state this must
  never happen (preparation is deterministic); when it does, either the
  catalog/statistics changed or a planner change shipped — exactly the
  regression class the CI replay lane exists to catch before merge;
* **checksum diffs** — the *answer* changed.  A plan flip with a stable
  checksum is a performance event; a checksum diff is a correctness bug,
  full stop;
* **latency drift** — recorded vs replayed wall time, reported in the
  aggregate (environments differ; latency is advisory, never a failure).

Failed/cancelled records are skipped (they carry no ground truth), but
counted, so a replay of a chaos-lane capture states its coverage
honestly.  The CLI front-ends are ``repro record`` (run a workload file
with capture on) and ``repro replay`` (re-run the capture and exit
non-zero on any diff).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..engine.qlog import QueryLog, result_checksum
from .uload import Database

__all__ = [
    "ReplayDiff",
    "ReplayReport",
    "load_records",
    "replay_records",
    "replay_file",
]


def load_records(
    path: str, include_rotated: bool = True, max_files: int = 3
) -> list[dict]:
    """Records of a captured log, oldest first (rotated generations
    included by default, so a long capture replays in recording order)."""
    if include_rotated:
        return QueryLog.read_all(path, max_files=max_files)
    return QueryLog.read(path)


@dataclass(frozen=True)
class ReplayDiff:
    """One divergence between a recorded and a replayed execution."""

    kind: str  # "fingerprint" | "checksum" | "error"
    query: str
    recorded: Optional[str]
    replayed: Optional[str]

    def summary(self) -> str:
        return (
            f"[{self.kind}] {self.query}: "
            f"recorded {self.recorded or '-'} != replayed {self.replayed or '-'}"
        )

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "query": self.query,
            "recorded": self.recorded,
            "replayed": self.replayed,
        }


@dataclass
class ReplayReport:
    """The outcome of one replay run."""

    total: int = 0  #: records in the capture
    replayed: int = 0  #: successful recorded executions re-run
    skipped: int = 0  #: failed/cancelled records without ground truth
    matches: int = 0  #: replays with identical fingerprint and checksum
    diffs: list[ReplayDiff] = field(default_factory=list)
    recorded_seconds: float = 0.0
    replayed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.diffs

    @property
    def latency_ratio(self) -> Optional[float]:
        """Replayed / recorded total wall time (None without a baseline)."""
        if self.recorded_seconds <= 0.0:
            return None
        return self.replayed_seconds / self.recorded_seconds

    def as_dict(self) -> dict:
        out = {
            "total": self.total,
            "replayed": self.replayed,
            "skipped": self.skipped,
            "matches": self.matches,
            "diffs": [diff.as_dict() for diff in self.diffs],
            "recorded_seconds": round(self.recorded_seconds, 6),
            "replayed_seconds": round(self.replayed_seconds, 6),
        }
        if self.latency_ratio is not None:
            out["latency_ratio"] = round(self.latency_ratio, 3)
        return out

    def render(self) -> str:
        lines = [
            f"replayed {self.replayed}/{self.total} records "
            f"({self.skipped} skipped): {self.matches} match, "
            f"{len(self.diffs)} diff"
        ]
        if self.latency_ratio is not None:
            lines.append(
                f"latency: recorded {self.recorded_seconds * 1000:.2f}ms, "
                f"replayed {self.replayed_seconds * 1000:.2f}ms "
                f"({self.latency_ratio:.2f}x)"
            )
        lines.extend(diff.summary() for diff in self.diffs)
        return "\n".join(lines)


def replay_records(db: Database, records: Sequence[dict]) -> ReplayReport:
    """Re-run every replayable record against ``db`` and diff.

    Replays go straight through :meth:`Database.query` with the flags the
    record was captured under — deliberately *not* through a
    :class:`~repro.core.service.QueryService`, so the replay process
    neither pollutes a live service's plan cache nor depends on its cache
    state: every fingerprint is re-derived from a fresh preparation.
    """
    report = ReplayReport(total=len(records))
    for record in records:
        if record.get("outcome") != "ok" or "checksum" not in record:
            report.skipped += 1
            continue
        flags = record.get("flags", {})
        query = record["query"]
        started = time.perf_counter()
        try:
            result = db.query(
                query,
                prefer_views=flags.get("prefer_views", True),
                physical=flags.get("physical", False),
                stats=flags.get("stats", False),
            )
        except Exception as exc:
            report.replayed += 1
            report.diffs.append(
                ReplayDiff(
                    kind="error",
                    query=query,
                    recorded="ok",
                    replayed=type(exc).__name__,
                )
            )
            continue
        elapsed = time.perf_counter() - started
        report.replayed += 1
        report.recorded_seconds += float(record.get("seconds", 0.0))
        report.replayed_seconds += elapsed
        clean = True
        recorded_fingerprint = record.get("fingerprint")
        if recorded_fingerprint and result.plan_fingerprint != recorded_fingerprint:
            clean = False
            report.diffs.append(
                ReplayDiff(
                    kind="fingerprint",
                    query=query,
                    recorded=recorded_fingerprint,
                    replayed=result.plan_fingerprint,
                )
            )
        checksum = result_checksum(result)
        if checksum != record["checksum"]:
            clean = False
            report.diffs.append(
                ReplayDiff(
                    kind="checksum",
                    query=query,
                    recorded=record["checksum"],
                    replayed=checksum,
                )
            )
        if clean:
            report.matches += 1
    return report


def replay_file(
    db: Database, path: str, include_rotated: bool = True
) -> ReplayReport:
    """Convenience wrapper: load a capture and replay it."""
    return replay_records(db, load_records(path, include_rotated))
