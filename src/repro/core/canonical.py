"""Canonical models of patterns under summary constraints (thesis §4.3).

Given a pattern ``p`` and a summary ``S``, the canonical model ``mod_S(p)``
is the set of *canonical trees* derived from all embeddings of ``p`` into
``S``: every pattern edge expands into the parent-child chain of summary
labels connecting the images of its endpoints.  Canonical trees are the
exhaustive "worst-case documents" for ``p`` (Proposition 4.3.1): a tuple
belongs to ``p(t)`` for a conforming ``t`` iff some canonical tree embeds
in ``t`` at the right paths.

Supported dialects, composable as in §4.3.2:

* conjunctive patterns — plain trees;
* decorated patterns — canonical nodes carry value formulas (two pattern
  nodes with different formulas mapped to the same summary node yield
  distinct canonical nodes, as the thesis prescribes);
* optional patterns — for each subset F of optional edges, the subtrees
  rooted at the lower ends of F edges are erased, keeping the variant when
  the original pattern still has an embedding into it;
* attribute / nested patterns — handled at the containment layer, over the
  same trees.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..algebra.formulas import TRUE, Formula
from ..summary.path_summary import PathSummary, SummaryNode
from .xam import CHILD, JOIN, NEST, NEST_OUTER, OUTER, Pattern, PatternNode

__all__ = [
    "CanonNode",
    "CanonicalTree",
    "admits_label",
    "summary_embeddings",
    "canonical_model",
    "path_annotations",
    "is_satisfiable",
    "nesting_sequence",
]


class CanonNode:
    """A canonical-tree node: a summary label + an optional value formula
    + the summary path it instantiates."""

    __slots__ = ("label", "formula", "summary_number", "children", "source")

    def __init__(
        self,
        label: str,
        summary_number: int,
        formula: Formula = TRUE,
        source: Optional[PatternNode] = None,
    ):
        self.label = label
        self.summary_number = summary_number
        self.formula = formula
        #: the pattern node realized at this position (chain ends only)
        self.source = source
        self.children: list[CanonNode] = []

    def iter_subtree(self) -> Iterator["CanonNode"]:
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def size(self) -> int:
        return sum(1 for _ in self.iter_subtree())

    def structure_key(self) -> tuple:
        return (
            self.label,
            self.summary_number,
            hash(self.formula),
            tuple(sorted(child.structure_key() for child in self.children)),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        formula = "" if self.formula.is_true else f"[{self.formula!r}]"
        return f"{self.label}#{self.summary_number}{formula}"


class CanonicalTree:
    """One tree of ``mod_S(p)``, with its return tuple.

    ``return_nodes[i]`` is the canonical node realizing the pattern's
    ``i``-th return node, or ``None`` (⊥) when the subtree was erased by
    the optional-edge expansion.
    """

    def __init__(
        self,
        root: CanonNode,
        return_nodes: tuple[Optional[CanonNode], ...],
        node_of: dict[str, Optional[CanonNode]],
    ):
        self.root = root
        self.return_nodes = return_nodes
        #: pattern-node name → canonical node (None when erased)
        self.node_of = node_of

    def size(self) -> int:
        return self.root.size() - 1  # the ⊤ root is not a data node

    def return_paths(self) -> tuple[Optional[int], ...]:
        """Summary path numbers of the return tuple (⊥ → ``None``)."""
        return tuple(
            node.summary_number if node is not None else None
            for node in self.return_nodes
        )

    def structure_key(self) -> tuple:
        return (
            self.root.structure_key(),
            tuple(
                node.summary_number if node is not None else None
                for node in self.return_nodes
            ),
        )

    def var_formulas(self) -> dict[int, Formula]:
        """The formula map ``φ_{t_e}`` of §4.4.2.

        The thesis indexes formulas by summary-node variables under the
        simplifying assumption that canonical trees are S-subtrees; when a
        tree instantiates the same path twice, per-path variables would
        conflate independent document nodes.  We therefore key variables by
        the canonical node itself (``id``), which is exact in all cases.
        """
        return {
            id(node): node.formula
            for node in self.root.iter_subtree()
            if not node.formula.is_true
        }


# ---------------------------------------------------------------------------
# Pattern → summary embeddings
# ---------------------------------------------------------------------------

def admits_label(pattern_node: PatternNode, label: str) -> bool:
    """Tag/kind admission against a bare label (summary or canonical-tree
    node).  Wildcards match element labels only."""
    if pattern_node.tag is not None:
        return pattern_node.tag == label
    return not label.startswith("@") and label != "#text"


def _candidates(
    snode: SummaryNode, axis: str, pattern_node: PatternNode
) -> Iterator[SummaryNode]:
    if axis == CHILD:
        for child in snode.children.values():
            if admits_label(pattern_node, child.label):
                yield child
    else:
        for descendant in snode.descendants():
            if admits_label(pattern_node, descendant.label):
                yield descendant


def summary_embeddings(
    pattern: Pattern, summary: PathSummary
) -> list[dict[PatternNode, SummaryNode]]:
    """All embeddings of the pattern into the summary tree (⊤ ↦ the
    summary root), ignoring edge semantics and value formulas."""

    def assign(
        pattern_node: PatternNode, snode: SummaryNode
    ) -> list[dict[PatternNode, SummaryNode]]:
        partials = [{pattern_node: snode}]
        for edge in pattern_node.edges:
            branch: list[dict[PatternNode, SummaryNode]] = []
            for candidate in _candidates(snode, edge.axis, edge.child):
                branch.extend(assign(edge.child, candidate))
            if not branch:
                return []
            partials = [{**a, **b} for a in partials for b in branch]
        return partials

    return assign(pattern.root, summary.root)


def path_annotations(
    pattern: Pattern, summary: PathSummary
) -> dict[str, set[int]]:
    """Definition 4.3.1: per pattern-node name, the set of summary path
    numbers it may be embedded onto."""
    annotations: dict[str, set[int]] = {node.name: set() for node in pattern.nodes()}
    for embedding in summary_embeddings(pattern, summary):
        for pattern_node, snode in embedding.items():
            if pattern_node.parent_edge is not None:
                annotations[pattern_node.name].add(snode.number)
    return annotations


# ---------------------------------------------------------------------------
# Canonical tree construction
# ---------------------------------------------------------------------------

def _build_tree(
    pattern: Pattern,
    summary: PathSummary,
    embedding: dict[PatternNode, SummaryNode],
    returns: Optional[list[str]] = None,
) -> CanonicalTree:
    root = CanonNode("#document", 0, source=pattern.root)
    node_of: dict[str, Optional[CanonNode]] = {pattern.root.name: root}

    def attach(pattern_parent: PatternNode, canon_parent: CanonNode) -> None:
        for edge in pattern_parent.edges:
            chain = summary.chain(
                embedding[pattern_parent], embedding[edge.child]
            )
            anchor = canon_parent
            # chain[0] is the parent's own summary node; each pattern child
            # gets its own fresh chain (Definition in §4.3.1).
            for snode in chain[1:-1]:
                link = CanonNode(snode.label, snode.number)
                anchor.children.append(link)
                anchor = link
            last = chain[-1]
            end = CanonNode(
                last.label,
                last.number,
                formula=edge.child.value_formula,
                source=edge.child,
            )
            anchor.children.append(end)
            node_of[edge.child.name] = end
            attach(edge.child, end)

    attach(pattern.root, root)
    return_names = returns if returns is not None else [
        node.name for node in pattern.return_nodes()
    ]
    return_nodes = tuple(node_of[name] for name in return_names)
    return CanonicalTree(root, return_nodes, node_of)


def _strict_copy(pattern: Pattern) -> Pattern:
    """All edges made non-optional (outer → join, nest-outer → nest);
    node names preserved so trees can be related back to the original."""
    clone = pattern.copy()
    for edge in clone.edges():
        if edge.semantics == OUTER:
            edge.semantics = JOIN
        elif edge.semantics == NEST_OUTER:
            edge.semantics = NEST
    return clone


def _optional_edge_names(pattern: Pattern) -> list[str]:
    return [edge.child.name for edge in pattern.edges() if edge.optional]


def _tree_parents(tree: CanonicalTree) -> dict[int, Optional[CanonNode]]:
    parents: dict[int, Optional[CanonNode]] = {id(tree.root): None}
    for walker in tree.root.iter_subtree():
        for child in walker.children:
            parents[id(child)] = walker
    return parents


def _chain_top(
    tree: CanonicalTree,
    pattern: Pattern,
    name: str,
    parents: dict[int, Optional[CanonNode]],
) -> Optional[CanonNode]:
    """The topmost canonical node of the chain realizing the named
    pattern node — the erasure victim.  The *whole chain* is erased, not
    just the subtree at its lower end: leftover chain intermediates would
    claim structure enhanced-summary constraints can rule out."""
    canon = tree.node_of.get(name)
    if canon is None:
        return None
    parent_edge = pattern.node_by_name(name).parent_edge
    assert parent_edge is not None
    parent_canon = tree.node_of.get(parent_edge.parent.name)
    chain_top = canon
    while (
        parents.get(id(chain_top)) is not None
        and parents[id(chain_top)] is not parent_canon
    ):
        chain_top = parents[id(chain_top)]  # type: ignore[assignment]
    return chain_top


def _skipping_key(
    tree: CanonicalTree,
    pattern: Pattern,
    erased_names: frozenset[str],
    victims: set[int],
) -> tuple:
    """The structure key the erased variant *would* have, computed in one
    walk over the original tree — avoids materializing duplicate copies."""
    erased_pattern_nodes: set[str] = set()
    for name in erased_names:
        for below in pattern.node_by_name(name).iter_subtree():
            erased_pattern_nodes.add(below.name)

    def key(node: CanonNode) -> tuple:
        return (
            node.label,
            node.summary_number,
            hash(node.formula),
            tuple(
                sorted(
                    key(child) for child in node.children if id(child) not in victims
                )
            ),
        )

    surviving_returns = tuple(
        None
        if (name in erased_pattern_nodes or tree.node_of.get(name) is None)
        else tree.node_of[name].summary_number
        for name in _return_names_of(tree)
    )
    return (key(tree.root), surviving_returns)


def _erase_victims(
    tree: CanonicalTree,
    pattern: Pattern,
    erased_names: frozenset[str],
    victims: set[int],
) -> CanonicalTree:
    """Copy ``tree`` without the subtrees rooted at the victim nodes."""
    erased_pattern_nodes: set[str] = set()
    for name in erased_names:
        for below in pattern.node_by_name(name).iter_subtree():
            erased_pattern_nodes.add(below.name)

    remap: dict[int, CanonNode] = {}

    def copy_node(node: CanonNode) -> CanonNode:
        clone = CanonNode(node.label, node.summary_number, node.formula, node.source)
        remap[id(node)] = clone
        for child in node.children:
            if id(child) in victims:
                continue
            clone.children.append(copy_node(child))
        return clone

    new_root = copy_node(tree.root)
    new_node_of: dict[str, Optional[CanonNode]] = {}
    for name, node in tree.node_of.items():
        if name in erased_pattern_nodes or node is None or id(node) not in remap:
            new_node_of[name] = None
        else:
            new_node_of[name] = remap[id(node)]
    return_names = _return_names_of(tree)
    returns = tuple(new_node_of.get(name) for name in return_names)
    return CanonicalTree(new_root, returns, new_node_of)


def _return_names_of(tree: CanonicalTree) -> list[str]:
    """Recover the return-node names of a canonical tree from node_of
    (names whose canonical node sits in the return tuple, in order)."""
    names = []
    for target in tree.return_nodes:
        for name, node in tree.node_of.items():
            if node is target and name not in names:
                names.append(name)
                break
        else:
            names.append("")  # erased (⊥) — stays ⊥ after further erasure
    return names


def _pattern_matches_tree(pattern: Pattern, tree: CanonicalTree) -> bool:
    """``p(t_{e,F}) ≠ ∅`` with formula-aware admission (tree formulas must
    imply pattern formulas)."""
    from .embedding import iter_embeddings

    def admits(pattern_node: PatternNode, node: CanonNode) -> bool:
        if not admits_label(pattern_node, node.label):
            return False
        if pattern_node.value_formula.is_true:
            return True
        return node.formula.implies(pattern_node.value_formula)

    return any(
        True for _ in iter_embeddings(pattern, tree.root, lambda n: n.children, admits)
    )


def canonical_model(
    pattern: Pattern,
    summary: PathSummary,
    returns: Optional[list[str]] = None,
    use_strong_edges: bool = True,
) -> list[CanonicalTree]:
    """``mod_S(p)``: duplicate-free canonical trees for all embeddings,
    expanded over optional-edge subsets when the pattern has any.

    ``returns`` optionally fixes the return-node order by node names
    (default: the pattern's return nodes in pre-order).

    With ``use_strong_edges`` (default), enhanced-summary integrity
    constraints (§4.2.2) sharpen the model two ways: every canonical tree
    is *augmented* with the descendants guaranteed by ``+``/``1`` edges
    (any conforming document containing the tree contains them too), and
    optional-edge erasure variants that no conforming document can
    realize (the erased node is structurally guaranteed) are dropped.
    """
    if any(node.value_formula.is_false for node in pattern.nodes()):
        return []
    strict = _strict_copy(pattern)
    trees: list[CanonicalTree] = []
    seen: set[tuple] = set()
    tracks_text = _tracks_text(summary)
    for embedding in summary_embeddings(strict, summary):
        if not _formula_placements_ok(embedding, tracks_text):
            continue
        tree = _build_tree(strict, summary, embedding, returns)
        key = tree.structure_key()
        if key not in seen:
            seen.add(key)
            trees.append(tree)

    optional_names = _optional_edge_names(pattern)
    if not optional_names:
        if use_strong_edges:
            for tree in trees:
                _augment_strong(tree.root, summary)
        return trees

    expanded: list[CanonicalTree] = []
    expanded_seen: set[tuple] = set()
    subsets = _subsets(optional_names)
    for tree in trees:
        parents = _tree_parents(tree)
        tops = {
            name: _chain_top(tree, pattern, name, parents)
            for name in optional_names
        }
        subtree_ids = {
            name: {id(node) for node in top.iter_subtree()}
            for name, top in tops.items()
            if top is not None
        }
        seen_victims: set[frozenset] = set()
        for subset in subsets:
            # canonical victim set: chain tops, minus tops already inside
            # another erased chain (nested optional edges collapse)
            present = [n for n in subset if tops.get(n) is not None]
            victims = {
                n
                for n in present
                if not any(
                    other != n and id(tops[n]) in subtree_ids[other]
                    for other in present
                )
            }
            victim_key = frozenset(victims)
            if subset and not victims:
                continue
            if victim_key in seen_victims:
                continue
            seen_victims.add(victim_key)
            if victims:
                if use_strong_edges and _erasure_unrealizable(
                    tree, pattern, tuple(victims), summary
                ):
                    continue
                victim_ids = {id(tops[n]) for n in victims}
                # compute the variant's key WITHOUT materializing the copy:
                # most subsets collapse onto already-seen structures
                key = _skipping_key(tree, pattern, frozenset(subset), victim_ids)
                if key in expanded_seen:
                    continue
                expanded_seen.add(key)
                variant = _erase_victims(
                    tree, pattern, frozenset(subset), victim_ids
                )
                # The thesis re-checks p(t_{e,F}) ≠ ∅ because its erasure
                # leaves partial chains behind; whole-chain erasure removes
                # exactly one optional subtree per victim, so the original
                # embedding (victims ↦ ⊥) always survives and the check is
                # a tautology here (empirically validated; see the tests).
                expanded.append(variant)
                continue
            variant = tree
            key = variant.structure_key()
            if key not in expanded_seen:
                expanded_seen.add(key)
                expanded.append(variant)
    if use_strong_edges:
        for tree in expanded:
            _augment_strong(tree.root, summary)
    return expanded


def _augment_strong(node: CanonNode, summary: PathSummary) -> None:
    """Add the descendants guaranteed by ``+``/``1`` summary edges (where
    no child on that path already exists), recursively — the full strong
    closure, naturally bounded by the summary's height.  A truncated
    closure would be sound but incomplete in a way that breaks containment
    transitivity (a view probing below the truncation point would miss
    guaranteed structure)."""
    if node.summary_number < 0:
        return
    snode = summary.node_by_number(node.summary_number)
    present = {child.summary_number for child in node.children}
    for schild in snode.children.values():
        if schild.edge_annotation in ("+", "1") and schild.number not in present:
            node.children.append(CanonNode(schild.label, schild.number))
    for child in node.children:
        _augment_strong(child, summary)


def _erasure_unrealizable(
    tree: CanonicalTree,
    pattern: Pattern,
    subset: tuple[str, ...],
    summary: PathSummary,
) -> bool:
    """Whether erasing these optional nodes contradicts the enhanced
    summary: an optional subtree is *guaranteed matchable* below its
    parent's path when a strong chain leads to a node admitting it and all
    its mandatory children are guaranteed in turn — such a subtree can
    never map to ⊥ in a conforming document."""
    for name in subset:
        pattern_node = pattern.node_by_name(name)
        parent_edge = pattern_node.parent_edge
        assert parent_edge is not None
        parent_canon = tree.node_of.get(parent_edge.parent.name)
        if parent_canon is None or parent_canon.summary_number <= 0:
            continue
        anchor = summary.node_by_number(parent_canon.summary_number)
        if _guaranteed_match(pattern_node, anchor, summary):
            return True
    return False


def _guaranteed_match(
    pattern_node: PatternNode, anchor: SummaryNode, summary: PathSummary
) -> bool:
    """Every conforming document node on ``anchor``'s path has a match of
    the subtree rooted at ``pattern_node`` below it (sound, possibly
    incomplete — value formulas are never guaranteed)."""
    from ..summary.enhanced import is_strong_chain

    if not pattern_node.value_formula.is_true:
        return False
    edge = pattern_node.parent_edge
    assert edge is not None
    if edge.axis == CHILD:
        candidates = [
            child
            for child in anchor.children.values()
            if admits_label(pattern_node, child.label)
        ]
    else:
        candidates = [
            node
            for node in anchor.descendants()
            if admits_label(pattern_node, node.label)
        ]
    for candidate in candidates:
        if not is_strong_chain(anchor, candidate):
            continue
        if all(
            child_edge.optional
            or _guaranteed_match(child_edge.child, candidate, summary)
            for child_edge in pattern_node.edges
        ):
            return True
    return False


def _formula_placements_ok(
    embedding: dict[PatternNode, SummaryNode], tracks_text: bool
) -> bool:
    """A value predicate can only hold where a value can exist: attribute
    paths and element paths with a ``#text`` child.  Embeddings placing a
    decorated node on a valueless path denote unrealizable trees.  Only
    meaningful when the summary records text paths at all (summaries built
    from bare label paths carry no value information)."""
    for pattern_node, snode in embedding.items():
        if pattern_node.value_formula.is_true:
            continue
        if snode.is_attribute or not tracks_text or "#text" in snode.children:
            continue
        return False
    return True


def _tracks_text(summary: PathSummary) -> bool:
    return any("#text" in snode.children for snode in summary.nodes())


def _subsets(names: list[str]) -> list[tuple[str, ...]]:
    out: list[tuple[str, ...]] = [()]
    for name in names:
        out.extend([subset + (name,) for subset in out])
    out.sort(key=len)
    return out


def is_satisfiable(pattern: Pattern, summary: PathSummary) -> bool:
    """``p`` is S-satisfiable iff ``mod_S(p)`` is non-empty (§4.3.1)."""
    if any(node.value_formula.is_false for node in pattern.nodes()):
        return False
    tracks_text = _tracks_text(summary)
    return any(
        _formula_placements_ok(embedding, tracks_text)
        for embedding in summary_embeddings(_strict_copy(pattern), summary)
    )


# ---------------------------------------------------------------------------
# Nesting sequences (§4.4.5)
# ---------------------------------------------------------------------------

def nesting_sequence(
    pattern: Pattern,
    node: PatternNode,
    embedding: dict[PatternNode, SummaryNode],
) -> tuple[int, ...]:
    """``ns(n, e)``: summary nodes of the ancestors of ``n`` whose edge
    going down towards ``n`` is nested, top-down."""
    chain: list[int] = []
    walk = node
    while walk.parent_edge is not None:
        edge = walk.parent_edge
        if edge.semantics in (NEST, NEST_OUTER):
            chain.append(embedding[edge.parent].number)
        walk = edge.parent
    chain.reverse()
    return tuple(chain)
