"""The XML Access Module (XAM) tree-pattern language (thesis Chapter 2).

A XAM is an ordered tree ``(NS, ES, o)`` describing the information content
of a persistent XML storage structure — a storage module, an index, or a
materialized view — and, dually, a query sub-expression.  The grammar
(Fig. 2.3):

* a distinguished ⊤ node for the document root;
* nodes with a name, optionally annotated with an ID specification
  (``i``/``o``/``s``/``p``, possibly required ``R``), a tag specification
  (``Tag`` stored, or the predicate ``[Tag=c]``, possibly required), a value
  specification (``Val`` stored, or a predicate over the value, possibly
  required) and a content specification (``Cont`` stored);
* edges labeled with an axis (``/`` parent-child or ``//``
  ancestor-descendant) and a join semantics: ``j`` join, ``o`` outerjoin,
  ``s`` semijoin, ``nj`` nest join, ``no`` nest outerjoin.  Outer edges are
  the *optional* edges of §4.1; nest edges produce nested tuples;
* an order flag.

The same classes serve the Chapter 4 pattern dialects: a *conjunctive*
pattern uses only ``j``-edges and trivial formulas; *decorated* patterns add
value formulas; *optional* patterns add outer edges; *attribute* patterns
mark which of ID/L/V/C each return node stores; *nested* patterns add nest
edges.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, Optional

from ..algebra.formulas import TRUE, Formula
from ..xmldata.ids import ID_KINDS

__all__ = [
    "CHILD",
    "DESCENDANT",
    "JOIN",
    "OUTER",
    "SEMI",
    "NEST",
    "NEST_OUTER",
    "EDGE_SEMANTICS",
    "PatternNode",
    "PatternEdge",
    "Pattern",
]

CHILD = "/"
DESCENDANT = "//"

JOIN = "j"
OUTER = "o"
SEMI = "s"
NEST = "nj"
NEST_OUTER = "no"

EDGE_SEMANTICS = (JOIN, OUTER, SEMI, NEST, NEST_OUTER)


class PatternNode:
    """A XAM node: matching constraints plus stored-attribute flags."""

    __slots__ = (
        "name",
        "tag",
        "store_id",
        "id_required",
        "store_tag",
        "tag_required",
        "value_formula",
        "store_value",
        "value_required",
        "store_content",
        "edges",
        "parent_edge",
    )

    def __init__(
        self,
        tag: Optional[str] = None,
        store_id: Optional[str] = None,
        id_required: bool = False,
        store_tag: bool = False,
        tag_required: bool = False,
        value_formula: Formula = TRUE,
        store_value: bool = False,
        value_required: bool = False,
        store_content: bool = False,
        name: Optional[str] = None,
    ):
        if store_id is not None and store_id not in ID_KINDS:
            raise ValueError(f"unknown ID kind {store_id!r}")
        #: element tag / attribute name (``@…``) / ``#text``; ``None`` = *
        self.tag = tag
        self.store_id = store_id
        self.id_required = id_required
        self.store_tag = store_tag
        self.tag_required = tag_required
        self.value_formula = value_formula
        self.store_value = store_value
        self.value_required = value_required
        self.store_content = store_content
        self.name = name or ""
        self.edges: list[PatternEdge] = []
        self.parent_edge: Optional[PatternEdge] = None

    # -- structure ---------------------------------------------------------

    def add_child(
        self,
        child: "PatternNode",
        axis: str = DESCENDANT,
        semantics: str = JOIN,
    ) -> "PatternNode":
        edge = PatternEdge(self, child, axis, semantics)
        self.edges.append(edge)
        child.parent_edge = edge
        return child

    @property
    def parent(self) -> Optional["PatternNode"]:
        return self.parent_edge.parent if self.parent_edge else None

    @property
    def children(self) -> list["PatternNode"]:
        return [edge.child for edge in self.edges]

    def iter_subtree(self) -> Iterator["PatternNode"]:
        yield self
        for edge in self.edges:
            yield from edge.child.iter_subtree()

    # -- properties ---------------------------------------------------------

    @property
    def is_wildcard(self) -> bool:
        return self.tag is None

    @property
    def is_attribute(self) -> bool:
        return self.tag is not None and self.tag.startswith("@")

    @property
    def matches_any_tag(self) -> bool:
        return self.tag is None

    def stored_attrs(self) -> tuple[str, ...]:
        """The attribute labels of §4.1: ID, L (label/tag), V, C."""
        labels = []
        if self.store_id:
            labels.append("ID")
        if self.store_tag:
            labels.append("L")
        if self.store_value:
            labels.append("V")
        if self.store_content:
            labels.append("C")
        return tuple(labels)

    @property
    def is_return_node(self) -> bool:
        return bool(self.stored_attrs())

    def required_attrs(self) -> tuple[str, ...]:
        labels = []
        if self.id_required:
            labels.append("ID")
        if self.tag_required:
            labels.append("L")
        if self.value_required:
            labels.append("V")
        return tuple(labels)

    def matches_label(self, label: str) -> bool:
        """Tag-constraint test against a document/summary label."""
        if self.tag is None:
            # ``*`` matches elements and attributes but not text nodes.
            return label != "#text"
        return self.tag == label

    def copy_shallow(self) -> "PatternNode":
        return PatternNode(
            tag=self.tag,
            store_id=self.store_id,
            id_required=self.id_required,
            store_tag=self.store_tag,
            tag_required=self.tag_required,
            value_formula=self.value_formula,
            store_value=self.store_value,
            value_required=self.value_required,
            store_content=self.store_content,
            name=self.name,
        )

    def spec_string(self) -> str:
        """Node annotations in the text syntax, e.g. ``[id:s!, val=5]``."""
        specs = []
        if self.store_id:
            specs.append(f"id:{self.store_id}" + ("!" if self.id_required else ""))
        if self.store_tag:
            specs.append("tag" + ("!" if self.tag_required else ""))
        if self.store_value:
            specs.append("val" + ("!" if self.value_required else ""))
        if not self.value_formula.is_true:
            constant = self.value_formula.equality_constant()
            if constant is not None:
                specs.append(f"val={constant}")
            else:
                specs.append(f"val~{self.value_formula!r}")
        if self.store_content:
            specs.append("cont")
        return f"[{', '.join(specs)}]" if specs else ""

    def __repr__(self) -> str:
        tag = self.tag if self.tag is not None else "*"
        return f"{tag}{self.spec_string()}"


class PatternEdge:
    """An edge: axis (``/`` or ``//``) + join semantics."""

    __slots__ = ("parent", "child", "axis", "semantics")

    def __init__(self, parent: PatternNode, child: PatternNode, axis: str, semantics: str):
        if axis not in (CHILD, DESCENDANT):
            raise ValueError(f"unknown axis {axis!r}")
        if semantics not in EDGE_SEMANTICS:
            raise ValueError(f"unknown edge semantics {semantics!r}")
        self.parent = parent
        self.child = child
        self.axis = axis
        self.semantics = semantics

    @property
    def optional(self) -> bool:
        """Outer edges may lack matches without dropping the parent."""
        return self.semantics in (OUTER, NEST_OUTER)

    @property
    def nested(self) -> bool:
        return self.semantics in (NEST, NEST_OUTER)

    @property
    def semi(self) -> bool:
        return self.semantics == SEMI

    def __repr__(self) -> str:
        marker = "" if self.semantics == JOIN else f"{self.semantics}:"
        return f"{self.axis}{marker}{self.child!r}"


class Pattern:
    """A full XAM: a ⊤ root with annotated nodes and edges."""

    def __init__(self, ordered: bool = True):
        self.root = PatternNode(tag="#document", name="top")
        self.ordered = ordered

    # -- construction -------------------------------------------------------

    def finalize(self) -> "Pattern":
        """Assign default node names (``e1``, ``e2``…) in pre-order and
        validate the tree.  Idempotent; call after building."""
        taken = {node.name for node in self.nodes() if node.name}
        counter = itertools.count(1)
        for node in self.nodes():
            if not node.name:
                candidate = f"e{next(counter)}"
                while candidate in taken:
                    candidate = f"e{next(counter)}"
                taken.add(candidate)
                node.name = candidate
        names = [node.name for node in self.nodes()]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pattern node names: {names}")
        for node in self.nodes():
            if node.is_attribute and node.edges:
                raise ValueError(f"attribute node {node.name} cannot have children")
        return self

    def copy(self) -> "Pattern":
        clone = Pattern(ordered=self.ordered)

        def visit(node: PatternNode, into: PatternNode) -> None:
            for edge in node.edges:
                new_child = edge.child.copy_shallow()
                into.add_child(new_child, edge.axis, edge.semantics)
                visit(edge.child, new_child)

        visit(self.root, clone.root)
        return clone

    def map_nodes(self, transform: Callable[[PatternNode], None]) -> "Pattern":
        """Return a copy with ``transform`` applied to every non-root node."""
        clone = self.copy()
        for node in clone.nodes():
            transform(node)
        return clone

    # -- traversal ----------------------------------------------------------

    def nodes(self) -> list[PatternNode]:
        """All non-⊤ nodes in pre-order."""
        found = list(self.root.iter_subtree())
        return found[1:]

    def edges(self) -> list[PatternEdge]:
        collected: list[PatternEdge] = []

        def visit(node: PatternNode) -> None:
            for edge in node.edges:
                collected.append(edge)
                visit(edge.child)

        visit(self.root)
        return collected

    def node_by_name(self, name: str) -> PatternNode:
        for node in self.nodes():
            if node.name == name:
                return node
        raise KeyError(name)

    def return_nodes(self) -> list[PatternNode]:
        """Nodes storing at least one attribute, in pre-order (the return
        tuple layout)."""
        return [node for node in self.nodes() if node.is_return_node]

    # -- classification -------------------------------------------------------

    @property
    def is_conjunctive(self) -> bool:
        """Only join edges, no value formulas — the §4.1 base dialect."""
        return all(edge.semantics == JOIN for edge in self.edges()) and all(
            node.value_formula.is_true for node in self.nodes()
        )

    @property
    def has_optional_edges(self) -> bool:
        return any(edge.optional for edge in self.edges())

    @property
    def has_nested_edges(self) -> bool:
        return any(edge.nested for edge in self.edges())

    @property
    def has_required_attrs(self) -> bool:
        """Whether the XAM models an index (access restrictions, §2.2.2)."""
        return any(node.required_attrs() for node in self.nodes())

    def size(self) -> int:
        return len(self.nodes())

    # -- text form -------------------------------------------------------------

    def to_text(self) -> str:
        """Round-trippable text syntax (see :mod:`repro.core.xam_parser`)."""

        def render(node: PatternNode) -> str:
            label = node.tag if node.tag is not None else "*"
            text = label + node.spec_string()
            if node.edges:
                text += "{" + ", ".join(render_edge(e) for e in node.edges) + "}"
            return text

        def render_edge(edge: PatternEdge) -> str:
            marker = "" if edge.semantics == JOIN else f"{edge.semantics}:"
            return f"{edge.axis}{marker}{render(edge.child)}"

        inner = ", ".join(render_edge(e) for e in self.root.edges)
        prefix = "" if self.ordered else "unordered "
        return f"{prefix}root{{{inner}}}"

    def __repr__(self) -> str:
        return f"Pattern({self.to_text()})"

    # -- structural equality ------------------------------------------------------

    def structure_key(self) -> tuple:
        """A hashable key capturing the full structure (names excluded) —
        used for plan deduplication and tests."""

        def key(node: PatternNode) -> tuple:
            return (
                node.tag,
                node.store_id,
                node.id_required,
                node.store_tag,
                node.tag_required,
                node.store_value,
                node.value_required,
                node.store_content,
                hash(node.value_formula),
                tuple(
                    (edge.axis, edge.semantics, key(edge.child)) for edge in node.edges
                ),
            )

        return (self.ordered, key(self.root))

    def same_structure(self, other: "Pattern") -> bool:
        return self.structure_key() == other.structure_key()
