"""Pattern containment under summary constraints (thesis §4.4).

``p ⊑_S p'`` holds iff ``p(t) ⊆ p'(t)`` for every tree conforming to the
summary ``S`` (Definition 4.4.1).  The decision procedure follows
Proposition 4.4.1 and its extensions:

* build ``mod_S(p)`` (canonical trees with return tuples);
* for every canonical tree, check that its return tuple belongs to the
  evaluation of ``p'`` (or of some member of a union of views,
  Proposition 4.4.2) over the tree itself;
* decorated patterns add the value-formula implication of §4.4.2 — for
  unions, the exact check ``φ_{t_e} ⇒ ∨_j ψ_j`` over per-summary-path
  variables, decided by refuting ``φ ∧ ⋀_j ¬ψ_j`` through choice-function
  enumeration;
* attribute patterns require positionally identical stored attributes
  (Proposition 4.4.3);
* nested patterns add the nesting-sequence conditions of Proposition
  4.4.4, with the one-to-one-edge relaxation when the summary carries
  enhanced annotations.

Negative decisions exit at the first countermodel — the asymmetry measured
in §4.6 (negative tests faster than positive ones).
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Union as TypingUnion

from ..algebra.formulas import TRUE, Formula
from ..summary.enhanced import is_one_to_one_chain
from ..summary.path_summary import PathSummary
from .canonical import (
    CanonicalTree,
    CanonNode,
    admits_label,
    canonical_model,
    nesting_sequence,
    summary_embeddings,
    _strict_copy,
)
from .embedding import iter_embeddings, subtree_embeddable
from .xam import JOIN, NEST, NEST_OUTER, OUTER, Pattern, PatternNode

__all__ = ["is_contained", "is_equivalent", "ContainmentError"]

Views = TypingUnion[Pattern, Sequence[Pattern]]


#: cap on matching assignments enumerated per (view, canonical tree) when
#: collecting value-formula disjuncts — a safety valve against adversarial
#: wildcard patterns; reaching it can only make containment answer False
#: (conservative), never True.
MAX_PSI_ASSIGNMENTS = 256

#: cap on the disjuncts fed to the exact ``φ ⇒ ∨ψ`` refutation (its choice
#: enumeration is exponential in the number of disjuncts).  Most trees are
#: settled by the var-wise fast path; when they are not, only the first
#: MAX_PSI_DISJUNCTS distinct ψ participate — again conservative-only.
MAX_PSI_DISJUNCTS = 10


class ContainmentError(ValueError):
    """Raised when containment between the given patterns is ill-posed
    (mismatched arity is *not* an error — it simply fails — but malformed
    inputs are)."""


def is_contained(
    pattern: Pattern,
    views: Views,
    summary: PathSummary,
    relax_one_to_one: bool = True,
    pattern_returns: Optional[list[str]] = None,
    view_returns: Optional[list[list[str]]] = None,
    use_strong_edges: bool = True,
) -> bool:
    """Decide ``p ⊑_S (p'_1 ∪ … ∪ p'_m)``.

    ``views`` may be a single pattern or a sequence (union).  With
    ``relax_one_to_one`` the §4.4.5 nesting relaxation is applied when the
    summary carries edge annotations.  ``pattern_returns``/``view_returns``
    optionally fix the return-node alignment by node names (default:
    pre-order return nodes on both sides).
    """
    view_list = [views] if isinstance(views, Pattern) else list(views)
    if not view_list:
        raise ContainmentError("containment against an empty union")
    if view_returns is None:
        view_orders: list[Optional[list[str]]] = [None] * len(view_list)
    else:
        view_orders = list(view_returns)

    returns = _return_nodes(pattern, pattern_returns)
    kept: list[tuple[Pattern, Optional[list[str]]]] = []
    for view, order in zip(view_list, view_orders):
        if _attrs_compatible(returns, _return_nodes(view, order)):
            kept.append((view, order))
    if pattern.has_nested_edges or any(v.has_nested_edges for v, _ in kept):
        # condition 2a (per view): matching nesting depth per return node
        kept = [
            (v, order)
            for v, order in kept
            if _nesting_depths_match(pattern, v, pattern_returns, order)
        ]
        # condition 2b (across the union): every pattern embedding must be
        # matched by *some* view's embedding with compatible sequences
        if kept and not _nesting_sequences_covered(
            pattern, kept, summary, relax_one_to_one, pattern_returns
        ):
            if canonical_model(pattern, summary, returns=pattern_returns):
                return False
        pattern = _unnest(pattern)
        kept = [(_unnest(v), order) for v, order in kept]

    model = canonical_model(
        pattern, summary, returns=pattern_returns, use_strong_edges=use_strong_edges
    )
    if not model:
        return True  # unsatisfiable patterns are vacuously contained
    if not kept:
        return False
    for tree in model:
        if not _tree_covered(tree, kept):
            return False
    return True


def _return_nodes(pattern: Pattern, order: Optional[list[str]]) -> list[PatternNode]:
    if order is None:
        return pattern.return_nodes()
    return [pattern.node_by_name(name) for name in order]


def is_equivalent(
    pattern_a: Pattern,
    pattern_b: Pattern,
    summary: PathSummary,
    relax_one_to_one: bool = True,
    use_strong_edges: bool = True,
) -> bool:
    """S-equivalence = two-way containment (§4.4)."""
    return is_contained(
        pattern_a, pattern_b, summary, relax_one_to_one,
        use_strong_edges=use_strong_edges,
    ) and is_contained(
        pattern_b, pattern_a, summary, relax_one_to_one,
        use_strong_edges=use_strong_edges,
    )


# ---------------------------------------------------------------------------
# Attribute compatibility (Proposition 4.4.3, condition 1)
# ---------------------------------------------------------------------------

def _attrs_compatible(
    returns_p: list[PatternNode], returns_v: list[PatternNode]
) -> bool:
    if len(returns_p) != len(returns_v):
        return False
    return all(
        a.stored_attrs() == b.stored_attrs() for a, b in zip(returns_p, returns_v)
    )


# ---------------------------------------------------------------------------
# Nested patterns (Proposition 4.4.4)
# ---------------------------------------------------------------------------

def _nested_above(node: PatternNode) -> int:
    count = 0
    walk = node
    while walk.parent_edge is not None:
        if walk.parent_edge.semantics in (NEST, NEST_OUTER):
            count += 1
        walk = walk.parent_edge.parent
    return count


def _nesting_depths_match(
    pattern: Pattern,
    view: Pattern,
    pattern_returns: Optional[list[str]] = None,
    view_order: Optional[list[str]] = None,
) -> bool:
    """Proposition 4.4.4 condition 2(a)."""
    returns_p = _return_nodes(pattern, pattern_returns)
    returns_v = _return_nodes(view, view_order)
    return all(
        _nested_above(a) == _nested_above(b) for a, b in zip(returns_p, returns_v)
    )


def _nesting_sequences_covered(
    pattern: Pattern,
    views: list[tuple[Pattern, Optional[list[str]]]],
    summary: PathSummary,
    relax_one_to_one: bool,
    pattern_returns: Optional[list[str]] = None,
) -> bool:
    """Proposition 4.4.4 condition 2(b), union-aware: for every embedding
    of the pattern into the summary, *some* view has an embedding with the
    same return paths and compatible nesting sequences."""
    returns_p = _return_nodes(pattern, pattern_returns)
    strict_p = _strict_copy(pattern)
    rp = [strict_p.node_by_name(n.name) for n in returns_p]

    prepared = []
    for view, view_order in views:
        strict_v = _strict_copy(view)
        rv = [
            strict_v.node_by_name(n.name)
            for n in _return_nodes(view, view_order)
        ]
        prepared.append((strict_v, rv, summary_embeddings(strict_v, summary)))

    for e_p in summary_embeddings(strict_p, summary):
        return_paths = tuple(e_p[n].number for n in rp)
        ns_p = [nesting_sequence(strict_p, n, e_p) for n in rp]
        matched = False
        for strict_v, rv, embeddings_v in prepared:
            for e_v in embeddings_v:
                if tuple(e_v[n].number for n in rv) != return_paths:
                    continue
                ns_v = [nesting_sequence(strict_v, n, e_v) for n in rv]
                if all(
                    _sequences_compatible(a, b, summary, relax_one_to_one)
                    for a, b in zip(ns_p, ns_v)
                ):
                    matched = True
                    break
            if matched:
                break
        if not matched:
            return False
    return True


def _sequences_compatible(
    seq_a: tuple[int, ...],
    seq_b: tuple[int, ...],
    summary: PathSummary,
    relax_one_to_one: bool,
) -> bool:
    if len(seq_a) != len(seq_b):
        return False
    for num_a, num_b in zip(seq_a, seq_b):
        if num_a == num_b:
            continue
        if not relax_one_to_one:
            return False
        node_a = summary.node_by_number(num_a)
        node_b = summary.node_by_number(num_b)
        if node_a.is_ancestor_of(node_b):
            if not is_one_to_one_chain(node_a, node_b):
                return False
        elif node_b.is_ancestor_of(node_a):
            if not is_one_to_one_chain(node_b, node_a):
                return False
        else:
            return False
    return True


def _unnest(pattern: Pattern) -> Pattern:
    clone = pattern.copy()
    for edge in clone.edges():
        if edge.semantics == NEST:
            edge.semantics = JOIN
        elif edge.semantics == NEST_OUTER:
            edge.semantics = OUTER
    return clone


# ---------------------------------------------------------------------------
# Per-canonical-tree coverage
# ---------------------------------------------------------------------------

def _structural_admits(pattern_node: PatternNode, node: CanonNode) -> bool:
    return admits_label(pattern_node, node.label)


def _decorated_admits(pattern_node: PatternNode, node: CanonNode) -> bool:
    if not admits_label(pattern_node, node.label):
        return False
    if pattern_node.value_formula.is_true:
        return True
    return node.formula.implies(pattern_node.value_formula)


def _matching_assignments(
    view: Pattern, tree: CanonicalTree, admits, order: Optional[list[str]] = None
):
    """Embeddings of the view into the tree whose return tuple equals the
    tree's own return tuple, generated lazily.

    The return-node images are *constrained during the search* (a node
    paired with target ⊥ admits nothing); the optional-embedding rule
    "⊥ only when no match exists" is then re-verified per result against
    the unconstrained admission, with a memoized existence check.
    """
    view_returns = _return_nodes(view, order)
    targets = dict(zip(view_returns, tree.return_nodes))

    def children(node):
        return node.children

    def constrained(pattern_node: PatternNode, tree_node) -> bool:
        if pattern_node in targets:
            required = targets[pattern_node]
            return required is tree_node and admits(pattern_node, tree_node)
        return admits(pattern_node, tree_node)

    def guaranteed(pattern_node: PatternNode, node) -> bool:
        if pattern_node in targets:
            required = targets[pattern_node]
            return required is node and _decorated_admits(pattern_node, node)
        return _decorated_admits(pattern_node, node)

    memo: dict = {}
    for assignment in iter_embeddings(
        view, tree.root, children, constrained, guarantee=guaranteed
    ):
        valid = True
        for pattern_node, required in targets.items():
            if required is not None:
                continue
            if assignment.get(pattern_node) is not None:
                valid = False  # pragma: no cover - blocked by constrained()
                break
            # the ⊥ must be genuine: walk to the nearest mapped ancestor
            # and confirm no real embedding of the ⊥-branch exists there
            walk = pattern_node
            while (
                walk.parent_edge is not None
                and assignment.get(walk.parent_edge.parent) is None
            ):
                walk = walk.parent_edge.parent
            if walk.parent_edge is None:
                continue
            anchor = assignment.get(walk.parent_edge.parent)
            if anchor is not None and subtree_embeddable(
                walk, anchor, children, guaranteed, memo
            ):
                valid = False
                break
        if valid:
            yield assignment


def _tree_covered(
    tree: CanonicalTree, views: list[tuple[Pattern, Optional[list[str]]]]
) -> bool:
    """Conditions of Propositions 4.4.1/4.4.2 + the §4.4.2 formula check
    for one canonical tree.  Formula variables are the canonical-tree
    nodes themselves (see :meth:`CanonicalTree.var_formulas`)."""
    phi = tree.var_formulas()
    # Fast existence pass: an embedding whose every node's tree formula
    # implies its pattern formula covers the tree outright (subsumes the
    # var-wise check below and settles e.g. all positive containments).
    for view, order in views:
        for _assignment in _matching_assignments(
            view, tree, _decorated_admits, order
        ):
            return True
    psis: list[dict[int, Formula]] = []
    seen_psis: set[tuple] = set()
    for view, order in views:
        view_constrained = any(
            not node.value_formula.is_true for node in view.nodes()
        )
        enumerated = 0
        for assignment in _matching_assignments(view, tree, _structural_admits, order):
            enumerated += 1
            if enumerated > MAX_PSI_ASSIGNMENTS:
                break
            if not view_constrained:
                return True  # an unconstrained view covers the tree outright
            psi: dict[int, Formula] = {}
            for node, canon in assignment.items():
                if canon is None or node.value_formula.is_true:
                    continue
                existing = psi.get(id(canon), TRUE)
                psi[id(canon)] = existing.conjoin(node.value_formula)
            if not psi:
                return True
            # fast path: φ implies this ψ var-wise ⇒ the tree is covered by
            # this single assignment (the common case, e.g. any positive
            # containment where formulas line up)
            if all(
                phi.get(var, TRUE).implies(formula)
                for var, formula in psi.items()
            ):
                return True
            key = tuple(sorted((k, hash(v)) for k, v in psi.items()))
            if key not in seen_psis:
                seen_psis.add(key)
                psis.append(psi)
    if not psis:
        return False
    return _implies_disjunction(phi, psis[:MAX_PSI_DISJUNCTS])


def _implies_disjunction(
    phi: dict[int, Formula], psis: list[dict[int, Formula]]
) -> bool:
    """Exact test of ``φ ⇒ ψ_1 ∨ … ∨ ψ_m`` where each side is a
    conjunction of independent one-variable formulas.

    ``φ ∧ ⋀_j ¬ψ_j`` distributes into choice functions: for every way of
    picking one variable per ψ_j, the conjunct is satisfiable iff each
    variable's combined formula is.  The implication holds iff every choice
    is unsatisfiable.
    """
    variable_choices = [list(psi.items()) for psi in psis]
    for choice in itertools.product(*variable_choices):
        per_var: dict[int, Formula] = dict(phi)
        satisfiable = True
        for variable, psi_formula in choice:
            current = per_var.get(variable, TRUE)
            current = current.conjoin(psi_formula.negate())
            per_var[variable] = current
            if current.is_false:
                satisfiable = False
                break
        if satisfiable and all(f.satisfiable() for f in per_var.values()):
            return False
    return True
