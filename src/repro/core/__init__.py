"""The paper's primary contribution: XAMs, containment, rewriting, ULoad."""

from .xam import (
    CHILD,
    DESCENDANT,
    EDGE_SEMANTICS,
    JOIN,
    NEST,
    NEST_OUTER,
    OUTER,
    SEMI,
    Pattern,
    PatternEdge,
    PatternNode,
)
from .xam_parser import XAMParseError, parse_pattern, pattern_from_path
from .embedding import evaluate_pattern, return_tuples
from .semantics import (
    binding_signature,
    evaluate_algebraic,
    evaluate_with_bindings,
    tag_derived_collection,
    tuple_intersection,
)
from .canonical import (
    CanonicalTree,
    CanonNode,
    canonical_model,
    is_satisfiable,
    path_annotations,
    summary_embeddings,
)
from .containment import ContainmentError, is_contained, is_equivalent
from .minimize import (
    contractions,
    minimize_by_contraction,
    minimize_under_summary,
)
from .plan_pattern import GlueCondition, expand_view, merged_patterns
from .rewrite import DeepRename, Regroup, Rewriting, SatisfiesFormula, rewrite_pattern
from .uload import (
    Database,
    PatternResolution,
    PreparedQuery,
    QueryCancelled,
    QueryResult,
)
from .service import QueryService, QuerySession, QueryTimeout
from .replay import (
    ReplayDiff,
    ReplayReport,
    load_records,
    replay_file,
    replay_records,
)

__all__ = [
    "CHILD",
    "DESCENDANT",
    "EDGE_SEMANTICS",
    "JOIN",
    "NEST",
    "NEST_OUTER",
    "OUTER",
    "SEMI",
    "Pattern",
    "PatternEdge",
    "PatternNode",
    "XAMParseError",
    "parse_pattern",
    "pattern_from_path",
    "evaluate_pattern",
    "return_tuples",
    "binding_signature",
    "evaluate_algebraic",
    "evaluate_with_bindings",
    "tag_derived_collection",
    "tuple_intersection",
    "CanonicalTree",
    "CanonNode",
    "canonical_model",
    "is_satisfiable",
    "path_annotations",
    "summary_embeddings",
    "ContainmentError",
    "is_contained",
    "is_equivalent",
    "contractions",
    "minimize_by_contraction",
    "minimize_under_summary",
    "GlueCondition",
    "expand_view",
    "merged_patterns",
    "DeepRename",
    "Regroup",
    "Rewriting",
    "SatisfiesFormula",
    "rewrite_pattern",
    "Database",
    "PatternResolution",
    "PreparedQuery",
    "QueryCancelled",
    "QueryResult",
    "QueryService",
    "QuerySession",
    "QueryTimeout",
    "ReplayDiff",
    "ReplayReport",
    "load_records",
    "replay_file",
    "replay_records",
]
