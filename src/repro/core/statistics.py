"""Summary-based cardinality estimation for tree patterns.

The thesis notes (§1.2.4) that tree patterns are "the common abstraction
for XML query cardinality estimations" and that path summaries serve "as
a support for statistics".  This module follows that lead: every summary
node records how many document nodes map onto its path (the φ-image
cardinality collected during summary construction), and a pattern's
cardinality is estimated per embedding:

* a pattern node contributes the cardinality of the summary node it maps
  to, scaled by its parent's share (independence assumption between
  sibling branches — the classic estimator);
* value predicates apply a default selectivity;
* optional/nested edges do not reduce the parent's count (outer
  semantics); semijoin branches apply a containment factor.

The estimator powers :func:`rank_rewritings`: given several S-equivalent
plans, prefer the one reading the fewest view tuples — a small but real
cost-based access-path selection on top of Chapter 5's rewriting, in the
spirit of the access-path selection the introduction celebrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..engine.context import StatisticsProvider
from ..storage.catalog import Catalog
from ..summary.path_summary import PathSummary, SummaryNode
from .canonical import admits_label
from .embedding import iter_embeddings
from .rewrite import Rewriting
from .xam import Pattern, PatternNode

__all__ = [
    "CardinalityEstimate",
    "CatalogStatistics",
    "estimate_pattern_cardinality",
    "estimate_view_size",
    "rank_rewritings",
    "DEFAULT_PREDICATE_SELECTIVITY",
]

DEFAULT_PREDICATE_SELECTIVITY = 0.1


@dataclass(frozen=True)
class CardinalityEstimate:
    """An estimate with the embeddings that produced it."""

    expected: float
    per_embedding: tuple[float, ...]

    def __float__(self) -> float:
        return self.expected


def estimate_pattern_cardinality(
    pattern: Pattern,
    summary: PathSummary,
    predicate_selectivity: float = DEFAULT_PREDICATE_SELECTIVITY,
) -> CardinalityEstimate:
    """Expected number of result tuples of the pattern over documents
    conforming to the summary (sum over embeddings — each embedding is a
    disjoint family of matches)."""
    estimates = []

    def children(snode: SummaryNode):
        return list(snode.children.values())

    def admits(pattern_node: PatternNode, snode: SummaryNode) -> bool:
        return admits_label(pattern_node, snode.label)

    seen: set[tuple] = set()
    for embedding in iter_embeddings(pattern, summary.root, children, admits):
        key = tuple(
            (node.name, snode.number if snode is not None else None)
            for node, snode in sorted(embedding.items(), key=lambda kv: kv[0].name)
        )
        if key in seen:
            continue
        seen.add(key)
        estimates.append(
            _estimate_embedding(pattern, embedding, predicate_selectivity)
        )
    return CardinalityEstimate(sum(estimates), tuple(estimates))


def _estimate_embedding(
    pattern: Pattern,
    embedding: dict[PatternNode, SummaryNode],
    predicate_selectivity: float,
) -> float:
    """Expected tuples for one embedding: per top-level branch, the
    target path's cardinality times a multiplicative factor per edge —
    join edges multiply by children-per-parent, semijoins filter,
    outerjoins never drop below 1, nest edges contribute one collection
    per parent."""

    def ratio(edge) -> float:
        child = embedding.get(edge.child)
        parent = embedding.get(edge.parent)
        if child is None or parent is None:
            return 0.0  # optional branch without a match
        parent_count = max(parent.cardinality, 1)
        value = child.cardinality / parent_count
        if not edge.child.value_formula.is_true:
            value *= predicate_selectivity
        return value

    def branch_factor(node: PatternNode) -> float:
        factor = 1.0
        for edge in node.edges:
            per_parent = ratio(edge) * branch_factor(edge.child)
            if edge.semi:
                factor *= min(1.0, per_parent)
            elif edge.nested:
                factor *= 1.0  # one collection per parent tuple
            elif edge.optional:
                factor *= max(1.0, per_parent)
            else:
                factor *= per_parent
        return factor

    total = 1.0
    for edge in pattern.root.edges:
        target = embedding.get(edge.child)
        if target is None:
            if edge.optional:
                continue
            return 0.0
        count = float(max(target.cardinality, 0))
        if not edge.child.value_formula.is_true:
            count *= predicate_selectivity
        total *= count * branch_factor(edge.child)
    return total


def estimate_view_size(
    view: Pattern,
    summary: PathSummary,
    predicate_selectivity: float = DEFAULT_PREDICATE_SELECTIVITY,
) -> float:
    """Estimated stored-tuple count of a materialized XAM."""
    return estimate_pattern_cardinality(
        view, summary, predicate_selectivity
    ).expected


class CatalogStatistics(StatisticsProvider):
    """The database-backed statistics provider the
    :class:`~repro.engine.context.ExecutionContext` consults.

    Base relations answer with their *actual* stored size when a store is
    at hand, falling back to the summary estimate of the catalog entry
    describing them; tree patterns answer with the summary estimator.

    ``overrides`` pins answers by key — a relation/view name for
    :meth:`relation_size`, a pattern's ``to_text()`` form for
    :meth:`pattern_cardinality` — and is consulted *first*.  The database
    shares its ``statistics_overrides`` dict here, which is the lever for
    reproducing stale-statistics incidents (pin a wrong cardinality, watch
    rewriting ranking flip and the sentinel flag the misestimate) without
    mutating documents.
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        summary: Optional[PathSummary] = None,
        store=None,
        predicate_selectivity: float = DEFAULT_PREDICATE_SELECTIVITY,
        overrides: Optional[dict[str, float]] = None,
    ):
        self.catalog = catalog
        self.summary = summary
        self.store = store
        self.predicate_selectivity = predicate_selectivity
        self.overrides = overrides if overrides is not None else {}

    def relation_size(self, name: str) -> Optional[float]:
        pinned = self.overrides.get(name)
        if pinned is not None:
            return float(pinned)
        if self.store is not None and name in self.store:
            return float(len(self.store[name]))
        if self.catalog is not None and self.summary is not None and name in self.catalog:
            return estimate_view_size(
                self.catalog[name].pattern, self.summary, self.predicate_selectivity
            )
        return None

    def pattern_cardinality(self, pattern: Pattern) -> Optional[float]:
        pinned = self.overrides.get(pattern.to_text())
        if pinned is not None:
            return float(pinned)
        if self.summary is None:
            return None
        return estimate_pattern_cardinality(
            pattern, self.summary, self.predicate_selectivity
        ).expected


def rank_rewritings(
    rewritings: Sequence[Rewriting],
    catalog: Catalog,
    summary: PathSummary,
    store=None,
    statistics: Optional[StatisticsProvider] = None,
) -> list[Rewriting]:
    """Order S-equivalent rewritings by estimated input volume.

    The volume of each rewriting is the summed size of the views it reads,
    answered by a statistics provider (actual sizes when a store is at
    hand, summary estimates otherwise).  A view with *unknown* statistics
    is not priced at infinity — that would rank a tiny fresh view behind a
    full base scan — instead the cost key is
    ``(unknown view count, known volume, operator count)``: rewritings
    touching fewer statistics-less views win, known volume breaks the tie,
    plan size breaks the rest.  ``statistics`` lets callers share one
    :class:`~repro.engine.context.ExecutionContext` provider across
    ranking, compilation and EXPLAIN.
    """
    if statistics is None:
        statistics = CatalogStatistics(catalog, summary, store)

    def cost(rewriting: Rewriting) -> tuple[int, float, int]:
        unknown = 0
        volume = 0.0
        for name in rewriting.views:
            size = statistics.relation_size(name)
            if size is None:
                unknown += 1
            else:
                volume += size
        return (unknown, volume, rewriting.plan.operator_count())

    return sorted(rewritings, key=cost)
