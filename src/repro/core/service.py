"""The concurrent query service: sessions, a plan cache, a worker pool.

``Database`` is a single-threaded library object; this module wraps it in
the serving layer the ROADMAP's north star asks for.  A
:class:`QueryService` owns

* a versioned :class:`~repro.engine.plan_cache.PlanCache` keyed on
  ``(normalized query text, prefer_views, physical, catalog version)``,
  so repeated queries skip the parse → translate → rewrite-search →
  assemble (and, on physical paths, compile) pipeline entirely;
* a bounded :class:`~concurrent.futures.ThreadPoolExecutor` giving
  inter-query parallelism with per-query timeouts and cooperative
  cancellation (a timed-out query is cancelled if still queued, and asked
  to stop at its next unit boundary if already running);
* :class:`QuerySession` handles that record per-session latency
  percentiles.

Consistency model — the cache-invalidation protocol:

1. every mutation (register/drop a XAM, load a document, refresh
   statistics) bumps ``Database.catalog_version``;
2. plans are stamped with the version current when they were prepared;
3. a lookup whose stamp mismatches drops the entry (counted as an
   invalidation) and re-prepares — no mutation ever has to know *which*
   queries it affects.

Mutations should go through the service's ``add_view`` / ``drop_view`` /
``add_document_xml`` / ``refresh_statistics`` wrappers: they serialize
writers against each other and eagerly purge stale plans.  Readers are
never blocked — already-running queries keep executing their (still
S-equivalent) old plans against copy-on-write store snapshots.

Cache-hit/miss/invalidation events are recorded into each query's
:class:`~repro.engine.context.ExecutionContext` counters, so they surface
through ``query(stats=True)`` (``result.counters``) and ``explain``
(rendered under ``counters:``) exactly like the per-operator metrics.
"""

from __future__ import annotations

import math
import random
import threading
import time
import weakref
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Optional, Sequence

from ..engine.admission import (
    AdaptiveConcurrencyLimiter,
    AdmissionController,
    TokenBucket,
    guard_exit,
    resolve_adaptive_limit,
    resolve_queue_capacity,
    resolve_retry_budget,
)
from ..engine.context import ExecutionContext
from ..engine.metrics import MetricsRegistry, register_process_collector
from ..engine.plan_cache import (
    CacheStats,
    PinnedPlan,
    PlanCache,
    PlanPinStore,
    normalize_query,
)
from ..engine.profiler import Profiler
from ..engine.qlog import QueryLog, build_record
from ..engine.sentinel import PlanRegressionSentinel, SentinelConfig
from ..engine.tracing import SlowQueryLog
from ..errors import QueryRejected, ReproError, TransientStorageFault
from .uload import (
    Database,
    ExplainReport,
    PreparedQuery,
    QueryCancelled,
    QueryResult,
)
from .xam import Pattern

__all__ = [
    "QueryService",
    "QuerySession",
    "QueryTimeout",
    "QueryCancelled",
    "QueryRejected",
    "LatencyRecorder",
    "RetryPolicy",
]


class QueryTimeout(ReproError, TimeoutError):
    """A query exceeded its deadline; it was cancelled if still queued,
    or asked to stop at its next unit boundary if already running.
    Subclasses both :class:`~repro.errors.ReproError` (the typed fault
    hierarchy the CLI switches on) and :class:`TimeoutError` (what
    callers of a timeout-bounded API expect)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for transient storage faults.

    The service retries a query whose execution raised
    :class:`~repro.errors.TransientStorageFault` up to
    ``max_attempts`` total attempts, sleeping
    ``base_delay * multiplier**(retry-1)`` (capped at ``max_delay``)
    scaled by a random factor in ``[1, 1+jitter]`` between attempts.
    Retries never cross the query's deadline: if the next sleep would
    overshoot it, the fault propagates instead.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.5
    jitter: float = 0.5

    def delay(self, retry: int, rng: random.Random) -> float:
        """Sleep before retry number ``retry`` (1-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (retry - 1))
        return raw * (1.0 + self.jitter * rng.random())


class LatencyRecorder:
    """Thread-safe latency sample sink with percentile readout.

    Every query contributes a sample, tagged with its outcome (``"ok"``,
    ``"error"``, ``"timeout"``) — percentiles over successes only would
    paint exactly the wrong picture under faults, where the slowest
    queries are the ones that died.

    Samples live in a **bounded ring** (``capacity`` newest samples,
    default 10k): under sustained traffic an unbounded list is a memory
    leak, and recent samples are the ones percentile readouts should
    describe anyway.  Overwritten samples are counted in :attr:`dropped`
    (and, when a :class:`~repro.engine.metrics.MetricsRegistry` is
    attached, in the ``latency.samples_dropped`` counter, so the loss is
    visible on ``/metrics``, not silent).  An attached registry also
    receives every sample into the ``query.latency.seconds`` histogram,
    labeled by outcome — the unbounded-horizon aggregate that survives
    ring wraparound.
    """

    #: default ring capacity — ~160 KB of samples at sys.getsizeof scale,
    #: enough for percentile stability, bounded under any traffic
    DEFAULT_CAPACITY = 10_000

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        registry: Optional[MetricsRegistry] = None,
        histogram: str = "query.latency.seconds",
    ) -> None:
        if capacity < 1:
            raise ValueError("latency ring capacity must be >= 1")
        self.capacity = capacity
        self._samples: deque[tuple[float, str]] = deque(maxlen=capacity)
        self._dropped = 0
        self._lock = threading.Lock()
        self._registry = registry
        self._histogram = histogram

    def record(self, seconds: float, outcome: str = "ok") -> None:
        with self._lock:
            if len(self._samples) == self.capacity:
                self._dropped += 1
            self._samples.append((seconds, outcome))
        if self._registry is not None:
            self._registry.observe(self._histogram, seconds, outcome=outcome)
            if self._dropped:
                self._registry.counter(
                    "latency.samples_dropped",
                    "latency ring-buffer samples overwritten before readout",
                ).set_total(self._dropped)

    @property
    def dropped(self) -> int:
        """Samples overwritten by ring wraparound (lifetime total)."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def outcomes(self) -> dict[str, int]:
        """Sample count per outcome tag (retained samples only)."""
        counts: dict[str, int] = {}
        with self._lock:
            for _, outcome in self._samples:
                counts[outcome] = counts.get(outcome, 0) + 1
        return counts

    def percentile(self, pct: float) -> Optional[float]:
        """True nearest-rank percentile of the retained latencies
        (seconds), failures and timeouts included; None when nothing was
        recorded.

        Nearest-rank: the P-th percentile of n ordered samples is the
        value at 1-based rank ``ceil(P/100 * n)`` — index
        ``ceil(P/100 * n) - 1``.  (The previous ``round(P/100 * (n-1))``
        was *not* nearest-rank: Python's round-half-even pulled e.g. the
        p40 of 5 samples down a rank, biasing reported percentiles low.)
        """
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(seconds for seconds, _ in self._samples)
        rank = math.ceil(pct / 100.0 * len(ordered))
        return ordered[min(len(ordered) - 1, max(0, rank - 1))]

    def percentiles(self, pcts: Sequence[float] = (50, 90, 99)) -> dict[float, float]:
        return {
            pct: value
            for pct in pcts
            if (value := self.percentile(pct)) is not None
        }

    def render(self) -> str:
        if not len(self):
            return "no queries recorded"
        parts = [f"n={len(self)}"]
        for pct, value in self.percentiles().items():
            parts.append(f"p{pct:g}={value * 1000:.2f}ms")
        outcomes = self.outcomes()
        if set(outcomes) != {"ok"}:
            parts.append(
                "outcomes="
                + ",".join(f"{k}:{v}" for k, v in sorted(outcomes.items()))
            )
        if self.dropped:
            parts.append(f"dropped={self.dropped}")
        return " ".join(parts)


@dataclass(eq=False)  # identity semantics: entries live in the pending set
class _PendingQuery:
    """Book-keeping for one in-flight query: the cooperative stop flag the
    execution polls at unit boundaries."""

    stop: threading.Event

    def should_stop(self) -> bool:
        return self.stop.is_set()


class QuerySession:
    """A named handle onto the service with its own latency history.

    Sessions are cheap; a connection-per-client server would make one per
    client.  All sessions share the service's plan cache and worker pool.
    """

    def __init__(self, service: "QueryService", name: str):
        self.service = service
        self.name = name
        # session recorders are registry-less: the service-level recorder
        # already feeds every sample into the shared histogram, and
        # feeding it twice would double-count
        self.latency = LatencyRecorder(capacity=service.latency_capacity)

    def query(self, query: str, **kwargs) -> QueryResult:
        return self.service.query(query, session=self, **kwargs)

    def submit(self, query: str, **kwargs) -> Future:
        return self.service.submit(query, session=self, **kwargs)

    def explain(self, query: str, **kwargs) -> ExplainReport:
        return self.service.explain(query, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<QuerySession {self.name} {self.latency.render()}>"


def _shutdown_service_at_exit(service: "QueryService") -> None:
    """Exit-guard hook (see :func:`~repro.engine.admission.guard_exit`):
    set every cooperative stop flag and cancel queued futures so the
    worker pool's interpreter-exit join cannot hang on a saturated
    queue.  Unbound on purpose — the guard must not keep services
    alive."""
    service.cancel_all()
    service.shutdown(wait=False, cancel_pending=True)


class QueryService:
    """Thread-safe query front-end over one :class:`Database`."""

    def __init__(
        self,
        db: Database,
        cache_capacity: int = 128,
        max_workers: int = 4,
        default_timeout: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_seed: int = 0,
        latency_capacity: int = LatencyRecorder.DEFAULT_CAPACITY,
        slow_query_threshold: Optional[float] = None,
        slow_query_capacity: int = 64,
        qlog: "QueryLog | None | bool" = None,
        sentinel_config: Optional[SentinelConfig] = None,
        auto_refresh_statistics: bool = True,
        queue_capacity: Optional[int] = None,
        adaptive_limit: Optional[bool] = None,
        min_workers: int = 1,
        target_latency: Optional[float] = None,
        retry_budget: Optional[float] = None,
        retry_budget_refill: Optional[float] = None,
        background_share: float = 0.5,
        profiler: "Profiler | None | bool" = None,
        sample_hz: Optional[float] = None,
    ):
        self.db = db
        self.cache = PlanCache(cache_capacity)
        self.max_workers = max_workers
        self.default_timeout = default_timeout
        self.retry_policy = retry_policy or RetryPolicy()
        self._retry_rng = random.Random(retry_seed)
        self._retry_rng_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-query"
        )
        #: the overload-protection spine (shed-before-timeout invariant):
        #: a bounded admission queue in front of the pool, an AIMD
        #: concurrency limiter inside it, and a shared retry budget
        #: bounding PR 3's per-query retries.  Every clock is
        #: ``ExecutionContext.clock`` so admission deadlines, queue waits
        #: and query deadlines are all on the same timeline.
        self.limiter: Optional[AdaptiveConcurrencyLimiter] = (
            AdaptiveConcurrencyLimiter(
                max_limit=max_workers,
                min_limit=max(1, min(min_workers, max_workers)),
                target_latency=target_latency,
                clock=ExecutionContext.clock,
            )
            if resolve_adaptive_limit(adaptive_limit)
            else None
        )
        self.admission = AdmissionController(
            queue_capacity=resolve_queue_capacity(queue_capacity, max_workers),
            limiter=self.limiter,
            background_share=background_share,
            clock=ExecutionContext.clock,
        )
        budget_capacity, budget_refill = resolve_retry_budget(
            retry_budget, retry_budget_refill
        )
        self.retry_budget = TokenBucket(
            budget_capacity, budget_refill, clock=ExecutionContext.clock
        )
        self._mutate_lock = threading.RLock()
        self._sessions: dict[str, QuerySession] = {}
        self._session_lock = threading.Lock()
        self._session_counter = 0
        self._closed = False
        #: stop flags of every admitted-but-unfinished query, so
        #: ``cancel_all`` (and the exit guard) can ask running work to
        #: stop at its next unit boundary
        self._pending: set[_PendingQuery] = set()
        self._pending_lock = threading.Lock()
        #: the database's process-wide metrics registry — the one sink the
        #: plan cache, breakers, fault injections, retries and latency
        #: histogram all land in (and ``/metrics`` reads from)
        self.metrics: MetricsRegistry = db.metrics
        self.latency_capacity = latency_capacity
        #: service-wide latency recorder: every query is sampled here
        #: (sessions keep their own, registry-less recorders on top)
        self.latency = LatencyRecorder(
            capacity=latency_capacity, registry=self.metrics
        )
        #: bounded log of span trees for queries over the latency
        #: threshold (None = disabled)
        self.slow_queries = SlowQueryLog(
            threshold=slow_query_threshold, capacity=slow_query_capacity
        )
        #: structured query log: every execution appends one JSONL record
        #: (fingerprint, checksum, est-vs-actual rows, latency, counters)
        #: — the substrate of ``repro record`` / ``repro replay``.
        #: ``qlog=None`` honours the ``REPRO_QLOG`` env var (memory-only
        #: ring otherwise, so ``/qlog`` always answers); ``qlog=False``
        #: disables capture entirely; an instance is used as given.
        self._owns_qlog = False
        if qlog is False:
            self.qlog: Optional[QueryLog] = None
        elif qlog is None or qlog is True:
            # explicit None check: a fresh QueryLog is len()==0 and falsy
            from_env = QueryLog.from_env()
            self.qlog = from_env if from_env is not None else QueryLog()
            self._owns_qlog = True
        else:
            self.qlog = qlog
        if self.qlog is not None:
            self.qlog.bind_registry(self.metrics)
        #: live plan-regression watch: fingerprint flips, cardinality
        #: misestimates, and (after repeated misestimates) an automatic
        #: statistics refresh closing the telemetry → planner loop
        self.sentinel = PlanRegressionSentinel(
            config=sentinel_config,
            registry=self.metrics,
            on_refresh=self.refresh_statistics if auto_refresh_statistics else None,
        )
        #: resource profiler (attributed ring + optional continuous
        #: sampler).  ``None`` auto-attaches one when the database runs
        #: with attributed profiling or a sampling rate was requested;
        #: ``False`` disables (the ``/profile`` route then 404s);
        #: an instance is used as given.
        if profiler is False:
            self.profiler: Optional[Profiler] = None
        elif isinstance(profiler, Profiler):
            self.profiler = profiler
        elif profiler is True or db.profile or sample_hz:
            self.profiler = Profiler(
                registry=self.metrics, sample_hz=sample_hz
            )
        else:
            self.profiler = None
        if self.profiler is not None:
            self.profiler.start()
        self._register_metric_families()
        register_process_collector(self.metrics)
        self.cache.register_metrics(self.metrics)
        self.db.compiled_plans.register_metrics(
            self.metrics, prefix="compiled_plans"
        )
        self.db.plan_pins.register_metrics(self.metrics)
        self._register_admission_collector()
        # non-daemon pool threads are joined at interpreter exit; the
        # guard cancels saturated queues first so SIGTERM exits promptly
        guard_exit(self, _shutdown_service_at_exit)

    def _register_metric_families(self) -> None:
        """Pre-register every metric family the service can emit, so a
        scrape of a freshly started (or simply healthy) process already
        shows the full schema — families must not pop into existence only
        once something goes wrong."""
        registry = self.metrics
        registry.counter("plan_cache.hit", "plan cache lookups served from cache")
        registry.counter("plan_cache.miss", "plan cache lookups that had to prepare")
        registry.counter(
            "plan_cache.invalidated",
            "plan cache entries dropped on version-mismatch lookups",
        )
        registry.counter(
            "plan_pin.hit", "patterns whose access path a pinned plan applied"
        )
        registry.counter(
            "plan_pin.unmatched",
            "pinned choices whose signature matched nothing "
            "(fell back to cost-model ranking)",
        )
        registry.counter(
            "plan_pin.invalidate",
            "pinned plans dropped on catalog-version bumps",
        )
        registry.counter(
            "plan_compile.hit", "compiled batch artifacts reused from cache"
        )
        registry.counter(
            "plan_compile.miss", "batch plan-to-closure compilations"
        )
        registry.counter(
            "plan_compile.invalidate",
            "compiled batch artifacts dropped on catalog-version bumps",
        )
        registry.counter(
            "executor.fallback",
            "plans run on the iterator engine because the batch path "
            "does not cover an operator",
        )
        registry.counter(
            "fallback.materialized_rows",
            "input rows materialized by PLogicalFallback substitutions",
        )
        registry.counter("retry.attempts", "transient-fault retry attempts")
        registry.counter("retry.recovered", "queries that succeeded after retries")
        registry.counter("retry.exhausted", "queries that ran out of retries")
        registry.counter("breaker.opened", "circuit-breaker open transitions")
        registry.counter(
            "degraded.module_failures", "access-module failures during execution"
        )
        registry.counter(
            "degraded.reroutes", "patterns rerouted to a fallback rewriting"
        )
        registry.counter(
            "degraded.patterns", "patterns answered by a degraded access path"
        )
        registry.counter(
            "degraded.base_fallbacks", "patterns that fell back to the base store"
        )
        for kind in ("transient", "corrupt", "latency"):
            registry.counter(
                f"faults.injected.{kind}", f"injected {kind} faults (chaos mode)"
            )
        registry.counter(
            "shard.fanout", "pattern scatters fanned out across shards"
        )
        registry.counter(
            "shard.merge", "per-document result runs merged back together"
        )
        registry.counter(
            "shard.fallback",
            "patterns whose plan was not shard-distributive "
            "(gathered re-execution against the full store)",
        )
        registry.counter(
            "shard.degraded",
            "shards dropped from a scatter (breaker open / deadline missed)",
        )
        registry.counter(
            "latency.samples_dropped",
            "latency ring-buffer samples overwritten before readout",
        )
        registry.counter("queries.timeout", "queries cancelled on deadline")
        registry.histogram(
            "query.latency.seconds",
            "end-to-end query latency by outcome",
            labelnames=("outcome",),
        )
        registry.counter(
            "slow_queries.captured", "queries logged over the slow-query threshold"
        )
        registry.counter(
            "planner.plan_flip",
            "queries re-prepared to a different plan fingerprint",
        )
        registry.counter(
            "planner.misestimate",
            "pattern cardinality estimates off beyond the sentinel factor",
        )
        registry.counter(
            "planner.stats_refresh",
            "statistics refreshes triggered by repeated misestimates",
        )
        registry.counter(
            "admission.admitted", "queries admitted past the bounded queue"
        )
        registry.counter(
            "admission.shed",
            "queries rejected by admission control, by priority and reason",
            labelnames=("priority", "reason"),
        )
        registry.histogram(
            "admission.queue_wait.seconds",
            "measured wait between admission and worker pickup",
        )
        registry.counter(
            "retry_budget.spent", "retry-budget tokens spent on backoff retries"
        )
        registry.counter(
            "retry_budget.exhausted",
            "retries denied because the shared budget was empty",
        )
        registry.counter(
            "retry_budget.degraded_fallbacks",
            "budget-exhausted retries converted to degraded fallback "
            "(faulting module force-opened, query rerouted immediately)",
        )
        registry.counter(
            "hedge.launched", "hedge subplans issued against straggler shards"
        )
        registry.counter(
            "hedge.wins", "scatters resolved by the hedge finishing first"
        )
        registry.counter(
            "hedge.primary_wins",
            "scatters where the original shard task beat its hedge",
        )
        registry.counter(
            "profiler.samples", "stack samples aggregated by the sampler"
        )
        registry.counter(
            "profiler.dropped",
            "stack samples dropped at the distinct-stack bound",
        )
        registry.counter(
            "profiler.queries", "attributed query profiles recorded"
        )
        registry.counter(
            "profiler.shard_cpu_ms",
            "shard-task CPU milliseconds attributed under merge spans",
        )

    def _register_admission_collector(self) -> None:
        """Scrape-time gauges for the overload-protection state (pull
        model, weakly referenced — the plan-cache collector idiom)."""
        registry = self.metrics
        registry.gauge(
            "admission.queue_depth", "admitted queries waiting for a worker"
        )
        registry.gauge(
            "admission.limit", "current adaptive concurrency limit"
        )
        registry.gauge(
            "admission.inflight", "queries holding a concurrency slot"
        )
        registry.gauge(
            "admission.ready", "readiness (1 = ready, 0 = sustained shed)"
        )
        registry.gauge(
            "retry_budget.tokens", "retry-budget tokens currently available"
        )

        self_ref = weakref.ref(self)

        def collect(reg) -> None:
            service = self_ref()
            if service is None:  # don't pin dead services to the registry
                reg.unregister_collector(collect)
                return
            reg.set_gauge("admission.queue_depth", service.admission.depth)
            limiter = service.limiter
            reg.set_gauge(
                "admission.limit",
                limiter.limit if limiter is not None else service.max_workers,
            )
            reg.set_gauge(
                "admission.inflight",
                limiter.inflight if limiter is not None else 0,
            )
            reg.set_gauge("admission.ready", 1.0 if service.ready() else 0.0)
            reg.set_gauge("retry_budget.tokens", service.retry_budget.tokens)
            reg.counter("admission.admitted").set_total(
                service.admission.admitted
            )

        registry.register_collector(collect)

    # -- sessions -----------------------------------------------------------

    def session(self, name: Optional[str] = None) -> QuerySession:
        """A (new or existing) named session handle."""
        with self._session_lock:
            if name is None:
                self._session_counter += 1
                name = f"session-{self._session_counter}"
            if name not in self._sessions:
                self._sessions[name] = QuerySession(self, name)
            return self._sessions[name]

    def sessions(self) -> list[QuerySession]:
        with self._session_lock:
            return list(self._sessions.values())

    # -- plan cache ---------------------------------------------------------

    def _lookup(
        self,
        query: str,
        prefer_views: bool,
        physical: bool,
        ctx: ExecutionContext,
    ) -> tuple[PreparedQuery, tuple]:
        """Cached prepared plan for the query (and its cache key),
        preparing on miss.  The hit/miss/invalidation outcome is recorded
        into ``ctx.counters`` (the per-query sink) — totals live in
        :meth:`cache_stats`."""
        key = (normalize_query(query), prefer_views, physical)
        version = self.db.catalog_version
        prepared, outcome = self.cache.lookup(key, version)
        ctx.bump("plan_cache.hit", 1.0 if outcome == "hit" else 0.0)
        ctx.bump("plan_cache.miss", 1.0 if outcome != "hit" else 0.0)
        ctx.bump("plan_cache.invalidated", 1.0 if outcome == "stale" else 0.0)
        ctx.event(f"cache.{outcome}")
        if prepared is None:
            prepared = self.db.prepare(query, prefer_views, context=ctx)
            self.cache.put(key, prepared, version)
        return prepared, key

    def cache_stats(self) -> CacheStats:
        return self.cache.stats()

    def invalidate(self) -> int:
        """Drop every cached plan (e.g. after out-of-band mutations made
        directly on the wrapped database)."""
        return self.cache.clear()

    # -- querying -----------------------------------------------------------

    def _shed(
        self,
        query: str,
        reason: str,
        priority: str,
        wait_estimate: float,
        queue_depth: int,
    ) -> "QueryRejected":
        """Account one shed query — counters, a (short) trace, a qlog
        record stamped with the admission outcome — and build the typed
        rejection for the caller to raise."""
        self.metrics.inc("admission.shed", priority=priority, reason=reason)
        retry_after = round(wait_estimate, 6) if wait_estimate else None
        admission = {
            "outcome": "shed",
            "reason": reason,
            "priority": priority,
            "queue_depth": queue_depth,
        }
        if retry_after is not None:
            admission["retry_after"] = retry_after
        tracer = self.db.tracer
        if tracer is not None:
            trace = tracer.start_trace("admission.shed")
            trace.event("admission.shed", query=query, **admission)
            trace.finish("shed")
        if self.qlog is not None:
            self.qlog.record(
                build_record(
                    normalize_query(query),
                    None,
                    0.0,
                    "rejected",
                    error="QueryRejected",
                    admission=admission,
                )
            )
        hint = (
            f" (retry after ~{retry_after:g}s)" if retry_after else ""
        )
        return QueryRejected(
            f"admission control shed this query ({reason}){hint}: {query!r}",
            reason=reason,
            priority=priority,
            retry_after=retry_after,
        )

    def _execute(
        self,
        query: str,
        prefer_views: bool,
        physical: bool,
        stats: bool,
        session: Optional[QuerySession],
        pending: _PendingQuery,
        deadline: Optional[float],
        queued_at: float,
        priority: str,
    ) -> QueryResult:
        wait = self.admission.started(queued_at)
        self.metrics.observe("admission.queue_wait.seconds", wait)
        # shed-before-timeout also applies *after* admission: a deadline
        # that expired while the query sat queued (or while waiting for a
        # shrunken limiter) must not burn an execution slot
        if deadline is not None and ExecutionContext.clock() >= deadline:
            self.admission.note_shed()
            raise self._shed(
                query, "queued_deadline", priority,
                self.admission.wait_estimate, self.admission.depth,
            )
        if self.limiter is not None:
            slot_timeout = (
                None
                if deadline is None
                else max(0.0, deadline - ExecutionContext.clock())
            )
            if not self.limiter.acquire(timeout=slot_timeout):
                self.admission.note_shed()
                raise self._shed(
                    query, "limiter_deadline", priority,
                    self.admission.wait_estimate, self.admission.depth,
                )
        try:
            return self._execute_admitted(
                query, prefer_views, physical, stats, session, pending,
                deadline, wait, priority,
            )
        finally:
            if self.limiter is not None:
                self.limiter.release()

    def _execute_admitted(
        self,
        query: str,
        prefer_views: bool,
        physical: bool,
        stats: bool,
        session: Optional[QuerySession],
        pending: _PendingQuery,
        deadline: Optional[float],
        queue_wait: float,
        priority: str,
    ) -> QueryResult:
        started = ExecutionContext.clock()
        outcome = "error"
        result: Optional[QueryResult] = None
        error_type: Optional[str] = None
        ctx = self.db.execution_context()
        ctx.event(
            "admission.dequeued",
            queue_wait=round(queue_wait, 6),
            priority=priority,
        )
        try:
            result = self._execute_with_retries(
                query, prefer_views, physical, stats, pending, deadline, ctx
            )
            outcome = "ok"
            return result
        except QueryCancelled:
            # the waiter records the "timeout" sample (it knows the wall
            # time the caller actually waited); recording here too would
            # double-count the query
            outcome = None
            error_type = "QueryCancelled"
            raise
        except BaseException as exc:
            error_type = type(exc).__name__
            raise
        finally:
            if outcome == "ok" and result is not None:
                # while the trace is still open, so sentinel events land
                # in the span tree a /trace/<id> readout shows
                self.sentinel.observe(normalize_query(query), result, ctx)
            ctx.end_trace("ok" if outcome == "ok" else "error")
            elapsed = ExecutionContext.clock() - started
            if outcome is not None:
                self.latency.record(elapsed, outcome=outcome)
                if session is not None:
                    session.latency.record(elapsed, outcome=outcome)
                if self.limiter is not None:
                    # execution latency (post-queue) drives AIMD: queue
                    # wait is the symptom the limiter exists to shrink,
                    # not a signal it should chase
                    self.limiter.observe(elapsed)
            if self.qlog is not None:
                self.qlog.record(
                    build_record(
                        normalize_query(query),
                        result,
                        elapsed,
                        outcome or "cancelled",
                        error=error_type,
                        flags={
                            "prefer_views": prefer_views,
                            "physical": physical,
                            "stats": stats,
                        },
                        admission={
                            "outcome": "ok",
                            "priority": priority,
                            "queue_wait": round(queue_wait, 6),
                        },
                    )
                )
            profile_entry = None
            if (
                self.profiler is not None
                and self.db.profile
                and result is not None
            ):
                profile_entry = self.profiler.record(
                    normalize_query(query), result, elapsed
                )
            captured = self.slow_queries.consider(
                query,
                elapsed,
                outcome or "cancelled",
                ctx.trace,
                plan_fingerprint=(
                    getattr(result, "plan_fingerprint", "") or ""
                    if result is not None
                    else ""
                ),
                executor=(
                    getattr(result, "executor", "") or ""
                    if result is not None
                    else ""
                ),
                top_cpu=tuple(
                    f"{op['label']} cpu={op['self_cpu_ms']:.2f}ms"
                    for op in profile_entry.top_cpu()
                )
                if profile_entry is not None
                else (),
            )
            if captured is not None:
                self.metrics.inc("slow_queries.captured")

    def _execute_with_retries(
        self,
        query: str,
        prefer_views: bool,
        physical: bool,
        stats: bool,
        pending: _PendingQuery,
        deadline: Optional[float],
        ctx: ExecutionContext,
    ) -> QueryResult:
        """One query through the cache and database, absorbing transient
        storage faults with bounded backoff.  A degraded result evicts the
        plan from the cache, so the next preparation re-ranks rewritings
        with the circuit breakers in view."""
        policy = self.retry_policy
        if self.db.profile:
            # attributed profiling measures the physical engine's
            # observation points — promote profiled queries to
            # physical+stats so there is something to attribute
            physical = True
            stats = True
        prepared, key = self._lookup(query, prefer_views, physical, ctx)
        retries = 0
        forced_open: set[str] = set()
        while True:
            try:
                result = self.db.execute_prepared(
                    prepared,
                    physical=physical,
                    stats=stats,
                    context=ctx,
                    should_stop=pending.should_stop,
                )
            except TransientStorageFault as fault:
                retries += 1
                ctx.bump("retry.attempts")
                with self._retry_rng_lock:
                    pause = policy.delay(retries, self._retry_rng)
                out_of_time = (
                    deadline is not None
                    and ExecutionContext.clock() + pause >= deadline
                )
                if (
                    retries >= policy.max_attempts
                    or out_of_time
                    or pending.should_stop()
                ):
                    ctx.bump("retry.exhausted")
                    raise
                if not self.retry_budget.try_spend():
                    # the service-wide budget is empty: a fault storm is
                    # in progress and backoff-retrying would amplify it.
                    # Convert to an immediate degraded fallback — force
                    # the faulting module's breaker open so re-execution
                    # reroutes onto another access path right now,
                    # without sleeping.
                    ctx.bump("retry_budget.exhausted")
                    xam = getattr(fault, "xam", None)
                    if xam and xam not in forced_open:
                        forced_open.add(xam)
                        self.db.breakers.force_open(xam, str(fault))
                        ctx.bump("retry_budget.degraded_fallbacks")
                        ctx.event(
                            "retry_budget.degraded_fallback",
                            xam=xam,
                            fault=type(fault).__name__,
                        )
                        continue
                    # no module to route around (or already forced):
                    # nothing cheaper than failing remains
                    ctx.bump("retry.exhausted")
                    raise
                ctx.bump("retry_budget.spent")
                with ctx.span(
                    "retry", attempt=retries, fault=type(fault).__name__
                ):
                    time.sleep(pause)
                continue
            if retries:
                ctx.bump("retry.recovered")
                result.counters = dict(ctx.counters)
            if result.degraded:
                self.cache.remove(key)
            return result

    def submit(
        self,
        query: str,
        prefer_views: bool = True,
        physical: bool = False,
        stats: bool = False,
        session: Optional[QuerySession] = None,
        timeout: Optional[float] = None,
        priority: str = "interactive",
    ) -> Future:
        """Enqueue a query on the worker pool; returns its Future.  The
        future's ``cancel_query()`` attribute sets the cooperative stop
        flag of a run already in progress.  ``timeout`` (seconds from now)
        sets the deadline transient-fault retries must not cross.

        Admission control runs *here*, synchronously: a query the bounded
        queue cannot hold, whose remaining deadline cannot cover the
        observed queue wait, or whose ``priority`` class
        (``"background"`` is shed first) is being shed under degradation,
        raises :class:`~repro.errors.QueryRejected` before any work is
        enqueued — shed-before-timeout, never a slot burned on a
        guaranteed-late answer."""
        if self._closed:
            raise RuntimeError("query service is shut down")
        deadline = (
            None if timeout is None else ExecutionContext.clock() + timeout
        )
        decision = self.admission.try_admit(priority, deadline)
        if not decision.admitted:
            raise self._shed(
                query, decision.reason, priority,
                decision.wait_estimate, decision.queue_depth,
            )
        # ``admission.admitted`` is mirrored from the controller's
        # lifetime total by the scrape-time collector — no inline bump,
        # one source of truth
        pending = _PendingQuery(stop=threading.Event())
        with self._pending_lock:
            self._pending.add(pending)
        queued_at = ExecutionContext.clock()
        try:
            future = self._executor.submit(
                self._execute,
                query, prefer_views, physical, stats, session, pending,
                deadline, queued_at, priority,
            )
        except BaseException:
            self.admission.cancelled()
            with self._pending_lock:
                self._pending.discard(pending)
            raise
        future.cancel_query = pending.stop.set  # type: ignore[attr-defined]

        def _settle(f: Future, _pending=pending) -> None:
            with self._pending_lock:
                self._pending.discard(_pending)
            if f.cancelled():
                # cancelled while still queued: no worker ever called
                # admission.started, unwind the depth accounting
                self.admission.cancelled()

        future.add_done_callback(_settle)
        return future

    def query(
        self,
        query: str,
        prefer_views: bool = True,
        physical: bool = False,
        stats: bool = False,
        session: Optional[QuerySession] = None,
        timeout: Optional[float] = None,
        priority: str = "interactive",
    ) -> QueryResult:
        """Run one query through the pool and wait for its result.

        ``timeout`` (seconds; default :attr:`default_timeout`) bounds the
        wait: on expiry the query is cancelled — immediately if still
        queued, at its next unit boundary if running — and
        :class:`QueryTimeout` is raised.  Admission control may raise
        :class:`~repro.errors.QueryRejected` before anything runs.
        """
        timeout = self.default_timeout if timeout is None else timeout
        started = ExecutionContext.clock()
        future = self.submit(
            query, prefer_views=prefer_views, physical=physical,
            stats=stats, session=session, timeout=timeout,
            priority=priority,
        )
        try:
            return future.result(timeout)
        except FutureTimeoutError:
            future.cancel()
            future.cancel_query()
            elapsed = ExecutionContext.clock() - started
            self.latency.record(elapsed, outcome="timeout")
            self.metrics.inc("queries.timeout")
            if session is not None:
                session.latency.record(elapsed, outcome="timeout")
            raise QueryTimeout(
                f"query did not finish within {timeout:g}s: {query!r}"
            ) from None

    def run_batch(
        self,
        queries: Sequence[str],
        prefer_views: bool = True,
        session: Optional[QuerySession] = None,
        timeout: Optional[float] = None,
        priority: str = "interactive",
    ) -> list[QueryResult]:
        """Run many queries concurrently, returning results in submission
        order (the batch CLI verb's engine)."""
        futures = [
            self.submit(
                q, prefer_views=prefer_views, session=session,
                timeout=timeout, priority=priority,
            )
            for q in queries
        ]
        results: list[QueryResult] = []
        started = ExecutionContext.clock()
        for query, future in zip(queries, futures):
            try:
                results.append(future.result(timeout))
            except FutureTimeoutError:
                future.cancel()
                future.cancel_query()
                elapsed = ExecutionContext.clock() - started
                self.latency.record(elapsed, outcome="timeout")
                self.metrics.inc("queries.timeout")
                if session is not None:
                    session.latency.record(elapsed, outcome="timeout")
                raise QueryTimeout(
                    f"query did not finish within {timeout:g}s: {query!r}"
                ) from None
        return results

    def explain(self, query: str, prefer_views: bool = True) -> ExplainReport:
        """EXPLAIN through the cache: a repeated explain reuses the cached
        plan, and the report's counters show the hit/miss outcome."""
        ctx = self.db.execution_context()
        try:
            prepared, _ = self._lookup(query, prefer_views, physical=True, ctx=ctx)
            return self.db.explain_prepared(prepared, ctx)
        except BaseException:
            ctx.end_trace("error")
            raise

    def trace(self, trace_id: str):
        """The retained span tree of a past query, by the trace id its
        :class:`QueryResult` / :class:`ExplainReport` carried; None when
        tracing is off or the ring evicted it."""
        tracer = self.db.tracer
        return tracer.get(trace_id) if tracer is not None else None

    def health(self) -> str:
        """Access-module health (the database's circuit-breaker board)."""
        return self.db.health()

    def ready(self) -> bool:
        """Readiness (vs. liveness): False while admission control is
        shedding a sustained fraction of recent traffic — the signal
        ``/health/ready`` turns into a 503 so load balancers route
        around an overloaded instance that is still alive."""
        return not self._closed and self.admission.ready()

    def cancel_all(self) -> int:
        """Set the cooperative stop flag of every admitted-but-unfinished
        query (running work stops at its next unit boundary; queued work
        sees the flag at pickup).  Returns the number of queries asked to
        stop — the prompt-exit lever ``SIGTERM`` handling relies on."""
        with self._pending_lock:
            pending = list(self._pending)
        for entry in pending:
            entry.stop.set()
        return len(pending)

    # -- mutations (serialized writers; eager invalidation) -----------------

    def add_view(self, name: str, pattern: "Pattern | str", kind: str = "view"):
        with self._mutate_lock:
            entry = self.db.add_view(name, pattern, kind)
            self._purge_stale_plans()
            return entry

    def drop_view(self, name: str) -> None:
        with self._mutate_lock:
            self.db.drop_view(name)
            self._purge_stale_plans()

    def add_document_xml(self, source: str, name: str = "doc.xml"):
        with self._mutate_lock:
            doc = self.db.add_document_xml(source, name)
            self._purge_stale_plans()
            return doc

    def refresh_statistics(self) -> None:
        with self._mutate_lock:
            self.db.refresh_statistics()
            self._purge_stale_plans()

    def _purge_stale_plans(self) -> None:
        """Eagerly drop prepared plans, compiled batch artifacts *and*
        pinned plans made stale by a mutation (the lazy version check
        would catch them on the next lookup anyway)."""
        version = self.db.catalog_version
        self.cache.purge_stale(version)
        self.db.compiled_plans.purge_stale(version)
        self.db.plan_pins.purge_stale(version)

    # -- pinned plans --------------------------------------------------------

    def pin_plan(self, pin: PinnedPlan) -> None:
        """Install a tournament-promoted pin and evict any cached prepared
        plans for that query, so the very next execution re-prepares under
        the pin (a cached entry would otherwise keep serving the cost
        model's pick until a version bump)."""
        with self._mutate_lock:
            self.db.plan_pins.pin(pin)
            for key in self.cache.keys():
                if key[0] == pin.query:
                    self.cache.remove(key)

    def unpin(self, query: str) -> bool:
        """Drop the pin for a query (normalized form or raw text).
        Returns True when a pin existed."""
        with self._mutate_lock:
            dropped = self.db.plan_pins.drop(normalize_query(query))
            if dropped:
                for key in self.cache.keys():
                    if key[0] == normalize_query(query):
                        self.cache.remove(key)
            return dropped

    def pins(self) -> list[PinnedPlan]:
        """The currently installed pinned plans."""
        return self.db.plan_pins.entries()

    def load_pins(self, path: str) -> int:
        """Install pins persisted by a tournament run (``pins.json`` in
        its audit directory), re-stamped to the *current* catalog version
        — version numbers are process-local, so the stamp in the file only
        meant something to the process that wrote it.  Later mutations
        still invalidate the loaded pins through the version bump.
        Returns the number installed."""
        loaded = PlanPinStore.load(path)
        version = self.db.catalog_version
        with self._mutate_lock:
            for pin in loaded:
                self.pin_plan(pin.restamped(version))
        return len(loaded)

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self, wait: bool = True, cancel_pending: bool = True) -> None:
        """Stop accepting queries; optionally cancel queued ones and wait
        for running ones to drain.  An owned query log (one the service
        created itself) is flushed and closed; an injected one is left to
        its owner."""
        already_closed = self._closed
        self._closed = True
        if cancel_pending and not wait:
            # a non-waiting cancel shutdown (the SIGTERM / atexit path)
            # also stops *running* queries at their next unit boundary —
            # the pool's interpreter-exit join must not outlive them
            self.cancel_all()
        self._executor.shutdown(wait=wait, cancel_futures=cancel_pending)
        if self.profiler is not None:
            self.profiler.stop()
        if self._owns_qlog and self.qlog is not None and not already_closed:
            self.qlog.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<QueryService {self.cache.stats().render()}>"
