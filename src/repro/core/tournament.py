"""Offline plan tournament: enumerate → validate → benchmark → pin.

The cost model (:func:`~repro.core.statistics.rank_rewritings`) makes a
single pick per pattern from summary estimates.  This module is the
offline second opinion the ROADMAP calls for: given a *recorded* workload
(a qlog JSONL capture from ``repro record``), it re-derives, for every
distinct normalized query, the **complete** space of S-equivalent access
paths — every rewriting the Chapter 5 search can produce, plus the base
store — and runs a tournament over it:

1. **Enumerate.**  Each pattern's options are the base store and every
   rewriting (``max_results=None`` — no enumeration cap offline), each
   named by its :func:`~repro.engine.qlog.rewriting_signature`.  A
   whole-query candidate is one choice per pattern, expressed as the
   exact :class:`~repro.engine.plan_cache.PinnedPlan` that would replay
   it; the cost model's own pick is always candidate 0.

2. **Validate.**  Every candidate executes under the recorded flags *and*
   under both executors (iterator and batch), and every result checksum
   must equal the recorded one.  S-equivalence says they must agree —
   a divergence is a rewriting/executor bug, never a tie-breaking
   detail, so it is reported loudly and fails the run.  This makes the
   tournament a standing differential-correctness harness over the whole
   rewriting framework, independent of whether anything gets promoted.

3. **Benchmark.**  Validated candidates run timed laps under the batch
   executor (one warmup, then ``runs`` measured executions); the score is
   the trimmed mean (min and max dropped once there are ≥ 3 samples).

4. **Promote.**  A non-default winner beating the default pick by at
   least ``min_margin`` becomes a pinned plan in the database's
   :class:`~repro.engine.plan_cache.PlanPinStore` — stamped with the
   catalog version the evidence was gathered against, and therefore dead
   the moment a mutation bumps it.

Every step lands in a per-query **audit directory** (candidates with
fingerprints, per-executor validation verdicts, raw timings, the chosen
winner and the losers' margins), so a promotion is reproducible and two
tournament runs are diffable.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from itertools import islice, product
from typing import Optional, Sequence

from ..engine.plan_cache import PinnedChoice, PinnedPlan, normalize_query
from ..engine.qlog import (
    iter_ok_records,
    result_checksum,
    rewriting_signature,
)
from .rewrite import rewrite_pattern
from .uload import Database

__all__ = [
    "CandidateOutcome",
    "QueryOutcome",
    "TournamentReport",
    "run_tournament",
    "trimmed_mean",
]

#: executors every candidate must agree under (the differential axis)
EXECUTORS = ("iter", "batch")


def trimmed_mean(samples: Sequence[float]) -> float:
    """Mean with the single smallest and largest samples dropped (once
    there are at least three) — the benchmark score.  Computed by hand:
    the obvious helper module would shadow :mod:`repro.core.statistics`
    in this package's namespace."""
    ordered = sorted(samples)
    if len(ordered) >= 3:
        ordered = ordered[1:-1]
    return sum(ordered) / len(ordered)


@dataclass
class CandidateOutcome:
    """One candidate plan's tournament record."""

    index: int
    #: per-pattern access choices, as the pin would persist them
    choices: list[dict]
    #: plan fingerprint of the candidate preparation (identity)
    fingerprint: str = ""
    #: True for the cost model's own pick (always candidate 0)
    default: bool = False
    #: validation verdicts: run label → "ok" or the divergence detail
    verdicts: dict = field(default_factory=dict)
    valid: bool = True
    #: raw benchmark laps in seconds (empty when validation failed)
    timings: list[float] = field(default_factory=list)
    #: trimmed-mean score in seconds (None when not benchmarked)
    score: Optional[float] = None
    #: fractional latency vs the default pick (negative = faster);
    #: None for the default itself or when either score is missing
    margin_vs_default: Optional[float] = None

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "choices": self.choices,
            "fingerprint": self.fingerprint,
            "default": self.default,
            "verdicts": self.verdicts,
            "valid": self.valid,
            "timings": [round(t, 9) for t in self.timings],
            "score": None if self.score is None else round(self.score, 9),
            "margin_vs_default": (
                None
                if self.margin_vs_default is None
                else round(self.margin_vs_default, 6)
            ),
        }


@dataclass
class QueryOutcome:
    """The tournament outcome of one distinct workload query."""

    query: str
    normalized: str
    slug: str
    recorded_checksum: str
    recorded_fingerprint: Optional[str]
    flags: dict
    candidates: list[CandidateOutcome] = field(default_factory=list)
    #: total candidate space size before the ``max_candidates`` cap
    candidate_space: int = 0
    #: index of the fastest validated candidate (None = none validated)
    winner: Optional[int] = None
    #: fractional improvement of the winner over the default pick
    margin: float = 0.0
    promoted: bool = False
    error: Optional[str] = None

    @property
    def divergences(self) -> list[str]:
        out = []
        for candidate in self.candidates:
            for run, verdict in candidate.verdicts.items():
                if verdict != "ok":
                    out.append(
                        f"{self.query} candidate {candidate.index} "
                        f"[{run}]: {verdict}"
                    )
        if self.error:
            out.append(f"{self.query}: {self.error}")
        return out

    def as_dict(self) -> dict:
        return {
            "query": self.query,
            "normalized": self.normalized,
            "slug": self.slug,
            "recorded_checksum": self.recorded_checksum,
            "recorded_fingerprint": self.recorded_fingerprint,
            "flags": self.flags,
            "candidate_space": self.candidate_space,
            "candidates": [c.as_dict() for c in self.candidates],
            "winner": self.winner,
            "margin": round(self.margin, 6),
            "promoted": self.promoted,
            "error": self.error,
        }


@dataclass
class TournamentReport:
    """The outcome of one ``repro optimize`` run."""

    queries: list[QueryOutcome] = field(default_factory=list)
    #: ok-records in the capture (before dedup by normalized text)
    records: int = 0
    skipped: int = 0

    @property
    def divergences(self) -> list[str]:
        out: list[str] = []
        for outcome in self.queries:
            out.extend(outcome.divergences)
        return out

    @property
    def promotions(self) -> list[QueryOutcome]:
        return [q for q in self.queries if q.promoted]

    @property
    def ok(self) -> bool:
        """Zero divergences: every candidate of every query reproduced
        the recorded checksum under every executor."""
        return not self.divergences

    def as_dict(self) -> dict:
        return {
            "records": self.records,
            "skipped": self.skipped,
            "queries": [q.as_dict() for q in self.queries],
            "divergences": self.divergences,
            "promotions": [q.normalized for q in self.promotions],
            "ok": self.ok,
        }

    def render(self) -> str:
        candidates = sum(len(q.candidates) for q in self.queries)
        lines = [
            f"tournament over {len(self.queries)} quer"
            f"{'y' if len(self.queries) == 1 else 'ies'} "
            f"({self.records} ok records, {self.skipped} skipped): "
            f"{candidates} candidates validated, "
            f"{len(self.divergences)} divergence(s), "
            f"{len(self.promotions)} promotion(s)"
        ]
        for outcome in self.queries:
            if outcome.winner is None:
                lines.append(f"  {outcome.query}: no validated candidate")
                continue
            winner = outcome.candidates[outcome.winner]
            verdict = (
                f"PROMOTED ({outcome.margin:.1%} faster)"
                if outcome.promoted
                else ("default wins" if winner.default else
                      f"winner within margin ({outcome.margin:.1%})")
            )
            lines.append(
                f"  {outcome.query}: {len(outcome.candidates)} candidates, "
                f"{verdict}"
            )
        lines.extend(f"  DIVERGENCE {detail}" for detail in self.divergences)
        return "\n".join(lines)


def _pattern_options(db: Database, pattern, prefer_views: bool) -> list[PinnedChoice]:
    """Every access path for one pattern, as unplaced pinned choices
    (unit/pattern indexes are stamped by the caller): the base store plus
    each enumerated rewriting, breaker-unavailable views excluded just as
    prepare-time planning excludes them."""
    options = [PinnedChoice(unit=0, pattern=0, access="base")]
    if not prefer_views:
        return options
    unavailable = db.breakers.unavailable_names()
    for rewriting in rewrite_pattern(
        pattern, db.catalog, db.summary, max_results=None
    ):
        if unavailable & set(rewriting.views):
            continue
        options.append(
            PinnedChoice(
                unit=0,
                pattern=0,
                access="rewriting",
                signature=rewriting_signature(rewriting),
                views=tuple(rewriting.views),
            )
        )
    return options


def _default_choice(resolution) -> PinnedChoice:
    """The cost model's prepare-time pick, as a pinned choice."""
    if resolution.rewriting is None:
        return PinnedChoice(unit=0, pattern=0, access="base")
    return PinnedChoice(
        unit=0,
        pattern=0,
        access="rewriting",
        signature=rewriting_signature(resolution.rewriting),
        views=tuple(resolution.rewriting.views),
    )


def _enumerate_candidates(
    db: Database,
    prepared,
    prefer_views: bool,
    max_candidates: int,
) -> tuple[list[tuple[PinnedChoice, ...]], int]:
    """All whole-query candidates (one access choice per pattern, stamped
    with unit/pattern positions), default combination first, capped at
    ``max_candidates``.  Returns ``(candidates, full_space_size)``."""
    per_pattern: list[list[PinnedChoice]] = []
    for unit in prepared.units:
        for pattern_index, pattern in enumerate(unit.unit.patterns):
            default = _default_choice(unit.resolutions[pattern_index])
            options = _pattern_options(db, pattern, prefer_views)
            # default pick first so the cross product leads with the cost
            # model's own combination (candidate 0 = the baseline)
            options.sort(
                key=lambda option: (
                    option.access != default.access
                    or option.signature != default.signature
                )
            )
            per_pattern.append(
                [
                    PinnedChoice(
                        unit=unit.index,
                        pattern=pattern_index,
                        access=option.access,
                        signature=option.signature,
                        views=option.views,
                    )
                    for option in options
                ]
            )
    space = 1
    for options in per_pattern:
        space *= len(options)
    combos = list(islice(product(*per_pattern), max_candidates))
    return combos, space


def _validation_runs(flags: dict) -> list[tuple[str, dict, Optional[str]]]:
    """The executions every candidate must survive checksum-identical:
    the recorded flag combination under the database's own executor, then
    a full physical run under each executor explicitly."""
    recorded = {
        "prefer_views": flags.get("prefer_views", True),
        "physical": flags.get("physical", False),
        "stats": flags.get("stats", False),
    }
    runs: list[tuple[str, dict, Optional[str]]] = [
        ("recorded", recorded, None)
    ]
    for executor in EXECUTORS:
        runs.append(
            (executor, {"physical": True, "stats": True}, executor)
        )
    return runs


def _execute_candidate(
    db: Database,
    prepared,
    run_flags: dict,
    executor: Optional[str],
):
    """One validation execution, with the database's executor temporarily
    forced when the run names one."""
    saved = db.executor
    try:
        if executor is not None:
            db.executor = executor
        return db.execute_prepared(
            prepared,
            physical=run_flags.get("physical", False),
            stats=run_flags.get("stats", False),
        )
    finally:
        db.executor = saved


def _benchmark_candidate(
    db: Database, prepared, runs: int
) -> list[float]:
    """Timed laps under the batch executor (the production default): one
    unrecorded warmup, then ``runs`` measured executions."""
    saved = db.executor
    try:
        db.executor = "batch"
        db.execute_prepared(prepared, physical=True)  # warmup
        laps = []
        for _ in range(max(1, runs)):
            started = time.perf_counter()
            db.execute_prepared(prepared, physical=True)
            laps.append(time.perf_counter() - started)
        return laps
    finally:
        db.executor = saved


def _slug(ordinal: int, normalized: str) -> str:
    digest = hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:8]
    return f"{ordinal:03d}-{digest}"


def _write_audit(audit_dir: str, report: TournamentReport, db: Database) -> None:
    os.makedirs(audit_dir, exist_ok=True)
    for outcome in report.queries:
        query_dir = os.path.join(audit_dir, outcome.slug)
        os.makedirs(query_dir, exist_ok=True)
        with open(
            os.path.join(query_dir, "query.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(
                {
                    "query": outcome.query,
                    "normalized": outcome.normalized,
                    "recorded_checksum": outcome.recorded_checksum,
                    "recorded_fingerprint": outcome.recorded_fingerprint,
                    "flags": outcome.flags,
                    "candidate_space": outcome.candidate_space,
                    "error": outcome.error,
                },
                handle,
                indent=2,
            )
            handle.write("\n")
        with open(
            os.path.join(query_dir, "candidates.jsonl"), "w", encoding="utf-8"
        ) as handle:
            for candidate in outcome.candidates:
                handle.write(json.dumps(candidate.as_dict()) + "\n")
        if outcome.winner is not None:
            winner = outcome.candidates[outcome.winner]
            losers = [
                {
                    "index": c.index,
                    "fingerprint": c.fingerprint,
                    "margin_vs_default": c.margin_vs_default,
                    "score": c.as_dict()["score"],
                }
                for c in outcome.candidates
                if c.valid and c.index != outcome.winner
            ]
            with open(
                os.path.join(query_dir, "winner.json"), "w", encoding="utf-8"
            ) as handle:
                json.dump(
                    {
                        "winner": winner.as_dict(),
                        "margin_over_default": round(outcome.margin, 6),
                        "promoted": outcome.promoted,
                        "losers": losers,
                    },
                    handle,
                    indent=2,
                )
                handle.write("\n")
    with open(
        os.path.join(audit_dir, "summary.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(report.as_dict(), handle, indent=2)
        handle.write("\n")
    db.plan_pins.save(os.path.join(audit_dir, "pins.json"))


def run_tournament(
    db: Database,
    records: Sequence[dict],
    runs: int = 5,
    min_margin: float = 0.05,
    max_candidates: int = 32,
    audit_dir: Optional[str] = None,
    pin: bool = True,
) -> TournamentReport:
    """Tournament over a recorded workload's distinct queries.

    ``records`` is a loaded qlog capture (see
    :func:`~repro.core.replay.load_records`); only successful records
    carry ground truth, and each normalized query enters once (first
    occurrence wins — re-recordings of the same text carry the same
    checksum against unchanged state or the capture itself is suspect).
    Promotion installs pins into ``db.plan_pins`` unless ``pin=False``
    (validation-only mode); the audit directory is written either way
    when requested.
    """
    report = TournamentReport()
    seen: set[str] = set()
    workload: list[dict] = []
    for record in iter_ok_records(records):
        report.records += 1
        normalized = normalize_query(record["query"])
        if normalized in seen:
            report.skipped += 1
            continue
        seen.add(normalized)
        workload.append(record)

    for ordinal, record in enumerate(workload):
        query = record["query"]
        normalized = normalize_query(query)
        flags = record.get("flags", {})
        prefer_views = flags.get("prefer_views", True)
        outcome = QueryOutcome(
            query=query,
            normalized=normalized,
            slug=_slug(ordinal, normalized),
            recorded_checksum=record["checksum"],
            recorded_fingerprint=record.get("fingerprint"),
            flags=dict(flags),
        )
        report.queries.append(outcome)
        try:
            baseline = db.prepare(
                query, prefer_views=prefer_views, consult_pins=False
            )
            combos, outcome.candidate_space = _enumerate_candidates(
                db, baseline, prefer_views, max_candidates
            )
        except Exception as exc:  # enumeration must never take down a run
            outcome.error = f"{type(exc).__name__}: {exc}"
            continue

        validation = _validation_runs(flags)
        for index, choices in enumerate(combos):
            candidate = CandidateOutcome(
                index=index,
                choices=[choice.as_dict() for choice in choices],
                default=(index == 0),
            )
            outcome.candidates.append(candidate)
            candidate_pin = PinnedPlan(
                query=normalized,
                catalog_version=db.catalog_version,
                choices=choices,
            )
            try:
                if index == 0:
                    prepared = baseline
                else:
                    prepared = db.prepare(
                        query, prefer_views=prefer_views, pin=candidate_pin
                    )
                    if not prepared.pinned:
                        raise RuntimeError(
                            "candidate pin did not apply "
                            "(signature matched nothing)"
                        )
                candidate.fingerprint = prepared.fingerprint
            except Exception as exc:
                candidate.valid = False
                candidate.verdicts["prepare"] = (
                    f"{type(exc).__name__}: {exc}"
                )
                continue
            for run_name, run_flags, executor in validation:
                try:
                    result = _execute_candidate(
                        db, prepared, run_flags, executor
                    )
                    checksum = result_checksum(result)
                except Exception as exc:
                    candidate.valid = False
                    candidate.verdicts[run_name] = (
                        f"{type(exc).__name__}: {exc}"
                    )
                    continue
                if checksum == record["checksum"]:
                    candidate.verdicts[run_name] = "ok"
                else:
                    candidate.valid = False
                    candidate.verdicts[run_name] = (
                        f"checksum {checksum} != recorded "
                        f"{record['checksum']}"
                    )
            if candidate.valid:
                candidate.timings = _benchmark_candidate(db, prepared, runs)
                candidate.score = trimmed_mean(candidate.timings)

        valid = [c for c in outcome.candidates if c.valid and c.score is not None]
        if not valid:
            continue
        default = outcome.candidates[0]
        if default.score is not None:
            for candidate in valid:
                if not candidate.default:
                    candidate.margin_vs_default = (
                        (candidate.score - default.score) / default.score
                    )
        winner = min(valid, key=lambda c: c.score)
        outcome.winner = winner.index
        if (
            not winner.default
            and default.score is not None
            and default.score > 0.0
        ):
            outcome.margin = (default.score - winner.score) / default.score
            if pin and outcome.margin >= min_margin:
                db.plan_pins.pin(
                    PinnedPlan(
                        query=normalized,
                        catalog_version=db.catalog_version,
                        choices=tuple(
                            PinnedChoice.from_dict(choice)
                            for choice in winner.choices
                        ),
                        fingerprint=winner.fingerprint,
                        margin=outcome.margin,
                        source=(
                            os.path.join(audit_dir, outcome.slug)
                            if audit_dir
                            else "tournament"
                        ),
                    )
                )
                outcome.promoted = True

    if audit_dir is not None:
        _write_audit(audit_dir, report, db)
    return report
