"""Embedding-based XAM semantics (thesis §4.1).

Two facilities live here:

* :func:`evaluate_pattern` — the full XAM evaluation over a parsed
  document: embeddings drive the construction of (possibly nested) result
  tuples, honoring every edge semantics (join / semijoin / outerjoin /
  nest / nest-outer), value formulas, and the stored-attribute
  specifications (ID under the node's declared scheme, L, V, C).
  :mod:`repro.core.semantics` implements the *algebraic* semantics of
  §2.2.2 independently; the test-suite checks they agree, mirroring the
  thesis' equivalence claim.

* :func:`return_tuples` — enumeration of the (optional) embeddings of a
  pattern into any labeled tree, reduced to the set of return-node tuples.
  This powers the canonical-model membership tests of Chapter 4: the same
  code runs against documents and against canonical trees, differing only
  in how a tree node *admits* a pattern node (concrete value vs formula
  implication), which the ``admits`` callback abstracts.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, Sequence

from ..algebra.model import NULL, NestedTuple
from ..xmldata.ids import id_of
from ..xmldata.node import ATTRIBUTE, ELEMENT, TEXT, Document, XMLNode
from .xam import CHILD, JOIN, NEST, NEST_OUTER, OUTER, SEMI, Pattern, PatternEdge, PatternNode

__all__ = [
    "evaluate_pattern",
    "return_tuples",
    "embeddings",
    "iter_embeddings",
    "subtree_embeddable",
    "admits_xml_node",
    "subtree_attribute_names",
]


# ---------------------------------------------------------------------------
# Matching a pattern node against a concrete document node
# ---------------------------------------------------------------------------

def _kind_compatible(pattern_node: PatternNode, xml_node: XMLNode) -> bool:
    if pattern_node.tag == "#document":
        return xml_node.kind == "document"
    if pattern_node.tag == "#text":
        return xml_node.kind == TEXT
    if pattern_node.is_attribute:
        return xml_node.kind == ATTRIBUTE
    if pattern_node.is_wildcard:
        return xml_node.kind == ELEMENT
    return xml_node.kind == ELEMENT


def admits_xml_node(pattern_node: PatternNode, xml_node: XMLNode) -> bool:
    """Label, kind and value-formula admission of a concrete node."""
    if not _kind_compatible(pattern_node, xml_node):
        return False
    if pattern_node.tag is not None and pattern_node.tag != xml_node.label:
        return False
    if not pattern_node.value_formula.is_true:
        return pattern_node.value_formula.evaluate(xml_node.value)
    return True


def _axis_candidates(xml_node: XMLNode, edge: PatternEdge) -> Iterator[XMLNode]:
    if edge.axis == CHILD:
        yield from xml_node.children
    else:
        for child in xml_node.children:
            yield from child.iter_subtree()


# ---------------------------------------------------------------------------
# Full XAM evaluation over documents
# ---------------------------------------------------------------------------

def subtree_attribute_names(pattern_node: PatternNode) -> list[str]:
    """Top-level output attribute names contributed by the subtree rooted
    at ``pattern_node``: ``name.ID/L/V/C`` for flat descendants, plus one
    collection attribute per nest edge (named after the nested child)."""
    names = [f"{pattern_node.name}.{attr}" for attr in pattern_node.stored_attrs()]
    for edge in pattern_node.edges:
        if edge.nested:
            names.append(edge.child.name)
        elif edge.semantics != SEMI:
            names.extend(subtree_attribute_names(edge.child))
    return names


def _node_attrs(pattern_node: PatternNode, xml_node: XMLNode) -> dict[str, Any]:
    attrs: dict[str, Any] = {}
    if pattern_node.store_id:
        attrs[f"{pattern_node.name}.ID"] = id_of(xml_node, pattern_node.store_id)
    if pattern_node.store_tag:
        attrs[f"{pattern_node.name}.L"] = xml_node.label
    if pattern_node.store_value:
        attrs[f"{pattern_node.name}.V"] = xml_node.value
    if pattern_node.store_content:
        attrs[f"{pattern_node.name}.C"] = xml_node.content
    return attrs


def _null_subtree_attrs(pattern_node: PatternNode) -> dict[str, Any]:
    attrs: dict[str, Any] = {}
    for name in subtree_attribute_names(pattern_node):
        if "." in name:
            attrs[name] = NULL
        else:
            attrs[name] = []
    return attrs


def _eval_at(pattern_node: PatternNode, xml_node: XMLNode) -> Optional[list[NestedTuple]]:
    """Tuples produced by matching the pattern subtree at ``xml_node``;
    ``None`` when the subtree has no embedding here."""
    if not admits_xml_node(pattern_node, xml_node):
        return None
    tuples = [NestedTuple(_node_attrs(pattern_node, xml_node))]
    for edge in pattern_node.edges:
        child_tuples: list[NestedTuple] = []
        for candidate in _axis_candidates(xml_node, edge):
            result = _eval_at(edge.child, candidate)
            if result is not None:
                child_tuples.extend(result)
        tuples = _combine_edge(tuples, child_tuples, edge)
        if tuples is None:
            return None
    return tuples


def _combine_edge(
    tuples: list[NestedTuple],
    child_tuples: list[NestedTuple],
    edge: PatternEdge,
) -> Optional[list[NestedTuple]]:
    semantics = edge.semantics
    if semantics == JOIN:
        if not child_tuples:
            return None
        return [
            NestedTuple({**a.attrs, **b.attrs}) for a in tuples for b in child_tuples
        ]
    if semantics == SEMI:
        return tuples if child_tuples else None
    if semantics == OUTER:
        if child_tuples:
            return [
                NestedTuple({**a.attrs, **b.attrs})
                for a in tuples
                for b in child_tuples
            ]
        padding = _null_subtree_attrs(edge.child)
        return [NestedTuple({**a.attrs, **padding}) for a in tuples]
    if semantics == NEST:
        if not child_tuples:
            return None
        return [a.with_attrs(**{edge.child.name: child_tuples}) for a in tuples]
    if semantics == NEST_OUTER:
        return [a.with_attrs(**{edge.child.name: child_tuples}) for a in tuples]
    raise AssertionError(f"unhandled edge semantics {semantics!r}")


def evaluate_pattern(pattern: Pattern, doc: Document) -> list[NestedTuple]:
    """Evaluate a XAM over a document: Definition 4.1.1 extended with the
    decorated / optional / attribute / nested semantics of §4.1, producing
    duplicate-free tuples in document order."""
    result = _eval_at(pattern.root, doc.root)
    if result is None:
        return []
    out: list[NestedTuple] = []
    seen: set[tuple] = set()
    for t in result:
        key = t.freeze()
        if key not in seen:
            seen.add(key)
            out.append(t)
    return out


# ---------------------------------------------------------------------------
# Generic (optional-)embedding enumeration → return tuples
# ---------------------------------------------------------------------------

TreeChildren = Callable[[Any], Sequence[Any]]
Admits = Callable[[PatternNode, Any], bool]


def _generic_descendants(node: Any, children: TreeChildren) -> Iterator[Any]:
    stack = list(children(node))
    while stack:
        candidate = stack.pop()
        yield candidate
        stack.extend(children(candidate))


class _LazyOptions:
    """A restartable, caching view over a generator — lets the lazy
    cartesian product below re-iterate an edge's options without
    recomputing or materializing them up front."""

    __slots__ = ("_iterator", "_cache", "_done")

    def __init__(self, iterator):
        self._iterator = iterator
        self._cache: list = []
        self._done = False

    def __iter__(self):
        index = 0
        while True:
            if index < len(self._cache):
                yield self._cache[index]
                index += 1
                continue
            if self._done:
                return
            try:
                item = next(self._iterator)
            except StopIteration:
                self._done = True
                return
            self._cache.append(item)


def _assignments(
    pattern_node: PatternNode,
    tree_node: Any,
    children: TreeChildren,
    admits: Admits,
    guarantee: Optional[Admits] = None,
    memo: Optional[dict] = None,
) -> Iterator[dict[PatternNode, Any]]:
    """Optional embeddings of the subtree rooted at ``pattern_node`` with
    ``pattern_node ↦ tree_node`` (admission already verified by caller).

    Fully lazy: the cartesian product across edges re-iterates cached
    per-edge option streams, so producing the *first* embedding costs
    O(pattern depth), which makes existence checks cheap even on bushy
    trees.

    Per the optional-embedding definition (§4.1): a node below an optional
    edge maps to ⊥ *only when* no embedding of its subtree exists below its
    parent's image.  Over *decorated trees* (canonical models) a node may
    admit under ``admits`` (structurally possible) without being forced
    (formula not implied): ``guarantee`` is the stronger admission deciding
    whether ⊥ is additionally offered.  When ``guarantee`` is ``admits``
    (the default — concrete documents), ⊥ appears exactly when nothing
    matches.
    """
    if guarantee is None:
        guarantee = admits
    if memo is None:
        memo = {}

    def edge_options(edge) -> Iterator[dict[PatternNode, Any]]:
        yielded = False
        if edge.axis == CHILD:
            candidates = children(tree_node)
        else:
            candidates = _generic_descendants(tree_node, children)
        for candidate in candidates:
            if admits(edge.child, candidate):
                for assignment in _assignments(
                    edge.child, candidate, children, admits, guarantee, memo
                ):
                    yielded = True
                    yield assignment
        if edge.optional:
            if not yielded:
                yield {n: None for n in edge.child.iter_subtree()}
            elif guarantee is not admits and not subtree_embeddable(
                edge.child, tree_node, children, guarantee, memo
            ):
                # structurally matchable but never *forced*: both outcomes
                # occur across instances of the decorated tree
                yield {n: None for n in edge.child.iter_subtree()}

    per_edge = [_LazyOptions(edge_options(edge)) for edge in pattern_node.edges]

    def combine(index: int, acc: dict[PatternNode, Any]) -> Iterator[dict]:
        if index == len(per_edge):
            yield acc
            return
        for choice in per_edge[index]:
            yield from combine(index + 1, {**acc, **choice})

    yield from combine(0, {pattern_node: tree_node})


def return_tuples(
    pattern: Pattern,
    tree_root: Any,
    children: TreeChildren,
    admits: Admits,
) -> set[tuple]:
    """The set ``p(t)`` as tuples of tree nodes (⊥ → ``None``), for any
    tree given its ``children`` accessor and an ``admits`` relation.

    ``tree_root`` plays the role of the document node ⊤ maps to.
    """
    returns = pattern.return_nodes()
    out: set[tuple] = set()
    for assignment in _assignments(pattern.root, tree_root, children, admits):
        out.add(tuple(assignment.get(node) for node in returns))
    return out


def iter_embeddings(
    pattern: Pattern,
    tree_root: Any,
    children: TreeChildren,
    admits: Admits,
    guarantee: Optional[Admits] = None,
) -> Iterator[dict[PatternNode, Any]]:
    """Lazily generated optional embeddings of ``pattern`` (⊤ ↦ root).

    See :func:`_assignments` for the role of ``guarantee`` over decorated
    trees."""
    return _assignments(pattern.root, tree_root, children, admits, guarantee)


def embeddings(
    pattern: Pattern,
    tree_root: Any,
    children: TreeChildren,
    admits: Admits,
) -> list[dict[PatternNode, Any]]:
    """All optional embeddings of ``pattern`` into the tree (⊤ ↦ root)."""
    return list(_assignments(pattern.root, tree_root, children, admits))


def subtree_embeddable(
    pattern_node: PatternNode,
    anchor: Any,
    children: TreeChildren,
    admits: Admits,
    memo: Optional[dict] = None,
) -> bool:
    """Whether the subtree rooted at ``pattern_node`` has *some* embedding
    below ``anchor`` (through the node's parent edge axis).  Existence
    only — memoized, so it is cheap to call inside search loops."""
    edge = pattern_node.parent_edge
    assert edge is not None
    if memo is None:
        memo = {}
    outer_key = ("sub", id(pattern_node), id(anchor))
    cached = memo.get(outer_key)
    if cached is not None:
        return cached
    if edge.axis == CHILD:
        candidates = children(anchor)
    else:
        candidates = _generic_descendants(anchor, children)
    result = False
    for candidate in candidates:
        if admits(pattern_node, candidate) and _embeddable_at(
            pattern_node, candidate, children, admits, memo
        ):
            result = True
            break
    memo[outer_key] = result
    return result


def _embeddable_at(
    pattern_node: PatternNode,
    tree_node: Any,
    children: TreeChildren,
    admits: Admits,
    memo: dict,
) -> bool:
    """Admission at ``tree_node`` plus embeddability of every required
    child subtree (optional children never block)."""
    key = (id(pattern_node), id(tree_node))
    cached = memo.get(key)
    if cached is not None:
        return cached
    result = True
    for edge in pattern_node.edges:
        if edge.optional:
            continue
        if not subtree_embeddable(edge.child, tree_node, children, admits, memo):
            result = False
            break
    memo[key] = result
    return result
