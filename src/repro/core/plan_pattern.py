"""Computing the pattern(s) equivalent to a plan over views (thesis §5.5).

The rewriting algorithm tests candidate plans for S-equivalence with the
query pattern.  Testing is natural on patterns, but not every plan has an
S-equivalent pattern — the thesis shows a two-view join whose ``a``/``c``
relationship is ambiguous.  However, **every plan is S-equivalent to a
union of patterns**: under the summary, each consistent joint embedding of
the plan's views resolves the ambiguity one way.

This module implements that construction:

* :func:`expand_view` — the pattern a view denotes under one embedding
  into the summary: every view edge is expanded into the parent-child
  chain of summary labels connecting its endpoints (the view-side analog
  of canonical trees; the edge's join semantics lands on the *first* chain
  edge, which reproduces the view's ⊥-production behavior);
* :func:`merged_patterns` — for a set of view uses glued by join
  conditions, the union of merged patterns over all glue-consistent joint
  embeddings.  Glued nodes (and their root chains) are shared; everything
  else stays per-view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..summary.path_summary import PathSummary, SummaryNode
from .canonical import summary_embeddings, _strict_copy
from .xam import CHILD, JOIN, Pattern, PatternNode

__all__ = ["GlueCondition", "expand_view", "merged_patterns", "joint_embeddings"]


@dataclass(frozen=True)
class GlueCondition:
    """A join condition between two view uses.

    ``kind``:

    * ``eq`` — node equality (both views store the ID of the same node);
    * ``parent`` / ``ancestor`` — structural join: the left node is the
      parent/ancestor of the right node;
    * ``derived-parent`` — the right view's navigational ID derives its
      parent, equated with the left node (§5.2's ID-property rewriting).
    """

    kind: str
    left_use: int
    left_node: str
    right_use: int
    right_node: str


def expand_view(
    view: Pattern,
    embedding: dict,
    summary: PathSummary,
) -> Pattern:
    """The §5.5 expansion of one view under one summary embedding.

    ``embedding`` may be keyed by pattern nodes (e.g. the strict copy's,
    from :func:`summary_embeddings`) or by node names; it is normalized by
    name, which both the view and its strict copy share.
    """
    named = {
        (key if isinstance(key, str) else key.name): value
        for key, value in embedding.items()
    }
    expanded = Pattern(ordered=view.ordered)
    _graft(view.root, expanded.root, named, summary)
    return expanded.finalize()


def _graft(
    view_node: PatternNode,
    anchor: PatternNode,
    embedding: dict[str, SummaryNode],
    summary: PathSummary,
) -> None:
    for edge in view_node.edges:
        chain = summary.chain(
            embedding[view_node.name], embedding[edge.child.name]
        )
        node = anchor
        for position, snode in enumerate(chain[1:]):
            last = position == len(chain) - 2
            semantics = edge.semantics if position == 0 else JOIN
            child = PatternNode(tag=snode.label)
            if last:
                source = edge.child
                child.store_id = source.store_id
                child.store_tag = source.store_tag
                child.store_value = source.store_value
                child.store_content = source.store_content
                child.value_formula = source.value_formula
                child.name = source.name
            node.add_child(child, CHILD, semantics)
            node = child
        _graft(edge.child, node, embedding, summary)


def joint_embeddings(
    views: Sequence[Pattern],
    glues: Sequence[GlueCondition],
    summary: PathSummary,
) -> list[list[dict[PatternNode, SummaryNode]]]:
    """All combinations of per-view embeddings consistent with the glue
    conditions (checked on summary paths)."""
    per_view = [summary_embeddings(_strict_copy(view), summary) for view in views]
    # embeddings are over strict copies; map back by node name
    named: list[list[dict[str, SummaryNode]]] = [
        [
            {node.name: snode for node, snode in embedding.items()}
            for embedding in embeddings
        ]
        for embeddings in per_view
    ]
    out: list[list[dict[str, SummaryNode]]] = [[]]
    for embeddings in named:
        out = [prefix + [e] for prefix in out for e in embeddings]
    consistent = [combo for combo in out if _glues_hold(combo, glues)]
    return consistent  # type: ignore[return-value]


def _glues_hold(
    combo: list[dict[str, SummaryNode]], glues: Sequence[GlueCondition]
) -> bool:
    for glue in glues:
        left = combo[glue.left_use][glue.left_node]
        right = combo[glue.right_use][glue.right_node]
        if glue.kind == "eq":
            if left is not right:
                return False
        elif glue.kind in ("parent", "derived-parent"):
            if right.parent is not left:
                return False
        elif glue.kind == "ancestor":
            if not left.is_ancestor_of(right):
                return False
        else:  # pragma: no cover - guarded upstream
            raise ValueError(f"unknown glue kind {glue.kind!r}")
    return True


def merged_patterns(
    views: Sequence[Pattern],
    glues: Sequence[GlueCondition],
    summary: PathSummary,
) -> list[tuple[Pattern, dict[str, str]]]:
    """The union of patterns S-equivalent to the glued join of the views.

    For every glue-consistent joint embedding, the views' expansions are
    merged: glued nodes unify (together with their root chains); unglued
    same-path nodes remain distinct occurrences.  View node names must be
    unique across uses (callers rename per use); each result carries the
    alias map view-node-name → merged-node-name (glued pairs share one
    merged node).
    """
    patterns: list[tuple[Pattern, dict[str, str]]] = []
    seen: set[tuple] = set()
    for combo in joint_embeddings(views, glues, summary):
        merged = _merge_combo(views, combo, glues, summary)
        if merged is None:
            continue
        pattern, aliases = merged
        key = pattern.structure_key()
        if key not in seen:
            seen.add(key)
            patterns.append((pattern, aliases))
    return patterns


def _merge_combo(
    views: Sequence[Pattern],
    combo: Sequence[dict[str, SummaryNode]],
    glues: Sequence[GlueCondition],
    summary: PathSummary,
) -> Optional[tuple[Pattern, dict[str, str]]]:
    """Merge the views of one joint embedding into a single pattern.

    Only the *glue spine* — the view edges on the paths from ⊤ to glued
    nodes — is instantiated into summary chains (and shared between uses).
    Every off-spine subtree is grafted verbatim, preserving its axes and
    semantics: expanding an optional descendant edge into one chain per
    path would change its ⊥-production behavior (⊥ means "no match via
    *any* path").
    """
    merged = Pattern()
    # shared spine: summary node pre → merged pattern node
    spine: dict[int, PatternNode] = {}
    aliases: dict[str, str] = {}

    for use_index, view in enumerate(views):
        embedding = combo[use_index]
        shared_names = set(_glued_nodes(glues, use_index))
        # view nodes on the spine: glue nodes plus their view ancestors
        spine_names: set[str] = set()
        for name in shared_names:
            walk = view.node_by_name(name)
            while walk is not None and walk.parent_edge is not None:
                spine_names.add(walk.name)
                walk = walk.parent_edge.parent
        _graft_spine(
            view.root, merged.root, view, embedding, summary,
            spine, spine_names, aliases,
        )
    merged.finalize()
    for node in merged.nodes():
        aliases.setdefault(node.name, node.name)
    return merged, aliases


def _graft_spine(
    view_node: PatternNode,
    anchor: PatternNode,
    view: Pattern,
    embedding: dict[str, SummaryNode],
    summary: PathSummary,
    spine: dict[int, PatternNode],
    spine_names: set[str],
    aliases: dict[str, str],
) -> None:
    for edge in view_node.edges:
        if edge.child.name in spine_names:
            # expand this edge into its summary chain, merging spine nodes
            chain = summary.chain(
                embedding[view_node.name], embedding[edge.child.name]
            )
            node = anchor
            for position, snode in enumerate(chain[1:]):
                last = position == len(chain) - 2
                semantics = edge.semantics if position == 0 else JOIN
                if snode.pre in spine:
                    node = spine[snode.pre]
                    if last:
                        _copy_specs(edge.child, node)
                        if node.name:
                            aliases[edge.child.name] = node.name
                else:
                    child = PatternNode(tag=snode.label)
                    if last:
                        _copy_specs(edge.child, child)
                    node.add_child(child, CHILD, semantics)
                    spine[snode.pre] = child
                    node = child
            _graft_spine(
                edge.child, node, view, embedding, summary,
                spine, spine_names, aliases,
            )
        else:
            # off-spine: graft the original subtree verbatim
            subtree = _copy_subtree(edge.child)
            anchor.add_child(subtree, edge.axis, edge.semantics)


def _copy_subtree(node: PatternNode) -> PatternNode:
    clone = node.copy_shallow()
    for edge in node.edges:
        clone.add_child(_copy_subtree(edge.child), edge.axis, edge.semantics)
    return clone



def _glued_nodes(glues: Sequence[GlueCondition], use_index: int) -> list[str]:
    names = []
    for glue in glues:
        if glue.left_use == use_index:
            names.append(glue.left_node)
        if glue.right_use == use_index:
            names.append(glue.right_node)
    return names


def _copy_specs(source: PatternNode, target: PatternNode) -> None:
    if source.store_id and not target.store_id:
        target.store_id = source.store_id
    target.store_tag = target.store_tag or source.store_tag
    target.store_value = target.store_value or source.store_value
    target.store_content = target.store_content or source.store_content
    target.value_formula = target.value_formula.conjoin(source.value_formula)
    if source.name and not target.name:
        target.name = source.name