"""The ULoad-style database facade (thesis Fig. 5.1 and [13]).

:class:`Database` wires the full pipeline together:

1. documents are loaded, labeled and summarized;
2. storage structures / indexes / materialized views are installed — each
   is *described to the optimizer purely as a XAM* in the catalog;
3. an XQuery (the Q subset) is parsed, translated, and its **maximal
   query patterns** extracted (Chapter 3);
4. each query pattern is rewritten over the view catalog under summary
   constraints (Chapters 4–5); patterns without a usable rewriting fall
   back to direct evaluation against the documents (the "base store"
   access path, itself describable as XAMs);
5. the per-pattern plans are stitched into the full query plan (value
   joins / products + compensations + XML construction) and executed.

Dropping or adding a view changes future access-path choices without any
other code change — the physical data independence the thesis targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..algebra.model import NestedTuple
from ..algebra.operators import Operator
from ..engine.physical import compile_plan
from ..engine.storage import Store
from ..storage.catalog import Catalog, CatalogEntry
from ..storage.materialize import materialize_view
from ..summary.enhanced import annotate_edges
from ..summary.path_summary import PathSummary
from ..xmldata import Document, load
from ..xquery.ast import Expr
from ..xquery.extract import (
    ExtractionUnit,
    PatternAccess,
    assemble_plan,
    extract,
)
from ..xquery.parser import parse_query
from .embedding import evaluate_pattern
from .rewrite import Rewriting, rewrite_pattern
from .xam import Pattern
from .xam_parser import parse_pattern

__all__ = ["Database", "QueryResult", "PatternResolution"]


@dataclass
class PatternResolution:
    """How one query pattern was answered."""

    pattern: Pattern
    access_path: str  # "rewriting" or "base"
    rewriting: Optional[Rewriting] = None

    def __repr__(self) -> str:
        if self.rewriting is not None:
            return f"<via views {list(self.rewriting.views)}>"
        return "<via base store>"


@dataclass
class QueryResult:
    """Execution outcome of one query."""

    xml: list[str] = field(default_factory=list)
    values: list = field(default_factory=list)
    tuples: list[NestedTuple] = field(default_factory=list)
    resolutions: list[PatternResolution] = field(default_factory=list)
    plans: list[Operator] = field(default_factory=list)

    @property
    def used_views(self) -> list[str]:
        names: list[str] = []
        for resolution in self.resolutions:
            if resolution.rewriting is not None:
                names.extend(resolution.rewriting.views)
        return names


class Database:
    """An XML database with XAM-described physical storage."""

    def __init__(self) -> None:
        self.store = Store()
        self.catalog = Catalog()
        self.documents: list[Document] = []
        self.summary = PathSummary()

    # -- loading ------------------------------------------------------------

    @classmethod
    def from_xml(cls, source: str, name: str = "doc.xml") -> "Database":
        db = cls()
        db.add_document_xml(source, name)
        return db

    def add_document_xml(self, source: str, name: str = "doc.xml") -> Document:
        return self.add_document(load(source, name))

    def add_document(self, doc: Document) -> Document:
        self.documents.append(doc)
        self.summary.add_document(doc)
        self.summary.finalize()
        for existing in self.documents:
            annotate_edges(self.summary, existing)
        return doc

    # -- storage management ----------------------------------------------------

    def add_view(self, name: str, pattern: Pattern | str, kind: str = "view") -> CatalogEntry:
        """Materialize a XAM view over all documents and register it.

        Raises :class:`ValueError` if a view of that name already exists
        (``drop_view`` it first).
        """
        if any(entry.name == name for entry in self.catalog):
            raise ValueError(f"view {name!r} already exists")
        if isinstance(pattern, str):
            pattern = parse_pattern(pattern)
        if len(self.documents) == 1:
            return materialize_view(
                name, pattern, self.documents[0], self.store, self.catalog, kind
            )
        # multi-document: concatenate per-document materializations
        tuples: list[NestedTuple] = []
        for doc in self.documents:
            tuples.extend(evaluate_pattern(pattern, doc))
        self.store.add(name, tuples)
        return self.catalog.register(name, pattern, relation=name, kind=kind)

    def drop_view(self, name: str) -> None:
        self.catalog.unregister(name)
        if name in self.store:
            self.store.drop(name)

    def views(self) -> list[str]:
        return [entry.name for entry in self.catalog.views()]

    # -- querying ---------------------------------------------------------------

    def query(
        self,
        query: str | Expr,
        prefer_views: bool = True,
        physical: bool = False,
    ) -> QueryResult:
        """Parse, extract, rewrite, stitch and execute.

        ``prefer_views=False`` forces base-store evaluation (useful to
        compare access paths).  ``physical=True`` runs pattern-access
        plans through the physical engine compiler.
        """
        expr = parse_query(query) if isinstance(query, str) else query
        extraction = extract(expr)
        result = QueryResult()
        for unit in extraction.units:
            self._run_unit(unit, result, prefer_views, physical)
        return result

    def explain(self, query: str | Expr) -> list[PatternResolution]:
        """Access-path selection report without executing."""
        expr = parse_query(query) if isinstance(query, str) else query
        resolutions = []
        for unit in extract(expr).units:
            for pattern in unit.patterns:
                resolutions.append(self._resolve_pattern(pattern, True))
        return resolutions

    def rewrite(self, pattern: Pattern | str, **kwargs) -> list[Rewriting]:
        """Expose pattern rewriting directly (Chapter 5 entry point)."""
        if isinstance(pattern, str):
            pattern = parse_pattern(pattern)
        return rewrite_pattern(pattern, self.catalog, self.summary, **kwargs)

    # -- internals -------------------------------------------------------------

    def _resolve_pattern(
        self, pattern: Pattern, prefer_views: bool
    ) -> PatternResolution:
        if prefer_views and len(self.catalog.views()) > 0:
            rewritings = rewrite_pattern(pattern, self.catalog, self.summary)
            if rewritings:
                from .statistics import rank_rewritings

                best = rank_rewritings(
                    rewritings, self.catalog, self.summary, self.store
                )[0]
                return PatternResolution(pattern, "rewriting", best)
        return PatternResolution(pattern, "base")

    def _pattern_tuples(
        self, resolution: PatternResolution, physical: bool
    ) -> list[NestedTuple]:
        if resolution.rewriting is not None:
            plan = resolution.rewriting.plan
            context = self.store.context()
            if physical:
                return list(compile_plan(plan, self.store.scan_orders()).execute(context))
            return plan.evaluate(context)
        tuples: list[NestedTuple] = []
        for doc in self.documents:
            tuples.extend(evaluate_pattern(resolution.pattern, doc))
        return tuples

    def _run_unit(
        self,
        unit: ExtractionUnit,
        result: QueryResult,
        prefer_views: bool,
        physical: bool,
    ) -> None:
        resolutions = [
            self._resolve_pattern(pattern, prefer_views) for pattern in unit.patterns
        ]
        result.resolutions.extend(resolutions)
        bindings = {
            f"__pattern_{index}": self._pattern_tuples(resolution, physical)
            for index, resolution in enumerate(resolutions)
        }
        plan = assemble_plan(unit)
        result.plans.append(plan)
        tuples = plan.evaluate(bindings)
        result.tuples.extend(tuples)
        if unit.template is not None:
            result.xml.extend(t["xml"] for t in tuples)
        else:
            for t in tuples:
                for _pidx, path in unit.outputs:
                    for value in t.iter_path(path):
                        if value is not None and not isinstance(value, list):
                            result.values.append(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Database docs={len(self.documents)} views={len(self.catalog)} "
            f"|S|={len(self.summary) if self.documents else 0}>"
        )
