"""The ULoad-style database facade (thesis Fig. 5.1 and [13]).

:class:`Database` wires the full pipeline together:

1. documents are loaded, labeled and summarized;
2. storage structures / indexes / materialized views are installed — each
   is *described to the optimizer purely as a XAM* in the catalog;
3. an XQuery (the Q subset) is parsed, translated, and its **maximal
   query patterns** extracted (Chapter 3);
4. each query pattern is rewritten over the view catalog under summary
   constraints (Chapters 4–5); patterns without a usable rewriting fall
   back to direct evaluation against the documents (the "base store"
   access path, itself describable as XAMs);
5. the per-pattern plans are stitched into the full query plan (value
   joins / products + compensations + XML construction) and executed.

Dropping or adding a view changes future access-path choices without any
other code change — the physical data independence the thesis targets.

Every query builds one :class:`~repro.engine.context.ExecutionContext`
carrying summary/store statistics, the cost model and the metrics sink;
rewriting selection, plan compilation and execution all read from it.
:meth:`Database.explain` exposes the whole lifecycle: the logical plan,
the rewritten (view-based) plans, and the compiled physical plan with
estimated *and* actual per-operator cardinalities and timings.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from ..algebra.model import NestedTuple
from ..algebra.operators import Operator
from ..engine import faults
from ..engine.batch import batch_covered, compile_batch
from ..engine.breaker import OPEN, BreakerBoard
from ..engine.context import (
    EXEC_CTX_KEY,
    ExecutionContext,
    OperatorMetrics,
    PlanMetrics,
)
from ..engine.metrics import MetricsRegistry, get_registry
from ..engine.physical import PScan
from ..engine.plan_cache import (
    CompiledPlanArtifact,
    CompiledSlot,
    PinnedChoice,
    PinnedPlan,
    PlanCache,
    PlanPinStore,
    normalize_query,
)
from ..engine import profiler as profiler_mod
from ..engine.profiler import PROFILE_ENV_VAR, resolve_profile
from ..engine.qlog import fingerprint_plan, rewriting_signature
from ..engine.storage import Store
from ..engine.tracing import Tracer
from ..errors import (
    AccessModuleUnavailable,
    DuplicateViewError,
    PlanExecutionError,
    ReproError,
)
from ..storage.catalog import Catalog, CatalogEntry
from ..storage.materialize import materialize_view
from ..summary.enhanced import annotate_edges
from ..summary.path_summary import PathSummary
from ..xmldata import Document, load
from ..xquery.ast import Expr
from ..xquery.extract import (
    ExtractionUnit,
    PatternAccess,
    assemble_plan,
    extract,
)
from ..xquery.parser import parse_query
from .embedding import evaluate_pattern
from .rewrite import Rewriting, rewrite_pattern
from .statistics import CatalogStatistics, rank_rewritings
from .xam import Pattern
from .xam_parser import parse_pattern

__all__ = [
    "Database",
    "QueryResult",
    "PatternResolution",
    "PreparedUnit",
    "PreparedQuery",
    "QueryCancelled",
    "ExplainUnit",
    "ExplainReport",
    "EXECUTORS",
    "EXECUTOR_ENV_VAR",
    "resolve_executor",
    "PROFILE_ENV_VAR",
    "resolve_profile",
]


class QueryCancelled(ReproError, RuntimeError):
    """Raised inside :meth:`Database.execute_prepared` when the caller's
    ``should_stop`` callback asks a running query to abandon its remaining
    units (the service's cooperative cancellation hook)."""


#: the two execution engines: the per-tuple iterator interpreter and the
#: batch (columnar-block) executor of :mod:`repro.engine.batch`
EXECUTORS = ("iter", "batch")

#: environment variable selecting the default executor for new databases
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"


def resolve_executor(value: Optional[str]) -> str:
    """Normalize and validate an executor name (``None`` → the
    ``REPRO_EXECUTOR`` environment variable → ``"batch"``)."""
    if value is None:
        value = os.environ.get(EXECUTOR_ENV_VAR) or "batch"
    name = value.strip().lower()
    if name not in EXECUTORS:
        raise ValueError(
            f"unknown executor {value!r}: expected one of {', '.join(EXECUTORS)}"
        )
    return name


@dataclass
class PatternResolution:
    """How one query pattern was answered."""

    pattern: Pattern
    access_path: str  # "rewriting" or "base"
    rewriting: Optional[Rewriting] = None
    #: summary-estimated tuple count of the pattern (None when unknown)
    estimated_cardinality: Optional[float] = None
    #: tuples the chosen access path actually produced (None = not executed)
    actual_cardinality: Optional[int] = None
    #: True when this access path came from a tournament-promoted pin
    #: instead of cost-model ranking
    pinned: bool = False

    def __repr__(self) -> str:
        if self.rewriting is not None:
            return f"<via views {list(self.rewriting.views)}>"
        return "<via base store>"


@dataclass
class QueryResult:
    """Execution outcome of one query."""

    xml: list[str] = field(default_factory=list)
    values: list = field(default_factory=list)
    tuples: list[NestedTuple] = field(default_factory=list)
    resolutions: list[PatternResolution] = field(default_factory=list)
    plans: list[Operator] = field(default_factory=list)
    #: per-unit runtime metrics (populated when the query ran with
    #: ``stats=True`` — one PlanMetrics tree per assembled unit plan)
    metrics: list[PlanMetrics] = field(default_factory=list)
    #: named event counters copied from the execution context's metrics
    #: sink (plan-cache hits/misses when a QueryService ran the query)
    counters: dict = field(default_factory=dict)
    #: True when any pattern was answered by a fallback access path after
    #: its chosen access module failed (the result is still correct — the
    #: fallback is S-equivalent — but served under degraded conditions)
    degraded: bool = False
    #: human-readable log of what degraded and where the query was routed
    degradation_events: list[str] = field(default_factory=list)
    #: id of this query's span tree in the database's tracer ring
    #: (``service.trace(result.trace_id)`` / ``/trace/<id>``); None when
    #: tracing is disabled
    trace_id: Optional[str] = None
    #: stable hash of the prepared physical plan shape and chosen access
    #: paths (see :func:`repro.engine.qlog.fingerprint_plan`) — what the
    #: query log records and the plan-regression sentinel watches
    plan_fingerprint: Optional[str] = None
    #: which execution engine served this query (``"iter"`` / ``"batch"``
    #: — the *requested* mode; a per-plan coverage fallback shows up as an
    #: ``executor.fallback`` counter, never as a different fingerprint)
    executor: Optional[str] = None
    #: how many store partitions served this query (None = unsharded
    #: database; the query log stamps this so replay can diff the same
    #: workload across physical layouts)
    shard_count: Optional[int] = None
    #: True when the plan came from a tournament-promoted pinned plan
    #: (every pattern's access path applied from the pin, none missed)
    pinned: bool = False

    @property
    def used_views(self) -> list[str]:
        names: list[str] = []
        for resolution in self.resolutions:
            if resolution.rewriting is not None:
                names.extend(resolution.rewriting.views)
        return names


@dataclass
class PreparedUnit:
    """One extraction unit of a prepared query: its resolved access paths,
    the assembled logical plan, and lazily cached compiled artifacts."""

    unit: ExtractionUnit
    resolutions: list[PatternResolution]
    logical: Operator
    #: position of this unit in the prepared query (names the slots of
    #: the fingerprint-keyed compiled artifact: ``unit:<index>`` /
    #: ``pattern:<index>:<pattern>``)
    index: int = 0
    #: pattern index → compiled physical plan of the chosen rewriting
    #: (filled on first ``physical=True`` execution)
    compiled_patterns: dict[int, object] = field(default_factory=dict)
    #: compiled physical plan of the assembled unit (filled on first
    #: ``stats=True`` execution / explain)
    compiled_plan: Optional[object] = None


@dataclass
class PreparedQuery:
    """The reusable output of the parse → translate → extract → rewrite →
    assemble pipeline — everything about a query that does not depend on
    the data, only on the catalog state it was prepared against.

    Executing a prepared query re-reads the store, so results stay fresh
    for data already covered by :attr:`catalog_version`; any XAM /
    document / statistics mutation bumps the database's version and makes
    this plan stale (the plan cache drops it on the next lookup).

    Prepared queries are **not re-entrant**: resolutions and compiled
    plans carry per-execution mutable state, so :attr:`lock` serializes
    executions of the same plan (distinct plans run fully in parallel).
    """

    text: str
    prefer_views: bool
    catalog_version: int
    units: list[PreparedUnit]
    #: stable hash of the compiled plan shapes + chosen access paths
    #: (identical state re-prepares to an identical fingerprint; a
    #: different fingerprint means the optimizer changed its mind)
    fingerprint: str = ""
    #: the human-readable text the fingerprint hashes — kept for
    #: explaining *what* flipped when two fingerprints differ
    plan_shape: str = ""
    executions: int = 0
    #: True when every pattern's access path was applied from a pinned
    #: plan (a pin whose signatures no longer all match leaves this False
    #: — those patterns fell back to cost-model ranking)
    pinned: bool = False
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


@dataclass
class ExplainUnit:
    """The three-stage lifecycle of one query unit: the assembled
    **logical** plan, the per-pattern **rewritten** plans chosen by the
    optimizer (None = base-store access), and the compiled **physical**
    plan whose metrics hold estimated and actual cardinalities side by
    side."""

    logical: Operator
    resolutions: list[PatternResolution]
    rewritten: list[Optional[Operator]]
    physical: "object"
    metrics: PlanMetrics

    def render(self) -> str:
        lines: list[str] = []
        for index, resolution in enumerate(self.resolutions):
            est = resolution.estimated_cardinality
            act = resolution.actual_cardinality
            est_text = "?" if est is None else f"{est:.1f}"
            act_text = "?" if act is None else str(act)
            lines.append(f"pattern {index}: {resolution.pattern.to_text()}")
            lines.append(f"  → {resolution}  (est={est_text} act={act_text})")
            plan = self.rewritten[index]
            if plan is not None:
                lines.append("  rewritten plan:")
                lines.extend("    " + l for l in plan.pretty().splitlines())
        lines.append("logical plan:")
        lines.extend("  " + l for l in self.logical.pretty().splitlines())
        profiled = any(
            node.cpu_ns or node.peak_mem_bytes for node in self.metrics.walk()
        )
        if profiled:
            lines.append("physical plan (est | act | time | cpu | peak mem):")
        else:
            lines.append("physical plan (est | act | time):")
        lines.extend("  " + l for l in self.metrics.pretty().splitlines())
        return "\n".join(lines)


class ExplainReport:
    """What :meth:`Database.explain` returns.

    Iterating (or indexing) the report yields the per-pattern
    :class:`PatternResolution`\\ s — the original access-path view of
    explain — while :attr:`units` carries the full three-stage plan trees
    and :meth:`render` formats everything for humans."""

    def __init__(
        self,
        units: list[ExplainUnit],
        counters: Optional[dict] = None,
        health: Optional[dict] = None,
        trace_id: Optional[str] = None,
        plan_fingerprint: Optional[str] = None,
    ):
        self.units = units
        #: named event counters from the execution context's metrics sink
        #: (plan-cache hit/miss/invalidation when explained via a service)
        self.counters = dict(counters or {})
        #: access-module breaker states (name → closed/open/half-open) at
        #: explain time; empty when no module has ever failed
        self.health = dict(health or {})
        #: id of the explain run's span tree (None when tracing is off)
        self.trace_id = trace_id
        #: the prepared plan's fingerprint — compare against the query
        #: log / sentinel to see whether EXPLAIN describes the same plan
        #: production executed
        self.plan_fingerprint = plan_fingerprint

    @property
    def resolutions(self) -> list[PatternResolution]:
        return [r for unit in self.units for r in unit.resolutions]

    def __iter__(self) -> Iterator[PatternResolution]:
        return iter(self.resolutions)

    def __len__(self) -> int:
        return len(self.resolutions)

    def __getitem__(self, index: int) -> PatternResolution:
        return self.resolutions[index]

    def render(self) -> str:
        parts = []
        if self.plan_fingerprint:
            parts.append(f"plan fingerprint: {self.plan_fingerprint}")
        for number, unit in enumerate(self.units, 1):
            if len(self.units) > 1:
                parts.append(f"── unit {number} " + "─" * 24)
            parts.append(unit.render())
        if self.counters:
            parts.append("counters:")
            for name in sorted(self.counters):
                value = self.counters[name]
                text = f"{value:g}" if isinstance(value, float) else str(value)
                parts.append(f"  {name} = {text}")
        if self.health:
            parts.append("access modules:")
            for name in sorted(self.health):
                parts.append(f"  {name} = {self.health[name]}")
        return "\n".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.render()


def _lower_pattern_access(op: PatternAccess, lower, ctx) -> PScan:
    """Registry rule: a pattern access compiles to a scan of the binding
    relation the resolution layer publishes (``__pattern_<i>``)."""
    return PScan(op.context_key)


class Database:
    """An XML database with XAM-described physical storage."""

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: "Tracer | None | bool" = True,
        executor: Optional[str] = None,
        profile: "bool | str | None" = None,
    ) -> None:
        self.store = Store()
        self.catalog = Catalog()
        self.documents: list[Document] = []
        self.summary = PathSummary()
        #: the unified metrics sink: every per-query counter bump, the
        #: breaker board, the plan cache and the latency histogram land
        #: here (the process-wide default registry unless one is injected
        #: — tests asserting exact totals inject private ones)
        self.metrics = metrics if metrics is not None else get_registry()
        #: span-based tracer of the query lifecycle; ``True`` (default)
        #: builds a bounded :class:`~repro.engine.tracing.Tracer`, an
        #: explicit instance shares one, ``None``/``False`` disables
        #: tracing entirely (the overhead-comparison configuration)
        if tracer is True:
            tracer = Tracer()
        elif tracer is False:
            tracer = None
        self.tracer: Optional[Tracer] = tracer
        #: per-access-module circuit breakers, living alongside the
        #: catalog whose entries they track (closed → open after repeated
        #: failures → half-open recovery probe; open modules are excluded
        #: from rewriting ranking)
        self.breakers = BreakerBoard()
        self.breakers.register_metrics(self.metrics)
        #: optional default :class:`~repro.engine.faults.FaultInjector`
        #: attached to every execution context (chaos mode); the
        #: ``REPRO_FAULTS`` environment variable is the other way in
        self.fault_injector = None
        #: pinned statistics answers consulted before the live catalog /
        #: summary (key: relation name or pattern text).  The lever for
        #: reproducing stale-statistics incidents: pin a wrong number,
        #: watch the sentinel catch the misestimate, and let
        #: :meth:`refresh_statistics` clear it — mutate via
        #: :meth:`override_statistic` so cached plans invalidate
        self.statistics_overrides: dict[str, float] = {}
        #: document/statistics mutation counter (catalog mutations are
        #: counted by the catalog itself; see :attr:`catalog_version`)
        self._mutations = 0
        #: which execution engine queries run under (``"iter"`` /
        #: ``"batch"``); defaults to ``$REPRO_EXECUTOR`` or ``"batch"``.
        #: Mutable at runtime (the REPL's ``.executor`` command) — plans
        #: and fingerprints are executor-independent, only execution
        #: changes.
        self.executor = resolve_executor(executor)
        #: attributed resource profiling (per-operator CPU + peak traced
        #: memory in both executors): ``None`` defers to ``$REPRO_PROFILE``,
        #: off by default.  Mutable at runtime (the REPL's ``.profile``
        #: command) — it only changes what execution records, never the
        #: plan.
        self.profile = resolve_profile(profile)
        #: attributed CPU is measured on every profiled query (two clock
        #: reads per observation point — effectively free), but the
        #: tracemalloc window behind ``peak_mem_bytes`` slows allocation
        #: ~2x, so the memory column is *sampled*: every Nth profiled
        #: query per database opens the window (the first always does).
        #: Set to 1 for memory on every query (``repro profile`` does).
        self.profile_memory_stride = profiler_mod.MEM_SAMPLE_STRIDE
        self._profiled_queries = itertools.count()
        #: fingerprint-keyed cache of compiled batch artifacts
        #: (:class:`~repro.engine.plan_cache.CompiledPlanArtifact`);
        #: entries are stamped with :attr:`catalog_version`, so any
        #: view/document/statistics mutation invalidates them exactly as
        #: it invalidates prepared plans
        self.compiled_plans = PlanCache(capacity=64)
        #: tournament-promoted plan pins
        #: (:class:`~repro.engine.plan_cache.PlanPinStore`): per normalized
        #: query, the benchmark-validated access-path choices that bypass
        #: ``rank_rewritings`` at prepare time.  Not an LRU — pins survive
        #: any cache pressure and die only on catalog-version bumps.
        self.plan_pins = PlanPinStore()

    @property
    def catalog_version(self) -> int:
        """Monotonically increasing version of everything a prepared plan
        depends on: the XAM catalog, the document set, and the statistics.
        The plan cache stamps entries with this number; any mismatch means
        the plan was derived against outdated state."""
        return self._mutations + self.catalog.version

    # -- loading ------------------------------------------------------------

    @classmethod
    def from_xml(cls, source: str, name: str = "doc.xml") -> "Database":
        db = cls()
        db.add_document_xml(source, name)
        return db

    def add_document_xml(self, source: str, name: str = "doc.xml") -> Document:
        return self.add_document(load(source, name))

    def add_document(self, doc: Document) -> Document:
        self.add_documents([doc])
        return doc

    def add_documents(self, docs: Iterable[Document]) -> list[Document]:
        """Bulk-load documents, finalizing the path summary and
        re-annotating edge statistics once for the whole batch instead of
        once per document — what makes a :class:`Database` cheap to
        construct around a store partition (the sharding coordinator
        builds one per shard)."""
        docs = list(docs)
        for doc in docs:
            self.documents.append(doc)
            self.summary.add_document(doc)
        self.summary.finalize()
        for existing in self.documents:
            annotate_edges(self.summary, existing)
        self._mutations += 1
        return docs

    def refresh_statistics(self) -> None:
        """Recompute summary annotations over all documents, drop any
        pinned statistics overrides, and bump the catalog version:
        cardinality estimates feed rewriting choice, so cached plans
        ranked under the old statistics must be re-prepared."""
        self.statistics_overrides.clear()
        self.summary.finalize()
        for doc in self.documents:
            annotate_edges(self.summary, doc)
        self._mutations += 1

    def override_statistic(self, key: str, value: Optional[float]) -> None:
        """Pin (or, with ``value=None``, unpin) one statistics answer.

        ``key`` is a relation/view name (``relation_size``) or a pattern's
        ``to_text()`` form (``pattern_cardinality``).  Bumps the catalog
        version: plans ranked under the old answer are stale and must be
        re-prepared — which is exactly how a deliberately dropped or
        corrupted statistics entry surfaces as a plan-fingerprint flip."""
        if value is None:
            self.statistics_overrides.pop(key, None)
        else:
            self.statistics_overrides[key] = float(value)
        self._mutations += 1

    # -- storage management ----------------------------------------------------

    def add_view(self, name: str, pattern: Pattern | str, kind: str = "view") -> CatalogEntry:
        """Materialize a XAM view over all documents and register it.

        Raises :class:`ValueError` if a view of that name already exists
        (``drop_view`` it first).
        """
        if any(entry.name == name for entry in self.catalog):
            raise DuplicateViewError(f"view {name!r} already exists")
        if isinstance(pattern, str):
            pattern = parse_pattern(pattern)
        if len(self.documents) == 1:
            return materialize_view(
                name, pattern, self.documents[0], self.store, self.catalog, kind
            )
        # multi-document: concatenate per-document materializations
        tuples: list[NestedTuple] = []
        for doc in self.documents:
            tuples.extend(evaluate_pattern(pattern, doc))
        self.store.add(name, tuples)
        return self.catalog.register(name, pattern, relation=name, kind=kind)

    def drop_view(self, name: str) -> None:
        self.catalog.unregister(name)
        if name in self.store:
            self.store.drop(name)

    def views(self) -> list[str]:
        return [entry.name for entry in self.catalog.views()]

    def shard(self, shard_count: int, **kwargs) -> "Database":
        """Re-house this database's documents and views across
        ``shard_count`` store partitions behind a scatter-gather
        coordinator (:class:`~repro.core.coordinator.ShardedDatabase`).

        The coordinator plans against the same global state, so plan
        fingerprints stay byte-identical to this database's — replaying a
        workload recorded here against the sharded layout must diff
        clean, which is the physical-data-independence test the sharded
        CI lane runs.  Keyword arguments (``partitioner``,
        ``shard_timeout``, ``fanout_workers``) pass through to the
        coordinator.
        """
        from .coordinator import ShardedDatabase

        sharded = ShardedDatabase(
            shard_count,
            metrics=self.metrics,
            tracer=self.tracer,
            executor=self.executor,
            profile=self.profile,
            **kwargs,
        )
        sharded.fault_injector = self.fault_injector
        sharded.add_documents(self.documents)
        for entry in list(self.catalog):
            sharded.add_view(entry.name, entry.pattern, kind=entry.kind)
        sharded.statistics_overrides.update(self.statistics_overrides)
        return sharded

    # -- the per-query execution context ----------------------------------------

    def execution_context(self) -> ExecutionContext:
        """One context per query: summary/store statistics, the cost
        model, the PatternAccess lowering rule, and the metrics sink.
        Chaos mode rides along: the database's (or the environment's)
        fault injector is attached for :meth:`execute_prepared` to scope
        around execution."""
        ctx = ExecutionContext(
            statistics=CatalogStatistics(
                self.catalog,
                self.summary,
                self.store,
                overrides=self.statistics_overrides,
            ),
            registry={PatternAccess: _lower_pattern_access},
            metrics_registry=self.metrics,
        )
        ctx.fault_injector = self.fault_injector or faults.injector_from_env()
        ctx.executor = self.executor
        ctx.profile = self.profile
        if self.profile:
            stride = max(1, int(self.profile_memory_stride))
            ctx.mem_sample = next(self._profiled_queries) % stride == 0
        if self.tracer is not None:
            ctx.trace = self.tracer.start_trace()
        return ctx

    def health(self) -> str:
        """Access-module health — the breaker board, rendered (the REPL's
        ``.health`` command and ``repro serve`` print this)."""
        return self.breakers.render()

    # -- querying ---------------------------------------------------------------

    def prepare(
        self,
        query: str | Expr,
        prefer_views: bool = True,
        context: Optional[ExecutionContext] = None,
        pin: Optional[PinnedPlan] = None,
        consult_pins: bool = True,
    ) -> PreparedQuery:
        """Run the data-independent half of the pipeline once: parse,
        translate, extract maximal patterns, search and rank rewritings,
        and assemble the per-unit logical plans.  The result can be
        executed any number of times (and is what the plan cache stores).

        A tournament-promoted **pinned plan** for this query (looked up in
        :attr:`plan_pins` unless ``consult_pins`` is False, or passed
        explicitly as ``pin`` — the tournament's way of preparing a
        specific candidate) bypasses cost-model ranking: each pinned
        choice names its access path by rewriting signature and is
        re-found among the enumerated candidates.  A choice whose
        signature no longer matches anything (or whose views sit behind an
        open breaker) falls back to normal ranking for that pattern —
        correctness never depends on the pin, only plan choice does.
        """
        ctx = context or self.execution_context()
        if pin is None and consult_pins and isinstance(query, str):
            pin, outcome = self.plan_pins.lookup(
                normalize_query(query), self.catalog_version
            )
            if outcome == "stale":
                ctx.bump("plan_pin.invalidate")
                ctx.event("plan_pin.invalidate", query=normalize_query(query))
        with ctx.span("parse"):
            expr = parse_query(query) if isinstance(query, str) else query
        with ctx.span("extract") as extract_span:
            extraction = extract(expr)
            if extract_span is not None:
                extract_span.attributes["units"] = len(extraction.units)
        pin_state = {"applied": 0, "missed": 0}
        units: list[PreparedUnit] = []
        for unit_index, unit in enumerate(extraction.units):
            resolutions = [
                self._resolve_pattern(
                    pattern,
                    prefer_views,
                    ctx,
                    pinned=(
                        pin.choice(unit_index, pattern_index)
                        if pin is not None
                        else None
                    ),
                    pin_state=pin_state,
                )
                for pattern_index, pattern in enumerate(unit.patterns)
            ]
            with ctx.span("assemble"):
                logical = assemble_plan(unit)
            units.append(
                PreparedUnit(
                    unit=unit,
                    resolutions=resolutions,
                    logical=logical,
                    index=len(units),
                )
            )
        # Fingerprint the prepared plan: compiles each unit (and chosen
        # rewriting) eagerly — the compiled artifacts are cached on the
        # units, so later stats/physical executions reuse them — and
        # hashes the physical shapes plus the chosen access paths.
        fingerprint, plan_shape = fingerprint_plan(
            units, ctx, self.store.scan_orders()
        )
        return PreparedQuery(
            text=query if isinstance(query, str) else "",
            prefer_views=prefer_views,
            catalog_version=self.catalog_version,
            units=units,
            fingerprint=fingerprint,
            plan_shape=plan_shape,
            pinned=(
                pin is not None
                and pin_state["applied"] > 0
                and pin_state["missed"] == 0
            ),
        )

    def execute_prepared(
        self,
        prepared: PreparedQuery,
        physical: bool = False,
        stats: bool = False,
        context: Optional[ExecutionContext] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> QueryResult:
        """Execute a prepared query against the current store contents.

        Holds the prepared plan's lock for the duration (plans carry
        per-execution state, so executions of the *same* plan serialize;
        distinct plans run in parallel).  ``should_stop`` is polled at
        unit boundaries; returning True raises :class:`QueryCancelled`.
        """
        ctx = context or self.execution_context()
        result = QueryResult()
        events: list[str] = []
        with ctx.span("execute", units=len(prepared.units)):
            with prepared.lock, faults.scope(ctx.fault_injector, ctx):
                prepared.executions += 1
                for number, prepared_unit in enumerate(prepared.units):
                    if should_stop is not None and should_stop():
                        raise QueryCancelled(
                            f"query cancelled: {prepared.text!r}"
                        )
                    with ctx.span("unit", index=number):
                        self._run_prepared_unit(
                            prepared_unit, result, physical, stats, ctx,
                            events, fingerprint=prepared.fingerprint,
                        )
        result.degradation_events = events
        result.degraded = bool(events)
        result.counters = dict(ctx.counters)
        result.trace_id = ctx.trace_id
        result.plan_fingerprint = prepared.fingerprint or None
        result.executor = getattr(ctx, "executor", None)
        result.pinned = prepared.pinned
        ctx.end_trace("degraded" if result.degraded else "ok")
        return result

    def query(
        self,
        query: str | Expr,
        prefer_views: bool = True,
        physical: bool = False,
        stats: bool = False,
        context: Optional[ExecutionContext] = None,
    ) -> QueryResult:
        """Parse, extract, rewrite, stitch and execute.

        ``prefer_views=False`` forces base-store evaluation (useful to
        compare access paths).  ``physical=True`` runs pattern-access
        plans through the physical engine compiler.  ``stats=True``
        additionally compiles the assembled unit plans through the
        physical engine and records per-operator metrics into
        ``result.metrics`` (one tree per unit).  ``context`` lets callers
        (the query service) thread one metrics sink through preparation
        and execution.
        """
        ctx = context or self.execution_context()
        try:
            prepared = self.prepare(query, prefer_views, context=ctx)
            return self.execute_prepared(
                prepared, physical=physical, stats=stats, context=ctx
            )
        except BaseException:
            ctx.end_trace("error")
            raise

    def explain(
        self,
        query: str | Expr,
        prefer_views: bool = True,
        context: Optional[ExecutionContext] = None,
    ) -> ExplainReport:
        """The full plan lifecycle of a query, executed with metrics.

        Per unit: the assembled logical plan, each pattern's chosen access
        path (with its rewritten plan when views are used), and the
        compiled physical plan annotated with estimated *and* actual
        per-operator cardinalities and timings.
        """
        ctx = context or self.execution_context()
        try:
            return self.explain_prepared(
                self.prepare(query, prefer_views, context=ctx), ctx
            )
        except BaseException:
            ctx.end_trace("error")
            raise

    def explain_prepared(
        self,
        prepared: PreparedQuery,
        context: Optional[ExecutionContext] = None,
    ) -> ExplainReport:
        """EXPLAIN an already prepared (possibly cached) query: compile
        the unit plans if needed, execute with metrics, and report —
        including any counters the context's metrics sink accumulated
        (e.g. the service's plan-cache hit/miss for this very lookup)."""
        ctx = context or self.execution_context()
        units: list[ExplainUnit] = []
        with ctx.span("execute", units=len(prepared.units), explain=True):
            with prepared.lock, faults.scope(ctx.fault_injector, ctx):
                prepared.executions += 1
                for prepared_unit in prepared.units:
                    bindings = {}
                    for index, resolution in enumerate(prepared_unit.resolutions):
                        with ctx.span("pattern", index=index):
                            tuples = self._prepared_pattern_tuples(
                                prepared_unit, index, resolution,
                                physical=True, ctx=ctx,
                                fingerprint=prepared.fingerprint,
                            )
                        resolution.actual_cardinality = len(tuples)
                        bindings[f"__pattern_{index}"] = tuples
                    if prepared_unit.compiled_plan is None:
                        prepared_unit.compiled_plan = ctx.compile(
                            prepared_unit.logical, self.store.scan_orders()
                        )
                    slot = self._batch_slot(
                        prepared.fingerprint,
                        f"unit:{prepared_unit.index}",
                        prepared_unit.compiled_plan,
                        ctx,
                    )
                    if slot is not None:
                        with slot.lock:
                            _, metrics = ctx.run(
                                slot.plan, bindings, batch_fn=slot.fn
                            )
                        explained_physical = slot.plan
                    else:
                        _, metrics = ctx.run(
                            prepared_unit.compiled_plan, bindings
                        )
                        explained_physical = prepared_unit.compiled_plan
                    units.append(
                        ExplainUnit(
                            logical=prepared_unit.logical,
                            resolutions=prepared_unit.resolutions,
                            rewritten=[
                                r.rewriting.plan if r.rewriting is not None else None
                                for r in prepared_unit.resolutions
                            ],
                            physical=explained_physical,
                            metrics=metrics,
                        )
                    )
        report = ExplainReport(
            units,
            counters=ctx.counters,
            health=self.breakers.states(),
            trace_id=ctx.trace_id,
            plan_fingerprint=prepared.fingerprint or None,
        )
        ctx.end_trace()
        return report

    def rewrite(self, pattern: Pattern | str, **kwargs) -> list[Rewriting]:
        """Expose pattern rewriting directly (Chapter 5 entry point)."""
        if isinstance(pattern, str):
            pattern = parse_pattern(pattern)
        return rewrite_pattern(pattern, self.catalog, self.summary, **kwargs)

    # -- internals -------------------------------------------------------------

    def _batch_slot(
        self,
        fingerprint: Optional[str],
        slot_name: str,
        physical_plan,
        ctx: ExecutionContext,
    ) -> Optional[CompiledSlot]:
        """The compiled batch slot for one physical plan, or None when the
        iterator engine should run it.

        Selection: the context must request the batch executor, and the
        plan must be covered (an uncovered operator falls the *whole plan*
        back to the iterator path, counted via ``executor.fallback``).
        Compiled closures are cached in :attr:`compiled_plans` under the
        plan fingerprint, stamped with the catalog version — a
        view/document/statistics mutation makes the artifact stale on the
        next lookup (``plan_compile.invalidate``) and it is recompiled.
        """
        if getattr(ctx, "executor", "iter") != "batch":
            return None
        if not batch_covered(physical_plan):
            ctx.bump("executor.fallback")
            ctx.event("executor.fallback", plan=physical_plan.label())
            return None
        if not fingerprint:
            # unfingerprinted plans compile uncached (still batch-executed)
            return CompiledSlot(slot_name, physical_plan, compile_batch(physical_plan))
        version = self.catalog_version
        artifact, outcome = self.compiled_plans.lookup(fingerprint, version)
        if outcome == "stale":
            ctx.bump("plan_compile.invalidate")
            ctx.event("plan_compile.invalidate", fingerprint=fingerprint)
        if artifact is None:
            artifact = CompiledPlanArtifact(fingerprint, version)
            self.compiled_plans.put(fingerprint, artifact, version)
        slot, fresh = artifact.slot(slot_name, physical_plan, compile_batch)
        ctx.bump("plan_compile.miss" if fresh else "plan_compile.hit")
        return slot

    def _resolve_pattern(
        self,
        pattern: Pattern,
        prefer_views: bool,
        ctx: Optional[ExecutionContext] = None,
        pinned: Optional[PinnedChoice] = None,
        pin_state: Optional[dict] = None,
    ) -> PatternResolution:
        ctx = ctx or self.execution_context()
        estimate = ctx.statistics.pattern_cardinality(pattern)
        if pinned is not None:
            resolution = self._resolve_pinned(pattern, pinned, ctx, estimate)
            if resolution is not None:
                if pin_state is not None:
                    pin_state["applied"] += 1
                ctx.bump("plan_pin.hit")
                return resolution
            # The pinned rewriting no longer exists at this catalog state
            # (or its views are breaker-unavailable).  Safe fallback:
            # count the miss and let cost-model ranking decide below.
            if pin_state is not None:
                pin_state["missed"] += 1
            ctx.bump("plan_pin.unmatched")
            ctx.event("plan_pin.unmatched", pattern=pattern.to_text())
        if prefer_views and len(self.catalog.views()) > 0:
            with ctx.span(
                "rewrite-search", pattern=pattern.to_text()
            ) as search_span:
                # enumerate *fully* — truncating before ranking would hide
                # the cheapest candidate from the cost model
                rewritings = rewrite_pattern(
                    pattern, self.catalog, self.summary, max_results=None
                )
                # open-circuit modules are out of the race at planning
                # time; half-open ones stay in (the probe that may close
                # them)
                unavailable = self.breakers.unavailable_names()
                if unavailable:
                    rewritings = [
                        r for r in rewritings if not unavailable & set(r.views)
                    ]
                if search_span is not None:
                    search_span.attributes["candidates"] = len(rewritings)
            if rewritings:
                with ctx.span("rank", candidates=len(rewritings)):
                    best = rank_rewritings(
                        rewritings,
                        self.catalog,
                        self.summary,
                        self.store,
                        statistics=ctx.statistics,
                    )[0]
                return PatternResolution(
                    pattern, "rewriting", best, estimated_cardinality=estimate
                )
        return PatternResolution(pattern, "base", estimated_cardinality=estimate)

    def _resolve_pinned(
        self,
        pattern: Pattern,
        pinned: PinnedChoice,
        ctx: ExecutionContext,
        estimate: Optional[float],
    ) -> Optional[PatternResolution]:
        """Apply one pinned access-path choice, or None when it cannot be
        honored (signature matches nothing at this catalog state, or the
        pinned views sit behind an open breaker).  Pins only ever select
        among S-equivalent candidates, so an unmatched pin degrades plan
        *choice*, never answer correctness."""
        if pinned.access == "base":
            return PatternResolution(
                pattern, "base", estimated_cardinality=estimate, pinned=True
            )
        unavailable = self.breakers.unavailable_names()
        with ctx.span("pin-match", pattern=pattern.to_text()):
            for rewriting in rewrite_pattern(
                pattern, self.catalog, self.summary, max_results=None
            ):
                if unavailable & set(rewriting.views):
                    continue
                if rewriting_signature(rewriting) == pinned.signature:
                    return PatternResolution(
                        pattern,
                        "rewriting",
                        rewriting,
                        estimated_cardinality=estimate,
                        pinned=True,
                    )
        return None

    def _prepared_pattern_tuples(
        self,
        prepared_unit: PreparedUnit,
        index: int,
        resolution: PatternResolution,
        physical: bool,
        ctx: ExecutionContext,
        events: Optional[list[str]] = None,
        fingerprint: Optional[str] = None,
    ) -> list[NestedTuple]:
        """Evaluate one resolved pattern against the current store,
        reusing (and lazily filling) the unit's compiled rewriting plan
        when the physical engine is requested.

        This is the degradation point of the availability corollary
        (thesis §1.2.4): when the chosen access module fails with
        :class:`AccessModuleUnavailable`, the failure is recorded in the
        module's circuit breaker and the pattern is re-routed through the
        next-best S-equivalent rewriting that avoids the failed (and any
        open-circuit) modules, falling back to base-store evaluation when
        no rewriting survives.  Transient faults are *not* absorbed here —
        they propagate to the caller (the query service retries them).
        """
        if resolution.rewriting is None:
            return self._base_pattern_tuples(
                resolution.pattern, ctx, resolution.estimated_cardinality
            )
        rewriting = resolution.rewriting
        original = rewriting
        failed: set[str] = set()
        while rewriting is not None:
            try:
                if rewriting is original:
                    tuples = self._run_rewriting(
                        prepared_unit, index, rewriting, physical, ctx,
                        fingerprint=fingerprint,
                    )
                else:
                    tuples = self._evaluate_rewriting(rewriting, ctx)
            except AccessModuleUnavailable as fault:
                names = [fault.xam] if fault.xam else list(rewriting.views)
                for name in names:
                    failed.add(name)
                    state = self.breakers.record_failure(name, str(fault))
                    if state == OPEN:
                        ctx.bump("breaker.opened")
                        ctx.event("breaker.opened", module=name)
                ctx.bump("degraded.module_failures")
                if events is not None:
                    events.append(
                        self._stamp_event(
                            f"access module {'/'.join(names)} "
                            f"unavailable: {fault}",
                            ctx,
                        )
                    )
                rewriting = self._fallback_rewriting(
                    resolution.pattern, failed, ctx
                )
                if rewriting is not None:
                    ctx.bump("degraded.reroutes")
                    ctx.event(
                        "degraded.reroute", views=",".join(rewriting.views)
                    )
                    if events is not None:
                        events.append(
                            self._stamp_event(
                                "re-routed pattern through views "
                                f"{list(rewriting.views)}",
                                ctx,
                            )
                        )
                continue
            for name in rewriting.views:
                self.breakers.record_success(name)
            if rewriting is not original:
                ctx.bump("degraded.patterns")
            return tuples
        ctx.bump("degraded.patterns")
        ctx.bump("degraded.base_fallbacks")
        ctx.event("degraded.base-fallback")
        if events is not None:
            events.append(
                self._stamp_event(
                    "no usable rewriting left; fell back to base store", ctx
                )
            )
        return self._base_pattern_tuples(
            resolution.pattern, ctx, resolution.estimated_cardinality
        )

    @staticmethod
    def _stamp_event(message: str, ctx: ExecutionContext) -> str:
        """Degradation events carry the trace id, so a degraded result's
        log lines lead back to the span tree that explains them."""
        trace_id = ctx.trace_id
        return f"{message} [trace {trace_id}]" if trace_id else message

    def _run_rewriting(
        self,
        prepared_unit: PreparedUnit,
        index: int,
        rewriting: Rewriting,
        physical: bool,
        ctx: ExecutionContext,
        fingerprint: Optional[str] = None,
    ) -> list[NestedTuple]:
        """Run the originally chosen rewriting, reusing the unit's compiled
        plan cache (and, under the batch executor, the fingerprint-keyed
        compiled closure); storage-level surprises are normalized to the
        typed hierarchy (a vanished relation is an unavailable module,
        anything else is a plan-execution fault blamed on this
        rewriting)."""
        plan = rewriting.plan
        context = self.store.context()
        context[EXEC_CTX_KEY] = ctx
        try:
            if physical:
                compiled = prepared_unit.compiled_patterns.get(index)
                if compiled is None:
                    compiled = ctx.compile(plan, self.store.scan_orders())
                    prepared_unit.compiled_patterns[index] = compiled
                slot = self._batch_slot(
                    fingerprint,
                    f"pattern:{prepared_unit.index}:{index}",
                    compiled,
                    ctx,
                )
                if ctx.profile:
                    # most of a view-backed query's work happens here, not
                    # in the final unit stitch: run instrumented so the
                    # rewriting plan's CPU/memory is attributed (the trees
                    # land in ctx.metrics; _run_prepared_unit forwards
                    # them into the result)
                    if slot is not None:
                        with slot.lock:
                            tuples, _ = ctx.run(
                                slot.plan, context, batch_fn=slot.fn
                            )
                    else:
                        tuples, _ = ctx.run(compiled, context)
                    return tuples
                if slot is not None:
                    with slot.lock:
                        return slot.fn(context).tuples
                return list(compiled.execute(context))
            return plan.evaluate(context)
        except ReproError:
            raise
        except KeyError as error:
            raise AccessModuleUnavailable(
                f"relation {error} missing from the store",
                xam=rewriting.views[0] if rewriting.views else None,
            ) from error
        except Exception as error:
            raise PlanExecutionError(
                f"{type(error).__name__} while evaluating rewriting "
                f"{list(rewriting.views)}: {error}",
                operator=plan.label() if hasattr(plan, "label") else None,
                xam=rewriting.views[0] if rewriting.views else None,
            ) from error

    def _evaluate_rewriting(
        self, rewriting: Rewriting, ctx: ExecutionContext
    ) -> list[NestedTuple]:
        """Run a fallback rewriting logically, without touching the
        prepared unit's compiled-plan cache (the degraded path must not
        poison the cached plan of the healthy one)."""
        try:
            return rewriting.plan.evaluate(self.store.context())
        except ReproError:
            raise
        except KeyError as error:
            raise AccessModuleUnavailable(
                f"relation {error} missing from the store",
                xam=rewriting.views[0] if rewriting.views else None,
            ) from error
        except Exception as error:
            raise PlanExecutionError(
                f"{type(error).__name__} while evaluating fallback rewriting "
                f"{list(rewriting.views)}: {error}",
                xam=rewriting.views[0] if rewriting.views else None,
            ) from error

    def _fallback_rewriting(
        self,
        pattern: Pattern,
        failed: set[str],
        ctx: ExecutionContext,
    ) -> Optional[Rewriting]:
        """Best S-equivalent rewriting avoiding the just-failed and any
        open-circuit access modules; None when no candidate survives."""
        exclusions = failed | self.breakers.unavailable_names()
        candidates = [
            r
            for r in rewrite_pattern(
                pattern, self.catalog, self.summary, max_results=None
            )
            if not exclusions & set(r.views)
        ]
        if not candidates:
            return None
        return rank_rewritings(
            candidates,
            self.catalog,
            self.summary,
            self.store,
            statistics=ctx.statistics,
        )[0]

    def _base_pattern_tuples(
        self,
        pattern: Pattern,
        ctx: Optional[ExecutionContext] = None,
        estimate: Optional[float] = None,
    ) -> list[NestedTuple]:
        """Evaluate a pattern directly over the in-memory documents — the
        always-available access path of last resort (it bypasses the
        store, so storage-level fault points cannot touch it).

        Base evaluation runs no physical operators, so under attributed
        profiling it contributes a synthetic one-node metrics tree — the
        dominant cost of view-less queries must not vanish from the
        profile."""
        if ctx is None or not ctx.profile:
            tuples: list[NestedTuple] = []
            for doc in self.documents:
                tuples.extend(evaluate_pattern(pattern, doc))
            return tuples
        node = OperatorMetrics(
            label=f"BaseEval({pattern.to_text()})", estimated_rows=estimate
        )
        node.executions = 1
        started = time.perf_counter()
        cpu_started = time.thread_time_ns()
        tuples = []
        for doc in self.documents:
            tuples.extend(evaluate_pattern(pattern, doc))
        node.cpu_ns = time.thread_time_ns() - cpu_started
        node.elapsed = time.perf_counter() - started
        node.rows_out = len(tuples)
        ctx.metrics.append(PlanMetrics(node))
        return tuples

    def _run_prepared_unit(
        self,
        prepared_unit: PreparedUnit,
        result: QueryResult,
        physical: bool,
        stats: bool,
        ctx: ExecutionContext,
        events: Optional[list[str]] = None,
        fingerprint: Optional[str] = None,
    ) -> None:
        unit = prepared_unit.unit
        resolutions = prepared_unit.resolutions
        result.resolutions.extend(resolutions)
        bindings = {}
        pattern_mark = len(ctx.metrics)
        for index, resolution in enumerate(resolutions):
            with ctx.span(
                "pattern", index=index, access=resolution.access_path
            ):
                tuples = self._prepared_pattern_tuples(
                    prepared_unit, index, resolution, physical, ctx, events,
                    fingerprint=fingerprint,
                )
            resolution.actual_cardinality = len(tuples)
            bindings[f"__pattern_{index}"] = tuples
        if ctx.profile:
            # profiled rewriting runs instrumented their plans into
            # ctx.metrics; surface those trees alongside the unit plan's
            result.metrics.extend(ctx.metrics[pattern_mark:])
        plan = prepared_unit.logical
        result.plans.append(plan)
        try:
            if stats:
                if prepared_unit.compiled_plan is None:
                    prepared_unit.compiled_plan = ctx.compile(
                        plan, self.store.scan_orders()
                    )
                slot = self._batch_slot(
                    fingerprint,
                    f"unit:{prepared_unit.index}",
                    prepared_unit.compiled_plan,
                    ctx,
                )
                if slot is not None:
                    with slot.lock:
                        tuples, metrics = ctx.run(
                            slot.plan, bindings, batch_fn=slot.fn
                        )
                else:
                    tuples, metrics = ctx.run(
                        prepared_unit.compiled_plan, bindings
                    )
                result.metrics.append(metrics)
            else:
                tuples = plan.evaluate(bindings)
        except ReproError:
            raise
        except Exception as error:
            raise PlanExecutionError(
                f"{type(error).__name__} while executing {plan.label()}: {error}",
                operator=plan.label(),
            ) from error
        result.tuples.extend(tuples)
        if unit.template is not None:
            result.xml.extend(t["xml"] for t in tuples)
        else:
            for t in tuples:
                for _pidx, path in unit.outputs:
                    for value in t.iter_path(path):
                        if value is not None and not isinstance(value, list):
                            result.values.append(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Database docs={len(self.documents)} views={len(self.catalog)} "
            f"|S|={len(self.summary) if self.documents else 0}>"
        )
