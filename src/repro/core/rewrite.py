"""Rewriting query patterns using XAM views (thesis Chapter 5).

Generate-and-test, as §5.3 prescribes: candidate plans over the view
catalog are proposed from path-annotation compatibility, converted to
their S-equivalent union of patterns (§5.5, :mod:`repro.core.plan_pattern`)
and kept only when that union is S-equivalent to the query pattern.

The generator exploits every rewriting enabler called out in §5.2:

* **summary-based matching** — a view node serves a query node when their
  path annotations (Definition 4.3.1) intersect; the final equivalence
  test confirms the summary closes the gap (e.g. ``//region/*/description
  /parlist/listitem`` serving ``//region/item//listitem``);
* **navigation in stored content** — a view storing ``Cont`` of an
  ancestor path serves descendant value/content needs through a
  :class:`~repro.algebra.operators.Navigate` operator;
* **structural identifiers** — views without common nodes combine through
  structural joins on their stored structural IDs;
* **ID properties** — navigational (``p``) identifiers derive the parent
  ID, enabling equality joins the stored attributes alone would not allow
  (:class:`~repro.algebra.operators.DerivedColumn`);
* **unions** — when no single view covers the query, views individually
  contained in it may cover it jointly (the summary-driven union
  rewritings of §5.3).

The result plans read from the base relations named in the catalog, so
they execute directly against the store — physical data independence
end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..algebra.formulas import Formula
from ..algebra.model import NestedTuple
from ..algebra.operators import (
    DerivedColumn,
    Navigate,
    Operator,
    Project,
    Scan,
    Select,
    StructuralJoin,
    Union as UnionOp,
    ValueJoin,
)
from ..algebra.predicates import Attr, Compare, Predicate
from ..storage.catalog import Catalog, CatalogEntry
from ..summary.path_summary import PathSummary
from ..xmldata.ids import ID_KINDS, DeweyID
from .canonical import is_satisfiable, path_annotations
from .containment import is_contained
from .embedding import subtree_attribute_names
from .plan_pattern import GlueCondition, merged_patterns
from .xam import CHILD, DESCENDANT, JOIN, OUTER, Pattern, PatternNode

__all__ = ["Rewriting", "rewrite_pattern", "DeepRename", "Regroup", "SatisfiesFormula"]


@dataclass(frozen=True)
class SatisfiesFormula(Predicate):
    """σ over a value attribute against an interval formula (query value
    predicates a view stores but does not enforce)."""

    attr: Attr
    formula: Formula

    def holds(self, left: NestedTuple, right: Optional[NestedTuple] = None) -> bool:
        return any(
            self.formula.evaluate(value) for value in left.iter_path(self.attr.path)
        )

    def __repr__(self) -> str:
        return f"{self.attr.path} ~ {self.formula!r}"


class DeepRename(Operator):
    """Recursive attribute renaming by pattern-node name.

    ``mapping`` sends node names to node names; attributes ``old.X``
    become ``new.X`` and collection attributes ``old`` become ``new``,
    at every nesting level.
    """

    def __init__(self, child: Operator, mapping: dict[str, str]):
        self.children = (child,)
        self.mapping = dict(mapping)

    def schema(self) -> list[str]:
        return [self._rename(name) for name in self.children[0].schema()]

    def _rename(self, name: str) -> str:
        if "." in name:
            prefix, _, suffix = name.rpartition(".")
            if prefix in self.mapping:
                return f"{self.mapping[prefix]}.{suffix}"
            return name
        return self.mapping.get(name, name)

    def _rename_tuple(self, t: NestedTuple) -> NestedTuple:
        attrs: dict[str, Any] = {}
        for name, value in t.attrs.items():
            new_name = self._rename(name)
            if isinstance(value, list):
                attrs[new_name] = [self._rename_tuple(member) for member in value]
            else:
                attrs[new_name] = value
        return NestedTuple(attrs)

    def evaluate(self, context=None) -> list[NestedTuple]:
        return [self._rename_tuple(t) for t in self.children[0].evaluate(context)]

    def label(self) -> str:
        return f"ρ[{self.mapping}]"


class Regroup(Operator):
    """Re-nest flat view tuples into the query's nesting (the γ / nest-join
    correspondence): group by the flat part (keys may include pre-nested
    collection attributes), building one collection per entry of
    ``collections``.  Outer-join padding (all-⊥ members) becomes an empty
    collection — nest-outerjoin semantics.

    Each collection entry is ``(name, member_attrs, identity_attrs)``.
    With a single rebuilt collection, flat rows map one-to-one to members
    and no deduplication happens (duplicate-*valued* members are
    preserved, as nest joins do).  With several rebuilt collections the
    flat input is their cross product; members then deduplicate by their
    ``identity_attrs`` (which the planner extends with the serving view
    IDs precisely so that equal-valued members stay distinguishable).
    """

    def __init__(
        self,
        child: Operator,
        keys: Sequence[str],
        collections: Sequence[tuple[str, Sequence[str], Sequence[str]]],
    ):
        self.children = (child,)
        self.keys = list(keys)
        self.collections = [
            (name, list(attrs), list(identity))
            for name, attrs, identity in collections
        ]

    def schema(self) -> list[str]:
        return self.keys + [name for name, _attrs, _identity in self.collections]

    def evaluate(self, context=None) -> list[NestedTuple]:
        dedup = len(self.collections) > 1
        groups: dict[tuple, dict[str, list[NestedTuple]]] = {}
        seen: dict[tuple, dict[str, set]] = {}
        heads: dict[tuple, NestedTuple] = {}
        order: list[tuple] = []
        for t in self.children[0].evaluate(context):
            head = t.project(self.keys)
            key = head.freeze()
            if key not in groups:
                groups[key] = {name: [] for name, _a, _i in self.collections}
                seen[key] = {name: set() for name, _a, _i in self.collections}
                heads[key] = head
                order.append(key)
            for name, attrs, identity in self.collections:
                member = t.project(attrs)
                if all(value is None for value in member.attrs.values()):
                    continue  # outer-join padding
                if dedup:
                    marker = t.project(identity).freeze()
                    if marker in seen[key][name]:
                        continue
                    seen[key][name].add(marker)
                groups[key][name].append(member)
        return [
            heads[key].with_attrs(**groups[key]) for key in order
        ]

    def label(self) -> str:
        built = ", ".join(name for name, _a, _i in self.collections)
        return f"γⁿ[{', '.join(self.keys)} → {built}]"


# ---------------------------------------------------------------------------
# Candidate bookkeeping
# ---------------------------------------------------------------------------

@dataclass
class _Candidate:
    """One way a view node can serve a query node."""

    entry: CatalogEntry
    view_node: str  # original view node name
    mode: str  # 'direct' or 'nav'
    nav_steps: tuple = ()  # for 'nav': ((axis, label), ...)


@dataclass
class _Use:
    """One occurrence of a view in a plan."""

    index: int
    entry: CatalogEntry
    pattern: Pattern  # per-use renamed copy of the view pattern
    #: q node name → renamed view node name (direct services)
    direct: dict[str, str] = field(default_factory=dict)
    #: q node name → (renamed content node, steps, q attr, out node name)
    navs: dict[str, tuple[str, tuple, str, str]] = field(default_factory=dict)
    #: q node name → (renamed child node whose parent ID is derived, out name)
    derived: dict[str, tuple[str, str]] = field(default_factory=dict)

    def serves(self) -> set[str]:
        return set(self.direct) | set(self.navs) | set(self.derived)


@dataclass
class Rewriting:
    """One S-equivalent plan over materialized views."""

    plan: Operator
    views: tuple[str, ...]
    #: the union of patterns the plan is equivalent to (inspection aid)
    equivalent_patterns: tuple[Pattern, ...]
    kind: str  # 'single', 'join', 'union'

    def operator_count(self) -> int:
        return self.plan.operator_count()

    def __repr__(self) -> str:
        return f"<Rewriting {self.kind} views={list(self.views)}>"


def _id_kind_at_least(view_kind: Optional[str], query_kind: Optional[str]) -> bool:
    if query_kind is None:
        return True
    if view_kind is None:
        return False
    return ID_KINDS.index(view_kind) >= ID_KINDS.index(query_kind)


def _rename_pattern(pattern: Pattern, prefix: str) -> Pattern:
    clone = pattern.copy()
    for node in clone.nodes():
        node.name = f"{prefix}{node.name}"
    return clone


def _attr_path(pattern: Pattern, node_name: str, attr: str) -> str:
    """Nesting path of ``node.attr`` inside the pattern's output tuples."""
    node = pattern.node_by_name(node_name)
    segments: list[str] = []
    walk = node
    while walk.parent_edge is not None:
        if walk.parent_edge.nested:
            segments.append(walk.name)
        walk = walk.parent_edge.parent
    segments.reverse()
    segments.append(f"{node.name}.{attr}")
    return "/".join(segments)


# ---------------------------------------------------------------------------
# The rewriting algorithm
# ---------------------------------------------------------------------------

def rewrite_pattern(
    query: Pattern,
    catalog: Catalog,
    summary: PathSummary,
    max_results: Optional[int] = 10,
    max_union: int = 3,
) -> list[Rewriting]:
    """All (up to ``max_results``; ``None`` = unbounded) non-redundant
    S-equivalent rewritings of the query pattern over the catalog's views,
    smallest plans first.

    Covers single-view plans (with compensating selections and content
    navigation), two-view join plans (node-equality, structural, and
    derived-parent glue) and union plans of up to ``max_union`` members.

    Enumeration always runs to completion; ``max_results`` truncates only
    *after* the final sort.  (Truncating mid-enumeration would make the
    returned set depend on catalog registration order: a cheaper rewriting
    enumerated past the cutoff would be invisible to
    :func:`~repro.core.statistics.rank_rewritings` — the ranking layer
    must see the full candidate set, which is why the database prepares
    with ``max_results=None``.)
    """
    if not is_satisfiable(query, summary):
        return []
    ann_q = path_annotations(query, summary)
    query_returns = [node.name for node in query.return_nodes()]
    candidates = _collect_candidates(query, ann_q, catalog, summary)

    rewritings: list[Rewriting] = []
    seen: set[tuple] = set()

    def consider(rewriting: Optional[Rewriting]) -> None:
        if rewriting is None:
            return
        key = (rewriting.kind, rewriting.views)
        if key in seen:
            return
        seen.add(key)
        rewritings.append(rewriting)

    # 1. single-view plans
    for entry in catalog.views():
        for use in _single_view_uses(query, entry, candidates):
            consider(_validate_uses(query, query_returns, [use], [], summary))

    # 2. two-view join plans
    entries = catalog.views()
    for i, left_entry in enumerate(entries):
        for right_entry in entries[i:]:
            for uses, glues in _pair_uses(
                query, left_entry, right_entry, candidates
            ):
                consider(
                    _validate_uses(query, query_returns, uses, glues, summary)
                )

    # 3. union plans
    for rewriting in _union_plans(
        query, query_returns, catalog, candidates, summary, max_union
    ):
        consider(rewriting)

    rewritings.sort(key=lambda r: (r.plan.operator_count(), r.views))
    if max_results is None:
        return rewritings
    return rewritings[:max_results]


def _collect_candidates(
    query: Pattern,
    ann_q: dict[str, set[int]],
    catalog: Catalog,
    summary: PathSummary,
) -> dict[str, list[_Candidate]]:
    """Per query node, the view nodes that can serve it."""
    out: dict[str, list[_Candidate]] = {name: [] for name in ann_q}
    for entry in catalog.views():
        ann_v = path_annotations(entry.pattern, summary)
        for q_node in query.nodes():
            needs = set(q_node.stored_attrs())
            if not needs:
                continue
            q_paths = ann_q[q_node.name]
            for v_node in entry.pattern.nodes():
                v_paths = ann_v[v_node.name]
                shared = q_paths & v_paths
                if shared:
                    stored = set(v_node.stored_attrs())
                    if needs <= stored and _id_kind_at_least(
                        v_node.store_id, q_node.store_id
                    ):
                        out[q_node.name].append(
                            _Candidate(entry, v_node.name, "direct")
                        )
                if v_node.store_content and needs <= {"V", "C"}:
                    steps = _navigation_steps(v_paths, q_paths, summary)
                    if steps is not None:
                        out[q_node.name].append(
                            _Candidate(entry, v_node.name, "nav", steps)
                        )
                if v_node.store_id == "p" and needs <= {"ID"}:
                    # §5.2: navigational IDs derive the parent's ID
                    parent_paths = {
                        summary.node_by_number(p).parent.number
                        for p in v_paths
                        if summary.node_by_number(p).parent is not None
                        and summary.node_by_number(p).parent.parent is not None
                    }
                    if parent_paths & q_paths:
                        out[q_node.name].append(
                            _Candidate(entry, v_node.name, "parent")
                        )
    return out


def _navigation_steps(
    content_paths: set[int], target_paths: set[int], summary: PathSummary
) -> Optional[tuple]:
    """A downward path from the content node to the targets.

    Preferred: the same child-step chain for every (content, target)
    ancestry pair.  When the chains differ (e.g. XMark's recursive
    parlist/listitem puts keywords at several depths), fall back to a
    single descendant step on the shared target label — the §5.5
    equivalence test decides whether that over- or under-shoots."""
    steps: Optional[tuple] = None
    found_any = False
    ambiguous = False
    labels = set()
    for c in content_paths:
        c_node = summary.node_by_number(c)
        for t in target_paths:
            t_node = summary.node_by_number(t)
            if not c_node.is_ancestor_of(t_node):
                continue
            found_any = True
            labels.add(t_node.label)
            chain = summary.chain(c_node, t_node)
            these = tuple(("child", node.label) for node in chain[1:])
            if steps is None:
                steps = these
            elif steps != these:
                ambiguous = True
    if not found_any:
        return None
    if ambiguous:
        if len(labels) == 1:
            return (("descendant", labels.pop()),)
        return None
    return steps


def _single_view_uses(
    query: Pattern,
    entry: CatalogEntry,
    candidates: dict[str, list[_Candidate]],
):
    """Assignments of every query return node to one node of ``entry``."""
    returns = [node.name for node in query.return_nodes()]
    per_node: list[list[_Candidate]] = []
    for name in returns:
        options = [c for c in candidates[name] if c.entry is entry]
        if not options:
            return
        per_node.append(options)
    for combo in _product(per_node):
        yield _build_use(0, entry, dict(zip(returns, combo)), query)


def _build_use(
    index: int, entry: CatalogEntry, assignment: dict[str, _Candidate], query: Pattern
) -> _Use:
    prefix = f"u{index}:"
    use = _Use(index, entry, _rename_pattern(entry.pattern, prefix))
    nav_counter = 0
    derived_counter = 0
    for q_name, candidate in assignment.items():
        if candidate.mode == "direct":
            use.direct[q_name] = f"{prefix}{candidate.view_node}"
        elif candidate.mode == "parent":
            derived_counter += 1
            use.derived[q_name] = (
                f"{prefix}{candidate.view_node}",
                f"{prefix}par{derived_counter}",
            )
        else:
            nav_counter += 1
            attr = "V" if query.node_by_name(q_name).store_value else "C"
            out_name = f"{prefix}nav{nav_counter}"
            use.navs[q_name] = (
                f"{prefix}{candidate.view_node}",
                candidate.nav_steps,
                attr,
                out_name,
            )
    return use


def _product(lists: list[list]) -> list[tuple]:
    out: list[tuple] = [()]
    for options in lists:
        out = [prefix + (option,) for prefix in out for option in options]
        if len(out) > 64:  # keep candidate explosion in check
            out = out[:64]
    return out


def _pair_uses(
    query: Pattern,
    left_entry: CatalogEntry,
    right_entry: CatalogEntry,
    candidates: dict[str, list[_Candidate]],
):
    """Two-view assignments + glue conditions."""
    returns = [node.name for node in query.return_nodes()]
    per_node: list[list[tuple[int, _Candidate]]] = []
    for name in returns:
        options: list[tuple[int, _Candidate]] = []
        options.extend((0, c) for c in candidates[name] if c.entry is left_entry)
        options.extend((1, c) for c in candidates[name] if c.entry is right_entry)
        if not options:
            return
        per_node.append(options)
    for combo in _product(per_node):
        sides = {side for side, _c in combo}
        if sides != {0, 1}:
            continue  # both views must actually contribute
        assignment_left = {
            name: c for name, (side, c) in zip(returns, combo) if side == 0
        }
        assignment_right = {
            name: c for name, (side, c) in zip(returns, combo) if side == 1
        }
        left_use = _build_use(0, left_entry, assignment_left, query)
        right_use = _build_use(1, right_entry, assignment_right, query)
        glue = _find_glue(query, left_use, right_use, candidates)
        if glue is None:
            continue
        yield [left_use, right_use], [glue]


def _find_glue(
    query: Pattern,
    left: _Use,
    right: _Use,
    candidates: dict[str, list[_Candidate]],
) -> Optional[GlueCondition]:
    """A join condition connecting the two uses (§5.2's toolbox)."""
    # Direct-serving map per use over ALL query nodes (not just returns):
    # a shared non-return node (e.g. the item both views hang off) glues.
    left_ids = _id_services(query, left, candidates)
    right_ids = _id_services(query, right, candidates)

    # 1. node equality on a shared query node
    for q_name, l_node in left_ids.items():
        if q_name in right_ids:
            return GlueCondition("eq", 0, l_node, 1, right_ids[q_name])

    # 2. structural join between an ancestor/descendant query-node pair —
    #    both sides must store structural identifiers (§5.2)
    from ..xmldata.ids import kind_supports

    def structural(use: _Use, node_name: str) -> bool:
        kind = use.pattern.node_by_name(node_name).store_id
        return kind is not None and kind_supports(kind, "structural")

    for la_name, l_node in left_ids.items():
        if not structural(left, l_node):
            continue
        for rb_name, r_node in right_ids.items():
            if not structural(right, r_node):
                continue
            relation = _query_relation(query, la_name, rb_name)
            if relation is not None:
                kind, flipped = relation
                if flipped:
                    return GlueCondition(kind, 1, r_node, 0, l_node)
                return GlueCondition(kind, 0, l_node, 1, r_node)

    # 3. derived parent: right stores a navigational ID whose parent is a
    #    left-served node
    for rb_name, r_node in right_ids.items():
        if right.pattern.node_by_name(r_node).store_id != "p":
            continue

        q_node = query.node_by_name(rb_name)
        parent = q_node.parent
        if (
            parent is not None
            and q_node.parent_edge is not None
            and q_node.parent_edge.axis == CHILD
            and parent.name in left_ids
            # equality against the derived Dewey ID needs a Dewey left side
            and left.pattern.node_by_name(left_ids[parent.name]).store_id == "p"
        ):
            return GlueCondition(
                "derived-parent", 0, left_ids[parent.name], 1, r_node
            )
    return None


def _id_services(
    query: Pattern, use: _Use, candidates: dict[str, list[_Candidate]]
) -> dict[str, str]:
    """q node name → renamed view node storing an ID usable for joining,
    across all query nodes (the use's assigned nodes plus any other node
    the same view can serve)."""
    services = dict(use.direct)
    prefix = f"u{use.index}:"
    for q_name, options in candidates.items():
        if q_name in services:
            continue
        for candidate in options:
            if candidate.entry is use.entry and candidate.mode == "direct":
                view_node = use.entry.pattern.node_by_name(candidate.view_node)
                if view_node.store_id:
                    services[q_name] = f"{prefix}{candidate.view_node}"
                    break
    # keep only services whose view node stores an ID
    return {
        q: v
        for q, v in services.items()
        if use.pattern.node_by_name(v).store_id is not None
    }


def _query_relation(
    query: Pattern, name_a: str, name_b: str
) -> Optional[tuple[str, bool]]:
    """('parent'|'ancestor', flipped) when the named query nodes are
    related by a single edge or an edge chain."""
    node_a = query.node_by_name(name_a)
    node_b = query.node_by_name(name_b)

    def relation(anc: PatternNode, desc: PatternNode) -> Optional[str]:
        walk = desc
        edges = []
        while walk.parent_edge is not None:
            edges.append(walk.parent_edge)
            walk = walk.parent_edge.parent
            if walk is anc:
                if len(edges) == 1 and edges[0].axis == CHILD:
                    return "parent"
                return "ancestor"
        return None

    forward = relation(node_a, node_b)
    if forward is not None:
        return forward, False
    backward = relation(node_b, node_a)
    if backward is not None:
        return backward, True
    return None


# ---------------------------------------------------------------------------
# Plan construction + validation
# ---------------------------------------------------------------------------

def _validate_uses(
    query: Pattern,
    query_returns: list[str],
    uses: list[_Use],
    glues: list[GlueCondition],
    summary: PathSummary,
) -> Optional[Rewriting]:
    regroup = _regroup_spec(query, uses)
    if regroup is _INFEASIBLE:
        return None
    if regroup:
        rebuilt = {name for name, _attrs, _identity in regroup[1]}
        validation_query = _unnest_pattern(query, only_names=rebuilt)
    else:
        validation_query = query
    adapted = [_adapted_pattern(query, use) for use in uses]
    if any(pattern is None for pattern in adapted):
        return None
    union = merged_patterns(adapted, glues, summary)  # type: ignore[arg-type]
    if not union:
        return None

    # Build the aligned validation patterns: q's stored attrs at the
    # serving nodes, everything else unstored.
    members: list[Pattern] = []
    member_orders: list[list[str]] = []
    for merged, aliases in union:
        validation = merged.copy()
        for node in validation.nodes():
            node.store_id = None
            node.store_tag = False
            node.store_value = False
            node.store_content = False
        order = []
        try:
            for q_name in query_returns:
                serving = _serving_node_name(q_name, uses)
                merged_name = aliases[serving]
                target = validation.node_by_name(merged_name)
                q_node = query.node_by_name(q_name)
                target.store_id = q_node.store_id
                target.store_tag = q_node.store_tag
                target.store_value = q_node.store_value
                target.store_content = q_node.store_content
                order.append(merged_name)
        except KeyError:
            return None
        members.append(validation)
        member_orders.append(order)

    for member, order in zip(members, member_orders):
        if not is_contained(
            member, validation_query, summary, pattern_returns=order,
            view_returns=[query_returns],
        ):
            return None
    if not is_contained(
        validation_query,
        members,
        summary,
        pattern_returns=query_returns,
        view_returns=member_orders,
    ):
        return None

    plan = _build_plan(query, query_returns, uses, glues, regroup)
    return Rewriting(
        plan=plan,
        views=tuple(use.entry.name for use in uses),
        equivalent_patterns=tuple(members),
        kind="single" if len(uses) == 1 else "join",
    )


_INFEASIBLE = object()


def _unnest_pattern(pattern: Pattern, only_names=None) -> Pattern:
    """Turn nest edges into their flat counterparts; with ``only_names``,
    only the nest edges entering the named nodes (the collections a γ will
    rebuild) are flattened."""
    from .xam import NEST, NEST_OUTER

    clone = pattern.copy()
    for edge in clone.edges():
        if only_names is not None and edge.child.name not in only_names:
            continue
        if edge.semantics == NEST:
            edge.semantics = JOIN
        elif edge.semantics == NEST_OUTER:
            edge.semantics = OUTER
    return clone


def _regroup_spec(query: Pattern, uses: list[_Use]):
    """Decide whether flat view tuples must be re-nested to match the
    query's nesting, and how.

    Returns ``None`` (no regrouping needed — views nest compatibly),
    ``_INFEASIBLE`` (structure not reproducible by one multi-collection
    γ), or ``(keys, [(collection name, member attrs), …])``.  Collections
    already served nested by the views (a nested view node or a nested
    Navigate) pass through untouched and act as grouping keys.
    """
    nested_returns = [
        node
        for node in query.return_nodes()
        if _nest_collection_of(node) is not None
    ]
    if not nested_returns:
        return None
    rebuild: dict[str, PatternNode] = {}
    passthrough: set[str] = set()
    for node in nested_returns:
        collection = _nest_collection_of(node)
        assert collection is not None
        try:
            if _served_nested(node.name, uses):
                passthrough.add(collection.name)
            else:
                rebuild[collection.name] = collection
        except KeyError:
            return _INFEASIBLE
    if passthrough & set(rebuild):
        return _INFEASIBLE  # one collection served in mixed shapes
    if not rebuild:
        return None
    collection_specs = []
    for collection_name, collection_node in rebuild.items():
        parent = (
            collection_node.parent_edge.parent
            if collection_node.parent_edge
            else None
        )
        if parent is None or _nest_collection_of(parent) is not None:
            return _INFEASIBLE  # only first-level collections rebuildable
        if parent.parent_edge is not None and not parent.store_id:
            return _INFEASIBLE  # flat part must identify the nest parent
        for below in collection_node.iter_subtree():
            if (
                below is not collection_node
                and below.parent_edge
                and below.parent_edge.nested
            ):
                return _INFEASIBLE  # no deeper nesting inside a rebuild
        member_attrs = [
            f"{node.name}.{attr}"
            for node in collection_node.iter_subtree()
            for attr in node.stored_attrs()
        ]
        if not member_attrs:
            return _INFEASIBLE
        identity_attrs = list(member_attrs)
        for node in collection_node.iter_subtree():
            if _serving_stores_id(node.name, uses):
                id_attr = f"{node.name}.ID"
                if id_attr not in identity_attrs:
                    identity_attrs.append(id_attr)
        collection_specs.append((collection_name, member_attrs, identity_attrs))
    keys = [
        f"{node.name}.{attr}"
        for node in query.nodes()
        if _nest_collection_of(node) is None
        for attr in node.stored_attrs()
    ]
    keys.extend(sorted(passthrough))
    if not keys:
        return _INFEASIBLE
    if len(collection_specs) > 1:
        # the flat input is the collections' cross product: members must
        # be identifiable beyond their values, or counts cannot be rebuilt
        for _name, member_attrs, identity_attrs in collection_specs:
            if identity_attrs == member_attrs and not any(
                attr.endswith(".ID") for attr in member_attrs
            ):
                return _INFEASIBLE
    return keys, collection_specs


def _serving_stores_id(q_name: str, uses: list[_Use]) -> bool:
    """Whether the flat plan tuples will carry an ID for this query node
    (the serving view node stores one — DeepRename exposes it under the
    query node's name even when the query itself does not store it)."""
    for use in uses:
        if q_name in use.direct:
            return use.pattern.node_by_name(use.direct[q_name]).store_id is not None
    return False


def _served_nested(q_name: str, uses: list[_Use]) -> bool:
    """Whether the serving view attribute for this query node already
    lives inside a collection (nested view node or nested navigation)."""
    for use in uses:
        if q_name in use.direct:
            node = use.pattern.node_by_name(use.direct[q_name])
            attr = node.stored_attrs()[0] if node.stored_attrs() else "ID"
            return "/" in _attr_path(use.pattern, use.direct[q_name], attr)
        if q_name in use.navs:
            content_node, _steps, _attr, _out = use.navs[q_name]
            return "/" in _attr_path(use.pattern, content_node, "C")
        if q_name in use.derived:
            child_name, _out = use.derived[q_name]
            return "/" in _attr_path(use.pattern, child_name, "ID")
    raise KeyError(q_name)



def _nest_collection_of(node: PatternNode) -> Optional[PatternNode]:
    """The outermost nest-edge target above (or at) the node."""
    found = None
    walk = node
    while walk.parent_edge is not None:
        if walk.parent_edge.nested:
            found = walk
        walk = walk.parent_edge.parent
    return found


def _serving_node_name(q_name: str, uses: list[_Use]) -> str:
    for use in uses:
        if q_name in use.direct:
            return use.direct[q_name]
        if q_name in use.navs:
            return use.navs[q_name][3]
        if q_name in use.derived:
            return use.derived[q_name][1]
    raise KeyError(q_name)


def _adapted_pattern(query: Pattern, use: _Use) -> Optional[Pattern]:
    """The use's renamed view pattern, adapted by the plan's compensating
    operations: σ formulas conjoined, navigation chains grafted."""
    pattern = use.pattern.copy()
    for q_name, view_name in use.direct.items():
        q_node = query.node_by_name(q_name)
        if q_node.value_formula.is_true:
            continue
        node = pattern.node_by_name(view_name)
        if node.value_formula.implies(q_node.value_formula):
            continue
        if not node.store_value:
            return None  # predicate not enforceable on this view
        node.value_formula = node.value_formula.conjoin(q_node.value_formula)
    for q_name, (content_node, steps, attr, out_name) in use.navs.items():
        q_node = query.node_by_name(q_name)
        anchor = pattern.node_by_name(content_node)
        q_edge = q_node.parent_edge
        first_semantics = q_edge.semantics if q_edge is not None else JOIN
        for position, (axis, label) in enumerate(steps):
            child = PatternNode(tag=label)
            semantics = first_semantics if position == 0 else JOIN
            pattern_axis = CHILD if axis == "child" else DESCENDANT
            anchor = anchor.add_child(child, pattern_axis, semantics)
        anchor.name = out_name
        if attr == "V":
            anchor.store_value = True
        else:
            anchor.store_content = True
        if not q_node.value_formula.is_true:
            anchor.value_formula = q_node.value_formula
    for q_name, (child_name, out_name) in use.derived.items():
        child = pattern.node_by_name(child_name)
        edge = child.parent_edge
        assert edge is not None
        if edge.axis == CHILD:
            parent = edge.parent
            if parent.parent_edge is None:
                return None  # the parent is ⊤; no derivable document node
        else:
            # insert an explicit parent node: anc —//— * —/— child
            parent = PatternNode(tag=None)
            grand = edge.parent
            grand.edges.remove(edge)
            grand.add_child(parent, DESCENDANT, edge.semantics)
            parent.add_child(child, CHILD, JOIN)
        parent.store_id = "p"
        if not parent.name:
            parent.name = out_name
        else:
            use.derived[q_name] = (child_name, parent.name)
    return pattern.finalize()


def _build_plan(
    query: Pattern,
    query_returns: list[str],
    uses: list[_Use],
    glues: list[GlueCondition],
    regroup=None,
) -> Operator:
    plans: list[Operator] = []
    for use in uses:
        columns = _view_columns(use.entry.pattern)
        plan: Operator = Scan(use.entry.relation, columns)
        prefix = f"u{use.index}:"
        plan = DeepRename(plan, _prefix_map(use.entry.pattern, prefix))
        # compensating selections
        for q_name, view_name in use.direct.items():
            q_node = query.node_by_name(q_name)
            view_node = use.pattern.node_by_name(view_name)
            if (
                not q_node.value_formula.is_true
                and not view_node.value_formula.implies(q_node.value_formula)
            ):
                plan = Select(
                    plan,
                    SatisfiesFormula(
                        Attr(_attr_path(use.pattern, view_name, "V")),
                        q_node.value_formula,
                    ),
                )
        # derived parent IDs (§5.2)
        for q_name, (child_name, out_name) in use.derived.items():
            child_attr = _attr_path(use.pattern, child_name, "ID")
            plan = DerivedColumn(
                plan,
                f"{out_name}.ID",
                _parent_of(child_attr),
                description=f"parent({child_attr})",
            )
        # navigations
        for q_name, (content_node, steps, attr, out_name) in use.navs.items():
            q_node = query.node_by_name(q_name)
            q_edge = q_node.parent_edge
            plan = Navigate(
                plan,
                _attr_path(use.pattern, content_node, "C"),
                list(steps),
                out=out_name,
                keep_unmatched=q_edge is not None and q_edge.optional,
                nest_out=q_edge is not None and q_edge.nested,
            )
        plans.append(plan)

    combined = plans[0]
    for glue in glues:
        left_attr = _attr_path(uses[glue.left_use].pattern, glue.left_node, "ID")
        right_attr = _attr_path(uses[glue.right_use].pattern, glue.right_node, "ID")
        right_plan = plans[glue.right_use]
        if glue.kind == "eq":
            combined = ValueJoin(
                combined,
                right_plan,
                Compare(Attr(left_attr, 0), "=", Attr(right_attr, 1)),
            )
        elif glue.kind in ("parent", "ancestor"):
            combined = StructuralJoin(
                combined,
                right_plan,
                left_attr,
                right_attr,
                axis="child" if glue.kind == "parent" else "descendant",
                kind="j",
            )
        else:  # derived-parent
            derived_attr = f"{right_attr}.parent"
            right_plan = DerivedColumn(
                right_plan,
                derived_attr,
                _parent_of(right_attr),
                description=f"parent({right_attr})",
            )
            combined = ValueJoin(
                combined,
                right_plan,
                Compare(Attr(left_attr, 0), "=", Attr(derived_attr, 1)),
            )

    # rename view attrs to query-node attrs, then trim to the query schema
    mapping: dict[str, str] = {}
    for use in uses:
        for q_name, view_name in use.direct.items():
            mapping[view_name] = q_name
        for q_name, (_c, _s, _a, out_name) in use.navs.items():
            mapping[out_name] = q_name
        for q_name, (_child, out_name) in use.derived.items():
            mapping[out_name] = q_name
    renamed: Operator = DeepRename(combined, mapping)
    if regroup:
        keys, collection_specs = regroup
        return Regroup(renamed, keys, collection_specs)
    top_level = _query_top_level_attrs(query)
    return Project(renamed, top_level, dedup=True)


def _parent_of(attr_path: str):
    def derive(t: NestedTuple):
        value = t.first(attr_path)
        if isinstance(value, DeweyID) and value.path:
            return value.parent()
        return None

    return derive


def _view_columns(pattern: Pattern) -> list[str]:
    columns: list[str] = []
    for edge in pattern.root.edges:
        columns.extend(subtree_attribute_names(edge.child))
    return columns


def _prefix_map(pattern: Pattern, prefix: str) -> dict[str, str]:
    return {node.name: f"{prefix}{node.name}" for node in pattern.nodes()}


def _query_top_level_attrs(query: Pattern) -> list[str]:
    columns: list[str] = []
    for edge in query.root.edges:
        columns.extend(subtree_attribute_names(edge.child))
    return columns


# ---------------------------------------------------------------------------
# Union rewritings (§5.3)
# ---------------------------------------------------------------------------

def _union_plans(
    query: Pattern,
    query_returns: list[str],
    catalog: Catalog,
    candidates: dict[str, list[_Candidate]],
    summary: PathSummary,
    max_union: int,
):
    """Views one-way contained in the query that jointly cover it."""
    arity = len(query_returns)
    usable: list[tuple[CatalogEntry, list[str]]] = []
    for entry in catalog.views():
        view_returns = [n.name for n in entry.pattern.return_nodes()]
        if len(view_returns) != arity:
            continue
        if is_contained(
            entry.pattern,
            query,
            summary,
            pattern_returns=view_returns,
            view_returns=[query_returns],
        ):
            usable.append((entry, view_returns))
    if len(usable) < 2:
        return
    for size in range(2, min(max_union, len(usable)) + 1):
        for subset in _subsets_of_size(usable, size):
            members = [entry.pattern for entry, _ in subset]
            orders = [order for _, order in subset]
            if is_contained(
                query,
                members,
                summary,
                pattern_returns=query_returns,
                view_returns=orders,
            ):
                parts = []
                for entry, order in subset:
                    columns = _view_columns(entry.pattern)
                    part: Operator = Scan(entry.relation, columns)
                    mapping = dict(zip(order, query_returns))
                    part = DeepRename(part, mapping)
                    parts.append(part)
                plan: Operator = UnionOp(*parts)
                plan = Project(plan, _query_top_level_attrs(query), dedup=True)
                yield Rewriting(
                    plan=plan,
                    views=tuple(entry.name for entry, _ in subset),
                    equivalent_patterns=tuple(members),
                    kind="union",
                )


def _subsets_of_size(items: list, size: int):
    import itertools

    return itertools.combinations(items, size)
