"""Text syntax for XAM patterns.

The concrete syntax mirrors Fig. 2.3 compactly::

    root{//item[id:s, cont]{/nj:name[val], //no:keyword[id:s, val]}}

* ``root`` is ⊤ and may carry several top-level edges; a pattern starting
  directly with ``/`` or ``//`` is shorthand for a single-edge root.
* Edges: ``/`` parent-child, ``//`` ancestor-descendant, optionally
  prefixed semantics ``o:``, ``s:``, ``nj:``, ``no:`` (default ``j``).
* Nodes: an element tag, ``*`` (any tag), ``@name`` (attribute) or
  ``#text``; followed by an optional spec list in ``[...]`` and an optional
  child list in ``{...}``.
* Specs: ``id`` (simple), ``id:o`` / ``id:s`` / ``id:p``; ``tag``;
  ``val``; ``cont``; value predicates ``val=c``, ``val<c``, ``val>c``,
  ``val<=c``, ``val>=c`` (``c`` a number or a quoted/bare string); a ``!``
  suffix marks an ``R`` (required) annotation, e.g. ``id:s!``, ``tag!``,
  ``val!``.  Predicates and storage compose: ``[val, val>3]`` stores the
  value and constrains it.
* Prefix ``unordered`` clears the order flag.

``parse_pattern`` is the inverse of :meth:`Pattern.to_text`.
"""

from __future__ import annotations

import re
from typing import Optional, Sequence

from ..algebra.formulas import Formula
from ..errors import ReproError
from ..xmldata.ids import ID_KINDS
from .xam import CHILD, DESCENDANT, EDGE_SEMANTICS, JOIN, Pattern, PatternNode

__all__ = ["parse_pattern", "pattern_from_path", "XAMParseError"]


class XAMParseError(ReproError, ValueError):
    """Malformed XAM text (same split as ``XQueryParseError``: parse
    failures are typed apart from execution faults)."""


_TOKEN = re.compile(
    r"""
    \s*(
        //|/|\{|\}|\[|\]|,|:|!|
        <=|>=|=|<|>|
        "(?:[^"\\]|\\.)*"|
        '(?:[^'\\]|\\.)*'|
        [@\#]?[\w.\-]+|\*
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise XAMParseError(f"cannot tokenize at {text[pos:pos+20]!r}")
            break
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Stream:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise XAMParseError("unexpected end of pattern")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        found = self.next()
        if found != token:
            raise XAMParseError(f"expected {token!r}, found {found!r}")

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.pos += 1
            return True
        return False


def parse_pattern(text: str) -> Pattern:
    """Parse the text syntax into a finalized :class:`Pattern`."""
    stream = _Stream(_tokenize(text))
    ordered = not stream.accept("unordered")
    pattern = Pattern(ordered=ordered)
    if stream.accept("root"):
        _parse_edge_list(stream, pattern.root)
    else:
        _parse_edge(stream, pattern.root)
    if stream.peek() is not None:
        raise XAMParseError(f"trailing tokens from {stream.peek()!r}")
    return pattern.finalize()


def _parse_edge_list(stream: _Stream, parent: PatternNode) -> None:
    stream.expect("{")
    while True:
        _parse_edge(stream, parent)
        if not stream.accept(","):
            break
    stream.expect("}")


def _parse_edge(stream: _Stream, parent: PatternNode) -> None:
    token = stream.next()
    if token not in (CHILD, DESCENDANT):
        raise XAMParseError(f"expected '/' or '//', found {token!r}")
    axis = token
    semantics = JOIN
    candidate = stream.peek()
    if candidate in EDGE_SEMANTICS and stream.tokens[stream.pos + 1 : stream.pos + 2] == [":"]:
        semantics = stream.next()
        stream.expect(":")
    node = _parse_node(stream)
    parent.add_child(node, axis, semantics)
    if stream.peek() == "{":
        _parse_edge_list(stream, node)
    elif stream.peek() in (CHILD, DESCENDANT):
        # chain syntax: /a/b//c parses as nested single-child edges
        _parse_edge(stream, node)


def _parse_node(stream: _Stream) -> PatternNode:
    token = stream.next()
    if token == "*":
        node = PatternNode(tag=None)
    elif token in ("{", "}", "[", "]", ",", "/", "//"):
        raise XAMParseError(f"expected a node name, found {token!r}")
    else:
        node = PatternNode(tag=token)
    if stream.peek() == "[":
        _parse_specs(stream, node)
    return node


def _parse_specs(stream: _Stream, node: PatternNode) -> None:
    stream.expect("[")
    if stream.accept("]"):
        return
    while True:
        _parse_spec(stream, node)
        if not stream.accept(","):
            break
    stream.expect("]")


def _parse_spec(stream: _Stream, node: PatternNode) -> None:
    keyword = stream.next()
    if keyword == "id":
        kind = "i"
        if stream.accept(":"):
            kind = stream.next()
            if kind not in ID_KINDS:
                raise XAMParseError(
                    f"unknown ID kind {kind!r} (expected one of {ID_KINDS})"
                )
        node.store_id = kind
        node.id_required = stream.accept("!")
    elif keyword == "tag":
        if stream.peek() == "=":
            stream.next()
            constant = _parse_constant(stream.next())
            node.tag = str(constant)
        else:
            node.store_tag = True
            node.tag_required = stream.accept("!")
    elif keyword == "val":
        op = stream.peek()
        if op in ("=", "<", ">", "<=", ">="):
            stream.next()
            constant = _parse_constant(stream.next())
            node.value_formula = node.value_formula.conjoin(
                Formula.compare(op, constant)
            )
        else:
            node.store_value = True
            node.value_required = stream.accept("!")
    elif keyword == "cont":
        node.store_content = True
    else:
        raise XAMParseError(f"unknown node spec {keyword!r}")


def _parse_constant(token: str):
    if token and token[0] in "\"'":
        return token[1:-1].replace("\\" + token[0], token[0])
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def pattern_from_path(
    path: str,
    store: Sequence[str] = ("ID",),
    id_kind: str = "s",
    value_equals=None,
) -> Pattern:
    """Build a linear XAM from an XPath-like string, e.g.
    ``pattern_from_path("//item/name", store=("ID", "V"))``.

    ``store`` applies to the last step; intermediate steps store nothing.
    ``value_equals`` adds a value predicate on the last step.
    """
    steps = _split_path(path)
    if not steps:
        raise XAMParseError(f"empty path {path!r}")
    pattern = Pattern()
    node = pattern.root
    for axis, label in steps:
        child = PatternNode(tag=None if label == "*" else label)
        node.add_child(child, axis, JOIN)
        node = child
    if "ID" in store:
        node.store_id = id_kind
    if "L" in store:
        node.store_tag = True
    if "V" in store:
        node.store_value = True
    if "C" in store:
        node.store_content = True
    if value_equals is not None:
        node.value_formula = Formula.compare("=", value_equals)
    return pattern.finalize()


def _split_path(path: str) -> list[tuple[str, str]]:
    steps = []
    pos = 0
    while pos < len(path):
        if path.startswith("//", pos):
            axis = DESCENDANT
            pos += 2
        elif path.startswith("/", pos):
            axis = CHILD
            pos += 1
        else:
            raise XAMParseError(f"path must start each step with / or //: {path!r}")
        end = pos
        while end < len(path) and path[end] != "/":
            end += 1
        label = path[pos:end]
        if not label:
            raise XAMParseError(f"empty step in path {path!r}")
        steps.append((axis, label))
        pos = end
    return steps
