"""Tree pattern minimization under summary constraints (thesis §4.5).

Two procedures:

* **S-contraction** (:func:`minimize_by_contraction`): repeatedly erase one
  non-return node and reconnect its children to its parent, keeping only
  S-equivalent results, until no contraction preserves equivalence.
  Several distinct minimal contractions may exist (Figure 4.12's ``t'₁``
  and ``t'₂``).

* **Full summary minimization** (:func:`minimize_under_summary`): the
  summary can supply labels *absent from the original pattern* that yield
  even smaller equivalent patterns (Figure 4.12's ``t''`` reaches ``e``
  through the ``f`` node of the summary, beating every contraction).  For
  single-return-node patterns we search chain-shaped candidates over the
  summary's label alphabet, smallest first, and return the minimum found;
  multi-return patterns fall back to contraction (the thesis evaluates
  minimization on single-output examples).
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

from ..summary.path_summary import PathSummary
from .containment import is_equivalent
from .xam import DESCENDANT, Pattern, PatternNode

__all__ = [
    "contractions",
    "minimize_by_contraction",
    "minimize_under_summary",
]


def contractions(pattern: Pattern) -> Iterator[Pattern]:
    """All patterns obtained by erasing one non-return node (never the ⊤
    root) and reconnecting its children to its parent.

    The reconnection uses ``//`` edges: erasing an intermediate node can
    only widen the structural relationship, and the equivalence test
    decides whether the result still denotes the same data.
    """
    names = [node.name for node in pattern.nodes() if not node.is_return_node]
    for name in names:
        clone = pattern.copy()
        victim = clone.node_by_name(name)
        edge = victim.parent_edge
        assert edge is not None
        parent = edge.parent
        parent.edges.remove(edge)
        for child_edge in victim.edges:
            grandchild = child_edge.child
            parent.add_child(grandchild, DESCENDANT, child_edge.semantics)
        yield clone


def minimize_by_contraction(
    pattern: Pattern, summary: PathSummary
) -> list[Pattern]:
    """All patterns minimal under S-contraction reachable from ``pattern``
    (duplicate-free): the closure of equivalence-preserving contractions,
    restricted to patterns admitting no further equivalent contraction."""
    reachable = {pattern.structure_key(): pattern}
    frontier = [pattern]
    while frontier:
        candidate = frontier.pop()
        for contraction in contractions(candidate):
            key = contraction.structure_key()
            if key in reachable:
                continue
            if is_equivalent(pattern, contraction, summary):
                reachable[key] = contraction
                frontier.append(contraction)
    minimal = []
    for candidate in reachable.values():
        if not any(
            is_equivalent(pattern, contraction, summary)
            for contraction in contractions(candidate)
        ):
            minimal.append(candidate)
    return minimal


def minimize_under_summary(
    pattern: Pattern, summary: PathSummary, max_chain: Optional[int] = None
) -> list[Pattern]:
    """Smallest patterns S-equivalent to ``pattern`` (§4.5's full
    minimization).

    Single-return-node patterns additionally search ``//l₁//…//l_k//ret``
    chains over the summary labels, which can beat contraction by using
    labels the pattern never mentions.  All minima of the smallest size
    found are returned.
    """
    by_contraction = minimize_by_contraction(pattern, summary)
    best_size = min(candidate.size() for candidate in by_contraction)
    best = [c for c in by_contraction if c.size() == best_size]

    returns = pattern.return_nodes()
    if len(returns) != 1:
        return best
    return_node = returns[0]

    labels = sorted({node.label for node in summary.nodes()})
    limit = best_size - 1 if max_chain is None else min(max_chain, best_size - 1)
    for size in range(1, limit + 1):
        found = []
        for chain in itertools.product(labels, repeat=size - 1):
            candidate = _chain_pattern(chain, return_node)
            if is_equivalent(pattern, candidate, summary):
                found.append(candidate)
        if found:
            return found
    return best


def _chain_pattern(chain: tuple[str, ...], return_node: PatternNode) -> Pattern:
    candidate = Pattern()
    anchor = candidate.root
    for label in chain:
        anchor = anchor.add_child(PatternNode(tag=label), DESCENDANT)
    leaf = return_node.copy_shallow()
    leaf.name = ""
    anchor.add_child(leaf, DESCENDANT)
    return candidate.finalize()
