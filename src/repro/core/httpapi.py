"""Stdlib HTTP exposition of the observability layer.

``repro serve … --metrics-port N`` mounts this next to the batch worker
pool; embedders call :func:`start_observability_server` directly.  Routes:

==================  =========================================================
``/metrics``        Prometheus text exposition (format 0.0.4) of the
                    service's :class:`~repro.engine.metrics.MetricsRegistry`
``/metrics.json``   the same registry as a JSON snapshot
``/health``         breaker-board states plus live/ready flags (JSON;
                    ``?format=text`` renders)
``/health/live``    liveness: 200 while the process serves requests at all
``/health/ready``   readiness: 200 when admission control is keeping up,
                    503 under sustained shed (load balancers route away
                    without killing the instance — the distinction the
                    liveness/readiness split exists for)
``/traces``         ids of the retained traces, oldest first (JSON)
``/trace/<id>``     one span tree (JSON; ``?format=text`` renders the tree)
``/slow``           the slow-query log (JSON; ``?format=text`` renders)
``/qlog``           newest query-log records (JSON; ``?count=N`` limits,
                    ``?format=text`` renders one line per query)
``/regressions``    the plan-regression sentinel: flip/misestimate counts
                    and the finding ring (JSON; ``?format=text`` renders)
``/pins``           tournament-promoted pinned plans with store counters
                    (JSON; ``?format=text`` renders one line per pin)
``/profile``        resource profiler: sampler state plus the ring of
                    attributed per-query profiles (``?trace=<id>`` returns
                    one query's full per-operator profile)
``/flamegraph``     the continuous sampler's aggregate in collapsed-stack
                    text — pipe into flamegraph.pl or speedscope
==================  =========================================================

Read-only by design: the endpoint exposes measurements, never mutations,
so binding it is safe even when the query workload itself is untrusted.
Built on :class:`http.server.ThreadingHTTPServer` — no dependency beyond
the standard library, matching the repo's no-new-deps constraint.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

__all__ = ["ObservabilityServer", "start_observability_server"]

#: content type of the Prometheus text exposition format
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """One request: route, render, respond.  The service reference lives
    on the server object (``self.server.service``)."""

    server_version = "repro-observe/1.0"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrapes every few seconds must not spam the REPL

    def _send(self, body: str, content_type: str, status: int = 200) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, data, status: int = 200) -> None:
        self._send(
            json.dumps(data, indent=2, default=str) + "\n",
            "application/json; charset=utf-8",
            status,
        )

    def _wants_text(self) -> bool:
        query = parse_qs(urlparse(self.path).query)
        return query.get("format", [""])[0] == "text"

    # -- routing ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlparse(self.path).path.rstrip("/") or "/"
        service = self.server.service  # type: ignore[attr-defined]
        if path == "/metrics":
            self._send(
                service.metrics.render_prometheus(), PROMETHEUS_CONTENT_TYPE
            )
        elif path == "/metrics.json":
            self._send_json(service.metrics.snapshot())
        elif path == "/health":
            states = service.db.breakers.states()
            ready = bool(service.ready()) if hasattr(service, "ready") else True
            if self._wants_text():
                body = (
                    service.health()
                    + f"\nlive: yes\nready: {'yes' if ready else 'NO'}\n"
                )
                self._send(body, "text/plain; charset=utf-8")
            else:
                self._send_json(
                    {"modules": states, "live": True, "ready": ready}
                )
        elif path == "/health/live":
            # liveness is "the serving loop answers" — reaching this
            # handler at all is the proof; overload never fails it
            self._send_json({"live": True})
        elif path == "/health/ready":
            ready = bool(service.ready()) if hasattr(service, "ready") else True
            payload = {"ready": ready}
            if not ready:
                payload["admission"] = service.admission.render()
            self._send_json(payload, status=200 if ready else 503)
        elif path == "/traces":
            tracer = service.db.tracer
            self._send_json(
                {"traces": tracer.trace_ids() if tracer is not None else []}
            )
        elif path.startswith("/trace/"):
            trace_id = path[len("/trace/"):]
            trace = service.trace(trace_id)
            if trace is None:
                self._send_json({"error": f"no trace {trace_id!r}"}, status=404)
            elif self._wants_text():
                self._send(trace.render() + "\n", "text/plain; charset=utf-8")
            else:
                self._send_json(trace.as_dict())
        elif path == "/slow":
            if self._wants_text():
                self._send(
                    service.slow_queries.render() + "\n",
                    "text/plain; charset=utf-8",
                )
            else:
                self._send_json(
                    {
                        "threshold": service.slow_queries.threshold,
                        "captured": service.slow_queries.captured,
                        "entries": [
                            {
                                "trace_id": entry.trace_id,
                                "query": entry.query,
                                "seconds": entry.seconds,
                                "outcome": entry.outcome,
                                "spans": entry.rendered,
                            }
                            for entry in service.slow_queries.entries()
                        ],
                    }
                )
        elif path == "/qlog":
            qlog = service.qlog
            if qlog is None:
                self._send_json({"error": "query log disabled"}, status=404)
            elif self._wants_text():
                self._send(qlog.render() + "\n", "text/plain; charset=utf-8")
            else:
                query = parse_qs(urlparse(self.path).query)
                try:
                    count = int(query.get("count", ["0"])[0]) or None
                except ValueError:
                    count = None
                self._send_json(
                    {
                        "path": qlog.path,
                        "written": qlog.written,
                        "rotations": qlog.rotations,
                        "records": qlog.tail(count),
                    }
                )
        elif path == "/regressions":
            if self._wants_text():
                self._send(
                    service.sentinel.render() + "\n",
                    "text/plain; charset=utf-8",
                )
            else:
                self._send_json(service.sentinel.as_dict())
        elif path == "/pins":
            store = service.db.plan_pins
            if self._wants_text():
                self._send(store.render() + "\n", "text/plain; charset=utf-8")
            else:
                self._send_json(
                    {
                        "catalog_version": service.db.catalog_version,
                        "stats": store.stats().as_dict(),
                        "pins": [pin.as_dict() for pin in store.entries()],
                    }
                )
        elif path == "/profile":
            profiler = getattr(service, "profiler", None)
            if profiler is None:
                self._send_json(
                    {
                        "error": "profiler disabled",
                        "hint": "start with --profile / --sample-hz "
                        "(or QueryService(profiler=True))",
                    },
                    status=404,
                )
                return
            query = parse_qs(urlparse(self.path).query)
            trace_id = query.get("trace", [""])[0]
            if trace_id:
                from ..engine.profiler import valid_trace_id

                if not valid_trace_id(trace_id):
                    self._send_json(
                        {
                            "error": f"malformed trace id {trace_id!r}",
                            "hint": "trace ids look like t0000002a",
                        },
                        status=400,
                    )
                    return
                profile = profiler.for_trace(trace_id)
                if profile is None:
                    self._send_json(
                        {"error": f"no profile for trace {trace_id!r}"},
                        status=404,
                    )
                    return
                self._send_json(profile.as_dict())
                return
            self._send_json(profiler.payload())
        elif path == "/flamegraph":
            profiler = getattr(service, "profiler", None)
            if profiler is None:
                self._send_json(
                    {
                        "error": "profiler disabled",
                        "hint": "start with --profile / --sample-hz "
                        "(or QueryService(profiler=True))",
                    },
                    status=404,
                )
                return
            collapsed = profiler.flamegraph()
            if collapsed is None:
                self._send_json(
                    {
                        "error": "sampler not running",
                        "hint": "start with --sample-hz to collect stacks",
                    },
                    status=404,
                )
                return
            self._send(collapsed + "\n", "text/plain; charset=utf-8")
        elif path == "/":
            self._send_json(
                {
                    "routes": [
                        "/metrics", "/metrics.json", "/health",
                        "/health/live", "/health/ready",
                        "/traces", "/trace/<id>", "/slow",
                        "/qlog", "/regressions", "/pins",
                        "/profile", "/flamegraph",
                    ]
                }
            )
        else:
            self._send_json({"error": f"no route {path!r}"}, status=404)


class ObservabilityServer:
    """A background HTTP server bound to one
    :class:`~repro.core.service.QueryService`."""

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.service = service  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        """(host, actual port) — port 0 binds an ephemeral one."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ObservabilityServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-observe",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_observability_server(
    service, host: str = "127.0.0.1", port: int = 0
) -> ObservabilityServer:
    """Bind and start the observability endpoint; returns the running
    server (``.url`` reports the bound address; ``.stop()`` tears down)."""
    return ObservabilityServer(service, host, port).start()
