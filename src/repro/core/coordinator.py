"""The scatter-gather coordinator: N store partitions, one answer.

:class:`ShardedDatabase` is the physical-data-independence stress test
the thesis invites (§1.2): the same documents, re-housed across N store
partitions, must answer every query **bit-for-bit** like the single
:class:`~repro.core.uload.Database` — same tuples, same duplicates, same
order, same plan fingerprint.  The record/replay machinery of
:mod:`repro.engine.qlog` is the proof harness: a workload recorded
against one layout replays against the other with zero checksum or
fingerprint diffs (the sharded CI lane).

Architecture — *plan globally, execute locally, merge deterministically*:

* the coordinator **is** a :class:`Database` over the full corpus: the
  inherited state (all documents, the global path summary, the full view
  materializations, the statistics overrides) is the planner, so
  ``prepare`` — and therefore every plan fingerprint and every ranking
  decision — is byte-identical to the single-store database by
  construction.  The inherited store doubles as the gathered-re-execution
  fallback for plans that do not distribute;
* each shard wraps its document partition in its own cheaply-constructed
  :class:`Database` (bulk-loaded via ``add_documents``, private metrics
  registry, its own breaker board) — the unit a future process-per-shard
  deployment would promote to a remote ``QueryService``;
* execution scatters **per pattern, per document** on a bounded thread
  pool: base-access patterns evaluate against each shard's documents;
  rewriting plans are decomposed by the plan splitter
  (:func:`repro.engine.shard.split_plan`) into a distributive subplan —
  run over per-document view segments on the shards — and a
  coordinator-side suffix (regrouping, duplicate elimination) applied to
  the merged stream.  Each task returns ``(global document sequence,
  tuples)`` runs, and the gather merges them respecting order
  descriptors — k-way heap merge when the relation is sorted,
  document-order concatenation otherwise — so the stitched
  ``__pattern_i`` bindings are exactly what the single store would have
  produced.  Joins, products and the other cross-pattern operators then
  run *above* the gather, at the coordinator, over the global bindings;
* plans the splitter cannot decompose (non-linear spines) fall back to
  gathered re-execution against the inherited full store, counted as
  ``shard.fallback`` — degraded in efficiency, never in correctness.

Partial results extend the degradation protocol of the breaker layer:
when one shard's access modules are circuit-open, a shard task raises
:class:`~repro.errors.AccessModuleUnavailable`, or a shard misses the
scatter deadline, the coordinator drops that shard's runs, returns the
survivors' rows with ``QueryResult.degraded`` set, and records a
per-shard degradation event (``shard.degraded``).  Only when every shard
holding documents fails does the query itself fail.
"""

from __future__ import annotations

import math
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures import wait as futures_wait
from typing import Iterable, Optional

from ..algebra.operators import Scan
from ..engine import faults
from ..engine.admission import guard_exit, resolve_hedge, resolve_hedge_delay
from ..engine.context import EXEC_CTX_KEY, ExecutionContext
from ..engine.metrics import MetricsRegistry
from ..engine.orderdesc import sort_key_for
from ..engine.shard import (
    Partitioner,
    RoundRobinPartitioner,
    ScatterPlan,
    evaluate_suffix,
    merge_runs,
    merge_sorted_runs,
    split_plan,
)
from ..engine.storage import FaultCheckedContext
from ..errors import AccessModuleUnavailable, ReproError
from ..storage.catalog import CatalogEntry
from ..xmldata import Document
from .embedding import evaluate_pattern
from .uload import (
    Database,
    PatternResolution,
    PreparedUnit,
    QueryResult,
)
from .xam import Pattern
from .xam_parser import parse_pattern

__all__ = [
    "ShardedDatabase",
    "SHARDS_ENV_VAR",
    "resolve_shards",
]

#: environment variable selecting the shard count for new databases
#: (``repro serve``/``repro replay`` honour it when ``--shards`` is absent)
SHARDS_ENV_VAR = "REPRO_SHARDS"


def resolve_shards(value: "int | str | None") -> int:
    """Normalize and validate a shard count (``None`` → the
    ``REPRO_SHARDS`` environment variable → 1, i.e. unsharded)."""
    if value is None:
        value = os.environ.get(SHARDS_ENV_VAR) or "1"
    count = int(value)
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    return count


def _close_sharded_at_exit(db: "ShardedDatabase") -> None:
    """Exit-guard hook (see :func:`~repro.engine.admission.guard_exit`):
    unbound on purpose, so the guard never keeps the database alive."""
    db.close()


def _absorb(future: Future) -> None:
    """Detach a losing hedge attempt: once it settles, retrieve its
    exception (if any) so the failure of a task nobody is waiting on
    never surfaces anywhere."""

    def _drain(f: Future) -> None:
        if not f.cancelled():
            f.exception()

    future.add_done_callback(_drain)


class ShardedDatabase(Database):
    """A :class:`Database` whose documents live in N store partitions.

    Planning happens against the inherited global state (identical
    fingerprints to the unsharded database); execution scatters across
    the shards and gathers deterministically.  See the module docstring
    for the full protocol.
    """

    def __init__(
        self,
        shard_count: int,
        partitioner: Optional[Partitioner] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: "object | None | bool" = True,
        executor: Optional[str] = None,
        shard_timeout: Optional[float] = None,
        fanout_workers: Optional[int] = None,
        hedge: Optional[bool] = None,
        hedge_delay: Optional[float] = None,
        profile: "bool | str | None" = None,
    ) -> None:
        super().__init__(
            metrics=metrics, tracer=tracer, executor=executor, profile=profile
        )
        shard_count = resolve_shards(shard_count)
        self.shard_count = shard_count
        self.partitioner: Partitioner = partitioner or RoundRobinPartitioner()
        #: per-shard databases over their document partitions.  Private
        #: metrics registries: shard-internal breaker boards would
        #: otherwise collide with the coordinator's on shared module
        #: names (the coordinator owns the externally visible registry).
        self.shards: list[Database] = [
            Database(
                metrics=MetricsRegistry(),
                tracer=None,
                executor=self.executor,
                profile=self.profile,
            )
            for _ in range(shard_count)
        ]
        #: shard index → list of (global document sequence, document)
        self._partitions: list[list[tuple[int, Document]]] = [
            [] for _ in range(shard_count)
        ]
        #: relation name → {global document sequence → tuples}: the
        #: per-document view segments scattered rewriting plans read
        self._segments: dict[str, dict[int, list]] = {}
        #: per-shard gather deadline in seconds (None = wait forever); a
        #: shard missing it is dropped from the result (degraded partial)
        self.shard_timeout = shard_timeout
        #: hedged scatter (opt-in; ``$REPRO_HEDGE`` / ``--hedge``): when a
        #: shard's primary task outlives the hedge delay, the same
        #: idempotent subplan is re-issued and the first completion wins —
        #: one straggler shard no longer pins every query to the scatter
        #: deadline.  ``hedge_delay`` pins the delay; otherwise it is
        #: derived from the recent per-shard latency p95.
        self.hedge = resolve_hedge(hedge)
        self.hedge_delay = resolve_hedge_delay(hedge_delay)
        workers = fanout_workers or min(shard_count, (os.cpu_count() or 4))
        if self.hedge and fanout_workers is None:
            # a hedge re-issue must not queue behind the very straggler
            # it is meant to outrun — keep headroom for one in flight
            workers += 1
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )
        #: recent shard-task latencies feeding the derived hedge delay
        #: (deque appends are atomic — no lock on the hot path)
        self._shard_latencies: deque[float] = deque(maxlen=128)
        self._register_shard_metrics()
        # the scatter pool's threads are non-daemon: cancel queued tasks
        # at interpreter exit so shutdown joins stay prompt
        guard_exit(self, _close_sharded_at_exit)

    def _register_shard_metrics(self) -> None:
        self.metrics.counter(
            "shard.fanout", "pattern scatters fanned out across shards"
        )
        self.metrics.counter(
            "shard.merge", "per-document result runs merged back together"
        )
        self.metrics.counter(
            "shard.fallback",
            "patterns whose plan was not shard-distributive "
            "(gathered re-execution against the full store)",
        )
        self.metrics.counter(
            "shard.degraded",
            "shards dropped from a scatter (breaker open / deadline missed)",
        )
        self.metrics.counter(
            "shard.degraded.by_shard",
            "scatter drops per shard (breaker open / deadline missed)",
            ("shard",),
        )
        self.metrics.histogram(
            "shard.latency.seconds", "per-shard scatter task latency", ("shard",)
        )
        self.metrics.gauge("shard.count", "store partitions behind this database")
        self.metrics.set_gauge("shard.count", float(self.shard_count))
        self.metrics.counter(
            "hedge.launched", "hedge subplans issued against straggler shards"
        )
        self.metrics.counter(
            "hedge.wins", "scatters resolved by the hedge finishing first"
        )
        self.metrics.counter(
            "hedge.primary_wins",
            "scatters where the original shard task beat its hedge",
        )

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Shut down the scatter pool (idempotent)."""
        self._pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- corpus management: keep planner and partitions in lock-step --------

    def add_documents(self, docs: Iterable[Document]) -> list[Document]:
        start = len(self.documents)
        docs = super().add_documents(docs)
        batches: list[list[Document]] = [[] for _ in range(self.shard_count)]
        for offset, doc in enumerate(docs):
            seq = start + offset
            index = self.partitioner.assign(doc, seq, self.shard_count)
            index %= self.shard_count
            self._partitions[index].append((seq, doc))
            batches[index].append(doc)
        for index, batch in enumerate(batches):
            if batch:
                self.shards[index].add_documents(batch)
        return docs

    def add_view(
        self, name: str, pattern: "Pattern | str", kind: str = "view"
    ) -> CatalogEntry:
        """Register the view globally (identical planner state and
        statistics to the unsharded database) *and* install its
        per-document segments on the owning shards."""
        if isinstance(pattern, str):
            pattern = parse_pattern(pattern)
        entry = super().add_view(name, pattern, kind)
        segments: dict[int, list] = {}
        for seq, doc in enumerate(self.documents):
            segments[seq] = evaluate_pattern(pattern, doc)
        self._segments[name] = segments
        for index, partition in enumerate(self._partitions):
            tuples = [t for seq, _doc in partition for t in segments[seq]]
            shard = self.shards[index]
            shard.store.add(name, tuples)
            shard.catalog.register(name, pattern, relation=name, kind=kind)
        return entry

    def drop_view(self, name: str) -> None:
        super().drop_view(name)
        self._segments.pop(name, None)
        for shard in self.shards:
            if any(entry.name == name for entry in shard.catalog):
                shard.catalog.unregister(name)
            if name in shard.store:
                shard.store.drop(name)

    # -- observability -------------------------------------------------------

    def health(self) -> str:
        """Coordinator breaker board plus every shard's, labelled."""
        lines = [f"coordinator ({self.shard_count} shard(s)): {super().health()}"]
        for index, shard in enumerate(self.shards):
            docs = len(self._partitions[index])
            lines.append(f"shard {index} ({docs} doc(s)): {shard.breakers.render()}")
        return "\n".join(lines)

    def execute_prepared(self, *args, **kwargs) -> QueryResult:
        result = super().execute_prepared(*args, **kwargs)
        result.shard_count = self.shard_count
        return result

    # -- the scatter-gather pattern path -------------------------------------

    def _prepared_pattern_tuples(
        self,
        prepared_unit: PreparedUnit,
        index: int,
        resolution: PatternResolution,
        physical: bool,
        ctx: ExecutionContext,
        events: Optional[list[str]] = None,
        fingerprint: Optional[str] = None,
    ) -> list:
        """Answer one resolved pattern by scattering it across the
        shards, or fall back to the inherited full-store path when the
        plan is not shard-distributive (``shard.fallback``)."""
        decision = self._classify(resolution)
        if not decision:
            ctx.bump("shard.fallback")
            ctx.event("shard.fallback", pattern=index, reason=decision.reason)
            return super()._prepared_pattern_tuples(
                prepared_unit, index, resolution, physical, ctx, events,
                fingerprint=fingerprint,
            )
        if ctx.profile:
            # shard index → per-task {"cpu_ms", "wall_ms"} samples, filled
            # by pool threads (thread CPU is per-thread, so shard work is
            # invisible to the coordinator's attributed operator metrics —
            # this side channel is how it gets accounted).  Reset per
            # pattern: each merge span reports its own scatter only.
            ctx.shard_profiles = {}
        with ctx.span(
            "shard.fanout", pattern=index, shards=self.shard_count
        ):
            ctx.bump("shard.fanout")
            runs, dropped = self._scatter(resolution, decision, ctx)
        if dropped:
            attempted = sum(1 for partition in self._partitions if partition)
            if len(dropped) == attempted:
                # no survivors: nothing partial to serve, fail the query
                raise dropped[0][1]
            for shard_index, error in dropped:
                ctx.bump("shard.degraded")
                self.metrics.inc(
                    "shard.degraded.by_shard", shard=str(shard_index)
                )
                ctx.event("shard.degraded", shard=shard_index)
                if events is not None:
                    events.append(
                        self._stamp_event(
                            f"shard {shard_index} dropped from scatter-gather "
                            f"(partial results): {error}",
                            ctx,
                        )
                    )
        with ctx.span("shard.merge", pattern=index, runs=len(runs)) as span:
            ctx.bump("shard.merge", float(len(runs)))
            profiles = getattr(ctx, "shard_profiles", None)
            if profiles:
                # aggregate the scatter's per-shard resource profile under
                # the merge span: total shard CPU plus a per-shard
                # breakdown, and a counter so results/registry see it too
                total_cpu = sum(
                    sample["cpu_ms"]
                    for samples in profiles.values()
                    for sample in samples
                )
                if span is not None:
                    span.attributes["shard.cpu_ms"] = round(total_cpu, 3)
                    span.attributes["shard.profile"] = {
                        str(shard): {
                            "tasks": len(samples),
                            "cpu_ms": round(
                                sum(s["cpu_ms"] for s in samples), 3
                            ),
                        }
                        for shard, samples in sorted(profiles.items())
                    }
                ctx.bump("profiler.shard_cpu_ms", total_cpu)
            order = self._global_order(resolution, decision)
            if order is not None:
                tuples = merge_sorted_runs(runs, sort_key_for(order))
            else:
                tuples = merge_runs(runs)
            if decision.suffix:
                # the non-distributive tail (regroup, π⁰, …) sees the
                # merged global stream — single-store semantics exactly
                schema = ()
                if decision.scatter_root is not None:
                    schema = decision.scatter_root.schema()
                tuples = evaluate_suffix(
                    decision.suffix,
                    tuples,
                    context={EXEC_CTX_KEY: ctx},
                    schema=schema,
                )
        return tuples

    def _classify(self, resolution: PatternResolution) -> ScatterPlan:
        """Base access always scatters (per-document evaluation *is* its
        single-store semantics — ``scatter_root`` stays None); rewriting
        plans go through the plan splitter, cached per resolution."""
        cached = getattr(resolution, "_scatter_decision", None)
        if cached is not None:
            return cached
        if resolution.rewriting is None:
            decision = ScatterPlan(True)
        else:
            decision = split_plan(
                resolution.rewriting.plan, self._segments, self.store.names()
            )
        resolution._scatter_decision = decision
        return decision

    def _global_order(
        self, resolution: PatternResolution, decision: ScatterPlan
    ) -> Optional[str]:
        """The order descriptor under which the scattered runs should
        k-way merge: the global relation's, when the store maintains one
        and the scattered subplan is the bare scan (per-tuple operators
        above the scan may drop or rewrite the order attribute, so the
        merge then falls back to document-order concatenation — always
        correct, since an ordered global relation is also its own
        document-order concatenation)."""
        rewriting = resolution.rewriting
        if rewriting is None or len(rewriting.views) != 1:
            return None
        if not isinstance(decision.scatter_root, Scan):
            return None
        name = decision.scatter_root.name
        if name not in self.store:
            return None
        return self.store[name].order

    def _scatter(
        self,
        resolution: PatternResolution,
        decision: ScatterPlan,
        ctx: ExecutionContext,
    ):
        """Fan the pattern out across shards holding documents; gather
        per-document runs under the shard deadline.  Returns
        ``(runs, dropped)`` where ``dropped`` is a list of
        ``(shard index, error)`` for shards serving degraded queries.
        Transient faults and plan-execution errors propagate — the query
        service owns retries, exactly as on the unsharded path."""
        futures = {}
        for index, partition in enumerate(self._partitions):
            if not partition:
                continue
            futures[index] = self._pool.submit(
                self._shard_task, index, resolution, decision, ctx
            )
        runs: list = []
        dropped: list = []
        deadline = (
            time.monotonic() + self.shard_timeout
            if self.shard_timeout is not None
            else None
        )
        for index, future in futures.items():
            remaining = (
                None
                if deadline is None
                else max(deadline - time.monotonic(), 0.0)
            )
            try:
                shard_runs = self._await_shard(
                    index, future, resolution, decision, ctx, remaining
                )
            except FutureTimeout:
                future.cancel()
                dropped.append(
                    (
                        index,
                        AccessModuleUnavailable(
                            f"shard {index} missed the "
                            f"{self.shard_timeout:g}s scatter deadline"
                        ),
                    )
                )
                continue
            except AccessModuleUnavailable as error:
                dropped.append((index, error))
                continue
            runs.extend(shard_runs)
        return runs, dropped

    # -- hedged scatter -------------------------------------------------------

    def _hedge_delay_now(self) -> Optional[float]:
        """The wait before a straggler shard's subplan is re-issued; None
        disables hedging for this gather (feature off, or not enough
        latency history yet to call anything a straggler)."""
        if not self.hedge:
            return None
        if self.hedge_delay is not None:
            return self.hedge_delay
        samples = list(self._shard_latencies)
        if len(samples) < 8:
            return None
        ordered = sorted(samples)
        rank = math.ceil(0.95 * len(ordered))
        p95 = ordered[min(len(ordered) - 1, max(0, rank - 1))]
        # 2× the p95 with a 1ms floor: only genuine tail outliers hedge,
        # and a microsecond-fast corpus never busy-loops re-issues
        return max(0.001, 2.0 * p95)

    def _await_shard(
        self,
        index: int,
        primary: Future,
        resolution: PatternResolution,
        decision: ScatterPlan,
        ctx: ExecutionContext,
        remaining: Optional[float],
    ) -> list:
        """Gather one shard's runs, re-issuing the (idempotent,
        deterministic) subplan after the hedge delay and taking whichever
        task finishes first.  The loser is cancelled; both producing the
        same runs is guaranteed by determinism, so hedging can change
        *latency*, never answers.  Raises :class:`FutureTimeout` when the
        scatter deadline (``remaining``) expires either way."""
        delay = self._hedge_delay_now()
        if delay is None or primary.done():
            if remaining is None:
                return primary.result()
            return primary.result(timeout=remaining)
        first_wait = delay if remaining is None else min(delay, remaining)
        try:
            return primary.result(timeout=first_wait)
        except FutureTimeout:
            if remaining is not None and first_wait >= remaining:
                raise  # the deadline expired before the hedge could fire
        hedge = self._pool.submit(
            self._shard_task, index, resolution, decision, ctx
        )
        ctx.bump("hedge.launched")
        ctx.event("hedge.fired", shard=index, delay=round(delay, 6))
        race_deadline = (
            None
            if remaining is None
            else time.monotonic() + (remaining - first_wait)
        )
        contenders: set[Future] = {primary, hedge}
        errors: list[BaseException] = []
        while contenders:
            timeout = (
                None
                if race_deadline is None
                else max(0.0, race_deadline - time.monotonic())
            )
            done, contenders = futures_wait(
                contenders, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                hedge.cancel()
                _absorb(hedge)
                raise FutureTimeout()
            for future in done:
                try:
                    runs = future.result()
                except Exception as error:
                    errors.append(error)
                    continue
                loser = hedge if future is primary else primary
                loser.cancel()
                _absorb(loser)
                winner = "primary" if future is primary else "hedge"
                ctx.bump(
                    "hedge.primary_wins" if future is primary else "hedge.wins"
                )
                ctx.event("hedge.resolved", shard=index, winner=winner)
                return runs
        # both attempts failed: surface the first failure observed (both
        # raced the same shard state, so they are typically identical)
        raise errors[0]

    def _shard_task(
        self,
        shard_index: int,
        resolution: PatternResolution,
        decision: ScatterPlan,
        ctx: ExecutionContext,
    ) -> list:
        """One shard's slice of a scattered pattern, run on a pool
        thread: evaluate the distributive subplan per document, in its
        own fault-injection scope (scopes are thread-local — the
        coordinator's does not reach here), against the shard's breaker
        board."""
        shard = self.shards[shard_index]
        start = time.perf_counter()
        cpu_start = time.thread_time_ns() if ctx.profile else 0
        try:
            with faults.scope(ctx.fault_injector, ctx):
                runs: list = []
                rewriting = resolution.rewriting
                if rewriting is None:
                    for seq, doc in self._partitions[shard_index]:
                        runs.append(
                            (seq, evaluate_pattern(resolution.pattern, doc))
                        )
                    return runs
                for name in rewriting.views:
                    if not shard.breakers.allows(name):
                        raise AccessModuleUnavailable(
                            f"shard {shard_index}: access module {name!r} "
                            "is circuit-open",
                            xam=name,
                        )
                try:
                    for seq, _doc in self._partitions[shard_index]:
                        context = self._segment_context(seq, ctx)
                        runs.append(
                            (seq, decision.scatter_root.evaluate(context))
                        )
                except ReproError:
                    raise
                except KeyError as error:
                    raise AccessModuleUnavailable(
                        f"shard {shard_index}: relation {error} missing "
                        "from the partition",
                        xam=rewriting.views[0] if rewriting.views else None,
                    ) from error
                for name in rewriting.views:
                    shard.breakers.record_success(name)
                return runs
        except AccessModuleUnavailable as error:
            names = [error.xam] if error.xam else list(
                resolution.rewriting.views if resolution.rewriting else ()
            )
            for name in names:
                shard.breakers.record_failure(name, str(error))
            raise
        finally:
            elapsed = time.perf_counter() - start
            self._shard_latencies.append(elapsed)
            self.metrics.observe(
                "shard.latency.seconds", elapsed, shard=str(shard_index)
            )
            if ctx.profile:
                # per-thread CPU is valid here: the task ran wholly on
                # this pool thread.  setdefault/append are GIL-atomic.
                profiles = getattr(ctx, "shard_profiles", None)
                if profiles is not None:
                    profiles.setdefault(shard_index, []).append(
                        {
                            "cpu_ms": (time.thread_time_ns() - cpu_start)
                            / 1e6,
                            "wall_ms": elapsed * 1000,
                        }
                    )

    def _segment_context(self, seq: int, ctx: ExecutionContext) -> FaultCheckedContext:
        """The evaluation context of one document's slice of every view:
        fault-checked like a store context (``relation.scan`` fires per
        read), carrying the execution context for operator metrics."""
        context = FaultCheckedContext(
            (name, segments.get(seq, []))
            for name, segments in self._segments.items()
        )
        context[EXEC_CTX_KEY] = ctx
        return context

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedDatabase shards={self.shard_count} "
            f"docs={len(self.documents)} views={len(self.catalog)}>"
        )
