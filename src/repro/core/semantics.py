"""Algebraic XAM semantics (thesis §2.2.2).

``[[χ]]_d`` is defined bottom-up: tag-derived collections (Definition
2.2.1) feed a structural-join tree isomorphic to the XAM tree (Definitions
2.2.2–2.2.5), followed by the projection Π_χ retaining exactly the stored
attributes and eliminating duplicates.  We *literally build that plan* out
of the logical algebra operators and evaluate it — so the algebra is
exercised by every XAM evaluation, and the equivalence with the
embedding-based semantics of §4.1 is property-tested.

Restricted XAMs (``R`` markers — indexes) are evaluated against a bindings
list through nested tuple intersection (Algorithm 1, Definition 2.2.6).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..algebra.model import NestedTuple
from ..algebra.operators import BaseTuples, Operator, StructuralJoin
from ..xmldata.ids import STRUCTURAL, id_of
from ..xmldata.node import ATTRIBUTE, ELEMENT, Document
from .embedding import _kind_compatible  # shared kind/tag admission rules
from .xam import CHILD, Pattern, PatternNode

__all__ = [
    "tag_derived_collection",
    "build_semantics_plan",
    "evaluate_algebraic",
    "tuple_intersection",
    "evaluate_with_bindings",
]

_HIDDEN_SUFFIX = ".SID"


def tag_derived_collection(
    doc: Document, tag: Optional[str] = None, attributes: bool = False
) -> list[NestedTuple]:
    """``R_t(d)`` / ``R_*(d)`` (Definition 2.2.1): one tuple per element
    (or attribute, with ``attributes=True``) carrying ID, Val, Tag, Cont,
    in document order."""
    wanted_kind = ATTRIBUTE if attributes else ELEMENT
    out = []
    for node in doc.nodes():
        if node.kind != wanted_kind:
            continue
        if tag is not None and node.label != tag:
            continue
        out.append(
            NestedTuple(
                {
                    "ID": id_of(node, STRUCTURAL),
                    "Val": node.value,
                    "Tag": node.label,
                    "Cont": node.content,
                }
            )
        )
    return out


def _node_collection(pattern_node: PatternNode, doc: Document) -> list[NestedTuple]:
    """The σ_χ-filtered, annotated collection for one XAM node.

    Tuples carry a hidden ``{name}.SID`` structural identifier driving the
    joins, plus the attributes the node stores.
    """
    out = []
    for node in doc.nodes():
        if not _kind_compatible(pattern_node, node):
            continue
        if pattern_node.tag is not None and pattern_node.tag != node.label:
            continue
        if not pattern_node.value_formula.is_true and not pattern_node.value_formula.evaluate(
            node.value
        ):
            continue
        attrs: dict[str, Any] = {
            f"{pattern_node.name}{_HIDDEN_SUFFIX}": id_of(node, STRUCTURAL)
        }
        if pattern_node.store_id:
            attrs[f"{pattern_node.name}.ID"] = id_of(node, pattern_node.store_id)
        if pattern_node.store_tag:
            attrs[f"{pattern_node.name}.L"] = node.label
        if pattern_node.store_value:
            attrs[f"{pattern_node.name}.V"] = node.value
        if pattern_node.store_content:
            attrs[f"{pattern_node.name}.C"] = node.content
        out.append(NestedTuple(attrs))
    return out


def build_semantics_plan(pattern: Pattern, doc: Document) -> Operator:
    """The structural-join tree of Definition 2.2.4, parenthesized
    bottom-up, over the node collections of the XAM."""

    def plan_for(pattern_node: PatternNode) -> Operator:
        plan: Operator = BaseTuples(_node_collection(pattern_node, doc))
        for edge in pattern_node.edges:
            axis = "child" if edge.axis == CHILD else "descendant"
            plan = StructuralJoin(
                plan,
                plan_for(edge.child),
                left_attr=f"{pattern_node.name}{_HIDDEN_SUFFIX}",
                right_attr=f"{edge.child.name}{_HIDDEN_SUFFIX}",
                axis=axis,
                kind=edge.semantics,
                nest_as=edge.child.name,
            )
        return plan

    root_tuple = NestedTuple(
        {f"{pattern.root.name}{_HIDDEN_SUFFIX}": id_of(doc.root, STRUCTURAL)}
    )
    plan: Operator = BaseTuples([root_tuple])
    for edge in pattern.root.edges:
        axis = "child" if edge.axis == CHILD else "descendant"
        plan = StructuralJoin(
            plan,
            plan_for(edge.child),
            left_attr=f"{pattern.root.name}{_HIDDEN_SUFFIX}",
            right_attr=f"{edge.child.name}{_HIDDEN_SUFFIX}",
            axis=axis,
            kind=edge.semantics,
            nest_as=edge.child.name,
        )
    return plan


def _strip_hidden(t: NestedTuple) -> NestedTuple:
    """Π_χ: drop the driving identifiers, recursively; normalize outer-join
    padding so nested collections read as empty lists."""
    attrs: dict[str, Any] = {}
    for name, value in t.attrs.items():
        if name.endswith(_HIDDEN_SUFFIX):
            continue
        if isinstance(value, list):
            attrs[name] = [_strip_hidden(member) for member in value]
        else:
            attrs[name] = value
    return NestedTuple(attrs)


def evaluate_algebraic(pattern: Pattern, doc: Document) -> list[NestedTuple]:
    """``[[χ]]_d`` via the algebraic construction; duplicate-free, in the
    order induced by the bottom-up joins."""
    plan = build_semantics_plan(pattern, doc)
    out: list[NestedTuple] = []
    seen: set[tuple] = set()
    for t in plan.evaluate({}):
        cleaned = _strip_hidden(t)
        key = cleaned.freeze()
        if key not in seen:
            seen.add(key)
            out.append(cleaned)
    return out


# ---------------------------------------------------------------------------
# Restricted XAMs: Algorithm 1 + Definition 2.2.6
# ---------------------------------------------------------------------------

def tuple_intersection(t: NestedTuple, b: NestedTuple) -> Optional[NestedTuple]:
    """``t ∩ b`` (Algorithm 1): the data of ``t`` accessible given the
    binding ``b``; ``None`` when the lookup fails.

    ``b``'s signature must be a projection of ``t``'s.  Atomic attributes
    must agree; common collection attributes keep the pairwise member
    intersections (empty ⇒ inaccessible); attributes absent from ``b`` are
    copied through.
    """
    result: dict[str, Any] = {}
    for name, b_value in b.attrs.items():
        if name not in t.attrs:
            raise ValueError(f"binding attribute {name!r} missing from tuple")
        t_value = t.attrs[name]
        if isinstance(b_value, list) != isinstance(t_value, list):
            raise ValueError(f"binding attribute {name!r} has mismatched shape")
        if not isinstance(b_value, list):
            if t_value != b_value:
                return None
            result[name] = t_value
        else:
            members = []
            for t_member in t_value:
                for b_member in b_value:
                    meet = tuple_intersection(t_member, b_member)
                    if meet is not None:
                        members.append(meet)
            if not members:
                return None
            result[name] = members
    for name, t_value in t.attrs.items():
        if name not in result and name not in b.attrs:
            result[name] = t_value
    return NestedTuple(result)


def evaluate_with_bindings(
    pattern: Pattern, doc: Document, bindings: Sequence[NestedTuple]
) -> list[NestedTuple]:
    """``[[χ(B)]]_d`` (Definition 2.2.6): evaluate the R-erased XAM, then
    union the tuple intersections with every binding, in binding order."""
    unrestricted = evaluate_algebraic(pattern, doc)
    out = []
    for b in bindings:
        for t in unrestricted:
            meet = tuple_intersection(t, b)
            if meet is not None:
                out.append(meet)
    return out


def binding_signature(pattern: Pattern) -> list[str]:
    """The attribute names a binding tuple for this XAM must provide: the
    projection of the XAM's type over its ``R``-marked attributes."""
    names = []
    for node in pattern.nodes():
        if node.id_required:
            names.append(f"{node.name}.ID")
        if node.tag_required:
            names.append(f"{node.name}.L")
        if node.value_required:
            names.append(f"{node.name}.V")
    return names
