"""In-memory persistent store abstraction.

A :class:`Store` holds named base relations (lists of nested tuples), the
order descriptor each relation is maintained in, and optional B+-tree
indexes over attribute combinations.  It is the execution context plans run
against: ``plan.evaluate(store.context())`` /
``execute(plan, store.context(), store.scan_orders())``.

The thesis' point is that the *optimizer* never touches this layer
directly — it sees only the XAM catalog (:mod:`repro.storage.catalog`);
the store is what those XAMs describe.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from ..algebra.model import NestedTuple
from . import faults
from .btree import BPlusTree

__all__ = ["Store", "StoredRelation", "FaultCheckedContext"]


class StoredRelation:
    """One base relation: tuples + order + named indexes."""

    def __init__(
        self,
        name: str,
        tuples: Iterable[NestedTuple],
        order: Optional[str] = None,
    ):
        self.name = name
        self.tuples = list(tuples)
        #: order descriptor (path of the attribute the list is sorted by)
        self.order = order
        self._indexes: dict[tuple[str, ...], BPlusTree] = {}

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[NestedTuple]:
        return iter(self.tuples)

    def build_index(self, attrs: Sequence[str]) -> BPlusTree:
        """Build (or return) a B+-tree index on an attribute combination."""
        key = tuple(attrs)
        if key not in self._indexes:
            tree = BPlusTree()
            for t in self.tuples:
                tree.insert(tuple(t.first(attr) for attr in attrs), t)
            self._indexes[key] = tree
        return self._indexes[key]

    def lookup(self, attrs: Sequence[str], values: Sequence) -> list[NestedTuple]:
        """Index lookup (``idxLookup`` of QEP₁₁/QEP₁₃)."""
        faults.check(faults.BTREE_LOOKUP, self.name)
        return self.build_index(attrs).search(tuple(values))

    def columns(self) -> list[str]:
        return self.tuples[0].names() if self.tuples else []


class FaultCheckedContext(dict):
    """The evaluation context handed to plans: relation name → tuples,
    with the ``relation.scan`` fault point fired on every read — the
    choke point through which both logical ``Scan.evaluate`` and physical
    ``PScan`` reach the store."""

    def __getitem__(self, name: str) -> list[NestedTuple]:
        faults.check(faults.RELATION_SCAN, name)
        return super().__getitem__(name)


class Store:
    """A set of named relations — the physical database."""

    def __init__(self) -> None:
        self._relations: dict[str, StoredRelation] = {}

    def add(
        self,
        name: str,
        tuples: Iterable[NestedTuple],
        order: Optional[str] = None,
    ) -> StoredRelation:
        relation = StoredRelation(name, tuples, order)
        # copy-on-write: concurrent readers iterating context()/scan_orders()
        # keep a consistent dict while a writer installs a relation
        updated = dict(self._relations)
        updated[name] = relation
        self._relations = updated
        return relation

    def drop(self, name: str) -> None:
        updated = dict(self._relations)
        del updated[name]
        self._relations = updated

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> StoredRelation:
        return self._relations[name]

    def names(self) -> list[str]:
        return list(self._relations)

    def context(self) -> dict[str, list[NestedTuple]]:
        """The evaluation context logical/physical plans read from (fault-
        checked: each relation read fires ``relation.scan``)."""
        return FaultCheckedContext(
            (name, rel.tuples) for name, rel in self._relations.items()
        )

    def scan_orders(self) -> dict[str, str]:
        return {
            name: rel.order
            for name, rel in self._relations.items()
            if rel.order is not None
        }

    def total_tuples(self) -> int:
        return sum(len(rel) for rel in self._relations.values())
